# Convenience targets for the VitBit reproduction.

PYTHON ?= python

.PHONY: install test coverage lint bench examples reports clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# The ROADMAP's tier-1 invocation: PYTHONPATH=src so no editable
# install is needed (matches lint below).
test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

# Tier-1 tests under the CI coverage floor (needs pytest-cov).
coverage:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -q \
		--cov=repro --cov-report=term-missing --cov-fail-under=79

# Static verification: ruff (generic style, when available) + the
# repo's own AST lint, the lane dataflow verifier sweep, and the
# analysis self-check (see docs/ANALYSIS.md).
lint:
	@if command -v ruff >/dev/null 2>&1; then ruff check .; \
	else echo "ruff not installed; skipping generic style checks"; fi
	PYTHONPATH=src $(PYTHON) -m repro analyze --lint
	PYTHONPATH=src $(PYTHON) -m repro analyze --dataflow
	PYTHONPATH=src $(PYTHON) -m repro analyze --self-check

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure report under benchmarks/out/
reports: bench
	@ls benchmarks/out/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/packing_policy_explorer.py
	$(PYTHON) examples/arbitrary_formats.py
	$(PYTHON) examples/cnn_inference.py
	$(PYTHON) examples/kernel_fusion_study.py
	$(PYTHON) examples/vit_inference.py
	$(PYTHON) examples/trace_visualizer.py --out /tmp/vitbit_trace.json
	$(PYTHON) examples/design_space_sweep.py

clean:
	rm -rf build src/repro.egg-info benchmarks/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
