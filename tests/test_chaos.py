"""The chaos engine and the self-healing replicated cluster.

Everything here runs on the :class:`SimulatedClock`, so crashes,
hangs, failovers and restarts all play out in deterministic virtual
time — the central claims under test are (a) faults never produce a
wrong (non-bit-exact) or stranded result, and (b) the same seeds
produce byte-identical stats and traces on every run.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.chaos import ChaosEngine, ChaosSpec, FaultKind, generate_timeline
from repro.chaos.faults import ChaosEvent
from repro.perfmodel import TimingCache
from repro.serve import (
    ClusterConfig,
    InferenceRequest,
    LoadSpec,
    RequestStatus,
    ReplicaState,
    ServingCluster,
    SimulatedClock,
    run_cluster_load,
)
from repro.fusion.qos import INTERACTIVE, STANDARD


def _cluster(machine, clock, **overrides):
    defaults = dict(replicas=3, seed=0)
    defaults.update(overrides)
    return ServingCluster(machine, ClusterConfig(**defaults), clock)


def _requests(n, qos=STANDARD, bits=8, start_id=0):
    return [
        InferenceRequest(request_id=start_id + i, model="vit-base",
                         bits=bits, qos=qos)
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# fault timelines


class TestTimeline:
    def test_deterministic_sorted_and_counted(self):
        spec = ChaosSpec(seed=7, crashes=2, hangs=1, latency_spikes=3,
                         refute_storms=1, poison_requests=2)
        t1, t2 = generate_timeline(spec), generate_timeline(spec)
        assert [e.as_dict() for e in t1] == [e.as_dict() for e in t2]
        assert len(t1) == spec.total_faults
        times = [e.at_seconds for e in t1]
        assert times == sorted(times)
        assert all(
            0.05 * spec.horizon_seconds <= t <= 0.95 * spec.horizon_seconds
            for t in times
        )

    def test_kinds_draw_independently(self):
        """Adding faults of a later kind never reshuffles an earlier
        kind's schedule (fixed RNG consumption order)."""
        a = generate_timeline(ChaosSpec(seed=3, crashes=2))
        b = generate_timeline(ChaosSpec(seed=3, crashes=2, poison_requests=4))
        crashes = [e for e in b if e.kind is FaultKind.WORKER_CRASH]
        assert [e.as_dict() for e in a] == [e.as_dict() for e in crashes]

    def test_different_seeds_differ(self):
        a = generate_timeline(ChaosSpec(seed=1, crashes=3))
        b = generate_timeline(ChaosSpec(seed=2, crashes=3))
        assert [e.at_seconds for e in a] != [e.at_seconds for e in b]

    def test_bad_spec_rejected(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            ChaosSpec(horizon_seconds=0.0)
        with pytest.raises(ServeError):
            ChaosSpec(crashes=-1)


# ---------------------------------------------------------------------------
# crash recovery


class TestCrashRecovery:
    def test_worker_crash_mid_batch_fails_over(self, machine):
        """Kill a replica with requests queued and in flight: every
        submitter still gets a terminal result, and the WAL re-admits
        the victims to surviving replicas."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            futs = [
                asyncio.ensure_future(cluster.submit(r))
                for r in _requests(12)
            ]
            # Let batches get picked up, then kill the busiest replica.
            await clock.sleep(0.003)
            victim = max(cluster.replicas, key=lambda r: (r.load, -r.index))
            assert cluster.inject_crash(victim.index)
            results = await asyncio.gather(*futs)
            await cluster.stop()
            return victim.index, results

        victim, results = clock.run(main())
        assert len(results) == 12
        assert all(
            r.status in (RequestStatus.COMPLETED, RequestStatus.EXPIRED)
            for r in results
        ), [r.detail for r in results if r.status is RequestStatus.FAILED]
        assert cluster.stats.failures_detected == 1
        assert cluster.stats.wal_readmitted >= 1
        assert cluster.wal.resolved == 12 and len(cluster.wal) == 0
        assert cluster.bit_inexact == 0

    def test_crashed_replica_restarts_and_serves_again(self, machine):
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            assert cluster.inject_crash(0)
            assert cluster.replicas[0].state is ReplicaState.DOWN
            await clock.sleep(
                cluster.config.restart_delay_seconds
                + cluster.config.heartbeat_interval_seconds
            )
            state = cluster.replicas[0].state
            generation = cluster.replicas[0].generation
            result = await cluster.submit(_requests(1)[0])
            await cluster.stop()
            return state, generation, result

        state, generation, result = clock.run(main())
        assert state is ReplicaState.UP
        assert generation == 2  # second incarnation
        assert result.status is RequestStatus.COMPLETED
        assert cluster.stats.restarts == 1
        assert len(cluster.stats.recovery_seconds) == 1

    def test_hang_detected_by_heartbeat_monitor(self, machine):
        """A grey failure (wedged workers, no crash) must be detected
        via stale heartbeats and crash-restarted."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            assert cluster.inject_hang(1, duration=10.0)  # effectively forever
            futs = [
                asyncio.ensure_future(cluster.submit(r)) for r in _requests(6)
            ]
            await clock.sleep(
                cluster.config.heartbeat_timeout_seconds
                + 2 * cluster.config.heartbeat_interval_seconds
            )
            detected = cluster.stats.failures_detected
            results = await asyncio.gather(*futs)
            await cluster.stop()
            return detected, results

        detected, results = clock.run(main())
        assert detected == 1
        assert all(r.status is not RequestStatus.FAILED for r in results)

    def test_whole_cluster_dark_waits_for_restart(self, machine):
        """With every replica down, a pending submit waits for the
        first restart instead of failing immediately."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            for i in range(3):
                cluster.inject_crash(i)
            assert cluster.healthy() == []
            result = await cluster.submit(_requests(1)[0])
            await cluster.stop()
            return result

        result = clock.run(main())
        assert result.status is RequestStatus.COMPLETED
        assert cluster.stats.restarts >= 1


# ---------------------------------------------------------------------------
# hedging


class TestHedging:
    def test_straggler_interactive_request_is_hedged(self, machine):
        """Spike one replica into uselessness: the hedge on a healthy
        replica wins within the interactive deadline."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock, hedge_delay_seconds=0.004)

        async def main():
            await cluster.start()
            # Routing is least-loaded with lowest-index ties, so the
            # next submit lands on the spiked replica 0.
            assert cluster.inject_latency_spike(0, magnitude=40.0,
                                                duration=0.5)
            result = await cluster.submit(
                InferenceRequest(request_id=0, model="vit-base", bits=8,
                                 qos=INTERACTIVE)
            )
            await cluster.stop()
            return result

        result = clock.run(main())
        assert result.status is RequestStatus.COMPLETED
        assert result.extra.get("hedged") is True
        assert result.extra["replica"] == "replica-1"
        assert cluster.stats.hedges == 1
        assert cluster.stats.hedges_won == 1

    def test_hedge_loser_is_cancelled_out_of_its_queue(self, machine):
        """When the primary wins, the duplicate is withdrawn from the
        secondary's queue before it wastes a batch slot."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock, hedge_delay_seconds=0.004)

        async def main():
            await cluster.start()
            # Occupy the secondary replicas: pause their workers with a
            # blocker request held at the gate, so a hedged duplicate
            # can only sit *queued* behind it (cancellable), never
            # in flight.
            for i in (1, 2):
                service = cluster.replicas[i].service
                service.pause()
                service.submit_nowait(_requests(1, start_id=10 + i)[0])
            await clock.sleep(0.0005)  # let the workers park at the gate
            result = await cluster.submit(
                InferenceRequest(request_id=0, model="vit-base", bits=8,
                                 qos=INTERACTIVE)
            )
            cluster.replicas[1].service.resume()
            cluster.replicas[2].service.resume()
            await cluster.stop()
            return result

        result = clock.run(main())
        assert result.status is RequestStatus.COMPLETED
        assert "hedged" not in result.extra  # the primary won
        assert cluster.stats.hedges == 1
        assert cluster.stats.hedges_won == 0
        assert cluster.stats.hedges_cancelled == 1
        cancelled = sum(
            r["stats"].get("cancelled", 0) for r in cluster.replica_stats()
        )
        assert cancelled == 1


# ---------------------------------------------------------------------------
# cache chaos


class TestCacheChaos:
    def test_cache_corruption_quarantined_under_load(
        self, machine, tmp_path, monkeypatch
    ):
        """Corrupt on-disk timing-cache entries mid-run: lookups must
        quarantine them and recompute, never crash or mis-serve."""
        cache = TimingCache(tmp_path / "chaos-cache")
        monkeypatch.setattr(TimingCache, "_default", cache)

        # Warm the cache so the fault has entries to corrupt.
        warm = run_cluster_load(
            machine,
            ClusterConfig(replicas=2, seed=0),
            LoadSpec(requests=20, rate_per_s=400.0, seed=0),
        )
        assert warm.completed > 0
        assert len(cache.on_disk_entries()) > 0

        clock = SimulatedClock()
        cluster = _cluster(machine, clock, replicas=2)
        spec = ChaosSpec(seed=5, crashes=0, cache_corruptions=1,
                         cache_evictions=1, cache_entries_per_event=2)
        engine = ChaosEngine(spec, cluster)
        event = ChaosEvent(0.0, FaultKind.CACHE_CORRUPT, magnitude=2.0)
        assert engine._cache_fault(event, corrupt=True)
        corrupted = list((tmp_path / "chaos-cache").glob("*.json.corrupt"))
        assert not corrupted  # corrupt in place; quarantine happens on read

        # The rerun prices the same workload, so it looks the corrupted
        # keys up again: they must be quarantined and recomputed, with
        # identical results and zero bit-inexact batches.
        rerun = run_cluster_load(
            machine,
            ClusterConfig(replicas=2, seed=0),
            LoadSpec(requests=20, rate_per_s=400.0, seed=0),
            chaos=spec,
        )
        assert rerun.completed == warm.completed
        assert cache.stats().corrupt >= 1
        assert list((tmp_path / "chaos-cache").glob("*.json.corrupt"))
        assert rerun.bit_inexact == 0

    def test_cache_eviction_forces_cold_recompute(self, machine, tmp_path,
                                                  monkeypatch):
        cache = TimingCache(tmp_path / "c")
        monkeypatch.setattr(TimingCache, "_default", cache)
        clock = SimulatedClock()
        cluster = _cluster(machine, clock, replicas=2)
        engine = ChaosEngine(ChaosSpec(seed=1, crashes=0), cluster)
        cache.put({"k": 1}, {"v": 1})
        assert cache.on_disk_entries()
        event = ChaosEvent(0.0, FaultKind.CACHE_EVICT, magnitude=8.0)
        assert engine._cache_fault(event, corrupt=False)
        assert cache.on_disk_entries() == []
        assert cache.get({"k": 1}) is None  # memory mirror dropped too


# ---------------------------------------------------------------------------
# degradation under chaos


class TestDegradation:
    def test_refute_storm_survives_replica_restart(self, machine):
        """A replica restarted during a storm inherits the refutation,
        so the degraded path holds cluster-wide until the storm clears."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            cluster.set_refute_storm(8, True)
            cluster.inject_crash(0)
            await clock.sleep(0.02)  # past restart_delay
            restarted = cluster.replicas[0].service
            inherits = 8 in restarted._injected_refute
            r1 = await cluster.submit(_requests(1)[0])
            cluster.set_refute_storm(8, False)
            r2 = await cluster.submit(_requests(1, start_id=1)[0])
            await cluster.stop()
            return inherits, r1, r2

        inherits, r1, r2 = clock.run(main())
        assert inherits
        assert r1.status is RequestStatus.COMPLETED and r1.fallback
        assert r2.status is RequestStatus.COMPLETED and not r2.fallback

    def test_poison_request_fails_cleanly(self, machine):
        """An unknown-model request fails without poisoning the
        pipeline for its neighbours."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock)

        async def main():
            await cluster.start()
            poison = asyncio.ensure_future(
                cluster.submit(
                    InferenceRequest(request_id=99, model="__no-such-model__",
                                     bits=8, qos=STANDARD)
                )
            )
            good = asyncio.ensure_future(cluster.submit(_requests(1)[0]))
            results = await asyncio.gather(poison, good)
            await cluster.stop()
            return results

        poison, good = clock.run(main())
        assert poison.status is RequestStatus.FAILED
        assert "unknown model" in poison.detail
        assert poison.retries == 0  # not a replica failure: no failover
        assert good.status is RequestStatus.COMPLETED

    def test_load_shedding_protects_interactive(self, machine):
        """Past the shedding tier, batch traffic is refused at the
        router while interactive traffic is still admitted."""
        clock = SimulatedClock()
        cluster = _cluster(machine, clock, replicas=1, shed_batch_depth=2,
                           shed_standard_depth=1000,
                           hedge_delay_seconds=None)

        async def main():
            await cluster.start()
            cluster.replicas[0].service.pause()  # make depth build up
            futs = [
                asyncio.ensure_future(cluster.submit(r))
                for r in _requests(4)
            ]
            await clock.sleep(0.001)
            from repro.fusion.qos import BATCH

            shed = asyncio.ensure_future(
                cluster.submit(
                    InferenceRequest(request_id=50, model="vit-base",
                                     bits=8, qos=BATCH)
                )
            )
            kept = asyncio.ensure_future(
                cluster.submit(
                    InferenceRequest(request_id=51, model="vit-base",
                                     bits=8, qos=INTERACTIVE)
                )
            )
            await clock.sleep(0.001)
            cluster.replicas[0].service.resume()
            results = await asyncio.gather(*futs, shed, kept)
            await cluster.stop()
            return results

        results = clock.run(main())
        shed, kept = results[-2], results[-1]
        assert shed.status is RequestStatus.REJECTED
        assert "load shed" in shed.detail
        assert kept.status is RequestStatus.COMPLETED
        assert cluster.stats.shed == {"batch": 1}


# ---------------------------------------------------------------------------
# determinism and bit-exactness (the acceptance bar)


class TestDeterminism:
    CHAOS = ChaosSpec(seed=42, crashes=1, hangs=1, latency_spikes=1,
                      refute_storms=1, poison_requests=1)
    SPEC = LoadSpec(requests=80, rate_per_s=400.0, seed=7)
    CONFIG = ClusterConfig(replicas=3, seed=42)

    def _run(self, machine):
        tracer = obs.get_tracer()
        before = len(tracer.spans)
        report = run_cluster_load(machine, self.CONFIG, self.SPEC,
                                  chaos=self.CHAOS)
        return report, tracer.snapshot()[before:]

    def test_same_seed_identical_stats_and_traces(self, machine):
        r1, t1 = self._run(machine)
        r2, t2 = self._run(machine)
        assert json.dumps(r1.deterministic_summary(), sort_keys=True) == \
            json.dumps(r2.deterministic_summary(), sort_keys=True)
        assert json.dumps(t1, sort_keys=True) == json.dumps(t2, sort_keys=True)
        assert len(t1) > 0

    def test_zero_bit_inexact_under_chaos(self, machine):
        report, _ = self._run(machine)
        assert report.verified_batches > 0
        assert report.bit_inexact == 0
        # And chaos actually happened: this is not a vacuous pass.
        assert report.chaos["injected"] >= 4
        assert report.stats["failures_detected"] >= 1

    def test_summary_round_trips_through_json(self, machine, tmp_path):
        report, _ = self._run(machine)
        out = report.write_summary(tmp_path / "summary.json")
        payload = json.loads(out.read_text())
        assert payload["cluster"]["bit_inexact"] == 0
        assert payload["cluster"]["chaos"]["seed"] == 42
        assert "metrics" in payload
