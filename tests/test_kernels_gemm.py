"""Unit tests for the per-unit reference GEMMs and the fused GEMM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingError
from repro.kernels import fc_gemm, fused_gemm, ic_gemm, tc_gemm
from repro.packing import policy_for_bitwidth, reference_gemm
from repro.preprocess import duplicate_weights, preprocess_input

POL8 = policy_for_bitwidth(8)


class TestUnitGemms:
    def test_all_paths_agree(self, rng):
        a = rng.integers(-127, 128, size=(9, 40))
        b = rng.integers(-128, 128, size=(40, 13))
        ref = reference_gemm(a, b)
        assert np.array_equal(tc_gemm(a, b), ref)
        assert np.array_equal(ic_gemm(a, b), ref)
        assert np.array_equal(fc_gemm(a, b), ref)

    def test_tc_gemm_int32_overflow_detected(self):
        a = np.full((1, 140000), 127, dtype=np.int64)
        b = np.full((140000, 1), 127, dtype=np.int64)
        with pytest.raises(PackingError):
            tc_gemm(a, b)

    def test_fc_gemm_exact_window_guard(self):
        a = np.full((1, 2), 1 << 13, dtype=np.int64)
        b = np.full((2, 1), 1 << 13, dtype=np.int64)
        with pytest.raises(PackingError):
            fc_gemm(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(PackingError):
            ic_gemm(np.ones((2, 3), dtype=np.int64), np.ones((2, 3), dtype=np.int64))

    def test_float_input_rejected(self):
        with pytest.raises(TypeError):
            tc_gemm(np.ones((2, 2)), np.ones((2, 2), dtype=np.int64))


class TestFusedGemm:
    def _run(self, rng, m_ratio, mrows=32, k=64, n=60, zp=128):
        a = rng.integers(-127, 128, size=(mrows, k))
        b_true = rng.integers(-128, 128, size=(k, n))
        res = preprocess_input(b_true + zp, m_ratio, POL8)
        a1, a2 = duplicate_weights(a)
        out = fused_gemm(a1, a2, res.matrices, POL8, b_zero_point=zp)
        return out, reference_gemm(a, b_true), res.plan

    def test_bit_exact_m4(self, rng):
        out, ref, _ = self._run(rng, 4.0)
        assert np.array_equal(out.c, ref)

    def test_bit_exact_cuda_only(self, rng):
        out, ref, plan = self._run(rng, 0.0)
        assert plan.n3 == 0
        assert np.array_equal(out.c, ref)

    def test_bit_exact_tensor_only(self, rng):
        out, ref, plan = self._run(rng, 1e9)
        assert plan.n3 == plan.n_total
        assert np.array_equal(out.c, ref)

    def test_partial_shapes(self, rng):
        out, _, plan = self._run(rng, 4.0)
        assert out.c1.shape[1] == plan.n1
        assert out.c2.shape[1] == plan.n2
        assert out.c3.shape[1] == plan.n3

    def test_packed_stats_populated(self, rng):
        out, _, plan = self._run(rng, 4.0)
        if plan.n1:
            assert out.packed_stats.packed_multiplies > 0
            assert out.packed_stats.sign_split_passes == 2

    def test_mismatched_weights_rejected(self, rng):
        a = rng.integers(-127, 128, size=(4, 8))
        res = preprocess_input(
            rng.integers(0, 256, size=(8, 10)), 4.0, POL8
        )
        with pytest.raises(PackingError):
            fused_gemm(a, np.zeros((5, 8), dtype=np.float32), res.matrices, POL8)

    def test_unsigned_b_without_zero_point(self, rng):
        a = rng.integers(-127, 128, size=(8, 16))
        b = rng.integers(0, 256, size=(16, 20))
        res = preprocess_input(b, 2.0, POL8)
        a1, a2 = duplicate_weights(a)
        out = fused_gemm(a1, a2, res.matrices, POL8)
        assert np.array_equal(out.c, reference_gemm(a, b))


@settings(max_examples=40, deadline=None)
@given(
    m_ratio=st.floats(min_value=0.0, max_value=16.0),
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_fused_gemm_bit_exact_for_any_split(m_ratio, n, seed):
    """The paper's accuracy claim: for any Tensor/CUDA split ratio the
    fused kernel's output equals the plain integer GEMM bit for bit."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-127, 128, size=(5, 24))
    b_true = rng.integers(-128, 128, size=(24, n))
    res = preprocess_input(b_true + 128, m_ratio, POL8)
    a1, a2 = duplicate_weights(a)
    out = fused_gemm(a1, a2, res.matrices, POL8, b_zero_point=128)
    assert np.array_equal(out.c, reference_gemm(a, b_true))
