"""The lane IR: layouts, read/write sets, builders, and capture sinks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Interval
from repro.analysis.laneir import (
    LaneField,
    LaneLayout,
    LaneOp,
    active_program,
    capture,
    capturing,
    gemm_chain_program,
    note,
)
from repro.errors import FormatError, PackingError
from repro.packing.packer import Packer
from repro.packing.policy import policy_for_bitwidth
from repro.packing.swar import packed_add, packed_scalar_mul


class TestLaneField:
    def test_capacity_and_guard_bits(self):
        f = LaneField(offset=0, width=16, value_bits=8)
        assert f.capacity == 65535
        assert f.guard_bits == 8
        assert f.value_range == Interval(0, 255)

    def test_value_bits_must_fit_width(self):
        with pytest.raises(FormatError):
            LaneField(offset=0, width=4, value_bits=5)

    def test_negative_zero_point_rejected(self):
        with pytest.raises(FormatError):
            LaneField(offset=0, width=8, value_bits=4, zero_point=-1)


class TestLaneLayout:
    def test_from_policy_round_trips_geometry(self):
        pol = policy_for_bitwidth(8)
        layout = LaneLayout.from_policy(pol)
        assert layout.lanes == pol.lanes
        assert layout.is_uniform
        assert layout.fields[1].offset == pol.field_bits

    def test_overlapping_fields_rejected(self):
        with pytest.raises(FormatError, match="overlap"):
            LaneLayout(
                fields=(
                    LaneField(offset=0, width=16, value_bits=8),
                    LaneField(offset=8, width=16, value_bits=8),
                )
            )

    def test_fields_must_fit_register(self):
        with pytest.raises(FormatError, match="beyond"):
            LaneLayout(fields=(LaneField(offset=24, width=16, value_bits=8),))

    def test_asymmetric_layout_is_first_class(self):
        # A 12-bit product field next to a 20-bit one: nothing uniform.
        layout = LaneLayout(
            fields=(
                LaneField(offset=0, width=12, value_bits=6),
                LaneField(offset=12, width=20, value_bits=8),
            )
        )
        assert not layout.is_uniform
        assert layout.describe() == "u32{0:12/6, 12:20/8}"

    def test_describe_grammar(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        assert layout.describe() == "u32{0:16/8, 16:16/8}"
        assert "+zp3" in layout.with_zero_point(3).describe()

    def test_shifted_drops_and_moves_whole_fields(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        right = layout.shifted(-16)
        assert right.lanes == 1 and right.fields[0].offset == 0

    def test_shift_splitting_a_field_rejected(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        with pytest.raises(FormatError, match="splits"):
            layout.shifted(-8)


class TestLaneOp:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(PackingError):
            LaneOp(op="divide", dest="x")

    def test_spill_reads_and_writes_both_registers(self):
        op = LaneOp(op="spill", dest="w", srcs=("acc",))
        assert op.reads() == {"acc", "w"}
        assert op.writes() == {"acc", "w"}  # spill also resets the source

    def test_loop_read_set_excludes_body_defined_registers(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        body = (
            LaneOp(op="packed_mul", dest="t", srcs=("a", "b"), layout=layout),
            LaneOp(op="packed_add", dest="acc", srcs=("acc", "t"), layout=layout),
        )
        loop = LaneOp(op="loop", attrs={"trips": 4, "body": body})
        assert loop.reads() == {"a", "b", "acc"}  # t is defined before read
        assert loop.writes() == {"t", "acc"}

    def test_render_is_one_line(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        op = LaneOp(op="packed_add", dest="acc", srcs=("acc", "t"), layout=layout)
        assert op.render() == "packed_add acc acc t  u32{0:16/8, 16:16/8}"


class TestGemmChainProgram:
    def test_unchunked_chain_is_constant_size(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        small = gemm_chain_program(layout, a_range=Interval.from_bits(8), k=4)
        huge = gemm_chain_program(layout, a_range=Interval.from_bits(8), k=1 << 20)
        assert small.flat_size() == huge.flat_size()  # loops, not unrolling

    def test_chunked_chain_has_tail_loop(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        prog = gemm_chain_program(
            layout, a_range=Interval.from_bits(8), k=10, chunk_depth=4
        )
        loops = [op for op in prog.ops if op.op == "loop"]
        assert [op.attrs["trips"] for op in loops] == [2, 2]  # 2 chunks + tail

    def test_k_zero_unpacks_zeros(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        prog = gemm_chain_program(layout, a_range=Interval.from_bits(8), k=0)
        assert prog.ops[-1].op == "unpack"

    def test_negative_k_rejected(self):
        layout = LaneLayout.from_policy(policy_for_bitwidth(8))
        with pytest.raises(PackingError):
            gemm_chain_program(layout, a_range=Interval.from_bits(8), k=-1)


class TestCapture:
    def test_swar_call_sites_emit_ops(self):
        pol = policy_for_bitwidth(8)
        packer = Packer(pol)
        with capture("swar") as prog:
            reg = packer.pack(np.array([3, 5], dtype=np.int64))
            prod = packed_scalar_mul(7, reg, pol, strict=True)
            packed_add(prod, prod, pol, strict=True)
        assert [op.op for op in prog.ops] == ["pack", "packed_mul", "packed_add"]
        # The scalar operand becomes a program input with its range.
        assert Interval(7, 7) in prog.inputs.values()

    def test_gemm_emits_compact_loop_chain(self):
        pol = policy_for_bitwidth(8)
        from repro.packing.gemm import packed_gemm_unsigned

        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, (2, 40), dtype=np.int64)
        b = rng.integers(0, 256, (40, 2 * pol.lanes), dtype=np.int64)
        with capture("gemm") as prog:
            c = packed_gemm_unsigned(a, b, pol)
        assert np.array_equal(c, a @ b)  # capture never perturbs results
        assert any(op.op == "loop" for op in prog.ops)
        assert prog.flat_size() < 20  # K=40 stays O(1) instructions

    def test_capture_nests_and_restores(self):
        assert not capturing()
        with capture("outer") as outer:
            assert active_program() is outer
            with capture("inner") as inner:
                assert active_program() is inner
                note("from inside")
            assert active_program() is outer
            assert inner.notes == ["from inside"]
        assert not capturing()
        assert note("dropped") is None  # no-op outside a capture
