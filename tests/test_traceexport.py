"""Tests for the Chrome-trace exporter."""

from __future__ import annotations

import json

import pytest

from repro.arch.specs import SMSpec
from repro.errors import SimulationError
from repro.sim import OpClass, SubPartitionSim, WarpProgram, default_timings
from repro.sim.traceexport import record_partition_trace, to_chrome_trace

TIMINGS = default_timings(SMSpec())


def _mixed_warps():
    return [
        WarpProgram.loop([(OpClass.LSU, 1), (OpClass.INT, 4)], 10),
        WarpProgram.loop([(OpClass.LSU, 1), (OpClass.FP, 4)], 10),
        WarpProgram.loop([(OpClass.MISC, 2), (OpClass.INT, 2)], 5),
    ]


class TestRecorder:
    def test_event_count_matches_instructions(self):
        warps = _mixed_warps()
        events, _ = record_partition_trace(TIMINGS, warps)
        assert len(events) == sum(w.total_instructions for w in warps)

    def test_cycles_match_simulator(self):
        """The recorder must replicate SubPartitionSim exactly."""
        warps = _mixed_warps()
        _, cycles = record_partition_trace(TIMINGS, warps)
        stats = SubPartitionSim(TIMINGS, warps).run()
        assert cycles == stats.cycles

    def test_cycles_match_simulator_lrr(self):
        warps = _mixed_warps()
        _, cycles = record_partition_trace(TIMINGS, warps, policy="lrr")
        stats = SubPartitionSim(TIMINGS, warps, policy="lrr").run()
        assert cycles == stats.cycles

    def test_no_pipe_overlap(self):
        """Events on one pipe never overlap (pipe exclusivity)."""
        events, _ = record_partition_trace(TIMINGS, _mixed_warps())
        by_pipe: dict[OpClass, list] = {}
        for ev in events:
            by_pipe.setdefault(ev.op, []).append(ev)
        for evs in by_pipe.values():
            evs.sort(key=lambda e: e.start_cycle)
            for a, b in zip(evs, evs[1:]):
                assert a.start_cycle + a.duration <= b.start_cycle

    def test_warp_program_order_preserved(self):
        """A warp's events follow its program order."""
        warps = [_mixed_warps()[0]]
        events, _ = record_partition_trace(TIMINGS, warps)
        ops = [ev.op for ev in events if ev.warp == 0]
        expected = ([OpClass.LSU] + [OpClass.INT] * 4) * 10
        assert ops == expected

    def test_cap_enforced(self):
        huge = [WarpProgram.loop([(OpClass.INT, 100)], 10_000)]
        with pytest.raises(SimulationError):
            record_partition_trace(TIMINGS, huge, max_events=1000)


class TestChromeExport:
    def test_valid_json_with_events(self):
        events, _ = record_partition_trace(TIMINGS, _mixed_warps())
        doc = json.loads(to_chrome_trace(events, clock_ghz=2.232))
        assert len(doc["traceEvents"]) == len(events)
        first = doc["traceEvents"][0]
        assert set(first) >= {"name", "ph", "ts", "dur", "tid"}
        assert first["ph"] == "X"

    def test_group_by_warp(self):
        events, _ = record_partition_trace(TIMINGS, _mixed_warps())
        doc = json.loads(to_chrome_trace(events, by="warp"))
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert tids == {"warp 0", "warp 1", "warp 2"}

    def test_group_by_pipe(self):
        events, _ = record_partition_trace(TIMINGS, _mixed_warps())
        doc = json.loads(to_chrome_trace(events, by="pipe"))
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert "INT" in tids and "LSU" in tids

    def test_bad_grouping_rejected(self):
        with pytest.raises(SimulationError):
            to_chrome_trace([], by="block")

    def test_timescale(self):
        events, _ = record_partition_trace(TIMINGS, _mixed_warps())
        slow = json.loads(to_chrome_trace(events, clock_ghz=1.0))
        fast = json.loads(to_chrome_trace(events, clock_ghz=2.0))
        s = max(e["ts"] + e["dur"] for e in slow["traceEvents"])
        f = max(e["ts"] + e["dur"] for e in fast["traceEvents"])
        assert s == pytest.approx(2 * f)
