"""Tests for mixed-bitwidth packing policies (W4A8 etc.) and the
low-bitwidth integer ViT variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ModelConfigError
from repro.fusion import VITBIT
from repro.packing import (
    PackingPolicy,
    max_lanes_for_operands,
    packed_gemm,
    packed_gemm_unsigned,
    policy_for_operands,
    reference_gemm,
)
from repro.vit import IntViT, ViTConfig, verify_bit_exact


class TestMixedPolicy:
    def test_w4a8_packs_two(self):
        pol = policy_for_operands(4, 8)
        assert (pol.lanes, pol.field_bits) == (2, 16)
        assert pol.effective_multiplier_bits == 4

    def test_w4a4_packs_four(self):
        assert policy_for_operands(4, 4).lanes == 4

    def test_w8a2_packs_three(self):
        pol = policy_for_operands(8, 2)
        assert (pol.lanes, pol.field_bits) == (3, 10)

    def test_w2a8_packs_three(self):
        # Symmetric rule would forbid this (field 10 < 2*8); the mixed
        # rule allows it because the multiplier is only 2 bits wide.
        pol = policy_for_operands(2, 8)
        assert pol.lanes == 3

    def test_cap_lanes(self):
        assert policy_for_operands(2, 2, cap_lanes=4).lanes == 4
        assert policy_for_operands(2, 2).lanes == 8

    def test_guard_bits_from_asymmetry(self):
        # W4A8 products are 12 bits in 16-bit fields: 4 guard bits.
        pol = policy_for_operands(4, 8)
        assert pol.product_bits == 12
        assert pol.field_bits - pol.product_bits == 4

    def test_invalid_widths(self):
        with pytest.raises(FormatError):
            policy_for_operands(0, 8)
        with pytest.raises(FormatError):
            policy_for_operands(8, 33)
        with pytest.raises(FormatError):
            policy_for_operands(8, 8, cap_lanes=0)

    def test_symmetric_validation_still_guards(self):
        # Hand-built unsafe policies are still rejected.
        with pytest.raises(FormatError):
            PackingPolicy(value_bits=8, lanes=3, field_bits=10, multiplier_bits=8)

    def test_max_lanes(self):
        assert max_lanes_for_operands(4, 8) == 2
        assert max_lanes_for_operands(1, 1) == 16

    def test_with_lanes_preserves_multiplier(self):
        pol = policy_for_operands(4, 8).with_lanes(1)
        assert pol.effective_multiplier_bits == 4


class TestMixedGemm:
    @pytest.mark.parametrize(
        "a_bits,b_bits",
        [(2, 8), (4, 8), (8, 2), (8, 4), (3, 5), (5, 3), (4, 4)],
    )
    def test_unsigned_exact(self, a_bits, b_bits, rng):
        pol = policy_for_operands(a_bits, b_bits)
        a = rng.integers(0, 1 << a_bits, size=(7, 60))
        b = rng.integers(0, 1 << b_bits, size=(60, 13))
        assert np.array_equal(
            packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
        )

    def test_w4a8_signed_weights_exact(self, rng):
        pol = policy_for_operands(4, 8)
        a = rng.integers(-7, 8, size=(9, 80))
        b = rng.integers(-128, 128, size=(80, 21))
        assert np.array_equal(
            packed_gemm(a, b, pol, b_zero_point=128), reference_gemm(a, b)
        )

    def test_oversized_multiplier_wide_field_degrades_gracefully(self, rng):
        """A multiplier wider than the policy's nominal width still
        yields an exact result when single products happen to fit the
        field — the guard-bit accounting just spills every MAC."""
        pol = policy_for_operands(4, 8)  # 16-bit fields
        a = rng.integers(0, 256, size=(2, 40))  # 8-bit, policy nominal 4
        b = rng.integers(0, 256, size=(40, 6))
        assert np.array_equal(
            packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
        )

    def test_oversized_multiplier_narrow_field_rejected(self, rng):
        """When a single product cannot fit the field at all, the GEMM
        must refuse rather than corrupt the neighbouring lane."""
        from repro.errors import PackingError

        pol = policy_for_operands(2, 8)  # 10-bit fields
        a = np.full((2, 40), 255, dtype=np.int64)  # 8-bit multiplier
        b = rng.integers(0, 256, size=(40, 6))
        with pytest.raises(PackingError):
            packed_gemm_unsigned(a, b, pol)


@settings(max_examples=60, deadline=None)
@given(
    a_bits=st.integers(min_value=1, max_value=12),
    b_bits=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_mixed_gemm_exact(a_bits, b_bits, seed):
    pol = policy_for_operands(a_bits, b_bits)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << a_bits, size=(4, 25))
    b = rng.integers(0, 1 << b_bits, size=(25, 7))
    assert np.array_equal(packed_gemm_unsigned(a, b, pol), reference_gemm(a, b))


class TestLowBitViT:
    @pytest.mark.parametrize("bits", [4, 5, 6, 8])
    def test_bit_exact_at_lower_widths(self, bits):
        cfg = ViTConfig(
            image_size=64, patch_size=16, hidden=32, depth=1, heads=2,
            mlp_dim=64, num_classes=10,
            activation_bits=bits, weight_bits=bits,
        )
        model = IntViT.create(cfg, seed=5)
        assert verify_bit_exact(model, VITBIT, batch=1, seed=6)

    @pytest.mark.parametrize("bits", [4, 8])
    @pytest.mark.parametrize(
        "strategy_name", ["IC", "FC", "IC+FC", "Tacker", "TC+IC+FC"]
    )
    def test_bit_exact_matrix(self, bits, strategy_name):
        """The headline accuracy claim over the full (strategy x
        bitwidth) matrix, not just VitBit at int8."""
        from repro.fusion import strategy_by_name

        cfg = ViTConfig(
            image_size=64, patch_size=16, hidden=32, depth=1, heads=2,
            mlp_dim=64, num_classes=10,
            activation_bits=bits, weight_bits=bits,
        )
        model = IntViT.create(cfg, seed=8)
        assert verify_bit_exact(
            model, strategy_by_name(strategy_name), batch=1, seed=9
        )

    def test_mixed_width_model(self):
        cfg = ViTConfig(
            image_size=64, patch_size=16, hidden=32, depth=1, heads=2,
            mlp_dim=64, num_classes=10,
            activation_bits=8, weight_bits=4,
        )
        model = IntViT.create(cfg, seed=5)
        assert verify_bit_exact(model, VITBIT, batch=1, seed=6)

    def test_invalid_bitwidths_rejected(self):
        with pytest.raises(ModelConfigError):
            ViTConfig(activation_bits=1)
        with pytest.raises(ModelConfigError):
            ViTConfig(weight_bits=9)

    def test_zero_point_tracks_bits(self):
        assert ViTConfig(activation_bits=4).activation_zero_point == 8
        assert ViTConfig().activation_zero_point == 128
