"""Unit tests for the shared utilities (tables, rng, validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, make_rng
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_dtype_integer,
    check_in_range,
    check_positive,
    check_shape_2d,
)


class TestTables:
    def test_alignment(self):
        out = format_table(["a", "long_header"], [(1, 2.5), (300, 4.125)])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_prepended(self):
        out = format_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [(1.23456,)], ndigits=2)
        assert "1.23" in out and "1.2345" not in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_series(self):
        out = format_series("name", ["x", "yy"], [1.0, 2.0])
        assert out.splitlines()[0] == "name"
        assert "yy" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", ["a"], [1.0, 2.0])


class TestRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=5)
        b = make_rng(DEFAULT_SEED).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_int_seed_deterministic(self):
        assert np.array_equal(
            make_rng(7).integers(0, 100, 10), make_rng(7).integers(0, 100, 10)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        check_in_range("x", 0, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)

    def test_check_dtype_integer(self):
        check_dtype_integer("x", np.array([1, 2]))
        with pytest.raises(TypeError):
            check_dtype_integer("x", np.array([1.0]))
        with pytest.raises(TypeError):
            check_dtype_integer("x", np.array([True]) + 0.5)

    def test_check_shape_2d(self):
        check_shape_2d("x", np.zeros((2, 3)))
        with pytest.raises(ValueError):
            check_shape_2d("x", np.zeros(3))
        with pytest.raises(ValueError):
            check_shape_2d("x", np.zeros((1, 2, 3)))
