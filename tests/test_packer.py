"""Unit + property tests for pack/unpack round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingError
from repro.packing import Packer, policy_for_bitwidth


@pytest.fixture(params=[2, 3, 4, 5, 6, 7, 8, 9, 12, 16])
def packer(request) -> Packer:
    return Packer(policy_for_bitwidth(request.param))


class TestPackBasics:
    def test_int8_pair_layout(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([0x12, 0x34]))
        # Lane 0 (first element) sits in the low field.
        assert packed.tolist() == [0x0034_0012]

    def test_int8_pair_layout_explicit(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([1, 2]))
        assert packed.tolist() == [(2 << 16) | 1]

    def test_int4_quad_layout(self):
        p = Packer(policy_for_bitwidth(4))
        packed = p.pack(np.array([1, 2, 3, 4]))
        assert packed.tolist() == [(4 << 24) | (3 << 16) | (2 << 8) | 1]

    def test_tail_zero_padded(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([7, 8, 9]))
        assert packed.shape == (2,)
        assert packed.tolist()[1] == 9  # lane 1 of last register is 0

    def test_output_dtype_uint32(self):
        p = Packer(policy_for_bitwidth(8))
        assert p.pack(np.array([1])).dtype == np.uint32

    def test_2d_packs_last_axis(self):
        p = Packer(policy_for_bitwidth(8))
        arr = np.arange(12).reshape(3, 4)
        packed = p.pack(arr)
        assert packed.shape == (3, 2)
        assert np.array_equal(p.unpack(packed, 4), arr)

    def test_scalar_rejected(self):
        with pytest.raises(PackingError):
            Packer(policy_for_bitwidth(8)).pack(np.int64(3))

    def test_negative_rejected(self):
        with pytest.raises(PackingError):
            Packer(policy_for_bitwidth(8)).pack(np.array([-1]))

    def test_oversized_rejected(self):
        with pytest.raises(PackingError):
            Packer(policy_for_bitwidth(8)).pack(np.array([256]))

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            Packer(policy_for_bitwidth(8)).pack(np.array([1.5]))


class TestUnpack:
    def test_unpack_count_trims(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([5, 6, 7]))
        assert p.unpack(packed, 3).tolist() == [5, 6, 7]

    def test_unpack_default_includes_padding(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([5, 6, 7]))
        assert p.unpack(packed).tolist() == [5, 6, 7, 0]

    def test_bad_count_rejected(self):
        p = Packer(policy_for_bitwidth(8))
        packed = p.pack(np.array([5]))
        with pytest.raises(PackingError):
            p.unpack(packed, 5)


class TestRoundtrip:
    def test_roundtrip_all_bitwidths(self, packer, rng):
        n = 257
        vals = rng.integers(0, packer.policy.max_value, size=n, endpoint=True)
        assert packer.roundtrip_exact(vals)

    def test_roundtrip_extremes(self, packer):
        vals = np.array([0, packer.policy.max_value] * 5)
        assert packer.roundtrip_exact(vals)

    def test_roundtrip_batch(self, packer, rng):
        vals = rng.integers(
            0, packer.policy.max_value, size=(4, 6, 10), endpoint=True
        )
        assert packer.roundtrip_exact(vals)


@settings(max_examples=200, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=16),
    data=st.data(),
)
def test_property_roundtrip(bits, data):
    """pack -> unpack is the identity for any in-range payload."""
    pol = policy_for_bitwidth(bits)
    n = data.draw(st.integers(min_value=1, max_value=64))
    vals = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=pol.max_value),
            min_size=n,
            max_size=n,
        )
    )
    p = Packer(pol)
    arr = np.array(vals, dtype=np.int64)
    assert np.array_equal(p.unpack(p.pack(arr), n), arr)


@settings(max_examples=100, deadline=None)
@given(bits=st.integers(min_value=1, max_value=16), n=st.integers(1, 100))
def test_property_register_count(bits, n):
    """Packing n values yields ceil(n / lanes) registers."""
    pol = policy_for_bitwidth(bits)
    p = Packer(pol)
    packed = p.pack(np.zeros(n, dtype=np.int64))
    assert packed.shape == (-(-n // pol.lanes),)
