"""Tests for the QoS co-run prediction model."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import ScheduleError
from repro.fusion import FC, IC, TC
from repro.fusion.qos import (
    QosAdmission,
    pipe_signature,
    predict_corun,
)
from repro.packing import policy_for_bitwidth
from repro.perfmodel import ELEMENTWISE_KERNELS, CostParams, GemmShape
from repro.perfmodel.warpsets import elementwise_launch, gemm_launch
from repro.sim.instruction import OpClass


@pytest.fixture(scope="module")
def machine():
    return jetson_orin_agx()


@pytest.fixture(scope="module")
def launches(machine):
    pol = policy_for_bitwidth(8)
    params = CostParams(target_sim_instructions=12_000)
    shape = GemmShape(512, 1024, 512)
    return {
        "tc": gemm_launch(shape, TC, machine, pol, params, 4.0),
        "ic": gemm_launch(shape, IC, machine, pol, params, 0.0),
        "fc": gemm_launch(shape, FC, machine, pol, params, 0.0),
        "softmax": elementwise_launch(
            ELEMENTWISE_KERNELS["softmax"], 1_000_000, IC, machine, pol, params
        ),
    }


class TestSignature:
    def test_ic_gemm_saturates_int_pipe(self, machine, launches):
        sig = pipe_signature(machine, launches["ic"])
        assert sig.pipes[OpClass.INT] == pytest.approx(1.0, abs=0.12)
        assert sig.pipes.get(OpClass.FP, 0.0) == 0.0

    def test_tc_gemm_saturates_tensor_pipe(self, machine, launches):
        sig = pipe_signature(machine, launches["tc"])
        assert sig.pipes[OpClass.TENSOR] == pytest.approx(1.0, abs=0.15)
        assert sig.issue < 0.3

    def test_demand_lookup(self, machine, launches):
        sig = pipe_signature(machine, launches["ic"])
        assert sig.demand("issue") == sig.issue
        assert sig.demand("dram") == sig.dram
        assert sig.demand(OpClass.INT) > 0
        with pytest.raises(ScheduleError):
            sig.demand("cache")

    def test_solo_seconds_positive(self, machine, launches):
        assert pipe_signature(machine, launches["softmax"]).solo_seconds > 0


class TestPrediction:
    def test_disjoint_pipes_predict_no_slowdown_beyond_issue(
        self, machine, launches
    ):
        sa = pipe_signature(machine, launches["ic"])
        sb = pipe_signature(machine, launches["fc"])
        slowdown, _ = predict_corun(sa, sb)
        # INT and FP pipes are disjoint; issue slots are the only
        # shared resource, and neither kernel saturates them alone.
        assert slowdown < 1.8

    def test_same_pipe_predicts_double(self, machine, launches):
        sa = pipe_signature(machine, launches["ic"])
        slowdown, _ = predict_corun(sa, sa)
        assert slowdown == pytest.approx(2.0, abs=0.25)

    def test_prediction_matches_simulation(self, machine, launches):
        """Tacker's claim, reproduced: the analytic prediction lands
        near the simulated co-run slowdown."""
        adm = QosAdmission(machine)
        for pair in (("ic", "fc"), ("ic", "softmax"), ("tc", "softmax")):
            predicted, simulated = adm.validate(
                launches[pair[0]], launches[pair[1]]
            )
            assert predicted == pytest.approx(simulated, rel=0.25), pair


class TestAdmission:
    def test_complementary_pair_admitted(self, machine, launches):
        adm = QosAdmission(machine, qos_slowdown=1.5)
        assert adm.admit(launches["tc"], launches["softmax"])

    def test_colliding_pair_rejected(self, machine, launches):
        adm = QosAdmission(machine, qos_slowdown=1.3)
        assert not adm.admit(launches["ic"], launches["ic"])

    def test_loose_target_admits_everything(self, machine, launches):
        adm = QosAdmission(machine, qos_slowdown=3.0)
        assert adm.admit(launches["ic"], launches["ic"])

    def test_invalid_target_rejected(self, machine):
        with pytest.raises(ScheduleError):
            QosAdmission(machine, qos_slowdown=0.5)
