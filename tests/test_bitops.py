"""Unit tests for repro.utils.bitops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.utils.bitops import (
    bit_length_unsigned,
    field_mask,
    lane_masks,
    max_signed,
    max_unsigned,
    min_signed,
    sign_extend,
)


class TestRanges:
    def test_max_unsigned(self):
        assert max_unsigned(1) == 1
        assert max_unsigned(8) == 255
        assert max_unsigned(32) == 0xFFFFFFFF

    def test_max_signed(self):
        assert max_signed(8) == 127
        assert max_signed(2) == 1

    def test_min_signed(self):
        assert min_signed(8) == -128
        assert min_signed(2) == -2

    @pytest.mark.parametrize("fn", [max_unsigned, max_signed, min_signed])
    def test_zero_bits_rejected(self, fn):
        with pytest.raises(FormatError):
            fn(0)

    @given(st.integers(min_value=1, max_value=63))
    def test_signed_range_is_symmetric_plus_one(self, bits):
        assert min_signed(bits) == -(max_signed(bits) + 1)


class TestMasks:
    def test_field_mask(self):
        assert field_mask(8) == 0xFF
        assert field_mask(16) == 0xFFFF

    def test_lane_masks_int8_pair(self):
        assert lane_masks(16, 2) == [0xFFFF, 0xFFFF0000]

    def test_lane_masks_int4_quad(self):
        masks = lane_masks(8, 4)
        assert masks == [0xFF, 0xFF00, 0xFF0000, 0xFF000000]

    def test_lane_masks_disjoint(self):
        masks = lane_masks(10, 3)
        combined = 0
        for m in masks:
            assert combined & m == 0
            combined |= m

    def test_lane_masks_overflow_rejected(self):
        with pytest.raises(FormatError):
            lane_masks(16, 3)

    def test_lane_masks_zero_lanes_rejected(self):
        with pytest.raises(FormatError):
            lane_masks(8, 0)


class TestBitLength:
    def test_empty_needs_one_bit(self):
        assert bit_length_unsigned(np.array([], dtype=np.int64)) == 1

    def test_zero_needs_one_bit(self):
        assert bit_length_unsigned(np.zeros(5, dtype=np.int64)) == 1

    def test_255_needs_eight_bits(self):
        assert bit_length_unsigned(np.array([255])) == 8

    def test_256_needs_nine_bits(self):
        assert bit_length_unsigned(np.array([3, 256, 7])) == 9

    def test_negative_rejected(self):
        with pytest.raises(FormatError):
            bit_length_unsigned(np.array([-1]))

    @given(st.integers(min_value=0, max_value=2**40))
    def test_matches_python_bit_length(self, v):
        expected = max(1, v.bit_length())
        assert bit_length_unsigned(np.array([v])) == expected


class TestSignExtend:
    def test_int8_minus_one(self):
        assert sign_extend(np.array([0xFF]), 8).tolist() == [-1]

    def test_int8_min(self):
        assert sign_extend(np.array([0x80]), 8).tolist() == [-128]

    def test_positive_passthrough(self):
        assert sign_extend(np.array([0x7F]), 8).tolist() == [127]

    def test_bits_out_of_range(self):
        with pytest.raises(FormatError):
            sign_extend(np.array([1]), 64)

    @given(
        st.integers(min_value=2, max_value=32),
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
    )
    def test_roundtrip_via_twos_complement(self, bits, value):
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        value = max(lo, min(hi, value))
        raw = value & ((1 << bits) - 1)
        assert sign_extend(np.array([raw]), bits).tolist() == [value]
