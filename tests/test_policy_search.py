"""The packing-policy search: oracle admissibility, table round-trip,
deterministic reruns, and the resolver knob.

The search's contract is *soundness first*: no layout reaches the
learned table unless the interval overflow prover proves its
accumulation plan, and every refuted plan keeps its concrete witness.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import FormatError, PackingError
from repro.packing import policy_for_bitwidth
from repro.packing.search import (
    PolicyTable,
    active_policy_table,
    clear_policy_table,
    enumerate_layouts,
    install_policy_table,
    prove_plans,
    resolve_policy,
    search_policies,
)
from repro.perfmodel import TimingCache
from repro.sim.smsim import clear_partition_memo


@pytest.fixture(autouse=True)
def _no_installed_table():
    """Each test starts and ends with no table installed."""
    clear_policy_table()
    yield
    clear_policy_table()


@pytest.fixture
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
    TimingCache.reset_default()
    clear_partition_memo()
    yield
    TimingCache.reset_default()


class TestEnumeration:
    def test_every_lane_count_that_fits_a_value(self):
        layouts = enumerate_layouts(8, 8)
        assert (1, 32) in layouts and (2, 16) in layouts
        assert max(lanes for lanes, _ in layouts) == 4  # 32 // 8

    def test_one_bit_values_enumerate_past_the_mixed_rule(self):
        lanes = [la for la, _ in enumerate_layouts(8, 1)]
        assert max(lanes) == 32  # the rule would stop at 32 // 9 = 3


class TestProverOracle:
    def test_known_unsafe_8x8_deep_k_plan_is_refuted_with_witness(self):
        """The canonical bad plan: 2-lane int8 at K=4096 without
        spilling overflows at depth 2 with all-255 operands."""
        outcomes = prove_plans(8, 8, k=4096)
        bad = next(
            o for o in outcomes
            if o.lanes == 2 and o.chunk_depth is None
        )
        assert bad.status == "refuted"
        assert bad.witness is not None
        assert bad.witness["scalar"] == 255
        assert bad.witness["depth"] == 2
        assert bad.max_safe_depth == 1

    def test_chunked_counterpart_of_the_bad_plan_is_proven(self):
        outcomes = prove_plans(8, 8, k=4096)
        good = next(
            o for o in outcomes if o.lanes == 2 and o.chunk_depth == 1
        )
        assert good.status == "proven"

    def test_infeasible_layouts_carry_the_product_width(self):
        outcomes = prove_plans(8, 8, k=64)
        infeasible = [o for o in outcomes if o.status == "infeasible"]
        assert infeasible, "4-lane int8 (8-bit fields) must be infeasible"
        assert all(o.witness is None for o in infeasible)
        assert all("16 bits" in o.reason for o in infeasible)

    def test_single_lane_plans_prove_at_vit_depths(self):
        outcomes = prove_plans(8, 8, k=768)
        solo = next(o for o in outcomes if o.lanes == 1)
        assert solo.status == "proven"
        assert solo.chunk_depth is None

    def test_exact_fit_one_bit_layouts_are_enumerable_and_judged(self):
        """(8,1) at 4 lanes x 8-bit fields exactly fits its product —
        the old sum-of-widths constructor check would have rejected it."""
        outcomes = prove_plans(8, 1, k=768)
        four = [o for o in outcomes if o.lanes == 4]
        assert four and all(o.status != "infeasible" for o in four)
        assert any(o.status == "proven" for o in four)


class TestSearchAndTable:
    def test_only_proven_layouts_reach_the_table(self, isolated_cache):
        result = search_policies(
            pairs=((8, 4), (8, 2)), k=128, processes=1
        )
        assert set(result.table.entries) == {"a8b4", "a8b2"}
        assert result.table.reverify() == {}
        proven_keys = {
            o.layout_key for o in result.outcomes if o.status == "proven"
        }
        for pair, e in result.table.entries.items():
            assert f"{pair}L{e['lanes']}f{e['field_bits']}" in proven_keys

    def test_counters_partition_the_candidates(self, isolated_cache):
        result = search_policies(pairs=((4, 4),), k=64, processes=1)
        c = result.counters
        assert c["candidates"] == len(result.outcomes)
        assert c["proven"] + c["refuted"] == c["candidates"]
        assert c["priced"] >= 1

    def test_round_trip_identical_policies(self, isolated_cache, tmp_path):
        result = search_policies(pairs=((8, 4), (4, 4)), k=128, processes=1)
        path = result.table.save(tmp_path / "table.json")
        loaded = PolicyTable.load(path)
        assert loaded.to_json() == result.table.to_json()
        for e in result.table.entries.values():
            a, b = e["a_bits"], e["b_bits"]
            assert loaded.policy_for(a, b) == result.table.policy_for(a, b)

    def test_same_seed_rerun_is_byte_identical_with_zero_simulations(
        self, isolated_cache
    ):
        pairs = ((8, 4), (2, 8))
        cold = search_policies(pairs=pairs, k=128, processes=1)
        assert cold.sweep_simulations > 0  # the cache really was cold
        clear_partition_memo()
        TimingCache.reset_default()  # fresh counters, same disk dir
        warm = search_policies(pairs=pairs, k=128, processes=1)
        assert warm.sweep_simulations == 0
        assert warm.table.to_json() == cold.table.to_json()

    def test_load_missing_table_is_actionable(self, tmp_path):
        with pytest.raises(PackingError, match="repro search"):
            PolicyTable.load(tmp_path / "nope.json")

    def test_load_unreadable_table(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(PackingError, match="unreadable"):
            PolicyTable.load(bad)

    def test_from_dict_requires_entries(self):
        with pytest.raises(PackingError, match="entries"):
            PolicyTable.from_dict({"meta": {}})

    def test_reverify_flags_a_tampered_entry(self, isolated_cache):
        result = search_policies(pairs=((8, 4),), k=128, processes=1)
        table = PolicyTable.from_dict(
            json.loads(result.table.to_json())
        )
        table.entries["a8b4"]["chunk_depth"] = 10**6  # beyond any proof
        failures = table.reverify()
        assert "a8b4" in failures


class TestResolver:
    def test_default_is_the_static_rule(self):
        assert resolve_policy(8, 8) == policy_for_bitwidth(8)
        assert active_policy_table() is None

    def test_installed_table_wins_and_clears(self, isolated_cache):
        result = search_policies(pairs=((1, 8),), k=768, processes=1)
        install_policy_table(result.table)
        learned = resolve_policy(1, 8)
        assert learned == result.table.policy_for(1, 8)
        assert learned.lanes > policy_for_bitwidth(8).lanes  # denser
        # Uncovered pairs still fall through to the rules.
        assert resolve_policy(8, 8) == policy_for_bitwidth(8)
        clear_policy_table()
        assert active_policy_table() is None

    def test_env_knob_loads_lazily_once(
        self, isolated_cache, tmp_path, monkeypatch
    ):
        result = search_policies(pairs=((8, 4),), k=128, processes=1)
        path = result.table.save(tmp_path / "t.json")
        monkeypatch.setenv("REPRO_POLICY_TABLE", str(path))
        clear_policy_table()  # re-arm the env lookup
        assert resolve_policy(8, 4) == result.table.policy_for(8, 4)
        # The table was cached; mutating the env now has no effect
        # until the next clear (one load per install, deterministic).
        monkeypatch.setenv("REPRO_POLICY_TABLE", str(tmp_path / "gone.json"))
        assert resolve_policy(8, 4) == result.table.policy_for(8, 4)

    def test_default_argument_overrides_the_rules(self):
        custom = policy_for_bitwidth(8, cap_lanes=1)
        assert resolve_policy(8, 8, default=custom) == custom


class TestConstructorHardening:
    """Satellite regression: unsafe-but-representable layouts must fail
    at construction with the offending product width in the message."""

    def test_policy_for_operands_rejects_oversized_single_lane(self):
        from repro.packing import policy_for_operands

        with pytest.raises(FormatError, match="36 bits"):
            policy_for_operands(20, 16)

    def test_exact_fit_single_lane_pairs_still_construct(self):
        from repro.packing import policy_for_operands

        assert policy_for_operands(16, 16).lanes == 1
        assert policy_for_operands(1, 32).lanes == 1

    def test_multi_lane_exact_product_check(self):
        from repro.packing import PackingPolicy

        # 8x1 products need 8 bits: 4 lanes of 8-bit fields are exact.
        p = PackingPolicy(
            value_bits=1, lanes=4, field_bits=8, multiplier_bits=8
        )
        assert p.product_bits == 9  # conservative a+b, used for guards
        with pytest.raises(FormatError, match="16 bits"):
            PackingPolicy(value_bits=8, lanes=3, field_bits=10,
                          multiplier_bits=8)
