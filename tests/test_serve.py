"""Tests for the batched inference serving layer (`repro.serve`).

Everything runs on the :class:`SimulatedClock`, so these tests advance
hundreds of simulated milliseconds in a few host milliseconds and are
bit-deterministic: the same seed produces the same latency
distribution on every run.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import AdmissionError, ServeError
from repro.fusion.qos import BATCH, INTERACTIVE, STANDARD, qos_class
from repro.serve import (
    BoundedRequestQueue,
    InferenceRequest,
    InferenceService,
    LoadSpec,
    RequestStatus,
    ServeConfig,
    SimulatedClock,
    batch_palette,
    generate_requests,
    run_load,
)


@pytest.fixture(scope="module")
def machine():
    return jetson_orin_agx()


# ---------------------------------------------------------------------------
# clock


class TestSimulatedClock:
    def test_sleep_advances_virtual_time_only(self):
        clock = SimulatedClock()

        async def main():
            await clock.sleep(1.5)
            return clock.now()

        assert clock.run(main()) == pytest.approx(1.5)

    def test_interleaved_sleepers_fire_in_order(self):
        clock = SimulatedClock()
        order = []

        async def sleeper(name, delay):
            await clock.sleep(delay)
            order.append((name, clock.now()))

        async def main():
            await asyncio.gather(
                sleeper("c", 0.3), sleeper("a", 0.1), sleeper("b", 0.2)
            )

        clock.run(main())
        assert [n for n, _ in order] == ["a", "b", "c"]
        assert [t for _, t in order] == pytest.approx([0.1, 0.2, 0.3])

    def test_deadlock_detected_not_hung(self):
        clock = SimulatedClock()

        async def main():
            await asyncio.get_running_loop().create_future()  # never resolved

        with pytest.raises(ServeError, match="deadlock"):
            clock.run(main())


# ---------------------------------------------------------------------------
# queue


class TestBoundedQueue:
    def test_backpressure_raises_admission_error(self):
        clock = SimulatedClock()
        q = BoundedRequestQueue(2, clock)
        q.put_nowait("a")
        q.put_nowait("b")
        with pytest.raises(AdmissionError, match="queue full"):
            q.put_nowait("c")

    def test_fifo_and_close(self):
        clock = SimulatedClock()
        q = BoundedRequestQueue(8, clock)

        async def main():
            q.put_nowait("a")
            q.put_nowait("b")
            first = await q.get()
            second = await q.get()
            q.close()
            third = await q.get()  # drained + closed -> None
            return first, second, third

        assert clock.run(main()) == ("a", "b", None)

    def test_peek_and_take_preserve_order(self):
        clock = SimulatedClock()
        q = BoundedRequestQueue(8, clock)

        async def main():
            for x in ["a1", "b1", "a2", "b2"]:
                q.put_nowait(x)
            picked = q.peek_matching(lambda s: s.startswith("a"), limit=8)
            q.take(picked)
            return picked, list(q._items)

        picked, left = clock.run(main())
        assert picked == ["a1", "a2"]
        assert left == ["b1", "b2"]


# ---------------------------------------------------------------------------
# batching palette


def test_batch_palette_powers_of_two_inclusive():
    assert batch_palette(32) == (1, 2, 4, 8, 16, 32)
    assert batch_palette(24) == (1, 2, 4, 8, 16, 24)
    assert batch_palette(1) == (1,)
    with pytest.raises(ServeError):
        batch_palette(0)


# ---------------------------------------------------------------------------
# service


def _serve(machine, config, requests):
    """Run a list of (arrival, request) through a fresh service."""
    clock = SimulatedClock()
    service = InferenceService(machine, config, clock)

    async def main():
        await service.start()
        futures = []
        for arrival, req in requests:
            delay = arrival - clock.now()
            if delay > 0:
                await clock.sleep(delay)
            futures.append(service.submit_nowait(req))
        results = await asyncio.gather(*futures)
        await service.stop()
        return list(results)

    return service, clock.run(main())


class TestInferenceService:
    def test_single_request_completes(self, machine):
        service, results = _serve(
            machine,
            ServeConfig(),
            [(0.0, InferenceRequest(0, model="test-tiny", qos=STANDARD))],
        )
        (r,) = results
        assert r.status is RequestStatus.COMPLETED
        assert r.latency_seconds > 0
        assert not r.fallback
        assert service.stats.batches == 1

    def test_compatible_requests_batch_together(self, machine):
        reqs = [
            (0.0, InferenceRequest(i, model="test-tiny", qos=BATCH))
            for i in range(4)
        ]
        service, results = _serve(machine, ServeConfig(), reqs)
        assert all(r.status is RequestStatus.COMPLETED for r in results)
        # all four arrived before the batch window closed -> one batch
        assert service.stats.batches == 1
        assert results[0].batch_size == 4

    def test_mixed_bitwidths_never_share_a_batch(self, machine):
        reqs = [
            (0.0, InferenceRequest(0, model="test-tiny", bits=8, qos=BATCH)),
            (0.0, InferenceRequest(1, model="test-tiny", bits=4, qos=BATCH)),
        ]
        service, results = _serve(machine, ServeConfig(), reqs)
        assert all(r.ok for r in results)
        assert service.stats.batches == 2
        assert all(r.batch_size == 1 for r in results)

    def test_queue_full_rejects_with_result_not_exception(self, machine):
        config = ServeConfig(max_queue=1, max_batch=1, batch_window_seconds=0.0)
        reqs = [
            (0.0, InferenceRequest(i, model="test-tiny", qos=BATCH))
            for i in range(12)
        ]
        service, results = _serve(machine, config, reqs)
        rejected = [r for r in results if r.status is RequestStatus.REJECTED]
        completed = [r for r in results if r.ok]
        assert rejected and completed
        assert service.stats.rejected_queue_full == len(rejected)
        assert all("queue full" in r.detail for r in rejected)

    def test_infeasible_deadline_rejected_at_admission(self, machine):
        # vit-base cannot finish in 1 microsecond even solo.
        req = InferenceRequest(0, qos=STANDARD, deadline_seconds=1e-6)
        service, results = _serve(machine, ServeConfig(), [(0.0, req)])
        (r,) = results
        assert r.status is RequestStatus.REJECTED
        assert "infeasible deadline" in r.detail
        assert service.stats.rejected_infeasible == 1

    def test_deadline_expiry_while_queued(self, machine):
        # One worker, zero batch window: a long batch-class request heads
        # the queue; a tight-deadline request behind it expires unserved.
        config = ServeConfig(
            max_batch=1, batch_window_seconds=0.0, admission_deadline_check=False
        )
        tight = InferenceRequest(1, model="test-tiny", qos=INTERACTIVE,
                                 deadline_seconds=1e-4)
        reqs = [
            (0.0, InferenceRequest(0, model="test-tiny", qos=BATCH)),
            (0.0, tight),
        ]
        service, results = _serve(machine, config, reqs)
        statuses = {r.request_id: r.status for r in results}
        assert statuses[0] is RequestStatus.COMPLETED
        assert statuses[1] is RequestStatus.EXPIRED
        assert service.stats.expired == 1

    def test_injected_refutation_degrades_not_fails(self, machine):
        config = ServeConfig(inject_refute_bits=frozenset({8}))
        reqs = [
            (0.0, InferenceRequest(i, model="test-tiny", qos=BATCH))
            for i in range(4)
        ]
        service, results = _serve(machine, config, reqs)
        assert all(r.status is RequestStatus.COMPLETED for r in results)
        assert all(r.fallback for r in results)
        assert all("injected refutation" in r.detail for r in results)
        # VitBit (TC+IC+FC+P) degrades to the Tensor-only baseline.
        assert results[0].strategy == "TC"
        assert service.stats.fallback_requests == 4
        assert service.stats.fallback_batches == 1
        assert service.stats.failed == 0

    def test_refutation_is_per_bitwidth(self, machine):
        config = ServeConfig(inject_refute_bits=frozenset({4}))
        reqs = [
            (0.0, InferenceRequest(0, model="test-tiny", bits=8, qos=BATCH)),
            (0.0, InferenceRequest(1, model="test-tiny", bits=4, qos=BATCH)),
        ]
        _, results = _serve(machine, config, reqs)
        by_id = {r.request_id: r for r in results}
        assert not by_id[0].fallback and by_id[0].strategy == "VitBit"
        assert by_id[1].fallback and by_id[1].strategy == "TC"


# ---------------------------------------------------------------------------
# load generation and the end-to-end benchmark


class TestLoadgen:
    def test_schedule_is_deterministic(self):
        spec = LoadSpec(requests=20, seed=42)
        s1, s2 = generate_requests(spec), generate_requests(spec)
        assert [(a, r.bits, r.qos.name) for a, r in s1] == [
            (a, r.bits, r.qos.name) for a, r in s2
        ]

    def test_unknown_qos_rejected(self):
        from repro.errors import ScheduleError

        with pytest.raises(ServeError, match="unknown QoS class"):
            LoadSpec(qos_mix=(("warp-speed", 1.0),))
        with pytest.raises(ScheduleError, match="unknown QoS class"):
            qos_class("warp-speed")

    def test_run_load_end_to_end_deterministic(self, machine):
        spec = LoadSpec(requests=40, rate_per_s=500.0, seed=9, model="test-tiny")
        r1 = run_load(machine, ServeConfig(), spec)
        r2 = run_load(machine, ServeConfig(), spec)
        s1, s2 = r1.to_summary(), r2.to_summary()
        s1.pop("wall_seconds")
        s2.pop("wall_seconds")
        assert s1 == s2
        assert s1["failed"] == 0 and s1["unhandled_errors"] == 0
        assert s1["completed"] + s1["rejected"] + s1["expired"] == 40
        assert s1["latency_ms"]["overall"]["p50"] > 0

    def test_summary_merges_into_existing_file(self, machine, tmp_path):
        import json

        out = tmp_path / "summary.json"
        out.write_text(json.dumps({"benches": {"keep": 1}}))
        spec = LoadSpec(requests=10, rate_per_s=500.0, seed=1, model="test-tiny")
        report = run_load(machine, ServeConfig(), spec)
        report.write_summary(out)
        data = json.loads(out.read_text())
        assert data["benches"] == {"keep": 1}  # pre-existing keys survive
        assert data["serve"]["requests"] == 10
        assert report.render()  # renders without error


# ---------------------------------------------------------------------------
# retry accounting, cancellation and crash-abort (the cluster's hooks)


class TestRetryAccounting:
    def _pending(self, request_id=0):
        from repro.serve.service import _Pending

        return _Pending(
            InferenceRequest(request_id=request_id, model="vit-base", bits=8),
            asyncio.get_running_loop().create_future(),
            0.0,
        )

    def test_accepted_requeue_counts_one_retry(self, machine):
        clock = SimulatedClock()
        service = InferenceService(machine, ServeConfig(max_retries=1), clock)

        async def main():
            pending = self._pending()
            service._retry_or_fail(pending, ServeError("transient"))
            return pending

        pending = clock.run(main())
        assert not pending.future.done()  # requeued, not failed
        assert pending.retries == 1
        assert service.stats.retries == 1
        assert len(service.queue) == 1

    def test_rejected_requeue_fails_with_accurate_count(self, machine):
        """A requeue bounced by a full queue must not bump the retry
        counters, and the failure result reports the true count."""
        clock = SimulatedClock()
        service = InferenceService(
            machine, ServeConfig(max_queue=1, max_retries=3), clock
        )

        async def main():
            service.queue.put_nowait(self._pending(90))  # fill to capacity
            pending = self._pending()
            service._retry_or_fail(pending, ServeError("transient"))
            return pending

        pending = clock.run(main())
        result = pending.future.result()
        assert result.status is RequestStatus.FAILED
        assert result.retries == 0  # never actually retried
        assert pending.retries == 0
        assert service.stats.retries == 0
        assert service.stats.failed == 1


class TestAbortAndCancel:
    def test_abort_fails_queued_and_inflight_deterministically(self, machine):
        """abort() resolves every pending future as FAILED and returns
        the lost requests in a stable order."""
        clock = SimulatedClock()
        service = InferenceService(machine, ServeConfig(), clock)

        async def main():
            await service.start()
            futs = [
                service.submit_nowait(
                    InferenceRequest(request_id=i, model="vit-base", bits=8)
                )
                for i in range(5)
            ]
            await clock.sleep(0.001)  # a worker picks up the head
            lost = service.abort("replica crashed: test")
            results = await asyncio.gather(*futs)
            return lost, results

        lost, results = clock.run(main())
        # Queued requests first (FIFO), then in-flight ones in sorted
        # order — the head (id 0) was already picked up by a worker.
        assert [r.request_id for r in lost] == [1, 2, 3, 4, 0]
        assert all(r.status is RequestStatus.FAILED for r in results)
        assert all("crashed" in r.detail for r in results)
        assert service.stats.aborted == 5
        assert service.aborted
        assert service.abort() == []  # idempotent

    def test_cancel_queued_only_hits_waiting_requests(self, machine):
        clock = SimulatedClock()
        service = InferenceService(machine, ServeConfig(), clock)

        async def main():
            # No workers started: everything stays queued.
            fut = service.submit_nowait(
                InferenceRequest(request_id=7, model="vit-base", bits=8)
            )
            assert service.cancel_queued(7) is True
            assert service.cancel_queued(7) is False  # already resolved
            assert service.cancel_queued(999) is False  # never existed
            return fut

        fut = clock.run(main())
        result = fut.result()
        assert result.status is RequestStatus.CANCELLED
        assert service.stats.cancelled == 1
        assert len(service.queue) == 0

    def test_pause_resume_gates_dispatch(self, machine):
        clock = SimulatedClock()
        service = InferenceService(machine, ServeConfig(), clock)

        async def main():
            await service.start()
            service.pause()
            fut = service.submit_nowait(
                InferenceRequest(request_id=0, model="test-tiny", bits=8)
            )
            await clock.sleep(0.05)
            still_pending = not fut.done()
            service.resume()
            result = await fut
            await service.stop()
            return still_pending, result

        still_pending, result = clock.run(main())
        assert still_pending  # nothing dispatched while paused
        assert result.status is RequestStatus.COMPLETED
