"""Tests for the ``python -m repro`` command line."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.errors import ModelConfigError
from repro.vit.zoo import MODEL_ZOO, model_config


class TestZoo:
    def test_all_models_valid(self):
        for name, cfg in MODEL_ZOO.items():
            assert cfg.tokens > 0, name

    def test_lookup_case_insensitive(self):
        assert model_config("ViT-Base") is MODEL_ZOO["vit-base"]

    def test_unknown_model(self):
        with pytest.raises(ModelConfigError):
            model_config("resnet50")

    def test_vit_base_is_table2(self):
        cfg = model_config("vit-base")
        assert (cfg.hidden, cfg.depth) == (768, 12)


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Tensor Core" in out and "INT32" in out

    def test_policy_all(self, capsys):
        assert main(["policy"]) == 0
        assert "values/reg" in capsys.readouterr().out

    def test_policy_single(self, capsys):
        assert main(["policy", "--bits", "8"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") < 8  # one data row

    def test_study(self, capsys):
        assert main(["study", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "m = 4" in out

    def test_fig5_small_model(self, capsys):
        assert main(["fig5", "--model", "deit-tiny", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "VitBit" in out

    def test_verify_tiny(self, capsys):
        assert main(["verify", "--model", "test-tiny"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_energy(self, capsys):
        assert main(["energy", "--batch", "4"]) == 0
        assert "mJ" in capsys.readouterr().out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        assert "vit-base" in capsys.readouterr().out

    def test_render(self, capsys):
        assert main(["render", "--bits", "4", "--columns", "100"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void vitbit_gemm(" in out
        assert "4 MACs" in out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "--strategy", "TC", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "fc1" in out

    def test_bench(self, capsys, tmp_path, monkeypatch):
        from repro.perfmodel import TimingCache

        monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
        TimingCache.reset_default()
        try:
            assert main(
                ["bench", "--model", "test-tiny", "--batch", "1",
                 "--processes", "1"]
            ) == 0
            out = capsys.readouterr().out
            assert "cache hit rate" in out and "VitBit" in out
            assert "timing cache:" in out
        finally:
            TimingCache.reset_default()

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_policy_table_flag_sets_env(self, tmp_path):
        import os

        from repro.packing.search import POLICY_TABLE_ENV_VAR

        assert POLICY_TABLE_ENV_VAR not in os.environ
        try:
            # Any cheap subcommand works; the flag is global.
            assert main(["--policy-table", str(tmp_path / "t.json"),
                         "models"]) == 0
            assert os.environ.get(POLICY_TABLE_ENV_VAR) == str(
                tmp_path / "t.json"
            )
        finally:
            os.environ.pop(POLICY_TABLE_ENV_VAR, None)


class TestWhatifCli:
    def test_list_backends(self, capsys):
        assert main(["whatif", "--list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("orin-agx", "ten-four", "camp-lv", "orin-rfc"):
            assert name in out

    def test_single_backend_writes_summary_section(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.perfmodel import TimingCache

        monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
        TimingCache.reset_default()
        summary = tmp_path / "summary.json"
        try:
            assert main(
                ["whatif", "--backend", "orin-agx", "--model", "test-tiny",
                 "--batch", "1", "--processes", "1",
                 "--summary", str(summary)]
            ) == 0
            out = capsys.readouterr().out
            assert "global Pareto" in out
            doc = json.loads(summary.read_text())["whatif_backends"]
            assert set(doc["backends"]) == {"orin-agx"}
            assert doc["backends"]["orin-agx"]["pareto"]
        finally:
            TimingCache.reset_default()

    def test_unknown_backend_exits_2_listing_choices(self, capsys):
        assert main(["whatif", "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "orin-agx" in err

    def test_serve_unknown_backend_exits_2(self, capsys):
        assert main(["serve", "--backend", "bogus", "--requests", "5"]) == 2
        assert "bogus" in capsys.readouterr().err


class TestMetricsCli:
    """`repro metrics` must degrade with actionable messages, never a
    traceback, for every malformed-summary shape."""

    def test_missing_summary_is_actionable(self, capsys, tmp_path):
        assert main(["metrics", "--summary", str(tmp_path / "none.json")]) == 1
        out = capsys.readouterr().out
        assert "no summary" in out
        assert "repro serve" in out

    def test_unreadable_summary(self, capsys, tmp_path):
        p = tmp_path / "summary.json"
        p.write_text("{truncated", encoding="utf-8")
        assert main(["metrics", "--summary", str(p)]) == 1
        assert "unreadable" in capsys.readouterr().out

    def test_non_object_summary_no_traceback(self, capsys, tmp_path):
        """Regression: a top-level JSON array used to crash with
        AttributeError('list' has no 'get') before any message."""
        p = tmp_path / "summary.json"
        p.write_text("[1, 2, 3]", encoding="utf-8")
        assert main(["metrics", "--summary", str(p)]) == 1
        out = capsys.readouterr().out
        assert "not a summary object" in out and "list" in out

    def test_metrics_less_summary(self, capsys, tmp_path):
        p = tmp_path / "summary.json"
        p.write_text('{"benches": {}}', encoding="utf-8")
        assert main(["metrics", "--summary", str(p)]) == 1
        assert "metrics" in capsys.readouterr().out

    def test_non_dict_metrics_section(self, capsys, tmp_path):
        p = tmp_path / "summary.json"
        p.write_text('{"metrics": [1]}', encoding="utf-8")
        assert main(["metrics", "--summary", str(p)]) == 1
        assert "metrics" in capsys.readouterr().out


class TestAnalyze:
    def test_overflowing_plan_fails_with_witness(self, capsys):
        assert main(["analyze", "--bits", "8", "--k", "4096"]) == 1
        out = capsys.readouterr().out
        assert "VB101" in out and "OVERFLOW" in out
        assert "scalar=255" in out  # the concrete witness

    def test_chunked_plan_passes(self, capsys):
        assert main(["analyze", "--bits", "8", "--k", "4096", "--chunk", "0"]) == 0
        assert "SAFE" in capsys.readouterr().out

    def test_self_check_passes(self, capsys):
        assert main(["analyze", "--self-check"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_bare_analyze_runs_self_check(self, capsys):
        assert main(["analyze"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_is_clean(self, capsys):
        assert main(["analyze", "--lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_strategy_schedules_are_clean(self, capsys):
        for name in ("TC", "Tacker", "VitBit"):
            assert main(["analyze", "--strategy", name, "--batch", "4"]) == 0

    def test_dataflow_sweep_is_clean_and_writes_table(self, capsys, tmp_path):
        summary = str(tmp_path / "summary.json")
        assert main(["analyze", "--dataflow", "--summary", summary]) == 0
        out = capsys.readouterr().out
        assert "SAFE" in out and "REFUTED" not in out
        import json

        table = json.loads(open(summary).read())["safe_depths"]
        assert "a8b4x2" in table and table["a8b4x2"]["cross_checked"]

    def test_dataflow_refutes_known_bad_plan_as_json(self, capsys):
        code = main(
            [
                "analyze",
                "--dataflow",
                "--a-bits",
                "8",
                "--b-bits",
                "8",
                "--lanes",
                "2",
                "--k",
                "4096",
                "--format",
                "json",
            ]
        )
        assert code == 1
        import json

        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "VB110" in codes
        witness = next(
            d for d in payload["diagnostics"] if d["code"] == "VB110"
        )["data"]["witness"]
        assert witness["scalar"] == 255 and witness["depth"] == 2
        assert payload["exit_code"] == 1

    def test_dataflow_single_plan_chunked_is_safe(self, capsys):
        assert (
            main(["analyze", "--dataflow", "--bits", "8", "--chunk", "0"]) == 0
        )
        assert "SAFE" in capsys.readouterr().out

    def test_json_format_applies_to_self_check(self, capsys):
        assert main(["analyze", "--self-check", "--format", "json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0
