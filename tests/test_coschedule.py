"""Tests for inter-kernel co-scheduling (the original Tacker form)."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import ScheduleError
from repro.fusion import IC, TC, co_schedule, throughput_gain
from repro.packing import policy_for_bitwidth
from repro.perfmodel import ELEMENTWISE_KERNELS, CostParams, GemmShape
from repro.perfmodel.warpsets import elementwise_launch, gemm_launch


@pytest.fixture(scope="module")
def machine():
    return jetson_orin_agx()


@pytest.fixture(scope="module")
def launches(machine):
    from repro.fusion import FC

    pol = policy_for_bitwidth(8)
    params = CostParams(target_sim_instructions=12_000)
    shape = GemmShape(512, 1024, 512)
    return {
        "tc_gemm": gemm_launch(shape, TC, machine, pol, params, 4.0),
        # INT-pipe-bound and FP-pipe-bound CUDA GEMMs: the perfectly
        # complementary pair for co-scheduling.
        "ic_gemm": gemm_launch(shape, IC, machine, pol, params, 0.0),
        "fc_gemm": gemm_launch(shape, FC, machine, pol, params, 0.0),
        "softmax": elementwise_launch(
            ELEMENTWISE_KERNELS["softmax"], 1_500_000, IC, machine, pol, params
        ),
        "gelu": elementwise_launch(
            ELEMENTWISE_KERNELS["gelu"], 1_500_000, IC, machine, pol, params
        ),
    }


class TestCoSchedule:
    def test_complementary_pipes_gain(self, machine, launches):
        """INT-pipe-bound + FP-pipe-bound kernels overlap well — the
        same physics as the paper's IC+FC, achieved across kernels."""
        r = co_schedule(machine, launches["ic_gemm"], launches["fc_gemm"])
        assert r.speedup > 1.2

    def test_tensor_plus_cuda_kernel_gains(self, machine, launches):
        """The original Tacker pairing: TC GEMM + CUDA elementwise."""
        r = co_schedule(machine, launches["tc_gemm"], launches["softmax"])
        assert r.speedup > 1.1

    def test_colliding_kernels_do_not_gain(self, machine, launches):
        """Two INT-pipe kernels fight for the same resources."""
        r = co_schedule(machine, launches["softmax"], launches["gelu"])
        assert r.speedup == pytest.approx(1.0, abs=0.08)

    def test_fused_never_loses_work(self, machine, launches):
        r = co_schedule(machine, launches["tc_gemm"], launches["softmax"])
        assert r.fused.instructions > 0

    def test_share_tunes_balance(self, machine, launches):
        """With both kernels saturating residency, the slot split
        shifts the finishing times."""
        lo = co_schedule(machine, launches["ic_gemm"], launches["fc_gemm"],
                         share_a=0.25)
        hi = co_schedule(machine, launches["ic_gemm"], launches["fc_gemm"],
                         share_a=0.75)
        assert lo.fused_seconds != hi.fused_seconds

    def test_invalid_share_rejected(self, machine, launches):
        with pytest.raises(ScheduleError):
            co_schedule(machine, launches["ic_gemm"], launches["softmax"],
                        share_a=0.0)
        with pytest.raises(ScheduleError):
            co_schedule(machine, launches["ic_gemm"], launches["softmax"],
                        share_a=1.0)

    def test_throughput_gain_wrapper(self, machine, launches):
        g = throughput_gain(machine, launches["ic_gemm"], launches["fc_gemm"])
        assert g > 1.0

    def test_sequential_matches_sum(self, machine, launches):
        r = co_schedule(machine, launches["ic_gemm"], launches["softmax"])
        assert r.sequential_seconds > r.fused_seconds
        assert r.sequential_seconds == pytest.approx(
            r.fused_seconds * r.speedup
        )
