"""The VB3xx AST lint: synthetic violations, suppressions, repo cleanliness."""

from __future__ import annotations

import pathlib
import textwrap

from repro.analysis import run_repo_lint, self_check
from repro.analysis.lint import lint_file, lint_paths


def _lint_snippet(tmp_path: pathlib.Path, source: str, name="repro/snippet.py"):
    path = tmp_path / pathlib.Path(name).name
    path.write_text(textwrap.dedent(source))
    return lint_file(path, rel=name)


class TestRules:
    def test_missing_docstrings_vb301(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            def public(): ...

            class Thing:
                def method(self): ...
            ''',
        )
        codes = [d.code for d in diags]
        assert codes.count("VB301") == 4  # module, function, class, method

    def test_nested_helpers_need_no_docstring(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""

            def outer():
                """Doc."""
                def helper(x):
                    return x
                return helper
            ''',
        )
        assert diags == []

    def test_raw_cast_on_packed_vb302(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import numpy as np

            def f(packed_acc):
                """Doc."""
                a = packed_acc.astype(np.int32)
                b = int(packed_acc[0])
                return a, b
            ''',
        )
        assert [d.code for d in diags] == ["VB302", "VB302"]

    def test_cast_rule_exempt_inside_packing(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import numpy as np

            def f(packed_acc):
                """Doc."""
                return packed_acc.astype(np.uint32)
            ''',
            name="repro/packing/snippet.py",
        )
        assert diags == []

    def test_magic_mask_vb303(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            MASK = 0xFFFF
            ''',
        )
        assert [d.code for d in diags] == ["VB303"]

    def test_implicit_strict_vb304(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            from repro.packing.swar import packed_add

            def f(x, y, policy):
                """Doc."""
                return packed_add(x, y, policy)
            ''',
        )
        assert [d.code for d in diags] == ["VB304"]

    def test_explicit_strict_is_clean(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            from repro.packing.swar import packed_add

            def f(x, y, policy):
                """Doc."""
                return packed_add(x, y, policy, strict=False)
            ''',
        )
        assert diags == []

    def test_unused_import_vb305(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import os
            import sys

            print(sys.argv)
            ''',
        )
        assert [d.code for d in diags] == ["VB305"]
        assert "`os`" in diags[0].message

    def test_all_reexport_counts_as_use(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            from repro.errors import PackingError

            __all__ = ["PackingError"]
            ''',
        )
        assert diags == []

    def test_suppression_comment(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            MASK = 0xFFFF  # vblint: VB303
            OTHER = 0xFFFFFFFF  # vblint: skip
            THIRD = 0xFFFF
            ''',
        )
        assert len(diags) == 1 and diags[0].location.endswith(":5")

    def test_syntax_error_vb300(self, tmp_path):
        diags = _lint_snippet(tmp_path, "def broken(:\n")
        assert [d.code for d in diags] == ["VB300"]

    def test_wall_clock_in_sim_is_vb306(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import time
            from datetime import datetime

            T0 = time.time()
            T1 = time.monotonic()
            NOW = datetime.now()
            ''',
            name="repro/sim/snippet.py",
        )
        assert [d.code for d in diags] == ["VB306", "VB306", "VB306"]

    def test_unseeded_rng_in_serve_is_vb307(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import random
            import numpy as np

            X = random.random()
            R = random.Random()
            G = np.random.default_rng()
            ''',
            name="repro/serve/snippet.py",
        )
        assert [d.code for d in diags] == ["VB307", "VB307", "VB307"]

    def test_seeded_rng_is_clean(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import random
            import numpy as np

            R = random.Random(7)
            G = np.random.default_rng(7)
            ''',
            name="repro/chaos/snippet.py",
        )
        assert diags == []

    def test_determinism_rules_scoped_to_nondeterminism_sensitive_dirs(
        self, tmp_path
    ):
        # The same wall-clock call outside sim/serve/chaos/packing is fine
        # (benchmarks legitimately read the host clock).
        source = '''
            """Module."""
            import time

            T0 = time.time()
            '''
        assert _lint_snippet(tmp_path, source, name="repro/bench/snippet.py") == []
        assert [
            d.code
            for d in _lint_snippet(tmp_path, source, name="repro/packing/snippet.py")
        ] == ["VB306"]

    def test_determinism_suppression_comment(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            import time

            T0 = time.time()  # vblint: VB306
            ''',
            name="repro/serve/snippet.py",
        )
        assert diags == []

    def test_orin_global_in_perfmodel_is_vb308(self, tmp_path):
        diags = _lint_snippet(
            tmp_path,
            '''
            """Module."""
            from repro.arch.specs import jetson_orin_agx
            from repro.arch import specs

            M1 = jetson_orin_agx()
            M2 = specs.jetson_orin_agx()
            ''',
            name="repro/perfmodel/bad.py",
        )
        codes = [d.code for d in diags]
        # import + name load + attribute access all fire.
        assert codes.count("VB308") == 3, diags

    def test_orin_global_outside_perfmodel_is_fine(self, tmp_path):
        # The runner, benchmarks, and arch layer may build the Orin spec;
        # only repro/perfmodel must stay backend-generic.
        source = '''
            """Module."""
            from repro.arch.specs import jetson_orin_agx

            MACHINE = jetson_orin_agx()
            '''
        assert _lint_snippet(tmp_path, source, name="repro/runner.py") == []
        assert [
            d.code
            for d in _lint_snippet(
                tmp_path, source, name="repro/perfmodel/analytic.py"
            )
        ] == ["VB308", "VB308"]

    def test_real_perfmodel_package_has_no_orin_references(self):
        # The ISSUE-10 regression: every module in repro.perfmodel takes
        # its machine from the caller (backend registry), never from the
        # arch.specs Orin global.
        from repro.analysis.lint import find_repo_root

        root = find_repo_root()
        assert root is not None, "tests must run from a source checkout"
        diags = lint_paths(
            [root / "src" / "repro" / "perfmodel"],
            rules=frozenset({"VB308"}),
            root=root,
        )
        assert diags == [], diags

    def test_lint_paths_recurses(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        diags = lint_paths([tmp_path])
        assert any(d.code == "VB301" for d in diags)  # missing module docstring


class TestRepoIsClean:
    def test_repo_lint_is_clean(self):
        report = run_repo_lint()
        assert report.diagnostics == [], report.render()

    def test_self_check_is_clean(self):
        report = self_check()
        assert not report.has_errors, report.render()
        assert report.warnings == [], report.render()
