"""Tests for dense bitstream packing (sub-byte DRAM storage)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingError
from repro.packing import bitstream_words, pack_bitstream, unpack_bitstream


class TestWords:
    def test_exact_fit(self):
        assert bitstream_words(32, 1) == 1
        assert bitstream_words(4, 8) == 1
        assert bitstream_words(1, 32) == 1

    def test_straddle_rounds_up(self):
        assert bitstream_words(6, 6) == 2  # 36 bits
        assert bitstream_words(5, 6) == 1  # 30 bits

    def test_zero(self):
        assert bitstream_words(0, 7) == 0

    def test_invalid(self):
        with pytest.raises(PackingError):
            bitstream_words(-1, 8)
        with pytest.raises(PackingError):
            bitstream_words(1, 0)
        with pytest.raises(PackingError):
            bitstream_words(1, 33)


class TestPack:
    def test_layout_lsb_first(self):
        # 6-bit fields: v0 in bits 0..5, v1 in 6..11, ...
        w = pack_bitstream(np.array([0b111111, 0, 0b101010]), 6)
        assert w[0] & 0x3F == 0b111111
        assert (w[0] >> 12) & 0x3F == 0b101010

    def test_straddling_field(self):
        # Sixth 6-bit field straddles the word boundary (bits 30..35).
        vals = np.array([0, 0, 0, 0, 0, 0b110011])
        w = pack_bitstream(vals, 6)
        assert w.size == 2
        lo = (int(w[0]) >> 30) & 0b11
        hi = int(w[1]) & 0b1111
        assert (hi << 2) | lo == 0b110011

    def test_tail_zero_padded(self):
        w = pack_bitstream(np.array([1]), 3)
        assert int(w[0]) == 1

    def test_oversized_code_rejected(self):
        with pytest.raises(PackingError):
            pack_bitstream(np.array([8]), 3)

    def test_negative_rejected(self):
        with pytest.raises(PackingError):
            pack_bitstream(np.array([-1]), 3)

    def test_2d_rejected(self):
        with pytest.raises(PackingError):
            pack_bitstream(np.zeros((2, 2), dtype=np.int64), 3)

    def test_density(self):
        # 6-bit storage is exactly 0.75 B/value at scale.
        w = pack_bitstream(np.zeros(1600, dtype=np.int64), 6)
        assert w.size * 4 == 1200


class TestUnpack:
    def test_short_stream_rejected(self):
        w = pack_bitstream(np.arange(4), 8)
        with pytest.raises(PackingError):
            unpack_bitstream(w, 10, 8)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(PackingError):
            unpack_bitstream(np.zeros(1, dtype=np.int64), 1, 8)

    def test_partial_read(self):
        vals = np.arange(20) % 64
        w = pack_bitstream(vals, 6)
        assert np.array_equal(unpack_bitstream(w, 7, 6), vals[:7])


@settings(max_examples=120, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=32),
    n=st.integers(min_value=0, max_value=300),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_bitstream_roundtrip(bits, n, seed):
    rng = np.random.default_rng(seed)
    hi = (1 << bits) - 1 if bits < 63 else (1 << 62)
    vals = rng.integers(0, hi, size=n, endpoint=True)
    words = pack_bitstream(vals, bits)
    assert words.size == bitstream_words(n, bits)
    assert np.array_equal(unpack_bitstream(words, n, bits), vals)


class TestExpandToRegisters:
    def test_storage_to_compute_bridge(self, rng):
        """Dense 6-bit storage expands into carry-safe 2-lane registers
        and the packed GEMM over them is exact."""
        from repro.packing import (
            Packer,
            expand_to_registers,
            policy_for_bitwidth,
        )

        pol = policy_for_bitwidth(6)
        vals = rng.integers(0, 64, size=100)
        stream = pack_bitstream(vals, 6)
        regs = expand_to_registers(stream, 100, 6, pol)
        assert regs.dtype == np.uint32
        assert regs.shape == (50,)
        assert np.array_equal(Packer(pol).unpack(regs, 100), vals)

    def test_width_mismatch_rejected(self, rng):
        from repro.packing import expand_to_registers, policy_for_bitwidth

        pol = policy_for_bitwidth(4)
        stream = pack_bitstream(rng.integers(0, 64, size=10), 6)
        with pytest.raises(PackingError):
            expand_to_registers(stream, 10, 6, pol)


def test_integration_fp6_weights_dense_storage(rng):
    """The full arbitrary-format story: quantize float weights to FP6,
    store densely (0.75 B/value), load back, dequantize — lossless
    against direct quantization."""
    from repro.formats.lowfp import FP6_E2M3

    w = rng.normal(size=4096)
    codes = FP6_E2M3.encode(w)
    stream = pack_bitstream(codes.astype(np.int64), 6)
    assert stream.size * 4 <= 0.76 * w.size
    codes_back = unpack_bitstream(stream, w.size, 6)
    assert np.array_equal(
        FP6_E2M3.decode(codes_back), FP6_E2M3.quantize(w)
    )
