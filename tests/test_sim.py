"""Unit tests for the cycle-approximate simulator."""

from __future__ import annotations

import pytest

from repro.arch.specs import SMSpec
from repro.errors import SimulationError
from repro.sim import (
    DramModel,
    GPUSim,
    OpClass,
    SMSim,
    SubPartitionSim,
    WarpProgram,
    default_timings,
)


def make_gpu(machine):
    return GPUSim(machine, include_launch_overhead=False)


class TestWarpProgram:
    def test_counts(self):
        p = WarpProgram.loop([(OpClass.INT, 4), (OpClass.LSU, 1)], iterations=10)
        assert p.count(OpClass.INT) == 40
        assert p.count(OpClass.LSU) == 10
        assert p.total_instructions == 50

    def test_mix(self):
        p = WarpProgram.loop([(OpClass.INT, 2), (OpClass.FP, 3)], iterations=2)
        assert p.mix() == {OpClass.INT: 4, OpClass.FP: 6}

    def test_straight(self):
        p = WarpProgram.straight({OpClass.FP: 5, OpClass.INT: 0})
        assert p.total_instructions == 5
        assert p.count(OpClass.INT) == 0

    def test_empty(self):
        p = WarpProgram.empty()
        assert p.total_instructions == 0

    def test_scaled(self):
        p = WarpProgram.loop([(OpClass.INT, 1)], iterations=10)
        assert p.scaled(0.5).iterations == 5
        assert p.scaled(2.0).iterations == 20

    def test_invalid_segment_rejected(self):
        with pytest.raises(SimulationError):
            WarpProgram(body=((OpClass.INT, 0),), iterations=1)

    def test_negative_iterations_rejected(self):
        with pytest.raises(SimulationError):
            WarpProgram(body=((OpClass.INT, 1),), iterations=-1)


class TestTimings:
    def test_sixteen_lane_pipes_have_ii_two(self):
        t = default_timings(SMSpec())
        assert t[OpClass.INT].initiation_interval == 2
        assert t[OpClass.FP].initiation_interval == 2

    def test_lsu_matches_alu_interval(self):
        t = default_timings(SMSpec())
        assert t[OpClass.LSU].initiation_interval == 2

    def test_sfu_slower_than_alu(self):
        t = default_timings(SMSpec())
        assert t[OpClass.SFU].initiation_interval > t[OpClass.INT].initiation_interval

    def test_tensor_ii_reflects_efficiency(self):
        full = default_timings(SMSpec(), tc_efficiency=1.0)
        derated = default_timings(SMSpec(), tc_efficiency=0.25)
        assert derated[OpClass.TENSOR].initiation_interval == pytest.approx(
            4 * full[OpClass.TENSOR].initiation_interval, rel=0.1
        )

    def test_bad_efficiency_rejected(self):
        with pytest.raises(SimulationError):
            default_timings(SMSpec(), tc_efficiency=0.0)


class TestSubPartition:
    def test_single_warp_single_instruction(self):
        t = default_timings(SMSpec())
        sim = SubPartitionSim(t, [WarpProgram.straight({OpClass.INT: 1})])
        stats = sim.run()
        assert stats.instructions == 1
        assert stats.issued[OpClass.INT] == 1

    def test_empty_workload(self):
        t = default_timings(SMSpec())
        stats = SubPartitionSim(t, [WarpProgram.empty()]).run()
        assert stats.cycles == 0 and stats.instructions == 0

    def test_int_only_bounded_by_pipe(self):
        """Many warps of pure INT work saturate the INT pipe: one
        instruction per ii cycles."""
        t = default_timings(SMSpec())
        ii = t[OpClass.INT].initiation_interval
        n_instr = 50
        warps = [WarpProgram.loop([(OpClass.INT, n_instr)], 1) for _ in range(8)]
        stats = SubPartitionSim(t, warps).run()
        assert stats.cycles == pytest.approx(8 * n_instr * ii, rel=0.02)
        assert stats.utilization(OpClass.INT) > 0.98

    def test_int_fp_mix_dual_issues(self):
        """Equal INT and FP warp populations nearly double throughput."""
        t = default_timings(SMSpec())
        n_instr = 50
        int_warps = [WarpProgram.loop([(OpClass.INT, n_instr)], 1) for _ in range(4)]
        fp_warps = [WarpProgram.loop([(OpClass.FP, n_instr)], 1) for _ in range(4)]
        solo = SubPartitionSim(t, int_warps + int_warps).run()
        dual = SubPartitionSim(t, int_warps + fp_warps).run()
        assert solo.instructions == dual.instructions
        assert dual.cycles < 0.55 * solo.cycles + 10

    def test_deadlock_guard(self):
        t = default_timings(SMSpec())
        warps = [WarpProgram.loop([(OpClass.INT, 1)], iterations=10**6)]
        with pytest.raises(SimulationError):
            SubPartitionSim(t, warps).run(max_cycles=100)

    def test_ipc_never_exceeds_one(self):
        t = default_timings(SMSpec())
        warps = [
            WarpProgram.loop([(OpClass.INT, 2), (OpClass.FP, 2), (OpClass.LSU, 1)], 20)
            for _ in range(12)
        ]
        stats = SubPartitionSim(t, warps).run()
        assert 0 < stats.ipc <= 1.0


class TestSMSim:
    def test_distribute_round_robin(self):
        sm = SMSim(SMSpec())
        warps = [WarpProgram.straight({OpClass.INT: i + 1}) for i in range(8)]
        buckets = sm.distribute(warps)
        assert [len(b) for b in buckets] == [2, 2, 2, 2]

    def test_residency_limit(self):
        sm = SMSim(SMSpec())
        warps = [WarpProgram.empty()] * 49
        with pytest.raises(SimulationError):
            sm.distribute(warps)


class TestDram:
    def test_transfer_time(self, machine):
        dram = DramModel(machine, efficiency=1.0)
        secs = dram.transfer_seconds(machine.dram_bandwidth_bytes_per_s)
        assert secs == pytest.approx(1.0)

    def test_efficiency_bounds(self, machine):
        with pytest.raises(ValueError):
            DramModel(machine, efficiency=1.5)
        with pytest.raises(ValueError):
            DramModel(machine, efficiency=0.0)

    def test_negative_bytes_rejected(self, machine):
        with pytest.raises(ValueError):
            DramModel(machine).transfer_seconds(-1)


class TestGPUSim:
    def test_compute_bound_kernel(self, machine):
        gpu = make_gpu(machine)
        warps = [WarpProgram.loop([(OpClass.INT, 10)], 10)] * 8
        stats = gpu.run_kernel(warps)
        assert not stats.memory_bound
        assert stats.cycles == stats.compute_cycles

    def test_memory_bound_kernel(self, machine):
        gpu = make_gpu(machine)
        warps = [WarpProgram.loop([(OpClass.INT, 1)], 1)] * 4
        stats = gpu.run_kernel(warps, bytes_moved=1 << 30)
        assert stats.memory_bound
        assert stats.cycles >= stats.dram_cycles

    def test_waves_scale_compute(self, machine):
        gpu = make_gpu(machine)
        warps = [WarpProgram.loop([(OpClass.INT, 10)], 10)] * 8
        one = gpu.run_kernel(warps)
        two = gpu.run_kernel(
            warps, total_warps=2 * len(warps) * machine.sm_count
        )
        assert two.compute_cycles == 2 * one.compute_cycles
        assert two.instructions == 2 * one.instructions

    def test_launch_overhead_added(self, machine):
        with_oh = GPUSim(machine, include_launch_overhead=True)
        without = make_gpu(machine)
        warps = [WarpProgram.loop([(OpClass.INT, 5)], 1)] * 4
        t1 = with_oh.run_kernel(warps).seconds
        t2 = without.run_kernel(warps).seconds
        assert t1 - t2 == pytest.approx(machine.kernel_launch_overhead_us * 1e-6)

    def test_empty_launch_rejected(self, machine):
        with pytest.raises(SimulationError):
            make_gpu(machine).run_kernel([])

    def test_stats_accumulate(self, machine):
        gpu = make_gpu(machine)
        warps = [WarpProgram.loop([(OpClass.INT, 5)], 2)] * 4
        a = gpu.run_kernel(warps)
        b = gpu.run_kernel(warps)
        total = a.scaled_add(b)
        assert total.cycles == a.cycles + b.cycles
        assert total.instructions == a.instructions + b.instructions
