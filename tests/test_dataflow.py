"""The lane dataflow verifier vs the closed-form prover vs strict SWAR.

The acceptance bar of this layer is *differential*: on every plan the
abstract interpreter, the legacy closed-form prover, and ``strict=True``
SWAR execution must tell the same story — same verdict, same depth
budget, and every refutation witness must reproduce the overflow at
exactly the step it names.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Interval, Severity
from repro.analysis.dataflow import (
    DEFAULT_PAIRS,
    _DEPTH_REGISTRY,
    DependenceGraph,
    UNBOUNDED_DEPTH,
    first_failing_depth,
    load_safe_depth_table,
    prove_chain,
    proven_chunk_depth,
    safe_depth_table,
    use_safe_depth_table,
    verify_program,
    write_safe_depth_table,
)
from repro.analysis.laneir import (
    LaneField,
    LaneLayout,
    LaneOp,
    LaneProgram,
    gemm_chain_program,
)
from repro.analysis.overflow import prove_packed_accumulation
from repro.errors import AnalysisError, OverflowBudgetError
from repro.packing.accumulate import safe_accumulation_depth
from repro.packing.mixed import policy_for_operands
from repro.packing.packer import Packer
from repro.packing.policy import policy_for_bitwidth
from repro.packing.swar import packed_add, packed_scalar_mul


def _run_chain(policy, scalar: int, lane_value: int, depth: int) -> None:
    """Accumulate ``depth`` products under strict SWAR semantics."""
    packer = Packer(policy)
    reg = packer.pack(np.full((policy.lanes,), lane_value, dtype=np.int64))
    acc = np.zeros_like(reg)
    for _ in range(depth):
        prod = packed_scalar_mul(int(scalar), reg, policy, strict=True)
        acc = packed_add(acc, prod, policy, strict=True)


def _chain_layout(bits: int) -> LaneLayout:
    return LaneLayout.from_policy(policy_for_bitwidth(bits))


@pytest.fixture
def clean_registry():
    """Isolate tests that install safe-depth tables."""
    saved = dict(_DEPTH_REGISTRY)
    try:
        yield
    finally:
        _DEPTH_REGISTRY.clear()
        _DEPTH_REGISTRY.update(saved)
        proven_chunk_depth.cache_clear()


class TestVerifyProgram:
    def test_chunked_chain_is_proved_safe(self):
        res = prove_chain(policy_for_bitwidth(8), k=4096, a_bits=8, chunk_depth=1)
        assert res.safe and res.proven and res.witness is None
        assert res.max_safe_depth == 1
        assert any(d.code == "VB116" for d in res.diagnostics)

    def test_unchunked_deep_chain_refuted_with_witness(self):
        res = prove_chain(policy_for_bitwidth(8), k=4096, a_bits=8)
        assert not res.safe
        w = res.witness
        assert w is not None and w.depth == 2  # budget is 1 for int8
        assert w.scalar == 255 and w.lane_value == 255
        vb110 = next(d for d in res.diagnostics if d.code == "VB110")
        assert vb110.data["witness"]["depth"] == 2

    def test_overflow_reports_carry_contamination(self):
        # int8 lanes: the overflowing low lane spills into lane 1's field.
        res = prove_chain(policy_for_bitwidth(8), k=4096, a_bits=8)
        assert any(d.code == "VB112" for d in res.diagnostics)

    def test_use_before_def_is_vb114(self):
        layout = _chain_layout(8)
        prog = LaneProgram(name="ubd")
        prog.emit(LaneOp(op="packed_add", dest="x", srcs=("p", "q"), layout=layout))
        res = verify_program(prog)
        assert not res.safe
        assert any(d.code == "VB114" for d in res.diagnostics)

    def test_mixed_layouts_in_add_is_vb112(self):
        prog = LaneProgram(name="mix")
        prog.emit(LaneOp(op="pack", dest="x", layout=_chain_layout(8)))
        prog.emit(LaneOp(op="pack", dest="y", layout=_chain_layout(4)))
        prog.emit(
            LaneOp(
                op="packed_add", dest="z", srcs=("x", "y"), layout=_chain_layout(8)
            )
        )
        res = verify_program(prog)
        assert not res.safe
        assert any(
            d.code == "VB112" and "different layouts" in d.message
            for d in res.diagnostics
        )

    def test_unspilled_accumulator_at_budget_warns_vb111(self):
        # 6-bit lanes support exactly 16 products; a chain that stops
        # there without spilling is legal but has zero guard margin.
        layout = _chain_layout(6)
        prog = gemm_chain_program(layout, a_range=Interval.from_bits(6), k=16)
        prog.ops = [op for op in prog.ops if op.op not in ("spill", "reduce")]
        res = verify_program(prog)
        assert res.safe  # still safe as written...
        assert any(d.code == "VB111" for d in res.diagnostics)

    def test_spilled_accumulator_does_not_warn(self):
        layout = _chain_layout(6)
        prog = gemm_chain_program(layout, a_range=Interval.from_bits(6), k=16)
        res = verify_program(prog)
        assert res.safe
        assert not any(d.code == "VB111" for d in res.diagnostics)

    def test_nonlinear_loop_beyond_cap_is_unproven_vb118(self):
        # acc = acc + acc doubles the depth counter every trip: growth is
        # geometric, the fast-forward cannot certify it, and 5000 trips
        # exceed the unroll cap.
        layout = _chain_layout(8)
        prog = LaneProgram(name="geo")
        prog.inputs["a"] = Interval.point(0)
        prog.emit(
            LaneOp(
                op="pack",
                dest="b",
                layout=layout,
                attrs={"ranges": tuple(Interval.point(0) for _ in layout.fields)},
            )
        )
        prog.emit(
            LaneOp(op="packed_mul", dest="t", srcs=("a", "b"), layout=layout)
        )
        body = (LaneOp(op="packed_add", dest="t", srcs=("t", "t"), layout=layout),)
        prog.emit(LaneOp(op="loop", attrs={"trips": 5000, "body": body}))
        res = verify_program(prog)
        assert not res.proven
        assert any(d.code == "VB118" for d in res.diagnostics)

    def test_negative_payload_refuted(self):
        layout = _chain_layout(8)
        prog = LaneProgram(name="neg")
        prog.emit(
            LaneOp(
                op="pack",
                dest="b",
                layout=layout,
                attrs={"ranges": tuple(Interval(-1, 3) for _ in layout.fields)},
            )
        )
        res = verify_program(prog)
        assert not res.safe
        assert any("negative" in d.message for d in res.diagnostics)

    def test_asymmetric_layout_per_lane_verdicts(self):
        # Lane 0 has room for its payload, lane 1 does not: the witness
        # must name the right lane.
        layout = LaneLayout(
            fields=(
                LaneField(offset=0, width=16, value_bits=8),
                LaneField(offset=16, width=9, value_bits=8),
            )
        )
        prog = gemm_chain_program(layout, a_range=Interval.from_bits(4), k=1)
        res = verify_program(prog)
        assert not res.safe
        assert res.witness is not None and res.witness.lane == 1


class TestLoopFastForward:
    def test_unbounded_probe_is_fast_and_exact(self):
        for bits in (4, 6, 8):
            pol = policy_for_bitwidth(bits)
            depth = first_failing_depth(
                LaneLayout.from_policy(pol),
                a_range=Interval.from_bits(pol.effective_multiplier_bits),
            )
            assert depth == safe_accumulation_depth(
                pol, pol.effective_multiplier_bits, pol.value_bits
            )

    def test_degenerate_operands_are_unbounded(self):
        depth = first_failing_depth(
            _chain_layout(8), a_range=Interval.from_bits(8), b_range=Interval(0, 0)
        )
        assert depth == UNBOUNDED_DEPTH

    def test_small_trip_counts_run_concretely(self):
        for k in (1, 2, 3, 4):
            res = prove_chain(policy_for_bitwidth(6), k=k, a_bits=6)
            assert res.safe  # 6-bit budget is 16


class TestWitnessReproduction:
    @pytest.mark.parametrize(
        "policy",
        [policy_for_bitwidth(8), policy_for_bitwidth(6), policy_for_operands(8, 4)],
        ids=["int8", "int6", "w8a4"],
    )
    def test_witness_reproduces_under_strict_swar(self, policy):
        a_bits = policy.effective_multiplier_bits
        res = prove_chain(policy, k=4096, a_bits=a_bits)
        assert not res.safe
        w = res.witness
        assert w is not None and w.depth is not None
        if w.depth > 1:
            _run_chain(policy, w.scalar, w.lane_value, w.depth - 1)
        with pytest.raises(OverflowBudgetError):
            _run_chain(policy, w.scalar, w.lane_value, w.depth)


class TestDifferentialFuzz:
    #: Width pairs drawn by the fuzzer: Fig. 3 symmetric points plus the
    #: asymmetric pairs (8x4, 8x2, ...) and some odd widths.
    PAIRS = ((8, 8), (4, 4), (6, 6), (8, 4), (4, 8), (8, 2), (2, 8), (5, 7), (7, 5))

    def test_three_way_agreement_over_500_seeded_cases(self):
        rng = np.random.default_rng(0xB17)
        executed = 0
        for case in range(500):
            a_bits, b_bits = self.PAIRS[int(rng.integers(len(self.PAIRS)))]
            pol = policy_for_operands(a_bits, b_bits)
            k = int(rng.integers(1, 65))
            chunk = (None, 1, int(rng.integers(1, 33)))[int(rng.integers(3))]
            zp = int(rng.integers(0, 4))

            # With a zero point the *stored* payloads keep the declared
            # range (true values shift down), so all three oracles see
            # the same worst-case magnitudes.
            layout = LaneLayout.from_policy(pol)
            b_range = None
            if zp:
                layout = layout.with_zero_point(zp)
                b_range = Interval(-zp, pol.max_value - zp)
            flow = prove_chain(
                layout,
                k=k,
                a_range=Interval.from_bits(a_bits),
                b_range=b_range,
                chunk_depth=chunk,
                name=f"fuzz{case}",
            )
            probe = prove_packed_accumulation(
                pol, k=k, a_bits=a_bits, chunk_depth=chunk
            )
            assert flow.safe == probe.safe, (case, a_bits, b_bits, k, chunk, zp)
            assert flow.max_safe_depth == probe.max_safe_depth, (case, a_bits, b_bits)

            a_max = (1 << a_bits) - 1
            if flow.safe:
                # No false proof: the worst case executes cleanly for
                # one full packed segment.
                _run_chain(pol, a_max, pol.max_value, min(k, chunk or k))
            elif flow.witness is not None and flow.witness.depth is not None:
                w = flow.witness
                with pytest.raises(OverflowBudgetError):
                    _run_chain(pol, w.scalar, w.lane_value, w.depth)
                executed += 1
        assert executed > 50  # the fuzz mix must actually hit refutations

    def test_zero_false_refutations_on_fig3_configs(self):
        # Every policy the repo actually runs, at its planned chunk
        # depth, must verify SAFE (the CI analyze-smoke contract).
        for bits in range(2, 13):
            pol = policy_for_bitwidth(bits)
            a_bits = pol.effective_multiplier_bits
            chunk = proven_chunk_depth(pol, a_bits)
            res = prove_chain(pol, k=4096, a_bits=a_bits, chunk_depth=min(chunk, 4096))
            assert res.safe, bits


class TestDependenceGraph:
    def test_raw_waw_war_edges(self):
        layout = _chain_layout(8)
        zeros = {"ranges": tuple(Interval.point(0) for _ in layout.fields)}
        prog = LaneProgram(name="hazards")
        prog.emit(LaneOp(op="pack", dest="x", layout=layout, attrs=zeros))
        prog.emit(LaneOp(op="packed_add", dest="y", srcs=("x", "x"), layout=layout))
        prog.emit(LaneOp(op="pack", dest="x", layout=layout, attrs=zeros))
        graph = DependenceGraph.from_program(prog)
        edges = {(e["src"], e["dst"], e["kind"]) for e in graph.edges}
        assert (0, 1, "RAW") in edges  # y reads the first x
        assert (0, 2, "WAW") in edges  # x is rewritten
        assert (1, 2, "WAR") in edges  # ...after y read it

    def test_critical_path_counts_loop_trips(self):
        layout = _chain_layout(8)
        prog = gemm_chain_program(layout, a_range=Interval.from_bits(8), k=100)
        graph = DependenceGraph.from_program(prog)
        assert graph.critical_length > 100  # the loop node is priced at k

    def test_export_shape(self):
        prog = gemm_chain_program(
            _chain_layout(8), a_range=Interval.from_bits(8), k=4
        )
        d = DependenceGraph.from_program(prog).to_dict()
        assert set(d) == {"nodes", "edges", "critical_path", "critical_length"}
        assert all({"src", "dst", "kind", "reg"} <= set(e) for e in d["edges"])

    def test_vb115_carries_the_graph(self):
        res = prove_chain(policy_for_bitwidth(8), k=16, a_bits=8, chunk_depth=1)
        info = next(d for d in res.diagnostics if d.code == "VB115")
        assert info.severity is Severity.INFO
        assert info.data["dependence"]["critical_length"] >= 16


class TestSafeDepthTable:
    def test_table_covers_default_pairs_and_cross_checks(self, clean_registry):
        table = safe_depth_table()
        assert len(table) == len(DEFAULT_PAIRS)
        for entry in table.values():
            assert entry["cross_checked"]
            pol = policy_for_operands(entry["a_bits"], entry["b_bits"])
            assert entry["safe_depth"] == safe_accumulation_depth(
                pol, entry["a_bits"], entry["b_bits"]
            )

    def test_write_then_load_round_trips(self, clean_registry, tmp_path):
        path = str(tmp_path / "summary.json")
        written = write_safe_depth_table(path)
        _DEPTH_REGISTRY.clear()
        loaded = load_safe_depth_table(path)
        assert loaded == written
        assert _DEPTH_REGISTRY  # loading installs the registry

    def test_poisoned_table_entry_is_vb402(self, clean_registry):
        pol = policy_for_bitwidth(8)
        table = safe_depth_table(((8, 8),))
        key = next(iter(table))
        table[key] = dict(table[key], safe_depth=999)
        use_safe_depth_table(table)
        with pytest.raises(AnalysisError, match="VB402"):
            proven_chunk_depth(pol, 8)

    def test_registry_entry_short_circuits_but_stays_checked(self, clean_registry):
        pol = policy_for_bitwidth(8)
        use_safe_depth_table(safe_depth_table(((8, 8),)))
        assert proven_chunk_depth(pol, 8) == safe_accumulation_depth(pol, 8, 8)
