"""Tests for the kernel source renderer."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.fusion import VITBIT
from repro.kernels.render import render_fused_gemm, render_pack_helpers
from repro.packing import policy_for_bitwidth

POL8 = policy_for_bitwidth(8)
POL4 = policy_for_bitwidth(4)


class TestPackHelpers:
    def test_int8_shifts(self):
        src = render_pack_helpers(POL8)
        assert "<< 0;" in src and "<< 16;" in src
        assert "0xFFu" in src  # value mask
        assert "0xFFFFu" in src  # field mask

    def test_int4_has_four_lanes(self):
        src = render_pack_helpers(POL4)
        assert src.count("reg |=") == 4
        assert "<< 24;" in src

    def test_compiles_as_text(self):
        src = render_pack_helpers(POL8)
        assert src.count("{") == src.count("}")


class TestFusedGemm:
    def _plan(self, policy=POL8, n=200):
        return VITBIT.split_plan(n, policy, 4.0)

    def test_structure(self):
        src = render_fused_gemm(self._plan(), POL8)
        assert "__global__ void vitbit_gemm(" in src
        assert "tc_gemm_imma" in src
        assert "int_gemm_packed" in src
        assert "fp_gemm" in src

    def test_reports_plan_widths(self):
        plan = self._plan()
        src = render_fused_gemm(plan, POL8)
        assert f"{plan.n1} columns" in src
        assert f"{plan.n2} columns" in src
        assert f"{plan.n3} columns" in src

    def test_spill_depth_matches_budget(self):
        src = render_fused_gemm(self._plan(), POL8)
        # int8 symmetric weights: safe depth 2.
        assert "% 2 == 0" in src
        assert "spill to wide" in src

    def test_zero_point_epilogue(self):
        src = render_fused_gemm(self._plan(), POL8, zero_point=128)
        assert "* 128" in src
        src_none = render_fused_gemm(self._plan(), POL8, zero_point=None)
        assert "* 128" not in src_none

    def test_four_lane_variant(self):
        plan = VITBIT.split_plan(400, POL4, 4.0)
        src = render_fused_gemm(plan, POL4)
        assert "acc3" in src and "4 MACs" in src

    def test_balanced_braces(self):
        src = render_fused_gemm(self._plan(), POL8)
        assert src.count("{") == src.count("}")

    def test_policy_plan_mismatch_rejected(self):
        plan = self._plan(POL8)
        with pytest.raises(ScheduleError):
            render_fused_gemm(plan, POL4)

    def test_custom_name(self):
        src = render_fused_gemm(self._plan(), POL8, kernel_name="my_kernel")
        assert "void my_kernel(" in src
