"""Smoke tests: every example script runs cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script,needle",
    [
        ("quickstart.py", "bit-exact = True"),
        ("packing_policy_explorer.py", "exact=True"),
        ("arbitrary_formats.py", "bit-exact"),
        ("cnn_inference.py", "bit-exact: True"),
    ],
)
def test_example_runs(script, needle):
    proc = _run(script)
    assert proc.returncode == 0, proc.stderr
    assert needle in proc.stdout


def test_vit_inference_example():
    proc = _run("vit_inference.py")
    assert proc.returncode == 0, proc.stderr
    assert "bit-exact: True" in proc.stdout
    assert "VitBit" in proc.stdout


def test_trace_visualizer_example(tmp_path):
    out = tmp_path / "trace.json"
    proc = _run("trace_visualizer.py", "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    assert "issue events" in proc.stdout
    import json

    doc = json.loads(out.read_text())
    assert len(doc["traceEvents"]) > 100


def test_kernel_fusion_study_example():
    proc = _run("kernel_fusion_study.py", "--batch", "4")
    assert proc.returncode == 0, proc.stderr
    assert "m = 4" in proc.stdout or "m = 3" in proc.stdout
    assert "pipe utilization" in proc.stdout
