"""Failure-injection tests: what happens when packing assumptions break.

The packed GEMM's correctness rests on structural properties (carry
isolation, range discipline, spill scheduling).  These tests *break*
the assumptions on purpose and check the failure is the one the design
predicts — detected where detection is promised, and *contained* where
it is not:

* a bit flip in one packed register corrupts only the output columns of
  that register's lane group (fault containment along lane boundaries);
* range violations are rejected before any arithmetic happens;
* disabling the carry checks reproduces the exact wrapped value the
  hardware would compute (the model fails the same way silicon does).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverflowBudgetError, PackingError
from repro.packing import (
    Packer,
    packed_add,
    packed_gemm_unsigned,
    packed_scalar_mul,
    policy_for_bitwidth,
    reference_gemm,
)

POL8 = policy_for_bitwidth(8)


class TestFaultContainment:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        k_idx=st.integers(min_value=0, max_value=19),
        group=st.integers(min_value=0, max_value=4),
        bit=st.integers(min_value=0, max_value=31),
    )
    def test_property_bit_flip_contained_to_lane_group(
        self, seed, k_idx, group, bit
    ):
        """Flipping one bit of one packed register perturbs only the
        output columns of that register's group — packing does not
        spread faults across groups or rows beyond the affected dot
        products."""
        rng = np.random.default_rng(seed)
        m, k, n = 6, 20, 10  # 5 register groups of 2 columns
        a = rng.integers(0, 128, size=(m, k))
        b = rng.integers(0, 256, size=(k, n))
        packer = Packer(POL8)
        bp = packer.pack(b)  # (k, 5)
        clean = packer.unpack(bp, n)

        corrupted = bp.copy()
        corrupted[k_idx, group] ^= np.uint32(1 << bit)
        b_bad = packer.unpack(corrupted, n)

        c_clean = reference_gemm(a, clean)
        c_bad = reference_gemm(a, b_bad.astype(np.int64))
        diff_cols = np.nonzero(np.any(c_clean != c_bad, axis=0))[0]
        allowed = {group * 2, group * 2 + 1}
        assert set(diff_cols.tolist()) <= allowed

    def test_weight_fault_spreads_across_row(self, rng):
        """Contrast: a corrupted (unpacked) weight touches a whole
        output row — packing's fault domain is strictly narrower."""
        a = rng.integers(1, 128, size=(4, 16))
        b = rng.integers(1, 256, size=(16, 8))
        a_bad = a.copy()
        a_bad[2, 5] += 1
        diff = reference_gemm(a, b) != reference_gemm(a_bad, b)
        assert diff[2].all()  # every column of row 2 moved
        assert not diff[[0, 1, 3]].any()


class TestRangeViolations:
    def test_out_of_range_operand_rejected_before_compute(self, rng):
        b = rng.integers(0, 256, size=(8, 4))
        b[3, 2] = 256  # one element over
        a = rng.integers(0, 128, size=(2, 8))
        with pytest.raises(PackingError):
            packed_gemm_unsigned(a, b, POL8)

    def test_oversized_scalar_detected(self):
        p = Packer(POL8)
        regs = p.pack(np.array([200, 200]))
        with pytest.raises(OverflowBudgetError):
            packed_scalar_mul(400, regs, POL8)

    def test_add_overflow_detected(self):
        hot = np.array([0xFFFF_0000], dtype=np.uint32)  # lane 1 full
        with pytest.raises(OverflowBudgetError):
            packed_add(hot, np.array([0x0001_0000], dtype=np.uint32), POL8)


class TestHardwareFaithfulWrap:
    def test_nonstrict_mode_reproduces_silicon_wrap(self):
        """With checks off, the model computes exactly the corrupted
        value a real 32-bit ADD would produce: the carry crosses into
        the next lane."""
        lane0_full = np.array([0x0000_FFFF], dtype=np.uint32)
        one = np.array([0x0000_0001], dtype=np.uint32)
        wrapped = packed_add(lane0_full, one, POL8, strict=False)
        assert int(wrapped[0]) == 0x0001_0000  # lane 1 gained a bogus +1
        p = Packer(POL8)
        assert p.unpack(wrapped, 2).tolist() == [0, 1]

    @settings(max_examples=60, deadline=None)
    @given(
        x=st.integers(min_value=0, max_value=0xFFFFFFFF),
        y=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_property_nonstrict_add_is_mod_2_32(self, x, y):
        xa = np.array([x], dtype=np.uint32)
        ya = np.array([y], dtype=np.uint32)
        out = packed_add(xa, ya, POL8, strict=False)
        assert int(out[0]) == (x + y) % (1 << 32)

    @settings(max_examples=60, deadline=None)
    @given(
        s=st.integers(min_value=0, max_value=0xFFFF),
        reg=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_property_nonstrict_mul_is_mod_2_32(self, s, reg):
        out = packed_scalar_mul(
            s, np.array([reg], dtype=np.uint32), POL8, strict=False
        )
        assert int(out[0]) == (s * reg) % (1 << 32)
