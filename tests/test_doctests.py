"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.packing.mixed
import repro.packing.policy
import repro.utils.bitops


@pytest.mark.parametrize(
    "module",
    [repro, repro.packing.policy, repro.packing.mixed, repro.utils.bitops],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
