"""The cross-backend what-if explorer (ISSUE 10 conformance suite).

Every assertion here is parametrized over *all* registered backends —
no per-backend carve-outs: same-seed reruns are byte-identical,
warm-cache reruns perform zero simulations, timing-cache keys are
backend-scoped for identical workloads, and the Pareto-frontier
extraction is checked against a hand-built fixture (dominated points
excluded, exact ties kept).
"""

from __future__ import annotations

import json

import pytest

from repro.arch import backend_names, resolve_backend
from repro.fusion import TC
from repro.perfmodel import GemmShape, PerformanceModel, TimingCache
from repro.perfmodel.warpsets import gemm_launch
from repro.sim.smsim import clear_partition_memo
from repro.whatif import (
    WHATIF_BITS,
    WHATIF_STRATEGIES,
    WhatifPoint,
    pareto_frontier,
    run_whatif,
)

ALL_BACKENDS = backend_names()

#: A small sweep slice every per-backend test uses: one bitwidth and
#: two strategies on the tiny model keep each case to a handful of
#: fresh simulations.
SMALL = dict(bits=(8,), strategies=("TC", "VitBit"), model_name="test-tiny", batch=1)


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A private on-disk timing cache, reset around the test."""
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_REQUIRE_WARM_CACHE", raising=False)
    TimingCache.reset_default()
    clear_partition_memo()
    yield tmp_path / "cache"
    TimingCache.reset_default()


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_same_seed_reruns_are_byte_identical(backend, fresh_cache):
    first = run_whatif((backend,), processes=1, **SMALL)
    second = run_whatif((backend,), processes=1, **SMALL)
    blob1 = json.dumps(first.summary(), sort_keys=True)
    blob2 = json.dumps(second.summary(), sort_keys=True)
    assert blob1 == blob2


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_warm_cache_rerun_performs_zero_simulations(
    backend, fresh_cache, monkeypatch
):
    cold = run_whatif((backend,), processes=1, **SMALL)
    assert cold.sweep.simulations > 0  # the cache really was cold
    clear_partition_memo()
    TimingCache.reset_default()
    monkeypatch.setenv("REPRO_REQUIRE_WARM_CACHE", "1")
    warm = run_whatif((backend,), processes=1, **SMALL)
    assert warm.sweep.simulations == 0
    assert warm.sweep.cache_misses == 0
    assert json.dumps(warm.summary(), sort_keys=True) == json.dumps(
        cold.summary(), sort_keys=True
    )


def test_cache_keys_differ_across_backends_for_identical_workloads():
    shape = GemmShape(64, 256, 64)
    keys = set()
    for backend in ALL_BACKENDS:
        pm = PerformanceModel(resolve_backend(backend), clamp_ratio=True)
        launch = gemm_launch(
            shape, TC, pm.machine, pm.policy, pm.params, 4.0
        )
        keys.add(pm._cache_key(launch))
    assert len(keys) == len(ALL_BACKENDS)


def test_full_sweep_covers_every_backend(fresh_cache):
    report = run_whatif(processes=1, **SMALL)
    assert report.backends == ALL_BACKENDS
    for backend in ALL_BACKENDS:
        pts = report.backend_points(backend)
        assert len(pts) == len(SMALL["strategies"])
        assert report.pareto(backend)  # non-empty frontier per backend
    doc = report.summary()
    assert set(doc["backends"]) == set(ALL_BACKENDS)
    assert doc["global_pareto"]


def test_unknown_backend_fails_fast_listing_choices():
    from repro.errors import BackendError

    with pytest.raises(BackendError) as exc:
        run_whatif(("no-such-machine",), processes=1, **SMALL)
    message = str(exc.value)
    assert "no-such-machine" in message
    for name in ALL_BACKENDS:
        assert name in message


def test_default_sweep_axes_are_the_papers():
    assert WHATIF_BITS == (4, 8)
    assert set(WHATIF_STRATEGIES) == {"TC", "Tacker", "TC+IC+FC", "VitBit"}


def _pt(name, thr, energy, density, bits=8, strategy="TC"):
    return WhatifPoint(
        backend=name,
        bits=bits,
        strategy=strategy,
        total_seconds=1.0,
        throughput_inf_per_s=thr,
        energy_joules=energy,
        density_ops_per_s_mm2=density,
    )


class TestParetoFixture:
    """Hand-built frontier: dominance is exact, ties are kept."""

    def test_dominated_point_excluded(self):
        best = _pt("a", thr=10.0, energy=1.0, density=5.0)
        worse = _pt("b", thr=9.0, energy=2.0, density=4.0)  # loses on all
        assert pareto_frontier([best, worse]) == [best]

    def test_tradeoff_points_all_kept(self):
        fast = _pt("a", thr=10.0, energy=3.0, density=5.0)
        frugal = _pt("b", thr=5.0, energy=1.0, density=5.0)
        dense = _pt("c", thr=5.0, energy=3.0, density=9.0)
        assert pareto_frontier([fast, frugal, dense]) == [fast, frugal, dense]

    def test_exact_ties_are_all_kept(self):
        one = _pt("a", thr=10.0, energy=1.0, density=5.0)
        two = _pt("b", thr=10.0, energy=1.0, density=5.0)
        assert pareto_frontier([one, two]) == [one, two]

    def test_tie_on_some_metrics_strictly_worse_on_one_is_dominated(self):
        keep = _pt("a", thr=10.0, energy=1.0, density=5.0)
        drop = _pt("b", thr=10.0, energy=1.0, density=4.0)
        assert pareto_frontier([keep, drop]) == [keep]

    def test_input_order_preserved(self):
        pts = [
            _pt("c", thr=5.0, energy=3.0, density=9.0),
            _pt("a", thr=10.0, energy=3.0, density=5.0),
            _pt("b", thr=5.0, energy=1.0, density=5.0),
        ]
        assert pareto_frontier(pts) == pts

    def test_single_point_is_its_own_frontier(self):
        only = _pt("a", thr=1.0, energy=1.0, density=1.0)
        assert pareto_frontier([only]) == [only]

    def test_empty_input(self):
        assert pareto_frontier([]) == []
