"""Unit + property tests for the Fig. 3 packing policy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError, PackingError
from repro.packing import PackingPolicy, max_lanes_for_bitwidth, policy_for_bitwidth


class TestFig3Policy:
    """The exact table from Fig. 3 of the paper."""

    @pytest.mark.parametrize("bits", range(9, 33))
    def test_wide_values_use_zero_masking(self, bits):
        pol = policy_for_bitwidth(bits)
        assert pol.lanes == 1

    @pytest.mark.parametrize("bits", [6, 7, 8])
    def test_mid_values_pack_two(self, bits):
        pol = policy_for_bitwidth(bits)
        assert (pol.lanes, pol.field_bits) == (2, 16)

    def test_five_bit_packs_three(self):
        pol = policy_for_bitwidth(5)
        assert (pol.lanes, pol.field_bits) == (3, 10)

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_low_values_pack_four(self, bits):
        # Fig. 3(d): "up to 4 integer values with a bitwidth of lower
        # than [or equal to] 4" — the paper caps at 4.
        pol = policy_for_bitwidth(bits)
        assert pol.lanes == 4

    def test_uncapped_two_bit_packs_eight(self):
        assert policy_for_bitwidth(2, cap_lanes=None).lanes == 8

    def test_product_always_fits_field(self):
        for bits in range(1, 33):
            pol = policy_for_bitwidth(bits)
            if pol.lanes > 1:
                assert pol.field_bits >= 2 * bits

    def test_fields_fit_register(self):
        for bits in range(1, 33):
            pol = policy_for_bitwidth(bits)
            assert pol.lanes * pol.field_bits <= 32


class TestPolicyValidation:
    def test_carry_unsafe_policy_rejected(self):
        with pytest.raises(FormatError):
            PackingPolicy(value_bits=8, lanes=2, field_bits=12)

    def test_register_overflow_rejected(self):
        with pytest.raises(FormatError):
            PackingPolicy(value_bits=8, lanes=3, field_bits=16)

    def test_field_too_small_for_value(self):
        with pytest.raises(FormatError):
            PackingPolicy(value_bits=8, lanes=1, field_bits=4)

    def test_zero_lanes_rejected(self):
        with pytest.raises(FormatError):
            PackingPolicy(value_bits=8, lanes=0, field_bits=16)

    def test_bad_cap_rejected(self):
        with pytest.raises(FormatError):
            policy_for_bitwidth(8, cap_lanes=0)

    def test_bits_out_of_range(self):
        with pytest.raises(FormatError):
            max_lanes_for_bitwidth(0)
        with pytest.raises(FormatError):
            max_lanes_for_bitwidth(33)


class TestDerived:
    def test_masks(self):
        pol = policy_for_bitwidth(8)
        assert pol.value_mask == 0xFF
        assert pol.field_mask == 0xFFFF

    def test_shift_amounts(self):
        assert policy_for_bitwidth(8).shift_amounts == (0, 16)
        assert policy_for_bitwidth(4).shift_amounts == (0, 8, 16, 24)

    def test_registers_needed(self):
        pol = policy_for_bitwidth(8)
        assert pol.registers_needed(0) == 0
        assert pol.registers_needed(1) == 1
        assert pol.registers_needed(2) == 1
        assert pol.registers_needed(3) == 2

    def test_registers_needed_negative(self):
        with pytest.raises(PackingError):
            policy_for_bitwidth(8).registers_needed(-1)

    def test_bit_utilization_improves_with_packing(self):
        # Sec. 3.2: packing improves bit-level register utilization.
        packed = policy_for_bitwidth(8).bit_utilization()
        unpacked = PackingPolicy(value_bits=8, lanes=1, field_bits=32).bit_utilization()
        assert packed == pytest.approx(0.5)
        assert unpacked == pytest.approx(0.25)
        assert packed > unpacked

    def test_with_lanes_widens_fields(self):
        pol = policy_for_bitwidth(5).with_lanes(2)
        assert (pol.lanes, pol.field_bits) == (2, 16)

    def test_with_lanes_rejects_unsafe(self):
        with pytest.raises(FormatError):
            policy_for_bitwidth(8).with_lanes(3)


@given(st.integers(min_value=1, max_value=16))
def test_property_lane_count_monotone_nonincreasing(bits):
    """More bits can never allow more lanes."""
    if bits < 16:
        assert max_lanes_for_bitwidth(bits) >= max_lanes_for_bitwidth(bits + 1)


@given(st.integers(min_value=1, max_value=32))
def test_property_policy_is_self_consistent(bits):
    pol = policy_for_bitwidth(bits)
    assert 1 <= pol.lanes <= 4
    assert pol.lanes * pol.field_bits <= pol.register_bits
    if pol.lanes > 1:
        # One worst-case product per field, no carry into the neighbour.
        max_product = pol.max_value * pol.max_value
        assert max_product <= pol.field_mask
