"""Tests for the parallel sweep utility."""

from __future__ import annotations


import pytest

from repro.utils.parallel import default_processes, sweep


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError("bad point")
    return x


class TestSweep:
    def test_order_preserved_serial(self):
        assert sweep(_square, [3, 1, 2], processes=1) == [9, 1, 4]

    def test_order_preserved_parallel(self):
        out = sweep(_square, list(range(20)), processes=4)
        assert out == [x * x for x in range(20)]

    def test_empty(self):
        assert sweep(_square, [], processes=4) == []

    def test_single_point_runs_inline(self):
        assert sweep(_square, [7], processes=8) == [49]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            sweep(_boom, [1, 2, 3, 4], processes=2)

    def test_invalid_processes(self):
        with pytest.raises(ValueError):
            sweep(_square, [1], processes=0)

    def test_default_processes(self):
        assert default_processes() >= 1
        assert default_processes(limit=2) <= 2
        assert default_processes(limit=2) >= 1

    def test_matches_serial(self):
        pts = list(range(11))
        assert sweep(_square, pts, processes=3) == sweep(
            _square, pts, processes=1
        )


def test_sweep_with_simulated_machines():
    """Integration: the design-space worker is picklable and parallel
    results equal serial results."""
    import sys
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parents[1] / "examples"))
    from design_space_sweep import evaluate

    points = [(1.0, 1.0), (2.0, 1.0)]
    par = sweep(evaluate, points, processes=2)
    ser = sweep(evaluate, points, processes=1)
    assert par == ser
    assert par[0][2] == pytest.approx(1.19, abs=0.05)
