"""Unit + behavioural tests for the performance model."""

from __future__ import annotations

import pytest

from repro.errors import ModelConfigError
from repro.fusion import FC, IC, IC_FC, TACKER, TC, TC_IC_FC, VITBIT
from repro.fusion.strategies import Strategy
from repro.perfmodel import (
    ELEMENTWISE_KERNELS,
    CostParams,
    ElementwiseDesc,
    GemmShape,
    PerformanceModel,
    analytic_elementwise_seconds,
    analytic_gemm_seconds,
    calibrate,
)
from repro.perfmodel.warpsets import (
    elementwise_instruction_totals,
    gemm_bytes,
    gemm_instruction_totals,
)
from repro.packing import policy_for_bitwidth
from repro.sim.instruction import OpClass

POL8 = policy_for_bitwidth(8)
SHAPE = GemmShape(768, 1576, 768, name="proj")
CUDA_PACKED = Strategy(
    "IC+FC+P", False, True, True, True, "C", "packed CUDA-only"
)


@pytest.fixture(scope="module")
def pm_no_oh(machine):
    return PerformanceModel(machine, include_launch_overhead=False)


@pytest.fixture(scope="session")
def machine():
    from repro.arch import jetson_orin_agx

    return jetson_orin_agx()


class TestGemmShape:
    def test_macs_and_flops(self):
        s = GemmShape(2, 3, 4)
        assert s.macs == 24 and s.flops == 48

    def test_label(self):
        assert GemmShape(1, 2, 3, name="x").label() == "x (1x2x3)"
        assert GemmShape(1, 2, 3).label() == "1x2x3"

    def test_invalid_dims(self):
        with pytest.raises(ModelConfigError):
            GemmShape(0, 1, 1)


class TestDescriptors:
    def test_all_fig7_kernels_present(self):
        assert set(ELEMENTWISE_KERNELS) == {
            "softmax", "gelu", "layernorm", "dropout", "residual", "requantize",
        }

    def test_bad_packable_fraction(self):
        with pytest.raises(ModelConfigError):
            ElementwiseDesc(name="x", int_ops=1, fp_ops=1, packable_fraction=1.5)

    def test_bad_cost_params(self):
        with pytest.raises(ValueError):
            CostParams(resident_warps=0)
        with pytest.raises(ModelConfigError):
            CostParams(packed_byte_factor=0.0)


class TestInstructionTotals:
    def test_tc_only_has_no_cuda_instructions(self):
        plan = TC.split_plan(SHAPE.n, POL8, 4.0)
        totals = gemm_instruction_totals(SHAPE, plan, POL8, CostParams())
        assert totals[OpClass.INT] == 0
        assert totals[OpClass.FP] == 0
        assert totals[OpClass.TENSOR] > 0

    def test_packing_halves_int_instructions(self):
        base = gemm_instruction_totals(
            SHAPE, IC.split_plan(SHAPE.n, POL8, 0.0), POL8, CostParams()
        )
        packed_plan = CUDA_PACKED.split_plan(SHAPE.n, POL8, 0.0)
        packed = gemm_instruction_totals(SHAPE, packed_plan, POL8, CostParams())
        int_per_col_base = base[OpClass.INT] / SHAPE.n
        int_per_col_packed = packed[OpClass.INT] / packed_plan.n1
        assert int_per_col_packed == pytest.approx(int_per_col_base / 2)

    def test_spill_accounting_adds_instructions(self):
        plan = CUDA_PACKED.split_plan(SHAPE.n, POL8, 0.0)
        ideal = gemm_instruction_totals(SHAPE, plan, POL8, CostParams())
        taxed = gemm_instruction_totals(
            SHAPE, plan, POL8, CostParams(count_spills=True)
        )
        assert taxed[OpClass.INT] > ideal[OpClass.INT]

    def test_sign_split_doubles_int_instructions(self):
        plan = CUDA_PACKED.split_plan(SHAPE.n, POL8, 0.0)
        ideal = gemm_instruction_totals(SHAPE, plan, POL8, CostParams())
        taxed = gemm_instruction_totals(
            SHAPE, plan, POL8, CostParams(count_sign_split=True)
        )
        assert taxed[OpClass.INT] == pytest.approx(2 * ideal[OpClass.INT])

    def test_elementwise_totals_scale_linearly(self):
        desc = ELEMENTWISE_KERNELS["gelu"]
        small = elementwise_instruction_totals(desc, 1000, IC, POL8)
        large = elementwise_instruction_totals(desc, 2000, IC, POL8)
        for op in small:
            assert large[op] == pytest.approx(2 * small[op])

    def test_elementwise_rejects_tensor_only(self):
        with pytest.raises(ModelConfigError):
            elementwise_instruction_totals(
                ELEMENTWISE_KERNELS["gelu"], 100, TC, POL8
            )


class TestGemmBytes:
    def test_fp_slice_costs_weight_duplicate(self):
        tc_plan = TC.split_plan(SHAPE.n, POL8, 4.0)
        fused_plan = VITBIT.split_plan(SHAPE.n, POL8, 4.0)
        assert gemm_bytes(SHAPE, fused_plan, POL8) > gemm_bytes(
            SHAPE, tc_plan, POL8
        ) + SHAPE.m * SHAPE.k * 3  # at least the fp32 A2 stream

    def test_bytes_positive(self):
        for s in (TC, IC, FC, IC_FC):
            plan = s.split_plan(SHAPE.n, POL8, 4.0)
            assert gemm_bytes(SHAPE, plan, POL8) > 0


class TestTimeGemm:
    def test_monotone_in_work(self, pm_no_oh):
        small = pm_no_oh.time_gemm(GemmShape(256, 1576, 256), TC).seconds
        large = pm_no_oh.time_gemm(GemmShape(512, 1576, 512), TC).seconds
        assert large > small

    def test_results_cached(self, pm_no_oh):
        a = pm_no_oh.time_gemm(SHAPE, TC)
        b = pm_no_oh.time_gemm(SHAPE, TC)
        assert a is b

    def test_clear_cache(self, pm_no_oh):
        a = pm_no_oh.time_gemm(SHAPE, TC)
        pm_no_oh.clear_cache()
        b = pm_no_oh.time_gemm(SHAPE, TC)
        assert a is not b and a.seconds == b.seconds

    def test_launch_overhead_included_when_asked(self, machine):
        with_oh = PerformanceModel(machine, include_launch_overhead=True)
        without = PerformanceModel(machine, include_launch_overhead=False)
        t1 = with_oh.time_gemm(SHAPE, TC)
        t2 = without.time_gemm(SHAPE, TC)
        assert t1.seconds - t2.seconds == pytest.approx(
            machine.kernel_launch_overhead_us * 1e-6
        )
        assert t1.useful_seconds == pytest.approx(t2.seconds, rel=1e-6)

    def test_explicit_ratio_overrides_rule(self, pm_no_oh):
        auto = pm_no_oh.time_gemm(SHAPE, VITBIT)
        forced = pm_no_oh.time_gemm(SHAPE, VITBIT, tensor_cuda_ratio=1.0)
        assert forced.seconds > auto.seconds  # m=1 starves the Tensor cores

    def test_m_rule_matches_paper(self, pm_no_oh):
        assert pm_no_oh.determine_tensor_cuda_ratio(SHAPE, VITBIT) == 4
        assert pm_no_oh.determine_tensor_cuda_ratio(SHAPE, TACKER) >= 6

    def test_clamp_ratio_degrades_and_counts(self, machine, monkeypatch):
        """An inapplicable m rule (CUDA beats Tensor) clamps to m = 1 and
        bumps the model's counter when ``clamp_ratio=True``; strict models
        still raise."""
        from repro.errors import ScheduleError
        from repro.fusion.ratio import tensor_cuda_ratio_from_times
        from repro.perfmodel import model as model_mod

        def inverted(t_tc, t_cuda, *, round_to_int=True, clamp=False):
            # Pretend the measured times came out inverted.
            return tensor_cuda_ratio_from_times(
                1.4, 1.0, round_to_int=round_to_int, clamp=clamp
            )

        monkeypatch.setattr(model_mod, "tensor_cuda_ratio_from_times", inverted)

        strict = PerformanceModel(machine, include_launch_overhead=False)
        with pytest.raises(ScheduleError, match="clamp=True"):
            strict.determine_tensor_cuda_ratio(SHAPE, VITBIT)
        assert strict.ratio_clamps == 0

        lenient = PerformanceModel(
            machine, include_launch_overhead=False, clamp_ratio=True
        )
        assert lenient.determine_tensor_cuda_ratio(SHAPE, VITBIT) == 1.0
        assert lenient.ratio_clamps == 1
        # Memoized: a repeat does not double-count.
        assert lenient.determine_tensor_cuda_ratio(SHAPE, VITBIT) == 1.0
        assert lenient.ratio_clamps == 1
        # Per-call override beats the constructor default.
        with pytest.raises(ScheduleError):
            lenient.determine_tensor_cuda_ratio(SHAPE, VITBIT, clamp=False)

    def test_strategy_ordering_on_linear_kernels(self, pm_no_oh):
        """The paper's headline ordering at the GEMM level."""
        t = {
            s.name: pm_no_oh.time_gemm(SHAPE, s).seconds
            for s in (TC, TACKER, TC_IC_FC, VITBIT)
        }
        assert t["VitBit"] < t["TC+IC+FC"] < t["Tacker"] < t["TC"]


class TestTimeElementwise:
    def test_unknown_kernel_rejected(self, pm_no_oh):
        with pytest.raises(KeyError):
            pm_no_oh.time_elementwise("conv", 100, IC)

    def test_custom_descriptor_accepted(self, pm_no_oh):
        desc = ElementwiseDesc(name="custom", int_ops=4, fp_ops=4)
        kt = pm_no_oh.time_elementwise(desc, 100_000, IC)
        assert kt.seconds > 0

    def test_vitbit_beats_ic_on_every_fig7_kernel(self, pm_no_oh):
        n = 768 * 1576
        for kernel in ELEMENTWISE_KERNELS:
            t_ic = pm_no_oh.time_elementwise(kernel, n, IC).seconds
            t_vb = pm_no_oh.time_elementwise(kernel, n, VITBIT).seconds
            assert t_vb < t_ic, kernel

    def test_memory_bound_flag(self, pm_no_oh):
        kt = pm_no_oh.time_elementwise("gelu", 10_000_000, IC)
        assert kt.memory_bound


class TestAnalyticModel:
    def test_agrees_with_simulator(self, machine):
        report = calibrate(machine, tolerance=1.6)
        assert report.worst_ratio <= 1.6
        assert 0.8 <= report.mean_ratio <= 1.4

    def test_analytic_ordering_matches(self, machine):
        # The analytic model takes m explicitly; use each strategy's
        # balanced ratio (the m rule's output on this shape).
        ratios = {"TC": 4.0, "Tacker": 7.0, "TC+IC+FC": 6.0, "VitBit": 4.0}
        ana = {
            s.name: analytic_gemm_seconds(
                SHAPE, s, machine, POL8,
                tensor_cuda_ratio=ratios[s.name],
                include_launch_overhead=False,
            )
            for s in (TC, TACKER, TC_IC_FC, VITBIT)
        }
        assert ana["VitBit"] < ana["TC"]
        assert ana["TC+IC+FC"] < ana["Tacker"] < ana["TC"]

    def test_analytic_elementwise_positive(self, machine):
        t = analytic_elementwise_seconds(
            ELEMENTWISE_KERNELS["softmax"], 100_000, IC, machine, POL8
        )
        assert t > 0
