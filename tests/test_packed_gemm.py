"""Unit + property tests for the packed GEMM kernel (exactness)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingError
from repro.packing import (
    PackedGemmStats,
    packed_gemm,
    packed_gemm_unsigned,
    policy_for_bitwidth,
    reference_gemm,
)

POL8 = policy_for_bitwidth(8)


class TestUnsignedPath:
    @pytest.mark.parametrize("bits", [2, 3, 4, 5, 6, 7, 8])
    def test_exact_for_all_packable_bitwidths(self, bits, rng):
        pol = policy_for_bitwidth(bits)
        hi = pol.max_value + 1
        a = rng.integers(0, hi, size=(9, 40))
        b = rng.integers(0, hi, size=(40, 23))
        assert np.array_equal(
            packed_gemm_unsigned(a, b, pol), reference_gemm(a, b)
        )

    def test_exact_at_extremes(self):
        a = np.full((3, 16), 127, dtype=np.int64)
        b = np.full((16, 4), 255, dtype=np.int64)
        assert np.array_equal(packed_gemm_unsigned(a, b, POL8), reference_gemm(a, b))

    def test_single_column(self, rng):
        a = rng.integers(0, 128, size=(4, 10))
        b = rng.integers(0, 256, size=(10, 1))
        assert np.array_equal(packed_gemm_unsigned(a, b, POL8), reference_gemm(a, b))

    def test_odd_column_count(self, rng):
        a = rng.integers(0, 128, size=(4, 10))
        b = rng.integers(0, 256, size=(10, 7))
        assert np.array_equal(packed_gemm_unsigned(a, b, POL8), reference_gemm(a, b))

    def test_k_of_one(self, rng):
        a = rng.integers(0, 128, size=(4, 1))
        b = rng.integers(0, 256, size=(1, 6))
        assert np.array_equal(packed_gemm_unsigned(a, b, POL8), reference_gemm(a, b))

    def test_negative_a_rejected(self):
        a = np.array([[-1, 2]])
        b = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(PackingError):
            packed_gemm_unsigned(a, b, POL8)

    def test_oversized_b_rejected(self):
        a = np.ones((1, 1), dtype=np.int64)
        b = np.array([[256]])
        with pytest.raises(PackingError):
            packed_gemm_unsigned(a, b, POL8)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PackingError):
            packed_gemm_unsigned(
                np.ones((2, 3), dtype=np.int64), np.ones((4, 2), dtype=np.int64), POL8
            )


class TestSignedPath:
    def test_signed_a_unsigned_b(self, rng):
        a = rng.integers(-127, 128, size=(8, 50))
        b = rng.integers(0, 256, size=(50, 12))
        assert np.array_equal(packed_gemm(a, b, POL8), reference_gemm(a, b))

    def test_signed_a_signed_b_with_zero_point(self, rng):
        a = rng.integers(-127, 128, size=(8, 50))
        b = rng.integers(-128, 128, size=(50, 12))
        got = packed_gemm(a, b, POL8, b_zero_point=128)
        assert np.array_equal(got, reference_gemm(a, b))

    def test_all_negative_a(self, rng):
        a = -rng.integers(1, 128, size=(4, 20))
        b = rng.integers(0, 256, size=(20, 6))
        assert np.array_equal(packed_gemm(a, b, POL8), reference_gemm(a, b))

    def test_unsigned_a_falls_back_to_single_pass(self, rng):
        a = rng.integers(0, 128, size=(4, 20))
        b = rng.integers(0, 256, size=(20, 6))
        stats = PackedGemmStats()
        packed_gemm(a, b, POL8, stats=stats)
        assert stats.sign_split_passes == 1

    def test_sign_split_costs_two_passes(self, rng):
        a = rng.integers(-127, 128, size=(4, 20))
        b = rng.integers(0, 256, size=(20, 6))
        stats = PackedGemmStats()
        packed_gemm(a, b, POL8, stats=stats)
        assert stats.sign_split_passes == 2

    def test_signed_b_without_zero_point_rejected(self):
        a = np.ones((1, 2), dtype=np.int64)
        b = np.array([[-1], [1]])
        with pytest.raises(PackingError):
            packed_gemm(a, b, POL8)

    def test_negative_zero_point_rejected(self):
        a = np.ones((1, 2), dtype=np.int64)
        b = np.ones((2, 2), dtype=np.int64)
        with pytest.raises(PackingError):
            packed_gemm(a, b, POL8, b_zero_point=-1)


class TestStats:
    def test_instruction_reduction_approaches_lanes(self, rng):
        """With N a multiple of lanes and no spill accounting, the packed
        multiply count is exactly unpacked/lanes."""
        a = rng.integers(0, 128, size=(16, 64))
        b = rng.integers(0, 256, size=(64, 32))
        stats = PackedGemmStats()
        packed_gemm_unsigned(a, b, POL8, stats=stats)
        assert stats.packed_multiplies == stats.unpacked_multiplies // 2

    def test_dims_recorded(self, rng):
        a = rng.integers(0, 128, size=(3, 5))
        b = rng.integers(0, 256, size=(5, 4))
        stats = PackedGemmStats()
        packed_gemm_unsigned(a, b, POL8, stats=stats)
        assert (stats.m, stats.n, stats.k, stats.lanes) == (3, 4, 5, 2)

    def test_empty_stats_reduction_is_one(self):
        assert PackedGemmStats().instruction_reduction == 1.0


@settings(max_examples=60, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=8),
    m=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_signed_packed_gemm_exact(bits, m, n, k, seed):
    """Packed GEMM == reference GEMM for arbitrary shapes/bitwidths/signs."""
    pol = policy_for_bitwidth(bits)
    rng = np.random.default_rng(seed)
    bound = (1 << (bits - 1)) if bits > 1 else 1
    a = rng.integers(-(bound - 1) if bits > 1 else 0, bound, size=(m, k))
    b = rng.integers(-bound if bits > 1 else 0, bound, size=(k, n))
    got = packed_gemm(a, b, pol, b_zero_point=bound if bits > 1 else None)
    assert np.array_equal(got, reference_gemm(a, b))
