"""Unit tests for strategies (Table 3), ratios (Eq. 1), and scheduling."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.fusion import (
    FC,
    IC,
    IC_FC,
    PAPER_TENSOR_CUDA_RATIO,
    STRATEGIES,
    TACKER,
    TC,
    TC_IC_FC,
    VITBIT,
    eq1_int_fp_ratio,
    interleave_warp_roles,
    strategy_by_name,
    tensor_cuda_ratio_from_times,
)
from repro.fusion.strategies import Strategy
from repro.packing import policy_for_bitwidth

POL8 = policy_for_bitwidth(8)


class TestTable3:
    def test_seven_strategies_in_paper_order(self):
        assert [s.name for s in STRATEGIES] == [
            "TC", "IC", "FC", "IC+FC", "Tacker", "TC+IC+FC", "VitBit",
        ]

    def test_scopes_match_table3(self):
        scopes = {s.name: s.kernel_scope for s in STRATEGIES}
        assert scopes == {
            "TC": "T", "IC": "C", "FC": "C", "IC+FC": "C",
            "Tacker": "T", "TC+IC+FC": "T", "VitBit": "T,C",
        }

    def test_only_vitbit_packs(self):
        assert [s.name for s in STRATEGIES if s.packing] == ["VitBit"]

    def test_unit_engagement(self):
        assert TC.uses_tensor and not TC.uses_cuda
        assert IC.uses_int and not IC.uses_fp and not IC.uses_tensor
        assert FC.uses_fp and not FC.uses_int
        assert TACKER.uses_tensor and TACKER.uses_int and not TACKER.uses_fp
        assert all(getattr(TC_IC_FC, f"uses_{u}") for u in ("tensor", "int", "fp"))

    def test_lookup_by_name(self):
        assert strategy_by_name("vitbit") is VITBIT
        assert strategy_by_name("IC+FC") is IC_FC
        with pytest.raises(ScheduleError):
            strategy_by_name("nope")

    def test_invalid_strategies_rejected(self):
        with pytest.raises(ScheduleError):
            Strategy("x", False, False, False, False, "T", "no units")
        with pytest.raises(ScheduleError):
            Strategy("x", False, False, True, True, "C", "packs without INT")
        with pytest.raises(ScheduleError):
            Strategy("x", True, False, False, False, "X", "bad scope")


class TestSplitPlans:
    def test_tc_plan_is_tensor_only(self):
        plan = TC.split_plan(100, POL8, 4.0)
        assert (plan.n1, plan.n2, plan.n3) == (0, 0, 100)

    def test_ic_plan_is_int_only(self):
        plan = IC.split_plan(100, POL8, 4.0)
        assert (plan.n1, plan.n2, plan.n3) == (100, 0, 0)

    def test_fc_plan_is_fp_only(self):
        plan = FC.split_plan(100, POL8, 4.0)
        assert (plan.n1, plan.n2, plan.n3) == (0, 100, 0)

    def test_icfc_splits_evenly(self):
        plan = IC_FC.split_plan(100, POL8, 4.0)
        assert plan.n3 == 0
        assert plan.n1 == 50 and plan.n2 == 50

    def test_vitbit_plan_uses_eq1(self):
        plan = VITBIT.split_plan(1000, POL8, 4.0)
        assert plan.n3 == 800
        # Eq. 1 with n = 2 lanes: INT gets ~2/3 of the CUDA columns.
        assert plan.n1 == pytest.approx(2 * plan.n2, abs=2 * POL8.lanes)
        assert plan.n1 % POL8.lanes == 0

    def test_tacker_plan_has_no_fp(self):
        plan = TACKER.split_plan(800, POL8, 7.0)
        assert plan.n2 == 0 and plan.n1 > 0 and plan.n3 > 0

    def test_fused_strategy_requires_positive_m(self):
        with pytest.raises(ScheduleError):
            VITBIT.split_plan(100, POL8, 0.0)

    def test_pack_factor(self):
        assert VITBIT.pack_factor(POL8) == 2
        assert IC.pack_factor(POL8) == 1
        assert VITBIT.pack_factor(policy_for_bitwidth(4)) == 4


class TestEq1:
    def test_ratio_equals_lanes_with_packing(self):
        assert eq1_int_fp_ratio(POL8, packing=True) == 2
        assert eq1_int_fp_ratio(policy_for_bitwidth(4), packing=True) == 4

    def test_ratio_is_one_without_packing(self):
        assert eq1_int_fp_ratio(POL8, packing=False) == 1


class TestMRule:
    def test_paper_ratio(self):
        assert PAPER_TENSOR_CUDA_RATIO == 4.0

    def test_ratio_from_times(self):
        assert tensor_cuda_ratio_from_times(1.0, 4.2) == 4
        assert tensor_cuda_ratio_from_times(1.0, 4.2, round_to_int=False) == 4.2

    def test_rejects_nonpositive(self):
        with pytest.raises(ScheduleError):
            tensor_cuda_ratio_from_times(0.0, 4.0)

    def test_rejects_inverted(self):
        with pytest.raises(ScheduleError):
            tensor_cuda_ratio_from_times(2.0, 1.0)

    def test_inverted_message_mentions_clamp(self):
        with pytest.raises(ScheduleError, match="clamp=True"):
            tensor_cuda_ratio_from_times(1.4, 1.0)

    def test_clamp_degrades_to_unit_ratio_with_warning(self):
        import warnings

        from repro.errors import RatioClampWarning

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            m = tensor_cuda_ratio_from_times(1.4, 1.0, clamp=True)
        assert m == 1.0
        assert any(issubclass(w.category, RatioClampWarning) for w in caught)

    def test_clamp_does_not_alter_applicable_rule(self):
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert tensor_cuda_ratio_from_times(1.0, 4.2, clamp=True) == 4
        assert not caught

    def test_clamp_still_rejects_nonpositive_times(self):
        with pytest.raises(ScheduleError):
            tensor_cuda_ratio_from_times(0.0, 4.0, clamp=True)


class TestInterleave:
    def test_tensor_first(self):
        roles = interleave_warp_roles(2, 2, 2)
        assert roles[:2] == ["tensor", "tensor"]

    def test_alternating_singles(self):
        roles = interleave_warp_roles(0, 3, 3)
        assert roles == ["int", "fp", "int", "fp", "int", "fp"]

    def test_grouped_alternation(self):
        roles = interleave_warp_roles(0, 8, 8, group=4)
        assert roles == ["int"] * 4 + ["fp"] * 4 + ["int"] * 4 + ["fp"] * 4

    def test_group_respects_uneven_counts(self):
        roles = interleave_warp_roles(0, 6, 2, group=4)
        assert roles.count("int") == 6 and roles.count("fp") == 2

    def test_contiguous_mode(self):
        roles = interleave_warp_roles(1, 2, 2, alternate=False)
        assert roles == ["tensor", "int", "int", "fp", "fp"]

    def test_all_counts_preserved(self):
        for nt, ni, nf in [(0, 5, 7), (3, 0, 4), (2, 9, 0), (1, 1, 1)]:
            roles = interleave_warp_roles(nt, ni, nf, group=4)
            assert roles.count("tensor") == nt
            assert roles.count("int") == ni
            assert roles.count("fp") == nf

    def test_negative_rejected(self):
        with pytest.raises(ScheduleError):
            interleave_warp_roles(-1, 0, 0)

    def test_bad_group_rejected(self):
        with pytest.raises(ScheduleError):
            interleave_warp_roles(0, 1, 1, group=0)
