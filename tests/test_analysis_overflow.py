"""The lane-overflow prover vs brute-force strict SWAR execution.

The prover's contract: a SAFE verdict means no inputs within the
declared ranges can raise ``OverflowBudgetError`` under ``strict=True``
execution, and a refutation's witness must reproduce the overflow at
exactly the step it names.  Both directions are property-tested across
bitwidths 4..9.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverflowBudgetError, PackingError
from repro.analysis import (
    Interval,
    Severity,
    preflight_gemm,
    prove_packed_accumulation,
)
from repro.analysis.overflow import UNBOUNDED_DEPTH
from repro.packing import policy_for_bitwidth, safe_accumulation_depth
from repro.packing.gemm import packed_gemm_unsigned
from repro.packing.packer import Packer
from repro.packing.swar import packed_add, packed_scalar_mul


def _run_chain(policy, scalar: int, lane_value: int, depth: int) -> None:
    """Accumulate ``depth`` products under strict SWAR semantics."""
    packer = Packer(policy)
    reg = packer.pack(np.full((policy.lanes,), lane_value, dtype=np.int64))
    acc = np.zeros_like(reg)
    for _ in range(depth):
        prod = packed_scalar_mul(int(scalar), reg, policy, strict=True)
        acc = packed_add(acc, prod, policy, strict=True)


class TestInterval:
    def test_point_and_bits(self):
        assert Interval.point(5) == Interval(5, 5)
        assert Interval.from_bits(8) == Interval(0, 255)
        assert Interval.from_bits(0) == Interval(0, 0)

    def test_empty_interval_rejected(self):
        with pytest.raises(PackingError):
            Interval(3, 2)

    def test_arithmetic_is_sound(self):
        a, b = Interval(-2, 3), Interval(1, 4)
        assert a + b == Interval(-1, 7)
        assert a * b == Interval(-8, 12)
        assert Interval(2, 3).scale(4) == Interval(8, 12)
        assert a.join(b) == Interval(-2, 4)

    def test_fits(self):
        assert Interval(0, 255).fits(255)
        assert not Interval(0, 256).fits(255)
        assert not Interval(-1, 0).fits(255)


class TestProverAgainstExecution:
    @settings(max_examples=60, deadline=None)
    @given(bits=st.integers(4, 9), k=st.integers(1, 64))
    def test_verdict_matches_strict_execution(self, bits, k):
        policy = policy_for_bitwidth(bits)
        proof = prove_packed_accumulation(policy, k=k)
        a_max = (1 << policy.effective_multiplier_bits) - 1
        if proof.safe:
            # Proof: even the worst-case inputs cannot overflow.
            _run_chain(policy, a_max, policy.max_value, k)
        else:
            w = proof.witness
            assert w is not None
            assert w.depth <= k
            with pytest.raises(OverflowBudgetError):
                _run_chain(policy, w.scalar, w.lane_value, w.depth)

    @settings(max_examples=40, deadline=None)
    @given(bits=st.integers(4, 9))
    def test_witness_overflows_at_exactly_its_depth(self, bits):
        policy = policy_for_bitwidth(bits)
        proof = prove_packed_accumulation(policy, k=4096)
        if proof.safe:  # 9-bit single-lane plans have huge budgets
            assert proof.max_safe_depth >= 4096
            return
        w = proof.witness
        assert w is not None
        if w.depth > 1:
            # One step earlier the chain is still exact...
            _run_chain(policy, w.scalar, w.lane_value, w.depth - 1)
        # ...and the named step overflows.
        with pytest.raises(OverflowBudgetError):
            _run_chain(policy, w.scalar, w.lane_value, w.depth)

    @settings(max_examples=60, deadline=None)
    @given(bits=st.integers(4, 9), k=st.integers(1, 32), seed=st.integers(0, 2**16))
    def test_safe_verdict_covers_random_inputs(self, bits, k, seed):
        policy = policy_for_bitwidth(bits)
        proof = prove_packed_accumulation(policy, k=k)
        if not proof.safe:
            return
        rng = np.random.default_rng(seed)
        packer = Packer(policy)
        a_max = (1 << policy.effective_multiplier_bits) - 1
        reg = packer.pack(
            rng.integers(0, policy.max_value + 1, size=policy.lanes, dtype=np.int64)
        )
        acc = np.zeros_like(reg)
        for _ in range(k):
            s = int(rng.integers(0, a_max + 1))
            acc = packed_add(
                acc, packed_scalar_mul(s, reg, policy, strict=True), policy, strict=True
            )

    @settings(max_examples=60, deadline=None)
    @given(bits=st.integers(2, 12))
    def test_budget_agrees_with_accumulate_module(self, bits):
        policy = policy_for_bitwidth(bits)
        a_bits = policy.effective_multiplier_bits
        proof = prove_packed_accumulation(policy, k=1 << 20)
        assert proof.max_safe_depth == safe_accumulation_depth(
            policy, a_bits, policy.value_bits
        )


class TestProverDiagnostics:
    def test_refutation_is_vb101_with_witness(self):
        proof = prove_packed_accumulation(policy_for_bitwidth(8), k=4096)
        assert not proof.safe
        codes = {d.code for d in proof.diagnostics}
        assert "VB101" in codes
        assert proof.witness is not None
        assert proof.witness.lane_total > proof.witness.field_limit

    def test_chunked_plan_is_proved_safe(self):
        policy = policy_for_bitwidth(8)
        proof = prove_packed_accumulation(policy, k=4096, chunk_depth=1)
        assert proof.safe and proof.witness is None
        assert any(d.code == "VB106" for d in proof.diagnostics)

    def test_out_of_range_payloads_are_vb104(self):
        policy = policy_for_bitwidth(8)
        proof = prove_packed_accumulation(
            policy, k=1, b_range=Interval(0, 1000), chunk_depth=1
        )
        assert not proof.safe
        assert any(d.code == "VB104" for d in proof.diagnostics)

    def test_wide_scalar_is_vb105_when_product_still_fits(self):
        policy = policy_for_bitwidth(4)  # 4 lanes, 8-bit fields
        # 16 x 15 = 240 still fits the 8-bit field: warning only.
        proof = prove_packed_accumulation(
            policy, k=1, a_range=Interval(0, 16), chunk_depth=1
        )
        diag = next(d for d in proof.diagnostics if d.code == "VB105")
        assert diag.severity is Severity.WARNING
        assert diag.data["widths"]["a_bits_seen"] == 5

    def test_asymmetric_refutation_is_structured_vb107(self):
        policy = policy_for_bitwidth(4)  # 4 lanes, 8-bit fields
        # 63 x 15 = 945 cannot fit any 8-bit field: the asymmetric pair
        # refutes the plan with a machine-readable diagnostic carrying
        # the offending widths (not a bare exception).
        proof = prove_packed_accumulation(policy, k=1, a_bits=6)
        assert not proof.safe
        diag = next(d for d in proof.diagnostics if d.code == "VB107")
        assert diag.severity is Severity.ERROR
        widths = diag.data["widths"]
        assert widths["a_bits_seen"] == 6
        assert widths["a_bits_declared"] == 4
        assert widths["b_bits"] == 4
        assert widths["field_bits"] == 8
        assert "policy_for_operands" in diag.hint

    def test_negative_scalars_rejected(self):
        with pytest.raises(PackingError):
            prove_packed_accumulation(
                policy_for_bitwidth(8), k=4, a_range=Interval(-1, 3)
            )

    def test_degenerate_operands_unbounded(self):
        proof = prove_packed_accumulation(
            policy_for_bitwidth(8), k=1 << 20, b_range=Interval(0, 0)
        )
        assert proof.safe
        assert proof.max_safe_depth == UNBOUNDED_DEPTH


class TestPreflight:
    def test_preflight_passes_seed_plans(self):
        for bits in range(2, 13):
            policy = policy_for_bitwidth(bits)
            proof = preflight_gemm(
                policy, a_bits=policy.effective_multiplier_bits, k=768
            )
            assert proof.safe

    def test_preflight_refutes_impossible_plan(self):
        # A 16-bit multiplier against 8-bit lanes in 16-bit fields: a
        # single product cannot fit, so no chunk depth helps.
        with pytest.raises(OverflowBudgetError, match="refuted"):
            preflight_gemm(policy_for_bitwidth(8), a_bits=16, k=16)

    def test_packed_gemm_runs_preflight(self):
        # Operands wider than any safe plan fail before packing.
        policy = policy_for_bitwidth(8)
        a = np.array([[1 << 16]], dtype=np.int64)
        b = np.array([[1]], dtype=np.int64)
        with pytest.raises(OverflowBudgetError, match="refuted"):
            packed_gemm_unsigned(a, b, policy)

    def test_packed_gemm_still_exact_after_preflight(self):
        rng = np.random.default_rng(7)
        policy = policy_for_bitwidth(8)
        a = rng.integers(0, 256, (8, 24), dtype=np.int64)
        b = rng.integers(0, 256, (24, 10), dtype=np.int64)
        c = packed_gemm_unsigned(a, b, policy)
        assert np.array_equal(c, a @ b)
