"""Integration tests for end-to-end inference timing (Fig. 5 machinery)."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import ModelConfigError
from repro.fusion import FC, IC, IC_FC, TACKER, TC, TC_IC_FC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.vit import time_inference, vit_workload
from repro.vit.runtime import cuda_kernel_strategy_for, gemm_strategy_for


@pytest.fixture(scope="module")
def pm():
    return PerformanceModel(jetson_orin_agx())


class TestStrategyMapping:
    def test_t_scope_keeps_ic_elementwise(self):
        for s in (TC, TACKER, TC_IC_FC):
            assert cuda_kernel_strategy_for(s) is IC

    def test_vitbit_applies_to_both(self):
        assert cuda_kernel_strategy_for(VITBIT) is VITBIT
        assert gemm_strategy_for(VITBIT) is VITBIT

    def test_c_scope_keeps_tc_gemms(self):
        for s in (IC, FC, IC_FC):
            assert gemm_strategy_for(s) is TC
            assert cuda_kernel_strategy_for(s) is s


class TestTimeInference:
    def test_totals_decompose(self, pm):
        t = time_inference(pm, TC)
        assert t.total_seconds == pytest.approx(
            t.gemm_seconds + t.elementwise_seconds
        )
        assert t.kernel_launches == sum(kw.repeat for kw in vit_workload())
        assert len(t.per_kernel) > 0

    def test_fig5_ordering(self, pm):
        base = time_inference(pm, TC).total_seconds
        speedups = {
            s.name: base / time_inference(pm, s).total_seconds
            for s in (TACKER, TC_IC_FC, VITBIT)
        }
        assert 1.0 < speedups["Tacker"] < speedups["TC+IC+FC"] < speedups["VitBit"]
        assert speedups["VitBit"] == pytest.approx(1.22, abs=0.06)

    def test_seconds_for_prefix(self, pm):
        t = time_inference(pm, TC)
        assert t.seconds_for("fc") > 0
        assert t.seconds_for("nonexistent") == 0.0

    def test_empty_workload_rejected(self, pm):
        with pytest.raises(ModelConfigError):
            time_inference(pm, TC, workload=[])

    def test_batch_scales_time(self, pm):
        small = time_inference(pm, TC, batch=4).total_seconds
        large = time_inference(pm, TC, batch=16).total_seconds
        assert large > 1.5 * small

    def test_instruction_totals_positive(self, pm):
        t = time_inference(pm, VITBIT)
        assert t.instructions > 0
        assert sum(t.issued.values()) == pytest.approx(t.instructions)

    def test_gemm_fraction_dominates(self, pm):
        """The compute-bound regime DESIGN.md argues for: GEMMs are the
        majority of TC-baseline inference time at the default batch."""
        t = time_inference(pm, TC)
        assert t.gemm_seconds > 0.55 * t.total_seconds
