"""Unit + property tests for SWAR primitives (carry isolation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverflowBudgetError, PackingError
from repro.packing import (
    Packer,
    lane_extract,
    lane_insert,
    lanes_extract,
    packed_add,
    packed_scalar_mul,
    policy_for_bitwidth,
)

POL8 = policy_for_bitwidth(8)
POL4 = policy_for_bitwidth(4)


class TestPackedAdd:
    def test_lanewise_addition(self):
        p = Packer(POL8)
        x = p.pack(np.array([10, 20]))
        y = p.pack(np.array([1, 2]))
        out = packed_add(x, y, POL8)
        assert p.unpack(out, 2).tolist() == [11, 22]

    def test_no_cross_lane_carry_when_in_budget(self):
        p = Packer(POL8)
        # Lane sums up to the field max are fine.
        x = p.pack(np.array([255, 255]))
        y = Packer(POL8).pack(np.array([255, 255]))
        # 255 + 255 = 510 < 65535 -> legal.
        out = packed_add(x, y, POL8)
        assert p.unpack(out, 2).tolist() == [510, 510]

    def test_overflow_detected(self):
        # Construct registers whose lane-0 field is nearly full.
        x = np.array([0xFFFF], dtype=np.uint32)
        y = np.array([0x0001], dtype=np.uint32)
        with pytest.raises(OverflowBudgetError):
            packed_add(x, y, POL8)

    def test_nonstrict_wraps_like_hardware(self):
        x = np.array([0xFFFF], dtype=np.uint32)
        y = np.array([0x0001], dtype=np.uint32)
        out = packed_add(x, y, POL8, strict=False)
        # The carry corrupts lane 1 — exactly what the hardware would do.
        assert out.tolist() == [0x10000]

    def test_wrong_dtype_rejected(self):
        with pytest.raises(PackingError):
            packed_add(np.array([1], dtype=np.int64), np.array([1], dtype=np.uint32), POL8)


class TestPackedScalarMul:
    def test_single_multiply_computes_all_lanes(self):
        # The paper's claim: "a single multiplication automatically
        # completes the multiplications with packed values."
        p = Packer(POL8)
        x = p.pack(np.array([3, 7]))
        out = packed_scalar_mul(5, x, POL8)
        assert p.unpack(out, 2).tolist() == [15, 35]

    def test_worst_case_products_fit(self):
        p = Packer(POL8)
        x = p.pack(np.array([255, 255]))
        out = packed_scalar_mul(255, x, POL8)
        assert p.unpack(out, 2).tolist() == [255 * 255, 255 * 255]

    def test_four_lane_multiply(self):
        p = Packer(POL4)
        x = p.pack(np.array([1, 2, 3, 15]))
        out = packed_scalar_mul(15, x, POL4)
        assert p.unpack(out, 4).tolist() == [15, 30, 45, 225]

    def test_negative_scalar_rejected(self):
        x = Packer(POL8).pack(np.array([1, 2]))
        with pytest.raises(PackingError):
            packed_scalar_mul(-1, x, POL8)

    def test_oversized_scalar_overflow_detected(self):
        # A 9-bit scalar times an 8-bit lane can exceed the 16-bit field.
        x = Packer(POL8).pack(np.array([255, 255]))
        with pytest.raises(OverflowBudgetError):
            packed_scalar_mul(500, x, POL8)

    def test_broadcast_scalar_array(self):
        p = Packer(POL8)
        x = p.pack(np.array([[2, 3], [4, 5]]))  # (2, 1) registers
        s = np.array([[10], [100]])
        out = packed_scalar_mul(s, x, POL8)
        assert p.unpack(out, 2).tolist() == [[20, 30], [400, 500]]


class TestLaneAccess:
    def test_extract(self):
        p = Packer(POL4)
        x = p.pack(np.array([1, 2, 3, 4]))
        assert [lane_extract(x, i, POL4).tolist()[0] for i in range(4)] == [1, 2, 3, 4]

    def test_insert(self):
        p = Packer(POL4)
        x = p.pack(np.array([1, 2, 3, 4]))
        y = lane_insert(x, 2, np.array([9]), POL4)
        assert p.unpack(y, 4).tolist() == [1, 2, 9, 4]

    def test_extract_bad_lane(self):
        x = np.zeros(1, dtype=np.uint32)
        with pytest.raises(PackingError):
            lane_extract(x, 2, POL8)

    def test_insert_bad_value(self):
        x = np.zeros(1, dtype=np.uint32)
        with pytest.raises(PackingError):
            lane_insert(x, 0, np.array([1 << 20]), POL8)

    def test_lanes_extract_matches_per_lane(self):
        """One broadcast pass == the per-lane loop it replaces, lane 0
        (least significant) first."""
        p = Packer(POL4)
        x = p.pack(np.array([1, 2, 3, 4, 5, 6, 7, 8]))
        allx = lanes_extract(x, POL4)
        assert allx.shape == x.shape + (POL4.lanes,)
        assert allx.dtype == np.int64
        for lane in range(POL4.lanes):
            assert np.array_equal(allx[..., lane], lane_extract(x, lane, POL4))

    def test_lanes_extract_multidim_and_empty(self):
        x2 = np.zeros((3, 5), dtype=np.uint32)
        assert lanes_extract(x2, POL8).shape == (3, 5, POL8.lanes)
        empty = np.zeros(0, dtype=np.uint32)
        assert lanes_extract(empty, POL8).shape == (0, POL8.lanes)

    def test_lanes_extract_wrong_dtype_rejected(self):
        with pytest.raises(PackingError):
            lanes_extract(np.zeros(4, dtype=np.int32), POL8)


@settings(max_examples=200, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_scalar_mul_equals_elementwise(bits, data):
    """packed multiply == element-wise multiply after unpack, always."""
    pol = policy_for_bitwidth(bits)
    n = data.draw(st.integers(min_value=1, max_value=32))
    vals = np.array(
        data.draw(
            st.lists(
                st.integers(0, pol.max_value), min_size=n, max_size=n
            )
        ),
        dtype=np.int64,
    )
    scalar = data.draw(st.integers(0, pol.max_value))
    p = Packer(pol)
    out = packed_scalar_mul(scalar, p.pack(vals), pol)
    assert np.array_equal(p.unpack(out, n), vals * scalar)


@settings(max_examples=200, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=8),
    data=st.data(),
)
def test_property_add_equals_elementwise(bits, data):
    """packed add == element-wise add when lane sums stay in budget."""
    pol = policy_for_bitwidth(bits)
    n = data.draw(st.integers(min_value=1, max_value=32))
    half = pol.field_mask // 2
    lo = min(pol.max_value, half)
    xs = np.array(data.draw(st.lists(st.integers(0, lo), min_size=n, max_size=n)))
    ys = np.array(data.draw(st.lists(st.integers(0, lo), min_size=n, max_size=n)))
    p = Packer(pol)
    out = packed_add(p.pack(xs), p.pack(ys), pol)
    assert np.array_equal(p.unpack(out, n), xs + ys)
