"""Bit-identity of the periodic fast-forward engine vs the exact loop.

The ``"periodic"`` engine (the default, see
:mod:`repro.sim.smsim`) detects steady-state recurrence and advances
whole periods arithmetically.  Its contract is *bit-identity*: every
field of :class:`~repro.sim.trace.PartitionStats` must equal the plain
cycle loop's, on any workload — the property corpus below exercises
both scheduling policies, mixed segment bodies, empty-warp padding and
tail iterations, and a regression check pins the Fig. 10 IPC numbers.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.specs import SMSpec
from repro.errors import SimulationError
from repro.sim import OpClass, SubPartitionSim, WarpProgram, default_timings
from repro.sim import _jit
from repro.sim.instruction import PipeTiming
from repro.sim.smsim import (
    SIM_MODES,
    SMSim,
    clear_partition_memo,
    clear_schedule_memo,
)

TIMINGS = default_timings(SMSpec())

ops = st.sampled_from(
    [OpClass.INT, OpClass.FP, OpClass.TENSOR, OpClass.LSU, OpClass.MISC]
)
segments = st.lists(
    st.tuples(ops, st.integers(min_value=1, max_value=5)),
    min_size=1,
    max_size=4,
)
# Mixed bodies; iteration counts reach deep enough for the detector to
# lock onto a period, and 1-iteration programs exercise pure tails.
programs = st.one_of(
    st.builds(
        WarpProgram,
        body=segments.map(tuple),
        iterations=st.integers(min_value=1, max_value=80),
    ),
    st.just(WarpProgram.empty()),  # padding warps
)
policies = st.sampled_from(["oldest", "lrr"])
timings_strategy = st.fixed_dictionaries(
    {
        op: st.builds(
            PipeTiming,
            initiation_interval=st.integers(min_value=1, max_value=8),
            issue_gap=st.integers(min_value=1, max_value=6),
        )
        for op in (OpClass.INT, OpClass.FP, OpClass.TENSOR, OpClass.LSU,
                   OpClass.MISC)
    }
)


def _stats_tuple(stats):
    return (stats.cycles, stats.issued, stats.pipe_busy, stats.idle_cycles)


@settings(max_examples=150, deadline=None)
@given(warps=st.lists(programs, min_size=1, max_size=10), policy=policies)
def test_property_periodic_bit_identical_default_timings(warps, policy):
    """Periodic == exact on every PartitionStats field (Orin timings)."""
    exact = SubPartitionSim(TIMINGS, warps, policy=policy, mode="exact").run()
    fast = SubPartitionSim(TIMINGS, warps, policy=policy, mode="periodic").run()
    assert _stats_tuple(fast) == _stats_tuple(exact)


@settings(max_examples=100, deadline=None)
@given(
    warps=st.lists(programs, min_size=1, max_size=8),
    policy=policies,
    timings=timings_strategy,
)
def test_property_periodic_bit_identical_random_timings(warps, policy, timings):
    """Bit-identity must hold for arbitrary pipe timings, not just the
    calibrated Orin set."""
    exact = SubPartitionSim(timings, warps, policy=policy, mode="exact").run()
    fast = SubPartitionSim(timings, warps, policy=policy, mode="periodic").run()
    assert _stats_tuple(fast) == _stats_tuple(exact)


@settings(max_examples=40, deadline=None)
@given(prog=st.builds(
    WarpProgram,
    body=segments.map(tuple),
    iterations=st.integers(min_value=50, max_value=400),
), copies=st.integers(min_value=1, max_value=8), policy=policies)
def test_property_homogeneous_long_runs_bit_identical(prog, copies, policy):
    """The fast-forward's bread and butter — many identical long-running
    warps — stays exact including the drain tail."""
    warps = [prog] * copies
    exact = SubPartitionSim(TIMINGS, warps, policy=policy, mode="exact").run()
    fast = SubPartitionSim(TIMINGS, warps, policy=policy, mode="periodic").run()
    assert _stats_tuple(fast) == _stats_tuple(exact)


def test_modes_validated():
    """Unknown modes are rejected up front."""
    with pytest.raises(SimulationError):
        SubPartitionSim(TIMINGS, [WarpProgram.empty()], mode="turbo")
    assert set(SIM_MODES) == {"periodic", "exact"}


def test_max_cycles_guard_consistent_across_modes():
    """Both engines raise on workloads exceeding the cycle guard."""
    prog = WarpProgram(body=((OpClass.INT, 4),), iterations=1000)
    for mode in SIM_MODES:
        with pytest.raises(SimulationError):
            SubPartitionSim(TIMINGS, [prog], mode=mode).run(max_cycles=100)


def test_smsim_modes_agree_and_memo_replays():
    """SMSim's per-partition results match across engines, and the
    process-wide memo replays fresh PartitionStats copies."""
    clear_partition_memo()
    warps = [
        WarpProgram(body=((OpClass.INT, 4), (OpClass.FP, 4)), iterations=30)
        for _ in range(16)
    ]
    sm = SMSpec()
    exact = SMSim(sm, mode="exact").run(warps)
    before = SubPartitionSim.invocations
    fast = SMSim(sm, mode="periodic").run(warps)
    for a, b in zip(exact, fast):
        assert _stats_tuple(a) == _stats_tuple(b)
    # All four buckets are identical -> one fresh simulation.
    assert SubPartitionSim.invocations - before == 1
    # A repeat run replays from the process-wide memo: zero fresh sims,
    # and the replayed stats are independent copies.
    before = SubPartitionSim.invocations
    again = SMSim(sm, mode="periodic").run(warps)
    assert SubPartitionSim.invocations == before
    again[0].issued[OpClass.INT] = -1
    assert SMSim(sm, mode="periodic").run(warps)[0].issued[OpClass.INT] != -1
    clear_partition_memo()


def _random_programs(rng, n):
    warps = []
    for _ in range(n):
        if rng.random() < 0.15:
            warps.append(WarpProgram.empty())
            continue
        body = tuple(
            (OpClass(rng.randrange(len(OpClass))), rng.randint(1, 6))
            for _ in range(rng.randint(1, 4))
        )
        warps.append(WarpProgram(body=body, iterations=rng.randint(1, 40)))
    return warps


def test_jit_drain_core_matches_exact_seeded():
    """The (pure-Python here, numba-compiled in CI) drain core replays
    the exact engine's (cycles, idle) on a seeded random corpus."""
    rng = random.Random(0xC0DE)
    checked = 0
    for _ in range(50):
        warps = _random_programs(rng, rng.randint(1, 8))
        live = [w for w in warps if not w.is_empty]
        if not live:
            continue
        policy = rng.choice(["oldest", "lrr"])
        exact = SubPartitionSim(
            TIMINGS, warps, policy=policy, mode="exact"
        ).run()
        res = _jit.drain(live, TIMINGS, policy, 50_000_000)
        assert res == (exact.cycles, exact.idle_cycles)
        checked += 1
    assert checked > 30


def test_jit_drain_reports_cycle_overflow():
    """The core signals non-drainage instead of looping forever."""
    prog = WarpProgram(body=((OpClass.INT, 4),), iterations=1000)
    assert _jit.drain([prog], TIMINGS, "oldest", 100) is None


def test_forced_jit_path_bit_identical(monkeypatch):
    """With jit selected, SubPartitionSim routes periodic mode through
    the drain core and stays bit-identical (the CI numba leg runs this
    compiled; here the same function runs under CPython)."""
    monkeypatch.setattr(_jit, "_HAVE_NUMBA", True)
    monkeypatch.setenv("REPRO_SIM_JIT", "auto")
    rng = random.Random(42)
    for _ in range(10):
        warps = _random_programs(rng, rng.randint(1, 6))
        policy = rng.choice(["oldest", "lrr"])
        exact = SubPartitionSim(
            TIMINGS, warps, policy=policy, mode="exact"
        ).run()
        fast = SubPartitionSim(
            TIMINGS, warps, policy=policy, mode="periodic"
        ).run()
        assert _stats_tuple(fast) == _stats_tuple(exact)
        # Byte-identity includes dict iteration order.
        assert list(fast.issued) == list(exact.issued)
        assert list(fast.pipe_busy) == list(exact.pipe_busy)


def test_jit_knob_off_bypasses_drain(monkeypatch):
    """REPRO_SIM_JIT=0 pins the pure-Python fast-forward engine even
    when numba is importable."""
    monkeypatch.setattr(_jit, "_HAVE_NUMBA", True)
    monkeypatch.setenv("REPRO_SIM_JIT", "0")

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("drain must not be called with the knob off")

    monkeypatch.setattr(_jit, "drain", boom)
    prog = WarpProgram(body=((OpClass.INT, 4),), iterations=10)
    SubPartitionSim(TIMINGS, [prog], mode="periodic").run()


def test_jit_required_without_numba_raises(monkeypatch):
    """REPRO_SIM_JIT=1 fails loudly when numba is missing."""
    monkeypatch.setattr(_jit, "_HAVE_NUMBA", False)
    monkeypatch.setenv("REPRO_SIM_JIT", "1")
    prog = WarpProgram(body=((OpClass.INT, 4),), iterations=10)
    with pytest.raises(SimulationError, match="REPRO_SIM_JIT"):
        SubPartitionSim(TIMINGS, [prog], mode="periodic").run()


def test_jit_knob_normalization(monkeypatch):
    """The env knob accepts the usual boolean spellings."""
    for raw, want in (
        ("0", "0"), ("off", "0"), ("False", "0"), ("no", "0"),
        ("1", "1"), ("require", "1"), ("True", "1"), ("yes", "1"),
        ("auto", "auto"), ("", "auto"), ("bogus", "auto"),
    ):
        monkeypatch.setenv("REPRO_SIM_JIT", raw)
        assert _jit.jit_requested() == want
    monkeypatch.delenv("REPRO_SIM_JIT")
    assert _jit.jit_requested() == "auto"


def test_cross_kernel_schedule_memo_replays_bit_identical(monkeypatch):
    """Kernels sharing (timings, policy, loop bodies) but differing in
    iteration count replay the memoized warm-up schedule — and every
    PartitionStats byte must still match the exact engine."""
    monkeypatch.setenv("REPRO_SIM_JIT", "0")  # pin the fast-forward engine
    from repro.sim.smsim import _SCHEDULE_MEMO

    clear_schedule_memo()
    body = ((OpClass.INT, 2), (OpClass.FP, 1))
    for policy in ("oldest", "lrr"):
        for iters in (60, 45, 90, 33, 200):
            warps = [WarpProgram(body=body, iterations=iters) for _ in range(6)]
            exact = SubPartitionSim(
                TIMINGS, warps, policy=policy, mode="exact"
            ).run()
            fast = SubPartitionSim(
                TIMINGS, warps, policy=policy, mode="periodic"
            ).run()
            assert _stats_tuple(fast) == _stats_tuple(exact)
            assert list(fast.issued) == list(exact.issued)
            assert list(fast.pipe_busy) == list(exact.pipe_busy)
    # The warm-up schedule for this structure was actually memoized
    # (i.e. the runs above exercised the cross-kernel replay path).
    assert len(_SCHEDULE_MEMO) > 0
    clear_schedule_memo()


@settings(max_examples=40, deadline=None)
@given(
    body=segments.map(tuple),
    iter_seq=st.lists(
        st.integers(min_value=1, max_value=120), min_size=2, max_size=5
    ),
    copies=st.integers(min_value=1, max_value=6),
    policy=policies,
)
def test_property_multi_kernel_periodic_bit_identical(
    body, iter_seq, copies, policy
):
    """A multi-kernel launch sequence (same bodies, varying iteration
    counts — the ViT layer case) stays bit-identical under the periodic
    engine, with the schedule memo warm across kernels."""
    for iters in iter_seq:
        warps = [WarpProgram(body=body, iterations=iters)] * copies
        exact = SubPartitionSim(
            TIMINGS, warps, policy=policy, mode="exact"
        ).run()
        fast = SubPartitionSim(
            TIMINGS, warps, policy=policy, mode="periodic"
        ).run()
        assert _stats_tuple(fast) == _stats_tuple(exact)


def test_fig10_ipc_regression_unchanged_by_engine():
    """The Fig. 10 IPC series must be identical under both engines
    (the periodic engine is a pure optimization, not a model change)."""
    from repro.arch import jetson_orin_agx
    from repro.fusion import FC, IC, IC_FC
    from repro.perfmodel import GemmShape, PerformanceModel
    from repro.perfmodel.timingcache import TimingCache

    shapes = [
        GemmShape(2304, 1576, 768, name="qkv"),
        GemmShape(768, 1576, 768, name="proj"),
    ]
    cache = TimingCache(None, enabled=False)  # isolate from disk cache
    series = {}
    for mode in SIM_MODES:
        clear_partition_memo()
        pm = PerformanceModel(
            jetson_orin_agx(), sim_mode=mode, timing_cache=cache
        )
        series[mode] = [
            (pm.time_gemm(s, strat).instructions, pm.time_gemm(s, strat).seconds)
            for s in shapes
            for strat in (IC, FC, IC_FC)
        ]
    assert series["periodic"] == series["exact"]
    clear_partition_memo()
