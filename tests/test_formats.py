"""Unit tests for repro.formats (integer formats, float formats, quantization)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import (
    BF16,
    FP16,
    FP32,
    INT4,
    INT8,
    TF32,
    UINT8,
    DyadicScale,
    IntFormat,
    dequantize,
    dyadic_approximate,
    dyadic_rescale,
    quantize_symmetric,
)


class TestIntFormat:
    def test_int8_range(self):
        assert (INT8.min_value, INT8.max_value) == (-128, 127)

    def test_uint8_range(self):
        assert (UINT8.min_value, UINT8.max_value) == (0, 255)

    def test_int4_range(self):
        assert (INT4.min_value, INT4.max_value) == (-8, 7)

    def test_name(self):
        assert INT8.name == "int8"
        assert UINT8.name == "uint8"

    def test_magnitude_bits(self):
        assert INT8.magnitude_bits == 7
        assert UINT8.magnitude_bits == 8

    def test_invalid_bitwidths(self):
        with pytest.raises(FormatError):
            IntFormat(0)
        with pytest.raises(FormatError):
            IntFormat(33)
        with pytest.raises(FormatError):
            IntFormat(1, signed=True)

    def test_contains(self):
        assert INT8.contains(np.array([-128, 127]))
        assert not INT8.contains(np.array([128]))
        assert INT8.contains(np.array([], dtype=np.int64))

    def test_clip_saturates(self):
        out = INT8.clip(np.array([-1000, 0, 1000]))
        assert out.tolist() == [-128, 0, 127]

    def test_symmetric_clip_drops_most_negative(self):
        assert INT8.symmetric_clip(np.array([-128])).tolist() == [-127]

    def test_random_in_range(self):
        rng = np.random.default_rng(0)
        vals = INT4.random(rng, (1000,))
        assert vals.min() >= -8 and vals.max() <= 7

    def test_product_bits_matches_fig3(self):
        # Fig 3(b): 8-bit inputs -> up to 16-bit products (unsigned view).
        assert UINT8.product_bits() == 16
        assert IntFormat(5, signed=False).product_bits() == 10
        assert IntFormat(4, signed=False).product_bits() == 8

    def test_accumulation_bits_grows_with_depth(self):
        base = UINT8.product_bits()
        assert UINT8.accumulation_bits(None, 1) == base
        assert UINT8.accumulation_bits(None, 2) == base + 1
        assert UINT8.accumulation_bits(None, 1024) == base + 10

    def test_accumulation_depth_must_be_positive(self):
        with pytest.raises(FormatError):
            UINT8.accumulation_bits(None, 0)


class TestFloatFormat:
    def test_table1_storage(self):
        assert FP32.storage_bits == 32
        assert FP16.storage_bits == 16
        assert TF32.storage_bits == 32
        assert BF16.storage_bits == 16

    def test_exact_int_window(self):
        assert FP32.exact_int_bits == 24
        assert FP16.exact_int_bits == 11

    def test_int8_roundtrips_through_fp32(self):
        assert FP32.represents_int_exactly(8)
        vals = np.arange(-128, 128)
        assert FP32.roundtrip_exact(vals)

    def test_int8_roundtrips_through_fp16(self):
        assert FP16.represents_int_exactly(8)

    def test_large_ints_do_not_roundtrip_bf16(self):
        assert not BF16.represents_int_exactly(16)
        assert not BF16.roundtrip_exact(np.array([10001]))

    def test_degenerate_rejected(self):
        from repro.formats.fpfmt import FloatFormat

        with pytest.raises(FormatError):
            FloatFormat("bad", exponent_bits=1, mantissa_bits=3, storage_bits=8)


class TestQuantize:
    def test_symmetric_roundtrip_error_bounded(self, rng):
        x = rng.normal(size=1000)
        q, params = quantize_symmetric(x, INT8)
        err = np.abs(dequantize(q, params) - x).max()
        assert err <= params.scale / 2 + 1e-12

    def test_explicit_scale_saturates(self):
        q, _ = quantize_symmetric(np.array([10.0]), INT8, scale=0.01)
        assert q.tolist() == [127]

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.array([1.0]), INT8, scale=0.0)

    def test_all_zero_input(self):
        q, params = quantize_symmetric(np.zeros(4), INT8)
        assert np.all(q == 0) and params.scale == 1.0


class TestDyadic:
    def test_value_reconstruction(self):
        d = DyadicScale(multiplier=3, shift=2)
        assert d.value == 0.75

    def test_apply_rounds_half_up(self):
        d = DyadicScale(multiplier=1, shift=1)  # x/2
        assert d.apply(np.array([3])).tolist() == [2]
        assert d.apply(np.array([-3])).tolist() == [-1]

    def test_invalid_shift(self):
        with pytest.raises(FormatError):
            DyadicScale(multiplier=1, shift=63)

    def test_negative_multiplier_rejected(self):
        with pytest.raises(FormatError):
            DyadicScale(multiplier=-1, shift=0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_approximation_relative_error(self, scale):
        d = dyadic_approximate(scale, mult_bits=16)
        assert abs(d.value - scale) / scale < 2e-4 or d.multiplier == 1

    def test_rescale_matches_float_within_one(self, rng):
        d = dyadic_approximate(0.0371)
        x = rng.integers(-(2**20), 2**20, size=1000)
        got = dyadic_rescale(x, d)
        want = np.round(x * d.value)
        assert np.abs(got - want).max() <= 1

    def test_zero_shift_is_pure_multiply(self):
        d = DyadicScale(multiplier=7, shift=0)
        assert d.apply(np.array([3])).tolist() == [21]
