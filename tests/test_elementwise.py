"""Unit + property tests for the integer-only elementwise kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale
from repro.kernels import (
    dropout,
    i_exp2_fixed,
    i_layernorm,
    i_sqrt,
    requantize,
    residual_add,
    shiftgelu,
    shiftmax,
)

F = 10
ONE = 1 << F


class TestIExp2:
    def test_zero_maps_to_one(self):
        assert i_exp2_fixed(np.array([0]), F).tolist() == [ONE]

    def test_minus_one_halves(self):
        out = i_exp2_fixed(np.array([-ONE]), F)[0]
        assert abs(out - ONE // 2) <= 2

    def test_deep_underflow_is_zero(self):
        assert i_exp2_fixed(np.array([-100 * ONE]), F).tolist() == [0]

    def test_positive_rejected(self):
        with pytest.raises(ModelConfigError):
            i_exp2_fixed(np.array([1]), F)

    @given(st.integers(min_value=-20 * ONE, max_value=0))
    def test_relative_error_bounded(self, t):
        # Quadratic mantissa: ~0.3% approximation error plus fixed-point
        # truncation; 1% is the contract the attention math relies on.
        got = int(i_exp2_fixed(np.array([t]), F)[0])
        want = 2.0 ** (t / ONE) * ONE
        assert abs(got - want) <= max(3, 0.01 * want)

    def test_monotone_within_one_ulp(self):
        t = np.arange(-8 * ONE, 1)
        out = i_exp2_fixed(t, F)
        assert np.all(np.diff(out) >= -1)


class TestShiftmax:
    def test_close_to_float_softmax(self, rng):
        q = rng.integers(-4 * ONE, 4 * ONE, size=(10, 50))
        p = shiftmax(q, fraction_bits=F, out_bits=8)
        x = (q - q.max(-1, keepdims=True)) / ONE
        ref = np.exp(x)
        ref = ref / ref.sum(-1, keepdims=True)
        assert np.abs(p / 256 - ref).max() < 0.05

    def test_rows_sum_to_about_one(self, rng):
        q = rng.integers(-4 * ONE, 4 * ONE, size=(20, 64))
        p = shiftmax(q, fraction_bits=F, out_bits=8)
        sums = p.sum(-1)
        assert np.all(sums <= 256)
        assert np.all(sums >= 256 - 64)  # <= 1 ULP loss per element

    def test_outputs_nonnegative(self, rng):
        q = rng.integers(-(1 << 15), 1 << 15, size=(4, 9))
        assert shiftmax(q).min() >= 0

    def test_invariant_to_shift(self, rng):
        q = rng.integers(-ONE, ONE, size=(3, 8))
        assert np.array_equal(shiftmax(q), shiftmax(q + 12345))

    def test_peaked_input(self):
        q = np.array([[0, 10 * ONE, 0, 0]])
        p = shiftmax(q, out_bits=8)
        assert p[0, 1] >= 250

    def test_bad_out_bits(self):
        with pytest.raises(ModelConfigError):
            shiftmax(np.array([[1]]), out_bits=1)


class TestShiftGelu:
    def test_close_to_float_gelu(self, rng):
        x = rng.integers(-4 * ONE, 4 * ONE, size=2000)
        got = shiftgelu(x, fraction_bits=F) / ONE
        xf = x / ONE
        ref = xf / (1 + np.exp(-1.702 * xf))
        assert np.abs(got - ref).max() < 0.06

    def test_zero_is_zero(self):
        assert shiftgelu(np.array([0])).tolist() == [0]

    def test_large_positive_passthrough(self):
        x = np.array([8 * ONE])
        assert abs(int(shiftgelu(x)[0]) - 8 * ONE) <= ONE // 16

    def test_large_negative_is_near_zero(self):
        x = np.array([-8 * ONE])
        assert abs(int(shiftgelu(x)[0])) <= ONE // 16


class TestISqrt:
    def test_perfect_squares(self):
        v = np.arange(100, dtype=np.int64) ** 2
        assert np.array_equal(i_sqrt(v), np.arange(100))

    def test_floor_property(self, rng):
        v = rng.integers(0, 1 << 50, size=5000)
        r = i_sqrt(v)
        assert np.all(r * r <= v)
        assert np.all((r + 1) * (r + 1) > v)

    def test_negative_rejected(self):
        with pytest.raises(ModelConfigError):
            i_sqrt(np.array([-1]))

    def test_too_large_rejected(self):
        with pytest.raises(ModelConfigError):
            i_sqrt(np.array([1 << 53]))

    @given(st.integers(min_value=0, max_value=(1 << 52) - 1))
    def test_property_exact_isqrt(self, v):
        import math

        assert int(i_sqrt(np.array([v]))[0]) == math.isqrt(v)


class TestILayerNorm:
    def test_close_to_float_layernorm(self, rng):
        q = rng.integers(-4000, 4000, size=(8, 768))
        gamma = np.full(768, ONE, dtype=np.int64)
        beta = np.zeros(768, dtype=np.int64)
        got = i_layernorm(q, gamma, beta, fraction_bits=F) / ONE
        ref = (q - q.mean(-1, keepdims=True)) / q.std(-1, keepdims=True)
        assert np.abs(got - ref).max() < 0.02

    def test_affine_applied(self, rng):
        q = rng.integers(-1000, 1000, size=(2, 64))
        gamma = np.full(64, 2 * ONE, dtype=np.int64)
        beta = np.full(64, 77, dtype=np.int64)
        base = i_layernorm(q, np.full(64, ONE, dtype=np.int64), np.zeros(64, dtype=np.int64))
        out = i_layernorm(q, gamma, beta)
        assert np.abs(out - (2 * base + 77)).max() <= 2

    def test_constant_row(self):
        q = np.full((1, 16), 42, dtype=np.int64)
        out = i_layernorm(q, np.full(16, ONE, dtype=np.int64), np.zeros(16, dtype=np.int64))
        assert np.array_equal(out, np.zeros((1, 16), dtype=np.int64))

    def test_empty_axis_rejected(self):
        with pytest.raises(ModelConfigError):
            i_layernorm(
                np.zeros((2, 0), dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
            )

    def test_oversized_inputs_rejected_before_wrap(self):
        """Inputs wide enough to wrap the int64 variance sum must be
        refused, not silently corrupted."""
        q = np.full((1, 8), 1 << 21, dtype=np.int64)
        with pytest.raises(ModelConfigError):
            i_layernorm(
                q, np.full(8, ONE, dtype=np.int64), np.zeros(8, dtype=np.int64)
            )


class TestDropout:
    def test_inference_is_identity(self, rng):
        q = rng.integers(-100, 100, size=50)
        assert np.array_equal(dropout(q, rate=0.5, training=False), q)

    def test_training_zeroes_about_rate(self, rng):
        q = np.ones(20000, dtype=np.int64) * 1000
        out = dropout(q, rate=0.3, training=True, seed=7)
        frac = float((out == 0).mean())
        assert 0.25 < frac < 0.35

    def test_survivors_scaled(self):
        q = np.full(1000, 1 << 12, dtype=np.int64)
        out = dropout(q, rate=0.5, training=True, seed=1)
        survivors = out[out != 0]
        assert np.allclose(survivors, 2 * (1 << 12), rtol=0.01)

    def test_deterministic(self, rng):
        q = rng.integers(-100, 100, size=100)
        a = dropout(q, rate=0.2, training=True, seed=3)
        b = dropout(q, rate=0.2, training=True, seed=3)
        assert np.array_equal(a, b)

    def test_bad_rate_rejected(self):
        with pytest.raises(ModelConfigError):
            dropout(np.array([1]), rate=1.0, training=True)


class TestResidualRequant:
    def test_residual_add(self, rng):
        a = rng.integers(-100, 100, size=(3, 4))
        b = rng.integers(-100, 100, size=(3, 4))
        assert np.array_equal(residual_add(a, b), a + b)

    def test_residual_shape_mismatch(self):
        with pytest.raises(ModelConfigError):
            residual_add(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64))

    def test_requantize_saturates(self):
        scale = DyadicScale(multiplier=1, shift=0)
        out = requantize(np.array([-500, 0, 500]), scale, out_min=-127, out_max=127)
        assert out.tolist() == [-127, 0, 127]

    def test_requantize_rescales(self):
        scale = DyadicScale(multiplier=1, shift=4)  # /16
        out = requantize(np.array([160]), scale, out_min=-127, out_max=127)
        assert out.tolist() == [10]

    def test_requantize_empty_range_rejected(self):
        with pytest.raises(ModelConfigError):
            requantize(np.array([1]), DyadicScale(1, 0), out_min=5, out_max=4)
