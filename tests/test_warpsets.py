"""White-box tests for the kernel -> warp-set lowering internals."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.fusion import IC, IC_FC, TC, VITBIT
from repro.packing import policy_for_bitwidth
from repro.perfmodel import CostParams, GemmShape
from repro.perfmodel.warpsets import (
    _body,
    _round_role,
    elementwise_launch,
    gemm_launch,
)
from repro.perfmodel.descriptors import ELEMENTWISE_KERNELS
from repro.sim.instruction import OpClass

POL8 = policy_for_bitwidth(8)
SHAPE = GemmShape(768, 1576, 768)


@pytest.fixture(scope="module")
def machine():
    return jetson_orin_agx()


class TestBodyQuantization:
    def test_largest_entry_becomes_granularity(self):
        body = _body({OpClass.INT: 1.0, OpClass.LSU: 0.5}, granularity=8)
        counts = dict(body)
        assert counts[OpClass.INT] == 8
        assert counts[OpClass.LSU] == 4

    def test_tiny_entries_dropped(self):
        body = _body({OpClass.INT: 1.0, OpClass.SFU: 0.01}, granularity=8)
        assert OpClass.SFU not in dict(body)

    def test_empty_mix(self):
        assert _body({}, granularity=8) == ()
        assert _body({OpClass.INT: 0.0}, granularity=8) == ()

    def test_deterministic_order(self):
        a = _body({OpClass.INT: 1.0, OpClass.LSU: 0.5, OpClass.MISC: 0.2}, 10)
        b = _body({OpClass.MISC: 0.2, OpClass.INT: 1.0, OpClass.LSU: 0.5}, 10)
        assert a == b
        assert a[0][0] is OpClass.LSU  # loads lead the loop body


class TestRoundRole:
    def test_multiples_of_partitions(self):
        for n in (1, 5, 17, 44):
            assert _round_role(n, 4, 4, 48) % 4 == 0

    def test_zero_work(self):
        assert _round_role(0.0, 4, 0, 48) == 0

    def test_caps_at_hi(self):
        assert _round_role(100, 4, 4, 44) == 44

    def test_minimum_one_group(self):
        assert _round_role(0.5, 4, 4, 48) == 4


class TestGemmLaunchInvariants:
    def test_residency_respected(self, machine):
        for strat in (TC, IC, IC_FC, VITBIT):
            launch = gemm_launch(SHAPE, strat, machine, POL8, CostParams(), 4.0)
            assert len(launch.warps) <= machine.sm.max_warps_per_sm

    def test_instruction_totals_cover_warps(self, machine):
        """Per-SM resident instruction counts approximate the grid
        totals divided by the SM count."""
        launch = gemm_launch(SHAPE, VITBIT, machine, POL8, CostParams(), 4.0)
        resident = sum(w.total_instructions for w in launch.warps)
        expected = launch.total_instructions / machine.sm_count
        assert resident == pytest.approx(expected, rel=0.15)

    def test_vitbit_has_all_three_roles(self, machine):
        launch = gemm_launch(SHAPE, VITBIT, machine, POL8, CostParams(), 4.0)
        ops = set()
        for w in launch.warps:
            ops |= {op for op, _ in w.body}
        assert {OpClass.TENSOR, OpClass.INT, OpClass.FP} <= ops

    def test_tc_only_has_no_cuda_roles(self, machine):
        launch = gemm_launch(SHAPE, TC, machine, POL8, CostParams(), 4.0)
        for w in launch.warps:
            assert all(op in (OpClass.TENSOR, OpClass.LSU) for op, _ in w.body)

    def test_roles_alternate_within_partitions(self, machine):
        """After round-robin distribution, every partition must hold
        both INT and FP warps (the paper's interleaving intent)."""
        launch = gemm_launch(SHAPE, IC_FC, machine, POL8, CostParams(), 0.0)
        parts = machine.sm.partitions
        for p in range(parts):
            ops = set()
            for w in launch.warps[p::parts]:
                ops |= {op for op, _ in w.body}
            assert OpClass.INT in ops and OpClass.FP in ops


class TestElementwiseLaunchInvariants:
    def test_residency_and_roles(self, machine):
        desc = ELEMENTWISE_KERNELS["gelu"]
        launch = elementwise_launch(
            desc, 1_000_000, VITBIT, machine, POL8, CostParams()
        )
        assert len(launch.warps) <= machine.sm.max_warps_per_sm
        assert launch.extra["packed"] is True
        assert 0.6 < launch.extra["int_fraction"] < 0.7  # Eq. 1 at 2 lanes

    def test_bytes_shrink_with_packing(self, machine):
        desc = ELEMENTWISE_KERNELS["gelu"]
        base = elementwise_launch(desc, 10**6, IC, machine, POL8, CostParams())
        packed = elementwise_launch(desc, 10**6, VITBIT, machine, POL8, CostParams())
        assert packed.bytes_moved < base.bytes_moved

    def test_ic_launch_is_int_only(self, machine):
        desc = ELEMENTWISE_KERNELS["softmax"]
        launch = elementwise_launch(desc, 10**6, IC, machine, POL8, CostParams())
        for w in launch.warps:
            assert OpClass.FP not in {op for op, _ in w.body}
