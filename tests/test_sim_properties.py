"""Property / metamorphic tests on the simulator's invariants.

The cycle simulator has no ground truth to compare against, but it has
*laws*: conservation of issued instructions, monotonicity in work,
scale-invariance of steady-state rates, and bounds set by its busiest
resource.  Violations of any of these are simulator bugs regardless of
calibration, so they get their own property suite.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.specs import SMSpec
from repro.sim import OpClass, SubPartitionSim, WarpProgram, default_timings

TIMINGS = default_timings(SMSpec())

ops = st.sampled_from([OpClass.INT, OpClass.FP, OpClass.LSU, OpClass.MISC])
segments = st.lists(
    st.tuples(ops, st.integers(min_value=1, max_value=4)),
    min_size=1,
    max_size=4,
)
programs = st.builds(
    WarpProgram,
    body=segments.map(tuple),
    iterations=st.integers(min_value=1, max_value=20),
)


@settings(max_examples=60, deadline=None)
@given(warps=st.lists(programs, min_size=1, max_size=8))
def test_property_instruction_conservation(warps):
    """Every instruction of every warp is issued exactly once."""
    stats = SubPartitionSim(TIMINGS, warps).run()
    expected = {}
    for w in warps:
        for op, n in w.mix().items():
            expected[op] = expected.get(op, 0) + n
    assert stats.issued == {op: n for op, n in expected.items() if n}


@settings(max_examples=60, deadline=None)
@given(warps=st.lists(programs, min_size=1, max_size=6))
def test_property_cycles_bounded_below_by_busiest_resource(warps):
    """Cycles >= max(pipe occupancy, total instructions)."""
    stats = SubPartitionSim(TIMINGS, warps).run()
    pipe_bound = max(
        (
            n * TIMINGS[op].initiation_interval
            for op, n in stats.issued.items()
        ),
        default=0,
    )
    issue_bound = stats.instructions
    assert stats.cycles >= max(pipe_bound, issue_bound)


@settings(max_examples=40, deadline=None)
@given(prog=programs, copies=st.integers(min_value=1, max_value=3))
def test_property_more_iterations_never_faster(prog, copies):
    """Doubling every warp's iterations cannot reduce cycles."""
    warps = [prog] * copies
    doubled = [prog.scaled(2.0)] * copies
    a = SubPartitionSim(TIMINGS, warps).run()
    b = SubPartitionSim(TIMINGS, doubled).run()
    assert b.cycles >= a.cycles


@settings(max_examples=40, deadline=None)
@given(prog=programs)
def test_property_steady_state_rate_scale_invariant(prog):
    """A homogeneous warp set's cycles grow ~linearly with iterations
    (the assumption behind the performance model's work scaling)."""
    base = prog.scaled(4.0)
    big = prog.scaled(16.0)
    warps_a = [base] * 8
    warps_b = [big] * 8
    a = SubPartitionSim(TIMINGS, warps_a).run()
    b = SubPartitionSim(TIMINGS, warps_b).run()
    rate_a = a.instructions / a.cycles
    rate_b = b.instructions / b.cycles
    assert rate_b == pytest.approx(rate_a, rel=0.15)


@settings(max_examples=40, deadline=None)
@given(warps=st.lists(programs, min_size=2, max_size=8))
def test_property_determinism(warps):
    """Same input -> identical statistics."""
    a = SubPartitionSim(TIMINGS, warps).run()
    b = SubPartitionSim(TIMINGS, warps).run()
    assert a.cycles == b.cycles
    assert a.issued == b.issued


@settings(max_examples=30, deadline=None)
@given(warps=st.lists(programs, min_size=1, max_size=6))
def test_property_lrr_and_oldest_issue_same_work(warps):
    """Scheduling policy changes timing, never the work done."""
    oldest = SubPartitionSim(TIMINGS, warps, policy="oldest").run()
    lrr = SubPartitionSim(TIMINGS, warps, policy="lrr").run()
    assert oldest.issued == lrr.issued
