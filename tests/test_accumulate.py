"""Unit + property tests for guard-bit budgets and chunked accumulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackingError
from repro.packing import (
    ChunkedAccumulator,
    Packer,
    guard_bits,
    packed_scalar_mul,
    policy_for_bitwidth,
    safe_accumulation_depth,
)

POL8 = policy_for_bitwidth(8)
POL5 = policy_for_bitwidth(5)
POL4 = policy_for_bitwidth(4)


class TestGuardBits:
    def test_int8_pair_has_zero_guard(self):
        # 8-bit x 8-bit product exactly fills the 16-bit field.
        assert guard_bits(POL8, 8, 8) == 0

    def test_int7_weights_buy_one_guard_bit(self):
        assert guard_bits(POL8, 7, 8) == 1

    def test_int5_triple_has_zero_guard(self):
        assert guard_bits(POL5, 5, 5) == 0

    def test_b_wider_than_policy_rejected(self):
        with pytest.raises(PackingError):
            guard_bits(POL8, 8, 9)

    def test_zero_bits_rejected(self):
        with pytest.raises(PackingError):
            guard_bits(POL8, 0, 8)


class TestSafeDepth:
    def test_int8_symmetric_weights(self):
        # 127 * 255 = 32385; floor(65535 / 32385) = 2.
        assert safe_accumulation_depth(POL8, 7, 8) == 2

    def test_int8_full_unsigned(self):
        # 255 * 255 = 65025; floor(65535 / 65025) = 1.
        assert safe_accumulation_depth(POL8, 8, 8) == 1

    def test_int4(self):
        # 15 * 15 = 225; floor(255 / 225) = 1.
        assert safe_accumulation_depth(POL4, 4, 4) == 1

    def test_small_operands_deep_budget(self):
        # 3 * 3 = 9 products in a 16-bit field -> 7281 safe adds.
        assert safe_accumulation_depth(POL8, 2, 2) == 65535 // 9

    def test_widened_fields_buy_depth(self):
        pol = policy_for_bitwidth(5).with_lanes(2)  # 16-bit fields
        assert safe_accumulation_depth(pol, 5, 5) > safe_accumulation_depth(
            POL5, 5, 5
        )


class TestChunkedAccumulator:
    def test_exact_deep_accumulation(self, rng):
        """Accumulating far past the safe depth stays exact via spills."""
        pol = POL8
        packer = Packer(pol)
        k = 100
        scalars = rng.integers(0, 128, size=k)
        lanes = rng.integers(0, 256, size=(k, 2))
        acc = ChunkedAccumulator(pol, a_bits=7, b_bits=8, shape=(1,))
        for s, row in zip(scalars, lanes):
            packed = packer.pack(row)
            acc.add(packed_scalar_mul(int(s), packed, pol))
        result = acc.result()[0]
        expected = (scalars[:, None] * lanes).sum(axis=0)
        assert np.array_equal(result, expected)
        assert acc.spill_count >= k // acc.safe_depth

    def test_spill_counts(self):
        acc = ChunkedAccumulator(POL8, a_bits=7, b_bits=8, shape=(1,))
        assert acc.safe_depth == 2
        packer = Packer(POL8)
        reg = packed_scalar_mul(1, packer.pack(np.array([1, 1])), POL8)
        for _ in range(5):
            acc.add(reg)
        acc.result()
        # 5 adds at depth 2 -> spills at adds 3 and 5, plus the final flush.
        assert acc.spill_count == 3
        assert acc.add_count == 5

    def test_result_idempotent(self):
        acc = ChunkedAccumulator(POL8, a_bits=7, b_bits=8, shape=(2,))
        packer = Packer(POL8)
        reg = packer.pack(np.array([3, 4, 5, 6]))  # two registers, shape (2,)
        acc.add(reg)
        first = acc.result()
        second = acc.result()
        assert np.array_equal(first, second)

    def test_empty_accumulator_is_zero(self):
        acc = ChunkedAccumulator(POL8, a_bits=7, b_bits=8, shape=(3,))
        assert np.array_equal(acc.result(), np.zeros((3, 2), dtype=np.int64))


@settings(max_examples=50, deadline=None)
@given(
    bits=st.integers(min_value=2, max_value=8),
    a_bits=st.integers(min_value=1, max_value=8),
    k=st.integers(min_value=1, max_value=60),
    data=st.data(),
)
def test_property_chunked_accumulation_exact(bits, a_bits, k, data):
    """For any operand widths and depth, the chunked result is exact."""
    pol = policy_for_bitwidth(bits)
    a_bits = min(a_bits, pol.field_bits - bits)  # single product must fit
    if a_bits < 1:
        return
    packer = Packer(pol)
    scalars = np.array(
        data.draw(st.lists(st.integers(0, (1 << a_bits) - 1), min_size=k, max_size=k))
    )
    lanes = np.array(
        data.draw(
            st.lists(
                st.lists(st.integers(0, pol.max_value), min_size=pol.lanes, max_size=pol.lanes),
                min_size=k,
                max_size=k,
            )
        )
    )
    acc = ChunkedAccumulator(pol, a_bits=a_bits, b_bits=bits, shape=(1,))
    for s, row in zip(scalars, lanes):
        acc.add(packed_scalar_mul(int(s), packer.pack(row), pol))
    assert np.array_equal(acc.result()[0], (scalars[:, None] * lanes).sum(axis=0))
