"""Unit tests for repro.arch: machine specs, Table 1 throughput, density."""

from __future__ import annotations

import pytest

from repro.arch import (
    arithmetic_density,
    cuda_core_peak_ops,
    normalized_density,
    peak_throughput_table,
    tensor_core_peak_ops,
)
from repro.arch.throughput import packed_cuda_core_peak_ops
from repro.arch.specs import MachineSpec, SMSpec
from repro.errors import FormatError


class TestOrinSpec:
    def test_table2_cuda_cores(self, machine):
        assert machine.cuda_cores == 1792

    def test_table2_tensor_cores(self, machine):
        assert machine.tensor_cores == 56

    def test_table2_memory(self, machine):
        assert machine.dram_bandwidth_gbps == pytest.approx(204.8)
        assert machine.dram_capacity_gb == 32.0

    def test_sm_count(self, machine):
        assert machine.sm_count == 14

    def test_equal_int_fp_lanes(self, machine):
        # Sec. 3.2: "the number of available INT cores and FP cores per
        # SM is the same" — the premise of Eq. 1.
        assert machine.sm.int_lanes == machine.sm.fp_lanes

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad",
                sm_count=0,
                clock_ghz=1.0,
                dram_bandwidth_gbps=100.0,
                dram_capacity_gb=8.0,
            )

    def test_cycles_to_seconds(self, machine):
        assert machine.cycles_to_seconds(machine.clock_hz) == pytest.approx(1.0)


class TestTable1:
    """Every row of Table 1, within 2% of the paper's numbers."""

    PAPER = {
        ("FP32", "CUDA Core"): 4.0,
        ("FP16", "CUDA Core"): 8.0,
        ("TF32", "Tensor Core"): 32.0,
        ("FP16", "Tensor Core"): 65.0,
        ("BFloat16", "Tensor Core"): 65.0,
        ("INT32", "CUDA Core"): 4.0,
        ("INT8", "Tensor Core"): 131.0,
        ("INT4", "Tensor Core"): 262.0,
    }

    def test_all_rows_present(self, machine):
        rows = {(r.fmt, r.unit) for r in peak_throughput_table(machine)}
        assert rows == set(self.PAPER)

    @pytest.mark.parametrize("key", sorted(PAPER))
    def test_row_value(self, machine, key):
        rows = {(r.fmt, r.unit): r.teraops for r in peak_throughput_table(machine)}
        assert rows[key] == pytest.approx(self.PAPER[key], rel=0.02)

    def test_int8_cuda_equals_int32_without_packing(self, machine):
        # Table 1 caption: zero-masked INT8 on CUDA cores runs at INT32 speed.
        assert cuda_core_peak_ops(machine, "int32") == packed_cuda_core_peak_ops(
            machine, pack_factor=1
        )

    def test_packing_doubles_int8_cuda_peak(self, machine):
        assert packed_cuda_core_peak_ops(machine, 2) == pytest.approx(
            2 * cuda_core_peak_ops(machine, "int32")
        )

    def test_sec21_hypothetical_native_int8(self, machine):
        # Sec. 2.1: native INT8 CUDA cores would reach ~32 TOPS, i.e. ~25%
        # of the Tensor cores' INT8 peak.
        hypothetical = packed_cuda_core_peak_ops(machine, 8)
        assert hypothetical / 1e12 == pytest.approx(32.0, rel=0.02)
        ratio = hypothetical / tensor_core_peak_ops(machine, "int8")
        assert ratio == pytest.approx(0.25, rel=0.05)

    def test_unknown_pipe_rejected(self, machine):
        with pytest.raises(FormatError):
            cuda_core_peak_ops(machine, "int64")

    def test_unknown_tc_format_rejected(self, machine):
        with pytest.raises(FormatError):
            tensor_core_peak_ops(machine, "fp64")

    def test_bad_simd_factor_rejected(self, machine):
        with pytest.raises(FormatError):
            cuda_core_peak_ops(machine, "int32", simd_factor=0)


class TestDensity:
    def test_density_scales_inverse_with_time(self, machine):
        d1 = arithmetic_density(machine, 1e9, 1.0)
        d2 = arithmetic_density(machine, 1e9, 0.5)
        assert d2 == pytest.approx(2 * d1)

    def test_normalized_density_is_speedup(self, machine):
        # Same useful ops, faster execution -> density ratio == speedup.
        assert normalized_density(machine, 1e9, 0.8, 1.0) == pytest.approx(1.25)

    def test_rejects_nonpositive(self, machine):
        with pytest.raises(ValueError):
            arithmetic_density(machine, 0.0, 1.0)
        with pytest.raises(ValueError):
            arithmetic_density(machine, 1.0, 0.0)


class TestSMSpec:
    def test_warps_per_partition(self):
        sm = SMSpec()
        assert sm.max_warps_per_partition == 12

    def test_marketing_core_count(self):
        assert SMSpec().cuda_cores == 128

    def test_tensor_core_unknown_format(self):
        with pytest.raises(FormatError):
            SMSpec().tensor_core.macs_per_cycle("fp8")
