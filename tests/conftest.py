"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import jetson_orin_agx


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def machine():
    """The paper's evaluation platform."""
    return jetson_orin_agx()
