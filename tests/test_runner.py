"""The parallel sweep runner: metering, ordering, cache write-back."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.fusion import TC, VITBIT
from repro.perfmodel import PerformanceModel, TimingCache
from repro.runner import price_inference_strategies, run_sweep
from repro.sim.smsim import clear_partition_memo


def _square(x):
    """Module-level worker (must survive pickling)."""
    return x * x


def _price_tiny(point):
    """Worker pricing one tiny GEMM (exercises the sim + cache path)."""
    from repro.perfmodel import GemmShape

    machine, n = point
    pm = PerformanceModel(machine)
    return pm.time_gemm(GemmShape(64, n, 64), TC).seconds


def test_run_sweep_preserves_order_and_labels():
    rep = run_sweep(_square, [3, 1, 2], labels=["a", "b", "c"], processes=1)
    assert rep.values == [9, 1, 4]
    assert [o.label for o in rep.outcomes] == ["a", "b", "c"]
    assert rep.processes == 1
    assert rep.wall_seconds >= 0.0
    assert "a" in rep.render()


def test_run_sweep_default_labels_and_empty():
    rep = run_sweep(_square, [5], processes=1)
    assert rep.outcomes[0].label == "point 0"
    assert run_sweep(_square, [], processes=1).values == []


def test_run_sweep_label_count_mismatch_rejected():
    with pytest.raises(ValueError):
        run_sweep(_square, [1, 2], labels=["only-one"], processes=1)


def test_run_sweep_meters_simulations_and_cache(tmp_path, monkeypatch):
    """Cold points simulate and miss; a repeat sweep hits everywhere."""
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
    TimingCache.reset_default()
    clear_partition_memo()
    try:
        machine = jetson_orin_agx()
        pts = [(machine, 128), (machine, 256)]
        cold = run_sweep(_price_tiny, pts, processes=1, label="tiny")
        assert cold.simulations > 0
        assert cold.cache_misses >= 2
        clear_partition_memo()
        TimingCache.reset_default()  # fresh counters, same disk dir
        warm = run_sweep(_price_tiny, pts, processes=1, label="tiny")
        assert warm.simulations == 0
        assert warm.cache_misses == 0
        assert warm.hit_rate == 1.0
        assert warm.values == cold.values
    finally:
        TimingCache.reset_default()


def test_run_sweep_across_processes(tmp_path, monkeypatch):
    """Fan out over real worker processes; results come back in order
    and write back to the shared on-disk cache."""
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
    TimingCache.reset_default()
    try:
        machine = jetson_orin_agx()
        pts = [(machine, 128), (machine, 256), (machine, 384)]
        rep = run_sweep(_price_tiny, pts, processes=2, label="mp")
        assert len(rep.values) == 3
        assert all(v > 0 for v in rep.values)
        assert (tmp_path / "c").exists()
        # The workers' simulations are visible to this process now.
        clear_partition_memo()
        TimingCache.reset_default()
        warm = run_sweep(_price_tiny, pts, processes=1, label="mp-warm")
        assert warm.simulations == 0
        assert warm.values == rep.values
    finally:
        TimingCache.reset_default()


def test_price_inference_strategies_shape(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "c"))
    TimingCache.reset_default()
    try:
        rep = price_inference_strategies(
            jetson_orin_agx(),
            [TC, VITBIT],
            model_name="test-tiny",
            batch=1,
            processes=1,
        )
        assert [o.label for o in rep.outcomes] == ["TC", "VitBit"]
        tc, vb = rep.values
        assert tc["strategy"] == "TC" and vb["strategy"] == "VitBit"
        # test-tiny @ batch 1 is too small for VitBit to win — the
        # speedup claim is bench_fig5's job; here we check structure.
        assert tc["total_seconds"] > 0 and vb["total_seconds"] > 0
        assert tc["kernel_launches"] > 0
        assert tc["per_kernel"]
    finally:
        TimingCache.reset_default()
