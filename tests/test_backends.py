"""The packed-GEMM backend registry, and backend-parity differential fuzz.

Every backend's contract is *bit-identity* with the ``numpy_blocked``
reference on every input — same products, same stats, same
:class:`~repro.errors.OverflowBudgetError` behaviour.  The numba
backend's cores are plain Python functions when numba is absent (this
container), so the fuzz below exercises the identical logic everywhere;
the CI ``perf-smoke`` numba leg reruns it compiled.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.errors import OverflowBudgetError, PackingError
from repro.packing import (
    available_backends,
    backend_names,
    get_backend,
    packed_gemm,
    packed_gemm_unsigned,
    policy_for_bitwidth,
    reference_gemm,
)
from repro.packing.backends import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    reset_fallback_warnings,
)
from repro.packing.backends.numba_jit import NumbaGemmBackend, numba_available
from repro.packing.gemm import PackedGemmStats


def _fallback_count():
    """Total gemm_backend_fallbacks_total across all label children."""
    from repro import obs

    counter = obs.snapshot()["counters"].get("gemm_backend_fallbacks_total")
    return sum(counter["values"].values()) if counter else 0


@pytest.fixture
def forced_numba(monkeypatch):
    """Make the numba backend resolvable even without numba installed
    (its cores run as pure Python — same logic, slower)."""
    monkeypatch.setattr(NumbaGemmBackend, "available", lambda self: True)


class TestRegistry:
    def test_known_backends_registered(self):
        assert "numpy_blocked" in backend_names()
        assert "numba" in backend_names()

    def test_default_always_available(self):
        assert DEFAULT_BACKEND in available_backends()

    def test_numba_availability_matches_import(self):
        assert ("numba" in available_backends()) == numba_available()

    def test_unknown_backend_raises(self):
        with pytest.raises(PackingError, match="unknown"):
            get_backend("tvm")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy_blocked")
        assert get_backend().name == "numpy_blocked"

    def test_explicit_name_overrides_env(self, monkeypatch, forced_numba):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numba")
        assert get_backend("numpy_blocked").name == "numpy_blocked"

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_unavailable_backend_falls_back_with_warning(self):
        reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="numba"):
            backend = get_backend("numba")
        assert backend.name == DEFAULT_BACKEND

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_fallback_warning_fires_once_per_process(self):
        """A sweep makes thousands of get_backend calls; the degradation
        warning must not repeat per call, while the fallback counter
        keeps counting every degraded dispatch."""
        from repro import obs

        reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="numba"):
            get_backend("numba")
        before = _fallback_count()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning now fails the test
            backend = get_backend("numba")
            get_backend("numba")
        assert backend.name == DEFAULT_BACKEND
        assert _fallback_count() == before + 2
        # The counter is labeled by the backend that actually ran,
        # consistent with gemm_backend_calls_total.
        counters = obs.snapshot()["counters"]
        labels = counters["gemm_backend_fallbacks_total"]["values"]
        assert all(DEFAULT_BACKEND in key for key in labels), labels
        reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="numba"):
            get_backend("numba")


def _random_case(rng):
    """One random GEMM instance: policy, signed A, in-range unsigned B."""
    bits = int(rng.choice([2, 3, 4, 5, 6, 7, 8]))
    policy = policy_for_bitwidth(bits)
    m = int(rng.integers(1, 7))
    n = int(rng.integers(1, 9))
    k = int(rng.integers(1, 33))
    # Asymmetric widths: A's magnitude bitwidth varies independently of
    # B's packed value width.
    a_bits = int(rng.integers(1, 7))
    a = rng.integers(-(2**a_bits) + 1, 2**a_bits, size=(m, k), dtype=np.int64)
    b = rng.integers(0, policy.max_value + 1, size=(k, n), dtype=np.int64)
    return policy, a, b


class TestBackendParity:
    """Differential fuzz: numba cores vs numpy_blocked vs reference."""

    @pytest.mark.parametrize("method", ["chunked", "lane"])
    def test_parity_fuzz(self, method, forced_numba):
        rng = np.random.default_rng(20260807)
        for _ in range(40):
            policy, a, b = _random_case(rng)
            want = reference_gemm(a, b)
            stats = {}
            results = {}
            for backend in ("numpy_blocked", "numba"):
                st = PackedGemmStats()
                try:
                    results[backend] = packed_gemm(
                        a, b, policy, method=method, backend=backend, stats=st
                    )
                except OverflowBudgetError:
                    results[backend] = "overflow"
                stats[backend] = st
            assert type(results["numba"]) is type(results["numpy_blocked"])
            if isinstance(results["numba"], str):
                continue  # both raised the canonical error — parity holds
            np.testing.assert_array_equal(results["numba"], want)
            np.testing.assert_array_equal(
                results["numba"], results["numpy_blocked"]
            )
            assert stats["numba"] == stats["numpy_blocked"]

    @pytest.mark.parametrize("backend", ["numpy_blocked", "numba"])
    @pytest.mark.parametrize("method", ["chunked", "lane"])
    def test_k_zero(self, backend, method, forced_numba):
        """K=0 short-circuits to an exact all-zero product everywhere."""
        policy = policy_for_bitwidth(8)
        a = np.zeros((3, 0), dtype=np.int64)
        b = np.zeros((0, 5), dtype=np.int64)
        out = packed_gemm(a, b, policy, method=method, backend=backend)
        np.testing.assert_array_equal(out, reference_gemm(a, b))
        assert out.shape == (3, 5)

    def test_unsigned_path_parity(self, forced_numba):
        """packed_gemm_unsigned agrees across backends on ViT-ish tiles."""
        rng = np.random.default_rng(7)
        policy = policy_for_bitwidth(8)
        a = rng.integers(0, 64, size=(8, 48), dtype=np.int64)
        b = rng.integers(0, policy.max_value + 1, size=(48, 10), dtype=np.int64)
        want = reference_gemm(a, b)
        for method in ("chunked", "lane"):
            got_np = packed_gemm_unsigned(
                a, b, policy, method=method, backend="numpy_blocked"
            )
            got_nb = packed_gemm_unsigned(
                a, b, policy, method=method, backend="numba"
            )
            np.testing.assert_array_equal(got_np, want)
            np.testing.assert_array_equal(got_nb, want)

    def test_overflow_parity_on_declared_bitwidth_violation(self, forced_numba):
        """Operands violating the declared widths trip the same canonical
        error in every backend (chunked method asserts the register)."""
        policy = policy_for_bitwidth(8)
        k = 64
        a = np.full((1, k), 255, dtype=np.int64)
        # Two columns so both lanes of each packed register are populated
        # (a lone column leaves the top lane zero and the sums tiny).
        b = np.full((k, 2), policy.max_value, dtype=np.int64)
        errors = {}
        for backend in ("numpy_blocked", "numba"):
            with pytest.raises(OverflowBudgetError) as exc:
                # Lie about a_bits to defeat the pre-flight depth choice.
                packed_gemm_unsigned(
                    a, b, policy, a_bits=1, method="chunked", backend=backend
                )
            errors[backend] = str(exc.value)
        assert errors["numba"] == errors["numpy_blocked"]


class TestReferenceGemmAccumulator:
    def test_int64_accumulation_survives_32bit_wrap(self):
        """A dot product whose partial sums exceed 2**31 must not wrap:
        the matmul accumulator is pinned to int64, not the platform
        default integer."""
        k = 1024
        a = np.full((1, k), 2**15, dtype=np.int64)
        b = np.full((k, 1), 2**15, dtype=np.int64)
        out = reference_gemm(a, b)
        assert out.dtype == np.int64
        assert int(out[0, 0]) == k * 2**30  # far beyond 2**32

    def test_int32_inputs_promoted_exactly(self):
        a = np.full((1, 3), 2**30, dtype=np.int32)
        b = np.ones((3, 1), dtype=np.int32)
        assert int(reference_gemm(a, b)[0, 0]) == 3 * 2**30
