"""The persistent timing cache: keying, round-trips, env knobs."""

from __future__ import annotations

import os

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import SimulationError
from repro.fusion import VITBIT
from repro.perfmodel import GemmShape, PerformanceModel, TimingCache
from repro.sim.smsim import SubPartitionSim, clear_partition_memo

SHAPE = GemmShape(256, 512, 256, name="t")


def _fresh_pm(tmp_path, **kw):
    return PerformanceModel(
        jetson_orin_agx(),
        timing_cache=TimingCache(tmp_path / "cache"),
        **kw,
    )


def test_key_is_stable_and_order_insensitive():
    """Canonical JSON: key ignores dict insertion order."""
    a = TimingCache.key_for({"x": 1, "y": [1, 2]})
    b = TimingCache.key_for({"y": [1, 2], "x": 1})
    assert a == b and len(a) == 64
    assert a != TimingCache.key_for({"x": 2, "y": [1, 2]})


def test_roundtrip_and_stats(tmp_path):
    cache = TimingCache(tmp_path / "c")
    payload = {"k": 1}
    assert cache.get(payload) is None
    cache.put(payload, {"v": 3.5})
    assert cache.get(payload) == {"v": 3.5}
    s = cache.stats()
    assert (s.hits, s.misses, s.entries, s.persistent) == (1, 1, 1, True)
    assert s.hit_rate == 0.5
    assert cache.clear() >= 1
    assert cache.get(payload) is None


def test_persists_across_instances(tmp_path):
    """A second TimingCache over the same directory sees the entries —
    the cross-process contract."""
    d = tmp_path / "c"
    TimingCache(d).put({"k": 2}, {"v": 1})
    assert TimingCache(d).get({"k": 2}) == {"v": 1}


def test_disabled_cache_never_hits(tmp_path):
    cache = TimingCache(tmp_path / "c", enabled=False)
    cache.put({"k": 1}, {"v": 1})
    assert cache.get({"k": 1}) is None
    assert not cache.stats().enabled


def test_uncreatable_directory_degrades_to_memory(tmp_path):
    """A cache dir that cannot be created (path under a regular file —
    robust even when running as root) falls back to process memory."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    cache = TimingCache(blocker / "sub")
    cache.put({"k": 1}, {"v": 1})
    assert cache.get({"k": 1}) == {"v": 1}  # memory fallback works
    assert not cache.stats().persistent


def test_corrupt_entry_is_a_miss(tmp_path):
    d = tmp_path / "c"
    cache = TimingCache(d)
    cache.put({"k": 1}, {"v": 1})
    key = TimingCache.key_for({"k": 1})
    (d / f"{key}.json").write_text("{not json")
    assert TimingCache(d).get({"k": 1}) is None


def test_model_warm_pricing_simulates_nothing(tmp_path):
    """Same launch, fresh model over the same cache dir: zero sims and
    float-identical timings."""
    clear_partition_memo()
    pm = _fresh_pm(tmp_path)
    cold = pm.time_gemm(SHAPE, VITBIT)
    clear_partition_memo()
    before = SubPartitionSim.invocations
    warm = _fresh_pm(tmp_path).time_gemm(SHAPE, VITBIT)
    assert SubPartitionSim.invocations == before
    assert warm.seconds == cold.seconds
    assert warm.issued == cold.issued
    assert warm.pipe_utilization == cold.pipe_utilization
    assert warm.label == cold.label


def test_require_warm_cache_raises_on_miss(tmp_path):
    pm = _fresh_pm(tmp_path)
    os.environ["REPRO_REQUIRE_WARM_CACHE"] = "1"
    try:
        with pytest.raises(SimulationError):
            pm.time_gemm(SHAPE, VITBIT)
    finally:
        del os.environ["REPRO_REQUIRE_WARM_CACHE"]
    pm.clear_cache()
    pm.time_gemm(SHAPE, VITBIT)  # without the env it simulates fine


def test_engine_version_and_mode_partition_the_keyspace(tmp_path):
    """Different sim modes must never share entries (they are
    bit-identical today, but the key must not rely on that)."""
    pm_a = _fresh_pm(tmp_path)
    pm_b = _fresh_pm(tmp_path, sim_mode="exact")
    key_a = TimingCache.key_for(pm_a._cache_payload(_launch(pm_a)))
    key_b = TimingCache.key_for(pm_b._cache_payload(_launch(pm_b)))
    assert key_a != key_b


def _launch(pm):
    from repro.perfmodel.warpsets import gemm_launch

    return gemm_launch(SHAPE, VITBIT, pm.machine, pm.policy, pm.params, 4.0)


def test_fast_cache_key_matches_slow_path(tmp_path):
    """PerformanceModel._cache_key splices pre-serialized fragments; it
    must equal key_for(_cache_payload(launch)) byte for byte, including
    after rebinding the attributes the static slice depends on."""
    import dataclasses

    from repro.fusion import TC
    from repro.perfmodel.warpsets import gemm_launch

    pm = _fresh_pm(tmp_path)
    for strat in (TC, VITBIT):
        for shape in (SHAPE, GemmShape(64, 96, 128, name="u")):
            launch = gemm_launch(
                shape, strat, pm.machine, pm.policy, pm.params, 4.0
            )
            assert pm._cache_key(launch) == TimingCache.key_for(
                pm._cache_payload(launch)
            )
    # Rebinding params must invalidate the cached static fragment.
    launch = _launch(pm)
    before = pm._cache_key(launch)
    pm.params = dataclasses.replace(
        pm.params,
        target_sim_instructions=pm.params.target_sim_instructions + 1,
    )
    after = pm._cache_key(launch)
    assert after != before
    assert after == TimingCache.key_for(pm._cache_payload(launch))


def test_precomputed_key_roundtrip(tmp_path):
    """get/put accept a precomputed key and then ignore the payload."""
    cache = TimingCache(tmp_path / "c")
    key = TimingCache.key_for({"k": 1})
    cache.put(None, {"v": 7}, key=key)
    assert cache.get(None, key=key) == {"v": 7}
    assert cache.get({"k": 1}) == {"v": 7}  # same hash, same entry


def test_default_cache_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TIMING_CACHE", "0")
    TimingCache.reset_default()
    assert not TimingCache.default().enabled
    monkeypatch.delenv("REPRO_TIMING_CACHE")
    monkeypatch.setenv("REPRO_TIMING_CACHE_DIR", str(tmp_path / "alt"))
    TimingCache.reset_default()
    cache = TimingCache.default()
    assert cache.enabled
    cache.put({"k": 9}, {"v": 9})
    assert (tmp_path / "alt").exists()
    monkeypatch.delenv("REPRO_TIMING_CACHE_DIR")
    TimingCache.reset_default()


def test_corrupt_entry_quarantined_with_metric(tmp_path):
    """A corrupt on-disk entry is renamed out of the lookup path and
    counted, so cold processes stop re-parsing it forever."""
    d = tmp_path / "c"
    cache = TimingCache(d)
    cache.put({"k": 1}, {"v": 1})
    key = TimingCache.key_for({"k": 1})
    (d / f"{key}.json").write_text("{not json")

    fresh = TimingCache(d)
    assert fresh.get({"k": 1}) is None
    assert fresh.stats().corrupt == 1
    assert not (d / f"{key}.json").exists()
    assert (d / f"{key}.json.corrupt").exists()
    # The quarantined entry no longer counts toward live entries, and
    # the next lookup is a clean miss (no second quarantine).
    assert fresh.get({"k": 1}) is None
    assert fresh.stats().corrupt == 1


def test_put_failure_leaves_no_temp_files(tmp_path):
    """A non-serializable value must not leak mkstemp droppings into
    the cache directory (they would accumulate forever)."""
    d = tmp_path / "c"
    cache = TimingCache(d)
    bad = {"v": object()}  # json.dump raises TypeError mid-write
    cache.put({"k": 1}, bad)
    assert list(d.glob("*.tmp")) == []
    assert cache.get({"k": 1}) is bad  # memory entry still stands
    # A good value afterwards persists normally.
    cache.put({"k": 2}, {"v": 2})
    assert TimingCache(d).get({"k": 2}) == {"v": 2}
    assert list(d.glob("*.tmp")) == []


def test_chaos_maintenance_hooks(tmp_path):
    """invalidate_memory / on_disk_entries / entry_path — the chaos
    engine's cache-fault surface."""
    d = tmp_path / "c"
    cache = TimingCache(d)
    cache.put({"k": 1}, {"v": 1})
    cache.put({"k": 2}, {"v": 2})
    keys = cache.on_disk_entries()
    assert len(keys) == 2 and keys == sorted(keys)
    assert cache.entry_path(keys[0]) == d / f"{keys[0]}.json"
    assert cache.invalidate_memory() == 2
    # Mirrors dropped, disk intact: the next get re-reads the file.
    assert cache.get({"k": 1}) == {"v": 1}
    memory_only = TimingCache(None)
    assert memory_only.on_disk_entries() == []
    assert memory_only.entry_path("x") is None
    memory_only.put({"k": 1}, {"v": 1})
    assert memory_only.invalidate_memory() == 1
