"""Unit + integration tests for the integer-only ViT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.fusion import FC, IC, IC_FC, TACKER, TC_IC_FC, VITBIT
from repro.vit import (
    GemmExecutor,
    IntViT,
    ViTConfig,
    run_inference,
    verify_bit_exact,
    vit_workload,
)
from repro.vit.layers import IntLinear
from repro.formats.quantize import DyadicScale


@pytest.fixture(scope="module")
def tiny_model():
    return IntViT.create(ViTConfig.test_tiny(), seed=42)


@pytest.fixture
def tiny_images(rng):
    cfg = ViTConfig.test_tiny()
    return rng.integers(0, 256, size=(2, cfg.in_channels, cfg.image_size, cfg.image_size))


class TestConfig:
    def test_vit_base_matches_table2(self):
        cfg = ViTConfig.vit_base()
        assert cfg.hidden == 768
        assert cfg.depth == 12
        assert cfg.heads == 12
        assert cfg.mlp_dim == 3072
        assert cfg.tokens == 197
        assert cfg.head_dim == 64
        assert cfg.patch_dim == 768

    def test_invalid_configs(self):
        with pytest.raises(ModelConfigError):
            ViTConfig(image_size=225)
        with pytest.raises(ModelConfigError):
            ViTConfig(hidden=100, heads=7)
        with pytest.raises(ModelConfigError):
            ViTConfig(depth=0)

    def test_tiny_is_small_but_structural(self):
        cfg = ViTConfig.test_tiny()
        assert cfg.tokens == 17
        assert cfg.hidden % cfg.heads == 0


class TestIntLinear:
    def test_forward_range(self, rng):
        lin = IntLinear(
            weight=rng.integers(-127, 128, size=(8, 16)),
            bias=np.zeros(8, dtype=np.int64),
            out_scale=DyadicScale(1, 8),
        )
        x = rng.integers(0, 256, size=(16, 5))
        out = lin.forward(x, GemmExecutor(None))
        assert out.shape == (8, 5)
        assert out.min() >= 1 and out.max() <= 255

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ModelConfigError):
            IntLinear(
                weight=rng.integers(-1, 2, size=(4, 4)),
                bias=np.zeros(3, dtype=np.int64),
                out_scale=DyadicScale(1, 1),
            )

    def test_strategies_agree(self, rng):
        lin = IntLinear(
            weight=rng.integers(-127, 128, size=(12, 24)),
            bias=rng.integers(-100, 100, size=12),
            out_scale=DyadicScale(3, 10),
        )
        x = rng.integers(0, 256, size=(24, 40))
        ref = lin.forward(x, GemmExecutor(None))
        for strategy in (IC, FC, IC_FC, TACKER, TC_IC_FC, VITBIT):
            got = lin.forward(x, GemmExecutor(strategy))
            assert np.array_equal(got, ref), strategy.name


class TestModelForward:
    def test_logit_shape(self, tiny_model, tiny_images):
        logits = run_inference(tiny_model, tiny_images)
        assert logits.shape == (tiny_model.config.num_classes, 2)

    def test_deterministic(self, tiny_model, tiny_images):
        a = run_inference(tiny_model, tiny_images)
        b = run_inference(tiny_model, tiny_images)
        assert np.array_equal(a, b)

    def test_batch_consistency(self, tiny_model, tiny_images):
        """Each image's logits are independent of its batch neighbours."""
        both = run_inference(tiny_model, tiny_images)
        solo = run_inference(tiny_model, tiny_images[:1])
        assert np.array_equal(both[:, :1], solo)

    def test_rejects_bad_shapes(self, tiny_model, rng):
        with pytest.raises(ModelConfigError):
            run_inference(tiny_model, rng.integers(0, 256, size=(1, 3, 8, 8)))

    def test_rejects_out_of_range(self, tiny_model, tiny_images):
        with pytest.raises(ModelConfigError):
            run_inference(tiny_model, tiny_images - 300)

    def test_calibration_telemetry(self, tiny_model, tiny_images):
        """The synthetic calibration holds: every block's activations
        use a healthy slice of the integer range without mass
        saturation — the property a real calibration run establishes
        and the packing exactness quietly depends on."""
        run_inference(tiny_model, tiny_images)
        ranges = tiny_model.trace["block_ranges"]
        assert len(ranges) == tiny_model.config.depth
        for r in ranges:
            assert r["rms_fraction"] > 0.05  # not collapsed to zero
            assert r["saturated_fraction"] < 0.35  # not clipped to rails

    def test_images_affect_logits(self, tiny_model, rng):
        cfg = tiny_model.config
        a = rng.integers(0, 256, size=(1, 3, cfg.image_size, cfg.image_size))
        b = rng.integers(0, 256, size=(1, 3, cfg.image_size, cfg.image_size))
        la = run_inference(tiny_model, a)
        lb = run_inference(tiny_model, b)
        assert not np.array_equal(la, lb)


class TestBitExactness:
    """The paper's accuracy claim, per strategy."""

    @pytest.mark.parametrize(
        "strategy", [IC, FC, IC_FC, TACKER, TC_IC_FC, VITBIT],
        ids=lambda s: s.name,
    )
    def test_strategy_is_bit_exact(self, tiny_model, strategy):
        assert verify_bit_exact(tiny_model, strategy, batch=1, seed=3)

    def test_vitbit_chunked_matches_lane(self, tiny_model, rng):
        cfg = tiny_model.config
        imgs = rng.integers(0, 256, size=(1, 3, cfg.image_size, cfg.image_size))
        lane = run_inference(tiny_model, imgs, VITBIT, method="lane")
        chunked = run_inference(tiny_model, imgs, VITBIT, method="chunked")
        assert np.array_equal(lane, chunked)

    def test_executor_records_packing_stats(self, tiny_model, rng):
        cfg = tiny_model.config
        imgs = rng.integers(0, 256, size=(1, 3, cfg.image_size, cfg.image_size))
        ex = GemmExecutor(VITBIT)
        tiny_model.forward(imgs, ex)
        assert ex.gemm_count > 0
        assert ex.packed_stats.packed_multiplies > 0


class TestWorkload:
    def test_kernel_stream_structure(self):
        work = vit_workload()
        names = [kw.name for kw in work]
        assert names[0] == "patch_embed" and names[-1] == "head"
        gemms = [kw for kw in work if kw.kind == "gemm"]
        elems = [kw for kw in work if kw.kind == "elementwise"]
        assert {k.gemm.name for k in gemms} == {
            "patch_embed", "qkv", "attn_scores", "attn_context",
            "proj", "fc1", "fc2", "head",
        }
        assert {k.elementwise for k in elems} == {
            "layernorm", "softmax", "gelu", "dropout", "residual", "requantize",
        }

    def test_launch_count_scales_with_depth(self):
        base = sum(kw.repeat for kw in vit_workload())
        deep = sum(
            kw.repeat
            for kw in vit_workload(
                ViTConfig(depth=24), batch=8
            )
        )
        assert deep > 1.8 * base

    def test_linear_shapes_match_vit_base(self):
        shapes = {
            kw.gemm.name: kw.gemm
            for kw in vit_workload(batch=1)
            if kw.kind == "gemm"
        }
        assert (shapes["qkv"].m, shapes["qkv"].k) == (2304, 768)
        assert (shapes["fc1"].m, shapes["fc1"].k) == (3072, 768)
        assert (shapes["fc2"].m, shapes["fc2"].k) == (768, 3072)
        assert shapes["qkv"].n == 197

    def test_attention_matmuls_not_fusable(self):
        work = vit_workload()
        by_name = {kw.name: kw for kw in work}
        assert not by_name["attn_scores"].fusable
        assert not by_name["attn_context"].fusable
        assert by_name["qkv"].fusable

    def test_bad_batch_rejected(self):
        with pytest.raises(ModelConfigError):
            vit_workload(batch=0)
