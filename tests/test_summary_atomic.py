"""Atomicity and section-preservation of the shared summary.json merge.

``benchmarks/out/summary.json`` is written by two independent producers
— the bench session (``benches``/``factors``/``timing_cache`` sections)
and the serving CLI (``serve``/``metrics`` sections).  Both go through
:func:`repro.obs.merge_summary`, which must (a) replace only the
caller's sections, (b) write temp-then-rename so a reader never sees a
torn file, and (c) leave no temp droppings behind.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import merge_summary
from repro.serve.loadgen import LoadSpec, run_load


class TestMergeSummary:
    def test_creates_file_and_parents(self, tmp_path):
        path = tmp_path / "nested" / "out" / "summary.json"
        merge_summary(path, {"serve": {"requests": 1}})
        assert json.loads(path.read_text()) == {"serve": {"requests": 1}}

    def test_preserves_other_sections(self, tmp_path):
        path = tmp_path / "summary.json"
        merge_summary(path, {"benches": {"b1": 0.5}, "factors": {}})
        merge_summary(path, {"serve": {"requests": 9}})
        payload = json.loads(path.read_text())
        assert payload["benches"] == {"b1": 0.5}
        assert payload["serve"] == {"requests": 9}

    def test_replaces_own_section_only(self, tmp_path):
        path = tmp_path / "summary.json"
        merge_summary(path, {"serve": {"requests": 1}, "metrics": {"a": 1}})
        merge_summary(path, {"serve": {"requests": 2}})
        payload = json.loads(path.read_text())
        assert payload["serve"] == {"requests": 2}
        assert payload["metrics"] == {"a": 1}

    def test_interleaved_bench_and_serve_writers(self, tmp_path):
        """The ISSUE scenario: bench and serve merges interleave; both
        producers' sections survive every interleaving."""
        path = tmp_path / "summary.json"
        for round_idx in range(3):
            merge_summary(path, {"benches": {"b": round_idx}})
            merge_summary(path, {"serve": {"round": round_idx}})
        payload = json.loads(path.read_text())
        assert payload["benches"] == {"b": 2}
        assert payload["serve"] == {"round": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "summary.json"
        for _ in range(5):
            merge_summary(path, {"serve": {"x": 1}})
        assert os.listdir(tmp_path) == ["summary.json"]

    def test_corrupt_existing_file_is_recovered(self, tmp_path):
        path = tmp_path / "summary.json"
        path.write_text("{not json")
        merge_summary(path, {"serve": {"requests": 3}})
        assert json.loads(path.read_text()) == {"serve": {"requests": 3}}

    def test_file_is_always_complete_json(self, tmp_path):
        """After any number of merges the on-disk bytes parse: the
        rename is atomic, so there is no partially-written state."""
        path = tmp_path / "summary.json"
        big = {"blob": ["x" * 100] * 200}
        for i in range(4):
            merge_summary(path, {f"section_{i}": big})
            json.loads(path.read_text())  # must never raise
        assert len(json.loads(path.read_text())) == 4


class TestWriteSummaryEndToEnd:
    def test_serve_report_merge_preserves_bench_sections(self, tmp_path):
        path = tmp_path / "summary.json"
        merge_summary(
            path,
            {"benches": {"bench_x": 1.0}, "total_bench_seconds": 1.0},
        )
        report = run_load(spec=LoadSpec(requests=10, seed=3))
        report.write_summary(path)
        payload = json.loads(path.read_text())
        assert payload["benches"] == {"bench_x": 1.0}
        assert payload["serve"]["requests"] == 10
        assert "metrics" in payload

    def test_write_summary_returns_path(self, tmp_path):
        report = run_load(spec=LoadSpec(requests=5, seed=1))
        out = report.write_summary(tmp_path / "s.json")
        assert out == tmp_path / "s.json"
        assert out.exists()


@pytest.mark.parametrize("sections", [{}, {"only": {}}])
def test_merge_summary_degenerate_sections(tmp_path, sections):
    """Empty or trivial section dicts still produce valid JSON."""
    path = tmp_path / "summary.json"
    merge_summary(path, sections)
    assert json.loads(path.read_text()) == sections
