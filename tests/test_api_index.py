"""Keep docs/API.md in sync with the code, and audit docstring coverage."""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"
sys.path.insert(0, str(TOOLS))

from gen_api_index import OUT, iter_modules, render  # noqa: E402


def test_api_index_is_fresh():
    """docs/API.md must match a regeneration from the current code."""
    assert OUT.exists(), "run: python tools/gen_api_index.py"
    assert OUT.read_text() == render()


def test_every_package_is_indexed():
    names = iter_modules()
    for pkg in ("repro.packing", "repro.fusion", "repro.vit", "repro.sim",
                "repro.perfmodel", "repro.arch", "repro.kernels",
                "repro.preprocess", "repro.formats", "repro.cnn"):
        assert pkg in names


@pytest.mark.parametrize("name", [n for n in iter_modules()])
def test_every_public_symbol_documented(name):
    """Every ``__all__`` entry exists and carries a docstring."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol, None)
        assert obj is not None, f"{name}.{symbol} exported but missing"
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{name}.{symbol} is undocumented"
