"""Tests for the integer CNN workload family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn import (
    IntConvNet,
    convnet_workload,
    im2col,
    int_avgpool2d,
    int_conv2d,
    int_maxpool2d,
    int_relu,
)
from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale
from repro.fusion import FC, IC_FC, TACKER, VITBIT
from repro.vit.layers import GemmExecutor


class TestIm2col:
    def test_identity_kernel(self, rng):
        x = rng.integers(0, 256, size=(2, 4, 4))
        cols = im2col(x, 1, 1)
        assert cols.shape == (2, 16)
        assert np.array_equal(cols, x.reshape(2, 16))

    def test_patch_contents(self):
        x = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
        cols = im2col(x, 2, 2, stride=2)
        assert cols.shape == (4, 4)
        # First output pixel's receptive field is the top-left 2x2.
        assert cols[:, 0].tolist() == [0, 1, 4, 5]
        assert cols[:, 3].tolist() == [10, 11, 14, 15]

    def test_padding_uses_pad_value(self):
        x = np.ones((1, 2, 2), dtype=np.int64)
        cols = im2col(x, 3, 3, pad=1, pad_value=99)
        assert cols.shape == (9, 4)
        assert (cols == 99).sum() == 5 * 4  # 5 padded taps per corner window

    def test_output_size_error(self):
        with pytest.raises(ModelConfigError):
            im2col(np.zeros((1, 2, 2), dtype=np.int64), 5, 5)

    def test_conv_equivalence(self, rng):
        """im2col + matmul equals a direct convolution loop."""
        x = rng.integers(-10, 10, size=(3, 6, 6))
        w = rng.integers(-5, 6, size=(4, 3, 3, 3))
        cols = im2col(x, 3, 3, pad=1)
        got = (w.reshape(4, -1) @ cols).reshape(4, 6, 6)
        ref = np.zeros((4, 6, 6), dtype=np.int64)
        xp = np.zeros((3, 8, 8), dtype=np.int64)
        xp[:, 1:7, 1:7] = x
        for oc in range(4):
            for i in range(6):
                for j in range(6):
                    ref[oc, i, j] = int(
                        (w[oc] * xp[:, i : i + 3, j : j + 3]).sum()
                    )
        assert np.array_equal(got, ref)


class TestOps:
    def test_relu_clamps_at_zero_point(self):
        x = np.array([[[100, 128, 200]]])
        assert int_relu(x, zero_point=128)[0, 0].tolist() == [128, 128, 200]

    def test_maxpool(self):
        x = np.arange(16, dtype=np.int64).reshape(1, 4, 4)
        out = int_maxpool2d(x, 2)
        assert out[0].tolist() == [[5, 7], [13, 15]]

    def test_avgpool_floor(self):
        x = np.array([[[1, 2], [3, 5]]])
        assert int_avgpool2d(x, 2)[0, 0, 0] == 2  # floor(11/4)

    def test_conv_zero_padding_is_semantic_zero(self, rng):
        """Padding with the zero point contributes nothing: a conv over
        an all-zero-point image yields only bias-driven outputs."""
        w = rng.integers(-127, 128, size=(2, 1, 3, 3), dtype=np.int64)
        bias = np.array([7, -7], dtype=np.int64)
        x = np.full((1, 4, 4), 128, dtype=np.int64)  # semantic zeros
        out = int_conv2d(
            x, w, bias, DyadicScale(1, 0), GemmExecutor(None),
            zero_point=128, pad=1,
        )
        assert np.all(out[0] == 128 + 7)
        assert np.all(out[1] == 128 - 7)


class TestIntConvNet:
    @pytest.fixture(scope="class")
    def net(self):
        return IntConvNet.create(seed=11)

    @pytest.fixture(scope="class")
    def images(self):
        return np.random.default_rng(5).integers(0, 256, size=(2, 3, 32, 32))

    def test_logit_shape(self, net, images):
        logits = net.forward(images, GemmExecutor(None))
        assert logits.shape == (10, 2)

    @pytest.mark.parametrize(
        "strategy", [FC, IC_FC, TACKER, VITBIT], ids=lambda s: s.name
    )
    def test_bit_exact_under_strategies(self, net, images, strategy):
        ref = net.forward(images, GemmExecutor(None))
        got = net.forward(images, GemmExecutor(strategy))
        assert np.array_equal(ref, got)

    def test_batch_independence(self, net, images):
        both = net.forward(images, GemmExecutor(None))
        solo = net.forward(images[:1], GemmExecutor(None))
        assert np.array_equal(both[:, :1], solo)

    def test_bad_input_shape(self, net):
        with pytest.raises(ModelConfigError):
            net.forward(np.zeros((1, 1, 32, 32), dtype=np.int64), GemmExecutor(None))

    def test_indivisible_image_rejected(self):
        with pytest.raises(ModelConfigError):
            IntConvNet.create(image_size=30)


class TestWorkload:
    def test_structure(self):
        work = convnet_workload()
        kinds = [kw.kind for kw in work]
        assert kinds.count("gemm") == 4  # 3 convs + head
        assert work[-1].name == "head" and not work[-1].fusable

    def test_conv_gemm_shapes(self):
        work = convnet_workload(image_size=32, channels=(16, 32, 64), batch=4)
        conv0 = next(kw for kw in work if kw.name == "conv0")
        assert (conv0.gemm.m, conv0.gemm.k) == (16, 27)
        assert conv0.gemm.n == 32 * 32 * 4

    def test_timing_runs(self, machine):
        from repro.fusion import TC
        from repro.perfmodel import PerformanceModel
        from repro.vit import time_inference

        pm = PerformanceModel(machine)
        t = time_inference(pm, TC, workload=convnet_workload(batch=4))
        assert t.total_seconds > 0

    def test_large_cnn_benefits_from_vitbit(self, machine):
        """Fat conv GEMMs (ImageNet-class channels) gain; the tiny
        CIFAR-class net is launch/memory bound and does not — the same
        size threshold as the ViT batch crossover."""
        from repro.fusion import TC, VITBIT
        from repro.perfmodel import PerformanceModel
        from repro.vit import time_inference

        pm = PerformanceModel(machine)
        work = convnet_workload(image_size=64, channels=(128, 256, 512), batch=8)
        base = time_inference(pm, TC, workload=work).total_seconds
        vb = time_inference(pm, VITBIT, workload=work).total_seconds
        assert base / vb > 1.1
