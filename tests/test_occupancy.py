"""Unit tests for the occupancy calculator and prior-work register packing."""

from __future__ import annotations

import pytest

from repro.arch.specs import SMSpec
from repro.errors import SimulationError
from repro.sim.occupancy import (
    KernelResources,
    occupancy,
    occupancy_gain_from_register_packing,
    registers_after_packing,
)

SM = SMSpec()


class TestKernelResources:
    def test_warps_per_block(self):
        assert KernelResources(32, 256).warps_per_block == 8
        assert KernelResources(32, 33).warps_per_block == 2

    def test_invalid_rejected(self):
        with pytest.raises(SimulationError):
            KernelResources(0, 256)
        with pytest.raises(SimulationError):
            KernelResources(32, 0)
        with pytest.raises(SimulationError):
            KernelResources(32, 32, shared_mem_per_block=-1)


class TestOccupancy:
    def test_light_kernel_is_warp_limited(self):
        occ = occupancy(SM, KernelResources(16, 128))
        assert occ.limiter == "warps"
        assert occ.warps_per_sm == SM.max_warps_per_sm
        assert occ.occupancy_fraction == 1.0

    def test_register_hungry_kernel_is_register_limited(self):
        occ = occupancy(SM, KernelResources(128, 256))
        assert occ.limiter == "registers"
        assert occ.warps_per_sm < SM.max_warps_per_sm

    def test_shared_memory_limit(self):
        occ = occupancy(
            SM, KernelResources(16, 64, shared_mem_per_block=96 * 1024)
        )
        assert occ.limiter == "shared_mem"
        assert occ.blocks_per_sm == 1

    def test_block_limit(self):
        occ = occupancy(SM, KernelResources(8, 32))
        assert occ.blocks_per_sm <= 16

    def test_too_large_block_rejected(self):
        with pytest.raises(SimulationError):
            occupancy(SM, KernelResources(16, 2048))

    def test_impossible_kernel_rejected(self):
        with pytest.raises(SimulationError):
            occupancy(SM, KernelResources(255, 1024))


class TestRegisterPacking:
    def test_no_narrow_values_no_change(self):
        assert registers_after_packing(64, 0.0, 8) == 64

    def test_all_narrow_quarters_demand(self):
        assert registers_after_packing(64, 1.0, 8) == 16

    def test_partial(self):
        # 60% of 64 registers share 4:1, the rest stay full width.
        assert registers_after_packing(64, 0.6, 8) == 36

    def test_never_below_one(self):
        assert registers_after_packing(1, 1.0, 1) == 1

    def test_invalid_fraction(self):
        with pytest.raises(SimulationError):
            registers_after_packing(64, 1.5, 8)

    def test_invalid_bits(self):
        with pytest.raises(SimulationError):
            registers_after_packing(64, 0.5, 0)

    def test_occupancy_gain_monotone(self):
        kernel = KernelResources(96, 256)
        base, packed = occupancy_gain_from_register_packing(SM, kernel, 0.5, 8)
        assert packed.warps_per_sm >= base.warps_per_sm

    def test_sec22_distinction(self):
        """Storage packing raises residency; it cannot change the ALU
        operand width (there is no throughput term here at all —
        that's the whole point of the paper's Sec. 2.2)."""
        kernel = KernelResources(64, 256)
        base, packed = occupancy_gain_from_register_packing(SM, kernel, 0.6, 8)
        assert packed.warps_per_sm > base.warps_per_sm
