"""Seeded differential fuzzing of the GEMM stack.

One seeded RNG (via :func:`repro.utils.rng.make_rng`) drives random
shapes, zero points, and bitwidths through the three GEMM
implementations — :func:`reference_gemm` (the int64 oracle),
:func:`packed_gemm` in both evaluation methods, and the fused
Tensor + INT + FP kernel — asserting bit-exact agreement everywhere.

A second battery checks the *prover/executor contract*: whenever
:func:`repro.analysis.overflow.preflight_gemm` passes a plan, executing
that plan must match the oracle bit for bit; whenever it refutes the
plan, execution must raise the same :class:`OverflowBudgetError` rather
than silently produce a wrong product.  The fuzzer may never find a
case the prover passes that then mismatches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.overflow import preflight_gemm
from repro.errors import OverflowBudgetError
from repro.kernels import fused_gemm
from repro.packing import policy_for_bitwidth
from repro.packing.gemm import packed_gemm, packed_gemm_unsigned, reference_gemm
from repro.preprocess import duplicate_weights, preprocess_input
from repro.utils.rng import make_rng

#: Bitwidths spanning every Fig. 3 packing regime: 4 lanes (4-bit),
#: 3 lanes (5-bit), 2 lanes (6- and 8-bit), and the unpacked 1-lane
#: fallback (9-bit).
BITWIDTHS = (4, 5, 6, 8, 9)

FUZZ_SEED = 0x51B17F


def _random_shape(rng: np.random.Generator) -> tuple[int, int, int]:
    """A random (M, N, K) triple, biased toward small awkward shapes."""
    m = int(rng.integers(1, 13))
    n = int(rng.integers(1, 25))
    # K = 0 (empty reduction) is a legal degenerate case the packed
    # paths must agree on; keep it in the pool.
    k = int(rng.integers(0, 97))
    return m, n, k


class TestDifferentialSignedPacked:
    """packed_gemm (sign-split + zero point) vs the int64 oracle."""

    @pytest.mark.parametrize("bits", BITWIDTHS)
    def test_signed_agreement_both_methods(self, bits):
        rng = make_rng(FUZZ_SEED + bits)
        policy = policy_for_bitwidth(bits)
        zp = 1 << (bits - 1)
        for _ in range(12):
            m, n, k = _random_shape(rng)
            a = rng.integers(-(zp - 1), zp, size=(m, k))
            b = rng.integers(-zp, zp, size=(k, n))
            ref = reference_gemm(a, b)
            for method in ("chunked", "lane"):
                got = packed_gemm(
                    a, b, policy, b_zero_point=zp, method=method
                )
                assert np.array_equal(got, ref), (
                    f"bits={bits} method={method} shape=({m},{n},{k})"
                )

    @pytest.mark.parametrize("bits", BITWIDTHS)
    def test_unsigned_agreement_both_methods(self, bits):
        rng = make_rng(FUZZ_SEED ^ bits)
        policy = policy_for_bitwidth(bits)
        hi = policy.max_value + 1
        for _ in range(12):
            m, n, k = _random_shape(rng)
            a = rng.integers(0, hi, size=(m, k))
            b = rng.integers(0, hi, size=(k, n))
            ref = reference_gemm(a, b)
            chunked = packed_gemm_unsigned(a, b, policy, method="chunked")
            lane = packed_gemm_unsigned(a, b, policy, method="lane")
            assert np.array_equal(chunked, ref)
            assert np.array_equal(lane, ref)

    def test_random_zero_points(self):
        """Any zero point that keeps B packable must stay exact."""
        rng = make_rng(FUZZ_SEED + 1000)
        policy = policy_for_bitwidth(8)
        for _ in range(10):
            m, n, k = _random_shape(rng)
            zp = int(rng.integers(0, policy.max_value + 1))
            b = rng.integers(-zp, policy.max_value - zp + 1, size=(k, n))
            a = rng.integers(-127, 128, size=(m, k))
            got = packed_gemm(a, b, policy, b_zero_point=zp)
            assert np.array_equal(got, reference_gemm(a, b))


class TestProverExecutorContract:
    """preflight_gemm's verdict must be consistent with execution."""

    def test_verdicts_match_execution(self):
        """Prover passes => bit-exact; prover refutes => execution raises.

        Scalars are drawn wider than the policy's multiplier width on
        purpose: that is the regime where single products stop fitting
        their lane field and the prover must start refuting.
        """
        rng = make_rng(FUZZ_SEED + 2000)
        passed = refuted = 0
        for _ in range(30):
            bits = int(rng.choice(BITWIDTHS))
            policy = policy_for_bitwidth(bits)
            a_bits = int(rng.integers(1, 22))
            m, n, k = _random_shape(rng)
            k = max(k, 1)  # K=0 is trivially safe; covered elsewhere
            a = rng.integers(0, 1 << a_bits, size=(m, k))
            b = rng.integers(0, policy.max_value + 1, size=(k, n))
            try:
                proof = preflight_gemm(policy, a_bits=a_bits, k=k)
            except OverflowBudgetError:
                refuted += 1
                with pytest.raises(OverflowBudgetError):
                    packed_gemm_unsigned(a, b, policy, a_bits=a_bits)
                continue
            passed += 1
            assert proof.safe
            got = packed_gemm_unsigned(a, b, policy, a_bits=a_bits)
            assert np.array_equal(got, reference_gemm(a, b)), (
                f"prover passed bits={bits} a_bits={a_bits} k={k} "
                "but execution mismatched the oracle"
            )
        # The sweep must actually exercise both sides of the contract.
        assert passed > 0 and refuted > 0

    def test_empty_reduction_always_safe(self):
        """K=0 plans are trivially safe and produce the zero matrix."""
        for bits in BITWIDTHS:
            policy = policy_for_bitwidth(bits)
            proof = preflight_gemm(policy, a_bits=bits, k=0)
            assert proof.safe
            a = np.zeros((3, 0), dtype=np.int64)
            b = np.zeros((0, 5), dtype=np.int64)
            got = packed_gemm_unsigned(a, b, policy)
            assert np.array_equal(got, np.zeros((3, 5), dtype=np.int64))


class TestDifferentialFused:
    """The fused three-path kernel vs the oracle across random splits."""

    def test_fused_agreement_random_splits(self):
        rng = make_rng(FUZZ_SEED + 3000)
        policy = policy_for_bitwidth(8)
        zp = 128
        for m_ratio in (0.0, 1.0, 4.0):
            for _ in range(4):
                m, n, k = _random_shape(rng)
                k = max(k, 1)
                a = rng.integers(-127, 128, size=(m, k))
                b_true = rng.integers(-128, 128, size=(k, n))
                res = preprocess_input(b_true + zp, m_ratio, policy)
                a1, a2 = duplicate_weights(a)
                out = fused_gemm(a1, a2, res.matrices, policy, b_zero_point=zp)
                assert np.array_equal(out.c, reference_gemm(a, b_true)), (
                    f"m_ratio={m_ratio} shape=({m},{n},{k})"
                )

    def test_fused_agreement_low_bitwidth(self):
        """4-bit operands (4-lane packing) through the fused kernel."""
        rng = make_rng(FUZZ_SEED + 4000)
        policy = policy_for_bitwidth(4)
        zp = 8
        for _ in range(6):
            m, n, k = _random_shape(rng)
            k = max(k, 1)
            a = rng.integers(-7, 8, size=(m, k))
            b_true = rng.integers(-8, 8, size=(k, n))
            res = preprocess_input(b_true + zp, 2.0, policy)
            a1, a2 = duplicate_weights(a)
            out = fused_gemm(a1, a2, res.matrices, policy, b_zero_point=zp)
            assert np.array_equal(out.c, reference_gemm(a, b_true))

    def test_fuzz_is_reproducible(self):
        """Same seed, same stream: the fuzzer itself is deterministic."""
        draws1 = make_rng(FUZZ_SEED).integers(0, 1 << 30, size=16)
        draws2 = make_rng(FUZZ_SEED).integers(0, 1 << 30, size=16)
        assert np.array_equal(draws1, draws2)
