"""Unit + property tests for Algorithm 1 preprocessing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SplitError
from repro.packing import policy_for_bitwidth
from repro.preprocess import (
    duplicate_weights,
    int_to_float_exact,
    plan_split,
    preprocess_input,
    restore_outputs,
    split_matrix,
)

POL8 = policy_for_bitwidth(8)


class TestPlanSplit:
    def test_paper_ratio_m4(self):
        """m=4 gives the Tensor cores 4/5 of the columns."""
        plan = plan_split(1000, 4.0, POL8)
        assert plan.n3 == 800
        assert plan.n1 + plan.n2 == 200

    def test_eq1_int_fp_ratio(self):
        """Eq. 1: the INT slice gets n (=lanes) columns per FP column."""
        plan = plan_split(300, 0.0, POL8)
        assert plan.n3 == 0
        assert plan.n1 == 200 and plan.n2 == 100

    def test_n1_register_aligned(self):
        for n in range(1, 64):
            plan = plan_split(n, 4.0, POL8)
            assert plan.n1 % POL8.lanes == 0

    def test_widths_partition_total(self):
        plan = plan_split(123, 3.7, POL8)
        assert plan.n1 + plan.n2 + plan.n3 == 123

    def test_m_zero_is_cuda_only(self):
        plan = plan_split(100, 0.0, POL8)
        assert plan.n3 == 0

    def test_huge_m_is_tensor_only(self):
        plan = plan_split(100, 1e9, POL8)
        assert plan.n3 == 100 and plan.cuda_columns == 0

    def test_int_fp_ratio_zero_is_fp_only(self):
        plan = plan_split(100, 0.0, POL8, int_fp_ratio=0)
        assert plan.n1 == 0 and plan.n2 == 100

    def test_negative_inputs_rejected(self):
        with pytest.raises(SplitError):
            plan_split(-1, 4.0, POL8)
        with pytest.raises(SplitError):
            plan_split(10, -0.5, POL8)

    def test_n1_registers(self):
        plan = plan_split(300, 0.0, POL8)
        assert plan.n1_registers == plan.n1 // 2


class TestSplitMatrix:
    def test_slices_partition_columns(self, rng):
        b = rng.integers(0, 256, size=(16, 100))
        plan = plan_split(100, 4.0, POL8)
        out = split_matrix(b, plan, POL8)
        assert out.b1_raw.shape[1] == plan.n1
        assert out.b2.shape[1] == plan.n2
        assert out.b3.shape[1] == plan.n3
        recon = np.concatenate(
            [out.b1_raw, out.b2.astype(np.int64), out.b3], axis=1
        )
        assert np.array_equal(recon, b)

    def test_b1_packed_shape(self, rng):
        b = rng.integers(0, 256, size=(8, 100))
        plan = plan_split(100, 4.0, POL8)
        out = split_matrix(b, plan, POL8)
        assert out.b1_packed.shape == (8, plan.n1 // 2)
        assert out.b1_packed.dtype == np.uint32

    def test_b2_is_float32(self, rng):
        b = rng.integers(0, 256, size=(4, 30))
        plan = plan_split(30, 0.0, POL8)
        assert split_matrix(b, plan, POL8).b2.dtype == np.float32

    def test_wrong_width_rejected(self, rng):
        b = rng.integers(0, 256, size=(4, 30))
        plan = plan_split(40, 0.0, POL8)
        with pytest.raises(SplitError):
            split_matrix(b, plan, POL8)

    def test_wrong_policy_rejected(self, rng):
        b = rng.integers(0, 16, size=(4, 30))
        plan = plan_split(30, 0.0, POL8)
        with pytest.raises(SplitError):
            split_matrix(b, plan, policy_for_bitwidth(4))


class TestConvert:
    def test_int_to_float_exact_roundtrip(self, rng):
        v = rng.integers(-(2**24), 2**24, size=100)
        f = int_to_float_exact(v)
        assert np.array_equal(f.astype(np.int64), v)

    def test_int_to_float_rejects_inexact(self):
        with pytest.raises(SplitError):
            int_to_float_exact(np.array([(1 << 24) + 1]))

    def test_duplicate_weights(self, rng):
        a = rng.integers(-128, 128, size=(5, 7))
        a1, a2 = duplicate_weights(a)
        assert a1.dtype == np.int64 and a2.dtype == np.float32
        assert np.array_equal(a2.astype(np.int64), a1)

    def test_restore_outputs_roundtrip(self, rng):
        plan = plan_split(20, 1.0, POL8)
        c = rng.integers(-1000, 1000, size=(6, 20))
        out = restore_outputs(
            c[:, : plan.n1],
            c[:, plan.n1 : plan.n1 + plan.n2].astype(np.float32),
            c[:, plan.n1 + plan.n2 :],
            plan,
        )
        assert np.array_equal(out, c)

    def test_restore_rejects_bad_widths(self, rng):
        plan = plan_split(20, 1.0, POL8)
        with pytest.raises(SplitError):
            restore_outputs(
                np.zeros((2, plan.n1 + 1)),
                np.zeros((2, plan.n2)),
                np.zeros((2, plan.n3)),
                plan,
            )

    def test_restore_rejects_fractional_fp(self):
        plan = plan_split(2, 0.0, POL8, int_fp_ratio=0)
        with pytest.raises(SplitError):
            restore_outputs(
                np.zeros((1, 0)), np.array([[0.5, 1.0]], dtype=np.float32),
                np.zeros((1, 0)), plan,
            )


class TestPipeline:
    def test_preprocess_accounting(self, rng):
        b = rng.integers(0, 256, size=(16, 100))
        res = preprocess_input(b, 4.0, POL8)
        total = (
            res.elements_packed + res.elements_converted + res.elements_passthrough
        )
        assert total == b.size
        assert res.bytes_touched > 0

    def test_preprocess_overhead_small_relative_to_gemm(self, rng):
        """Sec. 3.2: input conversion touches far fewer bytes than the
        GEMM reads — the <1% overhead claim's static counterpart."""
        k, n, m_rows = 768, 768, 197
        b = rng.integers(0, 256, size=(k, n))
        res = preprocess_input(b, 4.0, POL8)
        gemm_bytes = m_rows * k * n // 100  # 1% of GEMM MAC count as bytes
        assert res.bytes_touched < 100 * gemm_bytes


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=4096),
    m=st.floats(min_value=0.0, max_value=100.0),
    bits=st.integers(min_value=2, max_value=8),
)
def test_property_plan_always_partitions(n, m, bits):
    pol = policy_for_bitwidth(bits)
    plan = plan_split(n, m, pol)
    assert plan.n1 + plan.n2 + plan.n3 == n
    assert plan.n1 % pol.lanes == 0
    assert min(plan.n1, plan.n2, plan.n3) >= 0
