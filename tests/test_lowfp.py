"""Tests for the low-precision float formats and MX microscaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.lowfp import (
    FP4_E2M1,
    FP6_E2M3,
    FP6_E3M2,
    FP8_E4M3,
    FP8_E5M2,
    MiniFloat,
    MXBlock,
)

ALL_FORMATS = (FP8_E4M3, FP8_E5M2, FP6_E3M2, FP6_E2M3, FP4_E2M1)


class TestStructure:
    def test_storage_bits(self):
        assert FP8_E4M3.bits == 8
        assert FP6_E3M2.bits == 6
        assert FP4_E2M1.bits == 4

    def test_fp4_value_set(self):
        """The canonical OCP FP4 (E2M1) value set."""
        vals = sorted(set(abs(v) for v in FP4_E2M1.all_values()))
        assert vals == [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0]

    def test_fp8_e4m3_max(self):
        # All-codes-finite convention: 480 (OCP E4M3FN reserves 448+ for NaN).
        assert FP8_E4M3.max_value == 480.0

    def test_dynamic_range_ordering(self):
        # More exponent bits -> wider range; more mantissa -> finer steps.
        assert FP8_E5M2.max_value > FP8_E4M3.max_value
        assert FP6_E2M3.max_value < FP6_E3M2.max_value

    def test_degenerate_rejected(self):
        with pytest.raises(FormatError):
            MiniFloat("bad", exp_bits=0, man_bits=3)
        with pytest.raises(FormatError):
            MiniFloat("big", exp_bits=10, man_bits=10)


class TestCodec:
    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_decode_encode_identity_on_all_codes(self, fmt):
        vals = fmt.all_values()
        codes = fmt.encode(vals)
        assert np.array_equal(fmt.decode(codes), vals)

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_quantize_is_nearest(self, fmt, rng):
        """Brute-force: quantization picks (one of) the closest
        representable value(s)."""
        x = rng.normal(scale=fmt.max_value / 3, size=2000)
        q = fmt.quantize(x)
        vals = np.unique(fmt.all_values())
        best = np.min(np.abs(x[:, None] - vals[None, :]), axis=1)
        got = np.abs(q - x)
        assert np.allclose(got, best, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
    def test_saturation(self, fmt):
        q = fmt.quantize(np.array([1e30, -1e30]))
        assert q.tolist() == [fmt.max_value, -fmt.max_value]

    def test_zero_is_exact(self):
        for fmt in ALL_FORMATS:
            assert fmt.quantize(np.array([0.0])).tolist() == [0.0]

    def test_subnormals_represented(self):
        for fmt in ALL_FORMATS:
            q = fmt.quantize(np.array([fmt.min_subnormal]))
            assert q[0] == fmt.min_subnormal

    def test_sign_symmetry(self, rng):
        x = rng.normal(size=500)
        for fmt in ALL_FORMATS:
            assert np.array_equal(fmt.quantize(x), -fmt.quantize(-x))

    def test_nonfinite_rejected(self):
        with pytest.raises(FormatError):
            FP8_E4M3.encode(np.array([np.inf]))
        with pytest.raises(FormatError):
            FP8_E4M3.encode(np.array([np.nan]))

    def test_bad_codes_rejected(self):
        with pytest.raises(FormatError):
            FP4_E2M1.decode(np.array([16]))

    @given(st.floats(min_value=-480.0, max_value=480.0, allow_nan=False))
    def test_property_quantize_idempotent(self, x):
        q1 = FP8_E4M3.quantize(np.array([x]))
        q2 = FP8_E4M3.quantize(q1)
        assert np.array_equal(q1, q2)

    @settings(max_examples=50, deadline=None)
    @given(
        exp_bits=st.integers(min_value=2, max_value=5),
        man_bits=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_relative_error_bound(self, exp_bits, man_bits, seed):
        """For normal-range inputs the relative error is <= 2^-(m+1)."""
        fmt = MiniFloat("t", exp_bits, man_bits)
        rng = np.random.default_rng(seed)
        x = rng.uniform(fmt.min_normal, fmt.max_value / 2, size=200)
        q = fmt.quantize(x)
        rel = np.abs(q - x) / x
        assert rel.max() <= 2.0 ** (-(man_bits + 1)) * 1.0000001


class TestMXBlock:
    def test_bits_per_value(self):
        assert MXBlock(FP4_E2M1, 32).bits_per_value == pytest.approx(4.25)
        assert MXBlock(FP8_E4M3, 32).bits_per_value == pytest.approx(8.25)

    def test_roundtrip_shape(self, rng):
        mx = MXBlock(FP6_E2M3, 32)
        x = rng.normal(size=100)
        s, c = mx.quantize(x)
        assert s.size == 4 and c.size == 100
        assert mx.dequantize(s, c).shape == (100,)

    def test_block_peak_always_representable(self, rng):
        """The OCP scale rule: the block max never saturates."""
        mx = MXBlock(FP4_E2M1, 16)
        x = rng.normal(size=160) * 1000
        s, c = mx.quantize(x)
        back = mx.dequantize(s, c)
        for i in range(10):
            sl = slice(16 * i, 16 * (i + 1))
            peak_idx = np.argmax(np.abs(x[sl]))
            rel = abs(back[sl][peak_idx] - x[sl][peak_idx]) / abs(x[sl][peak_idx])
            assert rel <= 0.25  # fp4's worst normal-range step

    def test_normal_inputs_error_reasonable(self, rng):
        """Gaussian data within a block quantizes with bounded median
        error (heavy-tailed data underflows, by design)."""
        mx = MXBlock(FP4_E2M1, 32)
        x = rng.normal(size=3200)
        s, c = mx.quantize(x)
        back = mx.dequantize(s, c)
        rel = np.abs(back - x) / np.maximum(np.abs(x), 1e-12)
        assert np.median(rel) < 0.25

    def test_zero_block(self):
        mx = MXBlock(FP4_E2M1, 8)
        s, c = mx.quantize(np.zeros(8))
        assert np.all(mx.dequantize(s, c) == 0)

    def test_2d_rejected(self):
        with pytest.raises(FormatError):
            MXBlock(FP4_E2M1).quantize(np.zeros((2, 2)))

    def test_fp8_blocks_tighter_than_fp4(self, rng):
        x = rng.normal(size=640)
        err = {}
        for fmt in (FP8_E4M3, FP4_E2M1):
            mx = MXBlock(fmt, 32)
            s, c = mx.quantize(x)
            err[fmt.name] = float(np.abs(mx.dequantize(s, c) - x).mean())
        assert err["fp8_e4m3"] < err["fp4_e2m1"]
