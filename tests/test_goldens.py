"""Golden-value regression: the model's headline numbers stay pinned.

Benchmark assertions allow paper-shaped tolerances; this test pins the
model's own outputs to ±2% of `benchmarks/golden.json`, so calibration
or simulator changes must be *intentional* (regenerate with
``python tools/gen_goldens.py``).
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"
sys.path.insert(0, str(TOOLS))

from gen_goldens import OUT, compute  # noqa: E402


@pytest.fixture(scope="module")
def current():
    return compute()


@pytest.fixture(scope="module")
def golden():
    assert OUT.exists(), "run: python tools/gen_goldens.py"
    return json.loads(OUT.read_text())


def _flat(d, prefix=""):
    for k, v in d.items():
        if isinstance(v, dict):
            yield from _flat(v, f"{prefix}{k}.")
        else:
            yield f"{prefix}{k}", v


def test_goldens_match(current, golden):
    cur = dict(_flat(current))
    gold = dict(_flat(golden))
    assert set(cur) == set(gold)
    for key, want in gold.items():
        got = cur[key]
        assert got == pytest.approx(want, rel=0.02), key


def test_goldens_encode_paper_shape(golden):
    """The pinned values themselves encode the paper's ordering."""
    fig5 = golden["fig5_speedups"]
    assert 1.0 < fig5["Tacker"] < fig5["TC+IC+FC"] < fig5["VitBit"]
    study = golden["initial_study_x_tc"]
    assert study["IC"] > study["IC+FC"] > study["IC+FC+P"] > 1.0
    assert golden["m_rule"] == 4


def test_goldens_cover_every_registered_backend(golden):
    """One pinned (8-bit, VitBit) reference row per backend."""
    from repro.arch import backend_names

    rows = golden["backend_rows"]
    assert set(rows) == set(backend_names())
    for name, row in rows.items():
        assert row["bits"] == 8 and row["strategy"] == "VitBit", name
        assert row["latency_ms"] > 0, name
        assert row["speedup_vs_tc"] > 0, name
    # Stock Orin keeps the paper's end-to-end win; the speculative
    # backends may land anywhere positive.
    assert rows["orin-agx"]["speedup_vs_tc"] > 1.0
