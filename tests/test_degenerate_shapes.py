"""Degenerate GEMM shapes: M=0, N=0, K=0 and single-column.

The serving layer batches arbitrary request streams, so the kernels
must agree with ``reference_gemm`` on empty dimensions too — in
particular the K=0 product, where an empty sum is zero in every output
cell (not an error).  These tests pin the contract across the
reference, packed and fused paths, and the overflow prover's view that
a depth-0 accumulation is trivially safe.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import prove_packed_accumulation
from repro.analysis.overflow import preflight_gemm
from repro.errors import PackingError
from repro.kernels import fused_gemm
from repro.packing import (
    PackedGemmStats,
    backend_names,
    packed_gemm,
    packed_gemm_unsigned,
    policy_for_bitwidth,
    policy_for_operands,
    reference_gemm,
)
from repro.preprocess import duplicate_weights, preprocess_input

POL8 = policy_for_bitwidth(8)

#: Asymmetric (multiplier, packed) width pairs covering every lane
#: count the mixed rule produces, both orientations, and the 1-bit
#: extremes whose exact product width is below a_bits + b_bits.
MIXED_PAIRS = [(8, 4), (4, 8), (8, 2), (2, 8), (8, 1), (1, 8), (3, 5)]


def _zeros(shape):
    return np.zeros(shape, dtype=np.int64)


class TestReferenceGemm:
    @pytest.mark.parametrize("m,k,n", [(2, 0, 3), (0, 5, 3), (2, 5, 0), (0, 0, 0)])
    def test_empty_dims(self, m, k, n):
        out = reference_gemm(_zeros((m, k)), _zeros((k, n)))
        assert out.shape == (m, n)
        assert np.array_equal(out, _zeros((m, n)))


class TestPackedGemmDegenerate:
    def test_k_zero_returns_zeros(self):
        """The ISSUE acceptance case: (2,0) @ (0,3) -> zeros((2,3))."""
        out = packed_gemm_unsigned(_zeros((2, 0)), _zeros((0, 3)), POL8)
        assert out.shape == (2, 3)
        assert np.array_equal(out, _zeros((2, 3)))

    def test_k_zero_signed_path(self):
        out = packed_gemm(_zeros((2, 0)), _zeros((0, 3)), POL8)
        assert np.array_equal(out, reference_gemm(_zeros((2, 0)), _zeros((0, 3))))

    def test_k_zero_stats_populated(self):
        stats = PackedGemmStats()
        out = packed_gemm_unsigned(_zeros((4, 0)), _zeros((0, 2)), POL8, stats=stats)
        assert out.shape == (4, 2)
        assert (stats.m, stats.n, stats.k) == (4, 2, 0)
        assert stats.lanes == POL8.lanes
        assert stats.safe_depth >= 1

    @pytest.mark.parametrize("m,k,n", [(0, 5, 3), (2, 5, 0), (0, 0, 0), (3, 0, 0)])
    def test_other_empty_dims(self, m, k, n, rng):
        a = rng.integers(0, 128, size=(m, k))
        b = rng.integers(0, 256, size=(k, n))
        out = packed_gemm_unsigned(a, b, POL8)
        assert out.shape == (m, n)
        assert np.array_equal(out, reference_gemm(a, b))

    def test_signed_b_without_zero_point_is_actionable(self, rng):
        a = rng.integers(-127, 128, size=(3, 6))
        b = rng.integers(-128, 128, size=(6, 4))
        b[0, 0] = -5  # guarantee a negative entry
        with pytest.raises(PackingError) as exc:
            packed_gemm(a, b, POL8)
        msg = str(exc.value)
        assert "b_zero_point" in msg
        assert f"b_zero_point={-int(b.min())}" in msg

    def test_signed_b_with_zero_point_still_works(self, rng):
        a = rng.integers(-127, 128, size=(3, 6))
        b = rng.integers(-128, 128, size=(6, 4))
        out = packed_gemm(a, b, POL8, b_zero_point=128)
        assert np.array_equal(out, reference_gemm(a, b))


class TestMixedDegenerateAcrossBackends:
    """M=0/N=0/K=0/single-column parity for asymmetric width pairs, on
    every *registered* GEMM backend (the numba backend's cores run as
    plain Python when numba is absent — same logic, same answers)."""

    @pytest.fixture
    def all_backends(self, monkeypatch):
        from repro.packing.backends.numba_jit import NumbaGemmBackend

        monkeypatch.setattr(NumbaGemmBackend, "available", lambda self: True)
        return backend_names()

    @pytest.mark.parametrize("a_bits,b_bits", MIXED_PAIRS)
    @pytest.mark.parametrize("method", ["chunked", "lane"])
    def test_degenerate_and_single_col(self, a_bits, b_bits, method, all_backends):
        policy = policy_for_operands(a_bits, b_bits)
        rng = np.random.default_rng(1000 * a_bits + b_bits)
        shapes = [(2, 0, 3), (0, 5, 3), (2, 5, 0), (0, 0, 0),
                  (3, 7, 1), (1, 9, 1), (4, 12, 5)]
        for m, k, n in shapes:
            a = rng.integers(0, 1 << a_bits, size=(m, k), dtype=np.int64)
            b = rng.integers(0, 1 << b_bits, size=(k, n), dtype=np.int64)
            want = reference_gemm(a, b)
            for backend in all_backends:
                got = packed_gemm_unsigned(
                    a, b, policy, a_bits=a_bits, method=method, backend=backend
                )
                np.testing.assert_array_equal(
                    got, want,
                    err_msg=f"a{a_bits}b{b_bits} {m}x{k}x{n} "
                            f"{method}/{backend}",
                )

    @pytest.mark.parametrize("a_bits,b_bits", MIXED_PAIRS)
    def test_signed_mixed_k_zero(self, a_bits, b_bits, all_backends):
        policy = policy_for_operands(a_bits, b_bits)
        for backend in all_backends:
            out = packed_gemm(
                _zeros((2, 0)), _zeros((0, 3)), policy, backend=backend
            )
            assert out.shape == (2, 3)
            assert np.array_equal(out, _zeros((2, 3)))


class TestProverDegenerate:
    def test_depth_zero_is_trivially_safe(self):
        proof = prove_packed_accumulation(POL8, k=0)
        assert proof.safe

    def test_negative_depth_still_rejected(self):
        with pytest.raises(PackingError):
            prove_packed_accumulation(POL8, k=-1)

    def test_preflight_depth_zero(self):
        probe = preflight_gemm(POL8, a_bits=POL8.effective_multiplier_bits, k=0)
        assert probe.safe


class TestFusedGemmDegenerate:
    def _run(self, rng, m, k, n, m_ratio=4.0):
        a = rng.integers(-127, 128, size=(m, k))
        b_true = rng.integers(-128, 128, size=(k, n))
        res = preprocess_input(b_true + 128, m_ratio, POL8)
        a1, a2 = duplicate_weights(a)
        out = fused_gemm(a1, a2, res.matrices, POL8, b_zero_point=128)
        return out.c, reference_gemm(a, b_true)

    @pytest.mark.parametrize("m,k,n", [(4, 8, 0), (0, 8, 6), (4, 0, 6), (4, 8, 1)])
    def test_degenerate_bit_exact(self, m, k, n, rng):
        got, ref = self._run(rng, m, k, n)
        assert got.shape == ref.shape
        assert np.array_equal(got, ref)


@settings(max_examples=60, deadline=None)
@given(
    m=st.integers(min_value=0, max_value=6),
    k=st.integers(min_value=0, max_value=24),
    n=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_packed_matches_reference_incl_empty(m, k, n, seed):
    """packed == reference over the whole shape lattice, empties included."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 128, size=(m, k))
    b = rng.integers(0, 256, size=(k, n))
    assert np.array_equal(
        packed_gemm_unsigned(a, b, POL8), reference_gemm(a, b)
    )


@settings(max_examples=60, deadline=None)
@given(
    pair=st.sampled_from(MIXED_PAIRS),
    m=st.integers(min_value=0, max_value=6),
    k=st.integers(min_value=0, max_value=24),
    n=st.integers(min_value=0, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_mixed_packed_matches_reference_incl_empty(pair, m, k, n, seed):
    """The whole-lattice parity property extends to asymmetric pairs."""
    a_bits, b_bits = pair
    policy = policy_for_operands(a_bits, b_bits)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << a_bits, size=(m, k))
    b = rng.integers(0, 1 << b_bits, size=(k, n))
    assert np.array_equal(
        packed_gemm_unsigned(a, b, policy, a_bits=a_bits),
        reference_gemm(a, b),
    )


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(min_value=0, max_value=5),
    k=st.integers(min_value=0, max_value=16),
    n=st.integers(min_value=0, max_value=8),
    m_ratio=st.floats(min_value=0.0, max_value=16.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_fused_matches_reference_incl_empty(m, k, n, m_ratio, seed):
    """The fused kernel's bit-exactness extends to empty dimensions."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-127, 128, size=(m, k))
    b_true = rng.integers(-128, 128, size=(k, n))
    res = preprocess_input(b_true + 128, m_ratio, POL8)
    a1, a2 = duplicate_weights(a)
    out = fused_gemm(a1, a2, res.matrices, POL8, b_zero_point=128)
    assert np.array_equal(out.c, reference_gemm(a, b_true))
