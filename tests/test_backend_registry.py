"""Backend registry + MachineSpec serialization (ISSUE 10 tentpole).

Covers registry semantics (register / resolve / duplicate and unknown
names), the JSON round-trip contract of the versioned spec schema,
schema validation of malformed documents, and a hypothesis property:
*every* registered backend prices a small GEMM with positive finite
time and energy — the conformance floor all backends share, with no
per-backend carve-outs.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    DEFAULT_BACKEND,
    MachineSpec,
    SPEC_SCHEMA_VERSION,
    backend_names,
    jetson_orin_agx,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.arch.energy import kernel_energy
from repro.errors import BackendError, SpecValidationError
from repro.fusion import TC
from repro.perfmodel import GemmShape, PerformanceModel


class TestRegistrySemantics:
    def test_builtins_are_registered(self):
        names = backend_names()
        assert names == tuple(sorted(names))
        for required in ("orin-agx", "ten-four", "camp-lv", "orin-rfc"):
            assert required in names

    def test_default_backend_is_orin(self):
        spec = resolve_backend(DEFAULT_BACKEND)
        assert spec == jetson_orin_agx()

    def test_register_resolve_unregister_roundtrip(self):
        spec = dataclasses.replace(jetson_orin_agx(), name="Test Machine")
        register_backend("test-machine", spec)
        try:
            assert resolve_backend("test-machine") is spec
            assert "test-machine" in backend_names()
        finally:
            unregister_backend("test-machine")
        assert "test-machine" not in backend_names()

    def test_duplicate_name_rejected_and_replace_opt_in(self):
        spec = dataclasses.replace(jetson_orin_agx(), name="Dup A")
        other = dataclasses.replace(jetson_orin_agx(), name="Dup B")
        register_backend("dup-test", spec)
        try:
            with pytest.raises(BackendError) as exc:
                register_backend("dup-test", other)
            assert "dup-test" in str(exc.value)
            assert "Dup A" in str(exc.value)  # names the existing spec
            assert "replace=True" in str(exc.value)
            register_backend("dup-test", other, replace=True)
            assert resolve_backend("dup-test") is other
        finally:
            unregister_backend("dup-test")

    def test_unknown_name_error_lists_registered_choices(self):
        with pytest.raises(BackendError) as exc:
            resolve_backend("bogus-backend")
        message = str(exc.value)
        assert "bogus-backend" in message
        for name in backend_names():
            assert name in message

    def test_unregister_unknown_name_raises(self):
        with pytest.raises(BackendError):
            unregister_backend("never-registered")

    def test_register_rejects_non_spec(self):
        with pytest.raises(BackendError):
            register_backend("not-a-spec", {"name": "nope"})


class TestSpecSerialization:
    def test_json_roundtrip_equality_for_every_backend(self):
        for name in backend_names():
            spec = resolve_backend(name)
            again = MachineSpec.from_json(spec.to_json())
            assert again == spec, name

    def test_to_dict_carries_schema_version(self):
        doc = jetson_orin_agx().to_dict()
        assert doc["schema_version"] == SPEC_SCHEMA_VERSION
        assert doc["sm"]["tensor_core"]["fp16_macs_per_cycle"] == 260

    def test_json_is_deterministic(self):
        spec = resolve_backend("ten-four")
        assert spec.to_json() == spec.to_json()
        assert json.loads(spec.to_json())["name"] == spec.name

    def test_wrong_schema_version_rejected(self):
        doc = jetson_orin_agx().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "schema_version" in str(exc.value)

    def test_missing_field_rejected_with_dotted_path(self):
        doc = jetson_orin_agx().to_dict()
        del doc["sm_count"]
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "sm_count" in str(exc.value)

    def test_negative_throughput_rejected(self):
        doc = jetson_orin_agx().to_dict()
        doc["sm"]["tensor_core"]["fp16_macs_per_cycle"] = -5
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "fp16_macs_per_cycle" in str(exc.value)

    def test_negative_format_multiplier_rejected(self):
        doc = jetson_orin_agx().to_dict()
        doc["sm"]["tensor_core"]["format_multipliers"]["int8"] = -2.0
        with pytest.raises(SpecValidationError):
            MachineSpec.from_dict(doc)

    def test_bool_is_not_an_int(self):
        doc = jetson_orin_agx().to_dict()
        doc["sm"]["warp_size"] = True
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "warp_size" in str(exc.value)

    def test_unknown_field_rejected(self):
        doc = jetson_orin_agx().to_dict()
        doc["flux_capacitance"] = 1.21
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "flux_capacitance" in str(exc.value)

    def test_all_problems_reported_at_once(self):
        doc = jetson_orin_agx().to_dict()
        del doc["clock_ghz"]
        doc["sm"]["partitions"] = "four"
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        message = str(exc.value)
        assert "clock_ghz" in message and "partitions" in message

    def test_non_object_section_rejected(self):
        doc = jetson_orin_agx().to_dict()
        doc["sm"] = [1, 2, 3]
        with pytest.raises(SpecValidationError) as exc:
            MachineSpec.from_dict(doc)
        assert "sm" in str(exc.value)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(SpecValidationError):
            MachineSpec.from_json("[1, 2, 3]")


class TestBackendConformance:
    """The shared floor: every registered backend prices work sanely."""

    @settings(max_examples=20, deadline=None)
    @given(
        backend=st.sampled_from(backend_names()),
        m=st.sampled_from((32, 64, 96)),
        n=st.sampled_from((64, 128, 256)),
        k=st.sampled_from((32, 64)),
    )
    def test_any_backend_prices_a_small_gemm(self, backend, m, n, k):
        machine = resolve_backend(backend)
        pm = PerformanceModel(machine, clamp_ratio=True)
        timing = pm.time_gemm(GemmShape(m, n, k), TC)
        assert timing.seconds > 0 and math.isfinite(timing.seconds)
        energy = kernel_energy(timing.issued, 1024.0, timing.seconds)
        assert energy.total > 0 and math.isfinite(energy.total)

    def test_every_backend_is_register_limit_sane(self):
        for name in backend_names():
            sm = resolve_backend(name).sm
            assert sm.effective_registers_per_sm >= sm.registers_per_sm * 0.5
            assert sm.register_limited_warps(40) >= 1
