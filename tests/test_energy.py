"""Unit tests for the energy model (extension)."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.arch.energy import (
    EnergyBreakdown,
    EnergyParams,
    inference_energy,
    kernel_energy,
)
from repro.errors import ModelConfigError
from repro.fusion import TC, VITBIT
from repro.perfmodel import PerformanceModel
from repro.sim.instruction import OpClass


class TestKernelEnergy:
    def test_zero_work_costs_static_only(self):
        e = kernel_energy({}, 0.0, 1.0)
        assert e.dynamic_compute == 0.0
        assert e.dynamic_dram == 0.0
        assert e.static == pytest.approx(EnergyParams().static_watts)

    def test_compute_energy_scales_with_instructions(self):
        a = kernel_energy({OpClass.INT: 1e6}, 0.0, 0.0)
        b = kernel_energy({OpClass.INT: 2e6}, 0.0, 0.0)
        assert b.dynamic_compute == pytest.approx(2 * a.dynamic_compute)

    def test_tensor_instruction_cheaper_per_mac(self):
        p = EnergyParams()
        tc_per_mac = p.pj_per_instruction[OpClass.TENSOR] / 4096
        int_per_mac = p.pj_per_instruction[OpClass.INT] / 32
        assert tc_per_mac < int_per_mac / 2

    def test_dram_energy(self):
        e = kernel_energy({}, 1e9, 0.0)
        assert e.dynamic_dram == pytest.approx(1e9 * 80e-12)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ModelConfigError):
            kernel_energy({}, -1.0, 0.0)
        with pytest.raises(ModelConfigError):
            kernel_energy({}, 0.0, -1.0)

    def test_breakdown_addition(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0)
        b = EnergyBreakdown(0.5, 0.5, 0.5)
        total = a + b
        assert total.total == pytest.approx(7.5)

    def test_invalid_params_rejected(self):
        with pytest.raises(ModelConfigError):
            EnergyParams(static_watts=-1.0)


class TestInferenceEnergy:
    @pytest.fixture(scope="class")
    def pm(self):
        return PerformanceModel(jetson_orin_agx())

    def test_total_positive_and_decomposes(self, pm):
        e = inference_energy(pm, TC)
        assert e.total > 0
        assert e.total == pytest.approx(
            e.dynamic_compute + e.dynamic_dram + e.static
        )

    def test_vitbit_saves_static_energy(self, pm):
        """Finishing sooner always saves leakage — the one energy term
        every speedup improves."""
        tc = inference_energy(pm, TC)
        vb = inference_energy(pm, VITBIT)
        assert vb.static < tc.static

    def test_fusion_pays_compute_energy(self, pm):
        """The extension's finding: CUDA-core MACs cost more energy
        than Tensor-core MACs, so fusion trades energy for latency."""
        tc = inference_energy(pm, TC)
        vb = inference_energy(pm, VITBIT)
        assert vb.dynamic_compute > tc.dynamic_compute

    def test_energy_scales_with_batch(self, pm):
        small = inference_energy(pm, TC, batch=4)
        large = inference_energy(pm, TC, batch=16)
        assert large.total > 1.5 * small.total
