"""Unit and regression tests for the unified observability layer.

Covers the metric primitives, the exporters, the simulated-clock bridge
in the tracer, and the headline determinism guarantee: two same-seed
``run_load`` runs under the :class:`SimulatedClock` produce
byte-identical metrics snapshots and byte-identical span traces.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.registry import MetricsRegistry, render_labels
from repro.obs.tracer import Tracer, active_clock
from repro.perfmodel.timingcache import TimingCache
from repro.serve.clock import SimulatedClock
from repro.serve.loadgen import LoadSpec, run_load


@pytest.fixture()
def registry() -> MetricsRegistry:
    """A private registry (the process default stays untouched)."""
    return MetricsRegistry()


@pytest.fixture()
def fresh_observability(monkeypatch):
    """Isolated process-wide defaults: clean registry/tracer, no
    persistent timing cache, restored afterwards."""
    monkeypatch.setenv("REPRO_TIMING_CACHE", "0")
    TimingCache.reset_default()
    obs.reset_observability()
    yield
    TimingCache.reset_default()
    obs.reset_observability()


class TestRegistry:
    def test_counter_monotonic(self, registry):
        c = registry.counter("requests_total", "help")
        c.inc()
        c.inc(3)
        assert registry.snapshot()["counters"]["requests_total"]["values"][""] == 4

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ObservabilityError):
            registry.counter("c", "").inc(-1)

    def test_labels_are_distinct_children(self, registry):
        registry.counter("req", "", labels={"status": "ok"}).inc()
        registry.counter("req", "", labels={"status": "err"}).inc(2)
        values = registry.snapshot()["counters"]["req"]["values"]
        assert values[render_labels({"status": "ok"})] == 1
        assert values[render_labels({"status": "err"})] == 2

    def test_render_labels_sorted_and_stable(self):
        assert render_labels({"b": "2", "a": "1"}) == 'a="1",b="2"'
        assert render_labels(None) == ""

    def test_type_conflict_rejected(self, registry):
        registry.counter("x", "")
        with pytest.raises(ObservabilityError):
            registry.gauge("x", "")

    def test_histogram_bucket_conflict_rejected(self, registry):
        registry.histogram("h", "", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h", "", buckets=(1.0, 4.0))

    def test_histogram_counts_and_sum(self, registry):
        h = registry.histogram("h", "", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = registry.snapshot()["histograms"]["h"]["values"][""]
        # Per-bucket (non-cumulative) counts; last slot is +Inf.
        assert snap["counts"] == [1, 1, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(105.0)

    def test_gauge_set_and_inc(self, registry):
        g = registry.gauge("depth", "")
        g.set(5)
        g.inc(-2)
        assert registry.snapshot()["gauges"]["depth"]["values"][""] == 3

    def test_reset_clears_everything(self, registry):
        registry.counter("c", "").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestExporters:
    def _snap(self):
        r = MetricsRegistry()
        r.counter("hits_total", "cache hits").inc(7)
        r.histogram("batch", "sizes", buckets=(1.0, 2.0)).observe(2)
        r.gauge("depth", "queue depth", labels={"q": "a"}).set(3)
        return r.snapshot()

    def test_json_round_trip_sorted(self):
        text = obs.snapshot_to_json(self._snap())
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed["counters"]["hits_total"]["values"][""] == 7
        # Byte-stable: serializing the parse reproduces the text.
        assert obs.snapshot_to_json(parsed) == text

    def test_prometheus_exposition(self):
        text = obs.snapshot_to_prometheus(self._snap())
        assert "# TYPE hits_total counter" in text
        assert "hits_total 7" in text
        # Histogram buckets are cumulative with le labels and +Inf.
        assert 'batch_bucket{le="1"} 0' in text
        assert 'batch_bucket{le="2"} 1' in text
        assert 'batch_bucket{le="+Inf"} 1' in text
        assert "batch_count 1" in text
        assert 'depth{q="a"} 3' in text

    def test_table_render(self):
        text = obs.render_metrics_table(self._snap())
        assert "hits_total" in text and "batch" in text


class TestTracer:
    def test_span_uses_simulated_clock_when_active(self):
        tracer = Tracer()
        clock = SimulatedClock()

        async def work():
            with tracer.span("step", kind="test"):
                await clock.sleep(0.25)

        clock.run(work())
        (span,) = tracer.snapshot()
        assert span["name"] == "step"
        assert span["start_seconds"] == pytest.approx(0.0)
        assert span["duration_seconds"] == pytest.approx(0.25)
        assert span["attrs"] == {"kind": "test"}

    def test_clock_deactivated_after_run(self):
        clock = SimulatedClock()

        async def work():
            assert active_clock() is clock

        clock.run(work())
        assert active_clock() is None

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert [s["name"] for s in tracer.snapshot()] == ["boom"]

    def test_chrome_trace_export(self):
        tracer = Tracer()
        clock = SimulatedClock()

        async def work():
            with tracer.span("step", size=2):
                await clock.sleep(0.001)

        clock.run(work())
        events = json.loads(tracer.to_chrome_trace())["traceEvents"]
        (ev,) = events
        assert ev["name"] == "step"
        assert ev["ts"] == pytest.approx(0.0)
        assert ev["dur"] == pytest.approx(1000.0)  # microseconds
        assert ev["args"] == {"size": 2}


class TestServeDeterminism:
    """ISSUE acceptance: same seed, same snapshot, byte for byte."""

    SPEC = LoadSpec(requests=50, seed=11)

    def _one_run(self):
        TimingCache.reset_default()
        obs.reset_observability()
        report = run_load(spec=self.SPEC)
        metrics = obs.snapshot_to_json(obs.snapshot())
        trace = obs.get_tracer().to_chrome_trace()
        return report, metrics, trace

    def test_same_seed_identical_metrics_and_traces(self, fresh_observability):
        _, metrics1, trace1 = self._one_run()
        _, metrics2, trace2 = self._one_run()
        assert metrics1 == metrics2
        assert trace1 == trace2

    def test_serve_populates_expected_metrics(self, fresh_observability):
        report, metrics, _ = self._one_run()
        snap = json.loads(metrics)
        counters = snap["counters"]
        assert counters["serve_batches_total"]["values"][""] > 0
        statuses = counters["serve_requests_total"]["values"]
        assert statuses[render_labels({"status": "submitted"})] == 50
        hist = snap["histograms"]["serve_batch_size"]["values"][""]
        assert hist["count"] == counters["serve_batches_total"]["values"][""]
        # The report carried the same snapshot along.
        assert report.metrics == snap

    def test_spans_use_simulated_time(self, fresh_observability):
        self._one_run()
        spans = obs.get_tracer().snapshot()
        assert spans, "serve run should record batch spans"
        # Simulated time: every span starts within the sim horizon
        # (well under a wall-clock epoch timestamp).
        assert all(0.0 <= s["start_seconds"] < 60.0 for s in spans)
        assert all(s["name"] == "serve.batch" for s in spans)

    def test_write_summary_includes_metrics(self, fresh_observability, tmp_path):
        report, _, _ = self._one_run()
        path = tmp_path / "summary.json"
        report.write_summary(path)
        payload = json.loads(path.read_text())
        assert "serve" in payload
        assert payload["metrics"] == report.metrics
