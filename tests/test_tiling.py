"""Tests for the tiled-GEMM kernel builder and autotuner."""

from __future__ import annotations

import pytest

from repro.arch import jetson_orin_agx
from repro.errors import ModelConfigError, ScheduleError
from repro.kernels.tiling import (
    TileConfig,
    autotune,
    build_tiled_gemm,
    simulate_tiled,
)
from repro.perfmodel import GemmShape
from repro.sim.instruction import OpClass


@pytest.fixture(scope="module")
def machine():
    return jetson_orin_agx()


SHAPE = GemmShape(768, 1576, 768)


class TestTileConfig:
    def test_defaults_consistent(self):
        t = TileConfig()
        assert t.threads == 256
        assert t.macs_per_thread_per_k == 16

    def test_undersized_register_blocking_rejected(self):
        # 128x128 outputs need more than 2x2 regs across 4 warps.
        with pytest.raises(ModelConfigError):
            TileConfig(bm=128, bn=128, bk=8, warps=4, regs_m=2, regs_n=2)

    def test_nonpositive_rejected(self):
        with pytest.raises(ModelConfigError):
            TileConfig(bm=0)

    def test_label(self):
        assert TileConfig().label() == "64x64x16/w8r4x4"


class TestBuild:
    def test_loads_per_alu_emerges_near_cost_model(self, machine):
        """The structural stream lands near the aggregate model's
        lambda = 0.45 loads per ALU op — the constants corroborate."""
        g = build_tiled_gemm(SHAPE, TileConfig(32, 32, 8, 4, 4, 2), machine)
        assert 0.2 < g.loads_per_alu < 0.7

    def test_bigger_tiles_amortize_staging(self, machine):
        """Staging traffic per MAC scales with (bm+bn)/(bm*bn): bigger
        output tiles reuse each staged operand more."""
        small = build_tiled_gemm(SHAPE, TileConfig(32, 32, 8, 4, 4, 2), machine)
        large = build_tiled_gemm(
            SHAPE, TileConfig(128, 128, 16, 16, 8, 4), machine
        )
        assert large.loads_per_alu < small.loads_per_alu

    def test_packing_shrinks_grid_not_thread(self, machine):
        base = build_tiled_gemm(SHAPE, TileConfig(), machine, pack_lanes=1)
        packed = build_tiled_gemm(SHAPE, TileConfig(), machine, pack_lanes=2)
        assert packed.total_warps == pytest.approx(base.total_warps / 2, rel=0.1)
        # Per-warp body is identical; only the grid shrank.
        assert packed.warps_per_sm[0].body == base.warps_per_sm[0].body

    def test_fp_pipe_variant(self, machine):
        g = build_tiled_gemm(SHAPE, TileConfig(), machine, pipe=OpClass.FP)
        mix = g.warps_per_sm[0].mix()
        assert OpClass.FP in mix and OpClass.INT not in mix

    def test_tensor_pipe_rejected(self, machine):
        with pytest.raises(ScheduleError):
            build_tiled_gemm(SHAPE, TileConfig(), machine, pipe=OpClass.TENSOR)

    def test_bad_pack_lanes(self, machine):
        with pytest.raises(ModelConfigError):
            build_tiled_gemm(SHAPE, TileConfig(), machine, pack_lanes=0)


class TestSimulate:
    def test_times_consistent_with_aggregate_model(self, machine):
        """The structural kernel's time should land in the same decade
        as the aggregate cost model's IC GEMM (which reproduces the
        paper's 7.5x anchor)."""
        from repro.fusion import IC
        from repro.perfmodel import PerformanceModel

        pm = PerformanceModel(machine, include_launch_overhead=False)
        aggregate = pm.time_gemm(SHAPE, IC).seconds
        tile, stats = autotune(SHAPE, machine)
        assert stats.seconds == pytest.approx(aggregate, rel=0.35)

    def test_work_scaling_preserves_rate(self, machine):
        g = build_tiled_gemm(SHAPE, TileConfig(), machine)
        a = simulate_tiled(g, machine, target_instructions=10_000)
        b = simulate_tiled(g, machine, target_instructions=40_000)
        assert a.seconds == pytest.approx(b.seconds, rel=0.1)


class TestAutotune:
    def test_returns_candidate_minimum(self, machine):
        cands = (
            TileConfig(32, 32, 8, 4, 4, 2),
            TileConfig(64, 64, 16, 8, 4, 4),
        )
        best, stats = autotune(SHAPE, machine, candidates=cands)
        assert best in cands
        for tile in cands:
            other = simulate_tiled(
                build_tiled_gemm(SHAPE, tile, machine), machine
            )
            assert stats.seconds <= other.seconds * 1.001

    def test_packed_autotune_beats_unpacked(self, machine):
        _, base = autotune(SHAPE, machine)
        _, packed = autotune(SHAPE, machine, pack_lanes=2)
        speedup = base.seconds / packed.seconds
        assert 1.4 < speedup <= 2.05

    def test_four_lane_packing_scales_further(self, machine):
        _, two = autotune(SHAPE, machine, pack_lanes=2)
        _, four = autotune(SHAPE, machine, pack_lanes=4)
        assert four.seconds < two.seconds
