"""Schedule checker diagnostics and the WarpProgram empty-program contract."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.analysis import (
    check_coschedule_shares,
    check_launch,
    check_program,
    check_split_plan,
    check_warp_set,
)
from repro.arch.specs import jetson_orin_agx
from repro.fusion import STRATEGIES, VITBIT
from repro.packing import policy_for_bitwidth
from repro.perfmodel.descriptors import CostParams, GemmShape
from repro.perfmodel.warpsets import KernelLaunch, gemm_launch
from repro.sim.instruction import OpClass, default_timings
from repro.sim.program import WarpProgram


class TestEmptyProgramContract:
    def test_zero_iterations_with_body_rejected(self):
        with pytest.raises(SimulationError):
            WarpProgram(body=((OpClass.INT, 4),), iterations=0)

    def test_empty_is_canonical(self):
        e = WarpProgram.empty()
        assert e.is_empty and e.body == () and e.iterations == 0

    def test_straight_normalizes_all_zero_counts(self):
        assert WarpProgram.straight({OpClass.INT: 0}) == WarpProgram.empty()
        assert WarpProgram.straight({}) == WarpProgram.empty()

    def test_scaled_to_zero_yields_empty(self):
        prog = WarpProgram(body=((OpClass.INT, 4),), iterations=3)
        assert prog.scaled(0.0) == WarpProgram.empty()
        assert prog.scaled(0.01) == WarpProgram.empty()

    def test_scaled_nonzero_keeps_body(self):
        prog = WarpProgram(body=((OpClass.INT, 4),), iterations=3)
        assert prog.scaled(2.0).iterations == 6

    def test_is_empty_false_for_real_programs(self):
        assert not WarpProgram(body=((OpClass.FP, 1),), iterations=1).is_empty


class TestCheckProgram:
    def test_degenerate_program_flagged(self):
        diags = check_program(WarpProgram.empty())
        assert [d.code for d in diags] == ["VB201"]

    def test_unknown_pipe_flagged(self):
        sm = jetson_orin_agx().sm
        timings = {OpClass.INT: default_timings(sm)[OpClass.INT]}
        prog = WarpProgram(body=((OpClass.FP, 2),), iterations=1)
        diags = check_program(prog, timings=timings)
        assert any(d.code == "VB202" for d in diags)

    def test_clean_program_has_no_findings(self):
        sm = jetson_orin_agx().sm
        prog = WarpProgram(body=((OpClass.INT, 2),), iterations=4)
        assert check_program(prog, timings=default_timings(sm)) == []


class TestCheckWarpSet:
    def _warp(self):
        return WarpProgram(body=((OpClass.INT, 4),), iterations=8)

    def test_empty_set_is_error(self):
        diags = check_warp_set([], jetson_orin_agx().sm)
        assert [d.code for d in diags] == ["VB203"]

    def test_oversubscription_is_error(self):
        sm = jetson_orin_agx().sm
        warps = [self._warp()] * (sm.max_warps_per_sm + 4)
        assert any(d.code == "VB203" for d in check_warp_set(warps, sm))

    def test_partition_imbalance_is_warning(self):
        sm = jetson_orin_agx().sm
        diags = check_warp_set([self._warp()] * (sm.partitions + 1), sm)
        assert any(d.code == "VB204" for d in diags)

    def test_under_occupancy_is_warning(self):
        sm = jetson_orin_agx().sm
        diags = check_warp_set([self._warp()], sm)
        assert any(d.code == "VB207" for d in diags)

    def test_full_partition_multiple_is_clean(self):
        sm = jetson_orin_agx().sm
        diags = check_warp_set([self._warp()] * (2 * sm.partitions), sm)
        assert diags == []


class TestCheckSplitPlan:
    def _plan(self):
        return VITBIT.split_plan(1576, policy_for_bitwidth(8), 4.0)

    def test_algorithm1_plan_is_clean(self):
        assert check_split_plan(self._plan(), policy_for_bitwidth(8)) == []

    def test_lane_mismatch_is_error(self):
        diags = check_split_plan(self._plan(), policy_for_bitwidth(4))
        assert any(d.code == "VB205" for d in diags)

    def test_deviating_slices_are_flagged(self):
        # Shift one packing group from B2 to B1: still lane-aligned (so
        # constructible), but no longer the Algorithm 1 split.
        plan = self._plan()
        bad = dataclasses.replace(
            plan, n1=plan.n1 + plan.lanes, n2=plan.n2 - plan.lanes
        )
        diags = check_split_plan(bad, policy_for_bitwidth(8))
        assert any(d.code == "VB205" for d in diags)

    def test_eq1_ratio_violation_is_flagged(self):
        plan = self._plan()
        bad = dataclasses.replace(plan, int_fp_ratio=5)
        diags = check_split_plan(bad, policy_for_bitwidth(8))
        assert any(d.code == "VB205" for d in diags)


class TestCheckLaunch:
    def test_all_seed_strategies_lower_cleanly(self):
        machine = jetson_orin_agx()
        policy = policy_for_bitwidth(8)
        shape = GemmShape(768, 197, 768, name="proj")
        for strategy in STRATEGIES:
            launch = gemm_launch(
                shape, strategy, machine, policy, CostParams(), 4.0
            )
            plan_policy = (
                policy.with_lanes(launch.plan.lanes)
                if launch.plan is not None
                else policy
            )
            diags = check_launch(launch, machine, policy=plan_policy)
            assert diags == [], (strategy.name, [d.render() for d in diags])

    def test_starved_pipe_is_flagged(self):
        machine = jetson_orin_agx()
        sm = machine.sm
        launch = KernelLaunch(
            warps=[WarpProgram(body=((OpClass.FP, 4),), iterations=8)]
            * sm.partitions,
            bytes_moved=0.0,
            instruction_totals={OpClass.INT: 1e6, OpClass.FP: 1e3},
            label="starved",
        )
        diags = check_launch(launch, machine)
        assert any(d.code == "VB206" for d in diags)


class TestCoschedule:
    def _launch(self, op=OpClass.INT):
        return KernelLaunch(
            warps=[WarpProgram(body=((op, 4),), iterations=8)] * 4,
            bytes_moved=0.0,
            instruction_totals={op: 1e3},
            label="k",
        )

    def test_valid_share_is_clean(self):
        machine = jetson_orin_agx()
        diags = check_coschedule_shares(
            machine, self._launch(), self._launch(OpClass.FP)
        )
        assert diags == []

    def test_degenerate_share_is_error(self):
        machine = jetson_orin_agx()
        diags = check_coschedule_shares(
            machine, self._launch(), self._launch(), share_a=1.0
        )
        assert any(d.code == "VB209" for d in diags)

    def test_workless_kernel_is_error(self):
        machine = jetson_orin_agx()
        idle = KernelLaunch(
            warps=[WarpProgram.empty()] * 4,
            bytes_moved=0.0,
            instruction_totals={},
            label="idle",
        )
        diags = check_coschedule_shares(machine, self._launch(), idle)
        assert any(d.code == "VB209" for d in diags)
