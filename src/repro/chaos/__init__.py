"""Deterministic, seed-driven fault injection for the serving cluster.

Chaos here is *reproducible* chaos: a :class:`ChaosSpec` seed expands —
via :func:`generate_timeline` — into a fixed schedule of
:class:`ChaosEvent` faults on the **simulated** clock, and the
:class:`ChaosEngine` replays that schedule against a live
:class:`~repro.serve.cluster.ServingCluster`.  Nothing about the
injection consults wall time or unseeded randomness, so the same seed
produces byte-identical fault timelines, stats and traces on every
run — which is what lets CI *assert* resilience properties (SLO
attainment, zero bit-inexact results, bounded recovery time) instead
of eyeballing them.

Fault repertoire (see :class:`FaultKind`): worker crashes and grey
hangs, batch-latency spikes, timing-cache corruption and eviction,
refuted-packing storms, and queue-poison requests.  Every injected
fault is counted in ``chaos_faults_injected_total`` and opens a
``chaos.fault`` span.  See ``docs/ROBUSTNESS.md``.
"""

from repro.chaos.engine import ChaosEngine, ChaosSpec, generate_timeline
from repro.chaos.faults import ChaosEvent, FaultKind

__all__ = [
    "ChaosEngine",
    "ChaosEvent",
    "ChaosSpec",
    "FaultKind",
    "generate_timeline",
]
