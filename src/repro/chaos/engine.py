"""Seeded fault-timeline generation and replay.

Two halves, split on purpose:

* :func:`generate_timeline` is a *pure* function of a
  :class:`ChaosSpec` — it expands the seed into a time-sorted list of
  :class:`~repro.chaos.faults.ChaosEvent` values, consuming the RNG in
  a fixed order (kind by kind, attribute by attribute) so the schedule
  is byte-stable across processes and platforms;
* :class:`ChaosEngine` replays a timeline against a live
  :class:`~repro.serve.cluster.ServingCluster`, sleeping on the
  cluster's simulated clock between events.  Applying a fault draws
  **no** randomness — everything variable was decided at generation
  time — so the engine cannot perturb determinism at runtime.

Cache faults edit the process-wide
:class:`~repro.perfmodel.timingcache.TimingCache` behind the running
simulation (corrupting or deleting on-disk entries, then dropping the
in-memory mirror).  They affect cache *hygiene* counters only, never
simulated timings: the performance model recomputes identical numbers
on a miss, which is exactly the property the chaos CI job pins down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.chaos.faults import ChaosEvent, FaultKind
from repro.errors import ServeError
from repro.fusion.qos import QOS_CLASSES
from repro.perfmodel.timingcache import TimingCache
from repro.serve.request import InferenceRequest
from repro.utils.rng import make_rng

__all__ = ["ChaosSpec", "ChaosEngine", "generate_timeline"]

#: Request-id block used for poison submissions, far above any load
#: generator id so the two streams can never collide.
_POISON_ID_BASE = 10_000_000


@dataclass(frozen=True)
class ChaosSpec:
    """A seed plus fault counts — everything a chaos run needs.

    The timeline derives deterministically from this value; two specs
    that compare equal always yield identical fault schedules.
    """

    #: Seed of the timeline RNG (also echoed into reports).
    seed: int = 42
    #: Faults land uniformly inside ``[0.05, 0.95] * horizon_seconds``.
    horizon_seconds: float = 0.4
    #: How many of each fault kind to schedule.
    crashes: int = 1
    hangs: int = 0
    latency_spikes: int = 0
    cache_corruptions: int = 0
    cache_evictions: int = 0
    refute_storms: int = 0
    poison_requests: int = 0
    #: How long a hang holds before its delayed release (the heartbeat
    #: monitor usually crash-restarts the replica first).
    hang_seconds: float = 0.05
    #: Service-time multiplier and hold time of a latency spike.
    spike_magnitude: float = 8.0
    spike_seconds: float = 0.05
    #: Bitwidth and hold time of a refuted-packing storm.
    storm_bits: int = 8
    storm_seconds: float = 0.1
    #: On-disk cache entries touched per corruption/eviction event.
    cache_entries_per_event: int = 4
    #: Model name submitted by queue-poison events (must be unknown).
    poison_model: str = "__chaos-poison__"

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ServeError("horizon_seconds must be positive")
        counts = (
            self.crashes, self.hangs, self.latency_spikes,
            self.cache_corruptions, self.cache_evictions,
            self.refute_storms, self.poison_requests,
        )
        if any(c < 0 for c in counts):
            raise ServeError("fault counts must be >= 0")

    @property
    def total_faults(self) -> int:
        """Scheduled events across every kind."""
        return (
            self.crashes + self.hangs + self.latency_spikes
            + self.cache_corruptions + self.cache_evictions
            + self.refute_storms + self.poison_requests
        )


def generate_timeline(spec: ChaosSpec) -> list[ChaosEvent]:
    """Expand ``spec`` into a time-sorted fault schedule (pure).

    RNG consumption order is fixed — kinds in declaration order, one
    ``(times, replicas)`` draw pair per kind — so adding faults of one
    kind never reshuffles another kind's schedule.
    """
    rng = make_rng(spec.seed)
    lo, hi = 0.05 * spec.horizon_seconds, 0.95 * spec.horizon_seconds
    events: list[ChaosEvent] = []

    def _draw(count: int) -> list[tuple[float, int]]:
        if count == 0:
            return []
        times = rng.uniform(lo, hi, size=count)
        replicas = rng.integers(0, 1 << 16, size=count)
        return [(float(t), int(r)) for t, r in zip(times, replicas)]

    for at, rep in _draw(spec.crashes):
        events.append(ChaosEvent(at, FaultKind.WORKER_CRASH, replica=rep))
    for at, rep in _draw(spec.hangs):
        events.append(
            ChaosEvent(
                at, FaultKind.WORKER_HANG, replica=rep,
                duration=spec.hang_seconds,
            )
        )
    for at, rep in _draw(spec.latency_spikes):
        events.append(
            ChaosEvent(
                at, FaultKind.LATENCY_SPIKE, replica=rep,
                duration=spec.spike_seconds, magnitude=spec.spike_magnitude,
            )
        )
    for at, rep in _draw(spec.cache_corruptions):
        events.append(
            ChaosEvent(
                at, FaultKind.CACHE_CORRUPT, replica=rep,
                magnitude=float(spec.cache_entries_per_event),
            )
        )
    for at, rep in _draw(spec.cache_evictions):
        events.append(
            ChaosEvent(
                at, FaultKind.CACHE_EVICT, replica=rep,
                magnitude=float(spec.cache_entries_per_event),
            )
        )
    for at, rep in _draw(spec.refute_storms):
        events.append(
            ChaosEvent(
                at, FaultKind.REFUTE_STORM, replica=rep,
                duration=spec.storm_seconds, bits=spec.storm_bits,
            )
        )
    for at, rep in _draw(spec.poison_requests):
        events.append(ChaosEvent(at, FaultKind.QUEUE_POISON, replica=rep))

    # Stable order: time, then kind name, then replica draw.
    events.sort(key=lambda e: (e.at_seconds, e.kind.value, e.replica))
    return events


class ChaosEngine:
    """Replays a :class:`ChaosSpec` timeline against a live cluster.

    Run :meth:`run` as a task alongside the load driver (both on the
    cluster's simulated clock).  Injection is single-threaded and
    RNG-free; any runtime variability would break the byte-identical
    determinism contract, so there is none.
    """

    def __init__(self, spec: ChaosSpec, cluster):
        self.spec = spec
        self.cluster = cluster
        self.timeline = generate_timeline(spec)
        self.injected: list[ChaosEvent] = []
        self.skipped: list[ChaosEvent] = []
        self.poison_outcomes: dict[str, int] = {}
        self._poison_tasks: list = []

    # -- replay --------------------------------------------------------------

    async def run(self) -> None:
        """Inject every scheduled fault at its simulated time, in order."""
        clock = self.cluster.clock
        for event in self.timeline:
            delay = event.at_seconds - clock.now()
            if delay > 0:
                await clock.sleep(delay)
            applied = self._apply(event)
            (self.injected if applied else self.skipped).append(event)
            if applied:
                obs.counter(
                    "chaos_faults_injected_total",
                    "faults injected by the chaos engine, by kind",
                    {"kind": event.kind.value},
                ).inc()
        for task in self._poison_tasks:
            result = await task
            key = result.status.value
            self.poison_outcomes[key] = self.poison_outcomes.get(key, 0) + 1
        self._poison_tasks = []
        # Let delayed releases (unhang, spike reset, storm clear) fire
        # before the load driver tears the cluster down.
        tail = max(
            (e.at_seconds + e.duration for e in self.injected),
            default=0.0,
        )
        remaining = tail - clock.now()
        if remaining > 0:
            await clock.sleep(remaining)

    def _apply(self, event: ChaosEvent) -> bool:
        """Inject one fault; False when it lands on nothing (replica
        already down, empty cache, ...) — recorded as skipped."""
        import asyncio

        with obs.get_tracer().span(
            "chaos.fault",
            kind=event.kind.value,
            replica=event.replica % len(self.cluster.replicas),
        ):
            index = event.replica % len(self.cluster.replicas)
            if event.kind is FaultKind.WORKER_CRASH:
                return self.cluster.inject_crash(
                    index, f"replica {index} crashed: chaos injection"
                )
            if event.kind is FaultKind.WORKER_HANG:
                return self.cluster.inject_hang(index, event.duration)
            if event.kind is FaultKind.LATENCY_SPIKE:
                return self.cluster.inject_latency_spike(
                    index, event.magnitude, event.duration
                )
            if event.kind is FaultKind.CACHE_CORRUPT:
                return self._cache_fault(event, corrupt=True)
            if event.kind is FaultKind.CACHE_EVICT:
                return self._cache_fault(event, corrupt=False)
            if event.kind is FaultKind.REFUTE_STORM:
                self.cluster.set_refute_storm(event.bits, True)

                async def _clear(bits=event.bits, hold=event.duration):
                    await self.cluster.clock.sleep(hold)
                    self.cluster.set_refute_storm(bits, False)

                self.cluster._spawn(_clear())
                return True
            if event.kind is FaultKind.QUEUE_POISON:
                request = InferenceRequest(
                    request_id=_POISON_ID_BASE + len(self._poison_tasks),
                    model=self.spec.poison_model,
                    bits=8,
                    qos=QOS_CLASSES["standard"],
                )
                self._poison_tasks.append(
                    asyncio.ensure_future(self.cluster.submit(request))
                )
                return True
            raise ServeError(f"unknown fault kind {event.kind!r}")

    def _cache_fault(self, event: ChaosEvent, *, corrupt: bool) -> bool:
        """Corrupt or evict the first N on-disk timing-cache entries.

        Deterministic target choice (sorted keys, no RNG); the entries
        hit depend on host cache state, which is why cache hygiene
        counters are deliberately outside the deterministic summary.
        """
        cache = TimingCache.default()
        keys = cache.on_disk_entries()[: int(event.magnitude)]
        touched = 0
        for key in keys:
            path = cache.entry_path(key)
            if path is None:
                break
            try:
                if corrupt:
                    path.write_text("{corrupt json", encoding="utf-8")
                else:
                    path.unlink()
                touched += 1
            except OSError:
                continue
        cache.invalidate_memory()
        return touched > 0

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Deterministic record of the run (seed, counts, timeline)."""
        by_kind: dict[str, int] = {}
        for event in self.injected:
            by_kind[event.kind.value] = by_kind.get(event.kind.value, 0) + 1
        return {
            "seed": self.spec.seed,
            "scheduled": len(self.timeline),
            "injected": len(self.injected),
            "skipped": len(self.skipped),
            "by_kind": dict(sorted(by_kind.items())),
            "poison_outcomes": dict(sorted(self.poison_outcomes.items())),
            "timeline": [e.as_dict() for e in self.timeline],
        }
