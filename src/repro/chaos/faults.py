"""The fault vocabulary of the chaos engine.

A fault is data, not behaviour: :class:`ChaosEvent` records *what*
happens *when* (on the simulated clock) to *which* replica, and the
:class:`~repro.chaos.engine.ChaosEngine` interprets it against a live
cluster.  Keeping events as frozen values is what makes a timeline
comparable across runs — the determinism check is literally an
equality test on ``[e.as_dict() for e in timeline]``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FaultKind", "ChaosEvent"]


class FaultKind(enum.Enum):
    """Every fault the chaos engine knows how to inject."""

    #: Kill one replica outright; its queued and in-flight requests
    #: fail immediately and the cluster must detect + restart it.
    WORKER_CRASH = "worker_crash"
    #: Wedge one replica's batch workers (grey failure): it stops
    #: serving *and* heartbeating but does not fail requests — the
    #: heartbeat monitor must notice.
    WORKER_HANG = "worker_hang"
    #: Multiply one replica's batch execution times for a while, the
    #: way thermal throttling would; planned deadlines start slipping.
    LATENCY_SPIKE = "latency_spike"
    #: Overwrite on-disk kernel-timing cache entries with garbage and
    #: drop the in-memory mirror; lookups must quarantine, not crash
    #: and never serve corrupt timings.
    CACHE_CORRUPT = "cache_corrupt"
    #: Delete on-disk kernel-timing cache entries and drop the mirror;
    #: a pure cold-path stressor (misses, never wrong results).
    CACHE_EVICT = "cache_evict"
    #: Force a bitwidth's packing preflight to refute cluster-wide for
    #: a while; every affected batch must take the degraded baseline.
    REFUTE_STORM = "refute_storm"
    #: Submit a malformed request (unknown model) through the router;
    #: it must fail cleanly without poisoning the batch pipeline.
    QUEUE_POISON = "queue_poison"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault on the simulated clock."""

    #: Simulated time at which the engine injects this fault.
    at_seconds: float
    kind: FaultKind
    #: Raw replica draw; the engine maps it onto a live replica index
    #: with ``replica % len(cluster.replicas)``.
    replica: int = 0
    #: How long the fault holds (hang/spike/storm), simulated seconds.
    duration: float = 0.0
    #: Kind-specific intensity (spike multiplier, cache-entry count).
    magnitude: float = 0.0
    #: Target bitwidth (refute storms).
    bits: int = 0

    def as_dict(self) -> dict:
        """JSON-serializable form (timeline snapshots and comparisons)."""
        return {
            "at_seconds": round(self.at_seconds, 9),
            "kind": self.kind.value,
            "replica": self.replica,
            "duration": round(self.duration, 9),
            "magnitude": self.magnitude,
            "bits": self.bits,
        }
