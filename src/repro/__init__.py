"""VitBit reproduction — register operand packing for embedded GPUs.

Reproduces Jeon et al., *VitBit: Enhancing Embedded GPU Performance for
AI Workloads through Register Operand Packing* (ICPP 2024) as a pure
Python library: exact SWAR packing arithmetic, Algorithm 1/2
preprocessing and kernel fusion, an integer-only ViT-Base workload, and
a calibrated cycle-approximate model of the Jetson AGX Orin that
regenerates every table and figure of the paper's evaluation.

Top-level convenience re-exports cover the 90% use cases; the
subpackages (:mod:`repro.packing`, :mod:`repro.fusion`,
:mod:`repro.vit`, :mod:`repro.perfmodel`, :mod:`repro.sim`,
:mod:`repro.arch`, :mod:`repro.kernels`, :mod:`repro.preprocess`)
expose the full API.

>>> import numpy as np
>>> from repro import policy_for_bitwidth, packed_gemm, reference_gemm
>>> pol = policy_for_bitwidth(8)
>>> a = np.arange(6).reshape(2, 3); b = np.arange(12).reshape(3, 4)
>>> bool(np.array_equal(packed_gemm(a, b, pol), reference_gemm(a, b)))
True
"""

from repro.arch import jetson_orin_agx
from repro.errors import ReproError
from repro.fusion import STRATEGIES, TC, VITBIT, strategy_by_name
from repro.packing import (
    Packer,
    PackingPolicy,
    packed_gemm,
    policy_for_bitwidth,
    reference_gemm,
)
from repro.perfmodel import GemmShape, PerformanceModel
from repro.vit import IntViT, ViTConfig, time_inference, verify_bit_exact

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "jetson_orin_agx",
    "PackingPolicy",
    "policy_for_bitwidth",
    "Packer",
    "packed_gemm",
    "reference_gemm",
    "STRATEGIES",
    "TC",
    "VITBIT",
    "strategy_by_name",
    "PerformanceModel",
    "GemmShape",
    "IntViT",
    "ViTConfig",
    "time_inference",
    "verify_bit_exact",
]
