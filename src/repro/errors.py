"""Exception hierarchy for the VitBit reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures without masking programming errors
(``TypeError``/``ValueError`` raised by NumPy itself pass through).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "SpecValidationError",
    "BackendError",
    "PackingError",
    "OverflowBudgetError",
    "AnalysisError",
    "SplitError",
    "SimulationError",
    "ScheduleError",
    "CalibrationError",
    "ModelConfigError",
    "ServeError",
    "AdmissionError",
    "ObservabilityError",
    "RatioClampWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FormatError(ReproError):
    """An integer/floating-point format is invalid or unsupported."""


class SpecValidationError(ReproError):
    """A serialized machine spec failed schema validation.

    Raised by :meth:`repro.arch.specs.MachineSpec.from_dict` when a JSON
    document is missing fields, carries unknown fields, has wrongly
    typed values, or violates a value constraint (e.g. a negative
    throughput).  The message lists every problem found, not just the
    first.
    """


class BackendError(ReproError):
    """A backend-registry operation failed.

    Raised on lookup of an unregistered backend name (the message lists
    the registered choices) and on attempts to register a duplicate
    name without ``replace=True``.
    """


class PackingError(ReproError):
    """Operands cannot be packed (range, lane count, or shape mismatch)."""


class OverflowBudgetError(PackingError):
    """A packed computation would overflow its lane field.

    Raised when the guard-bit budget of a packed accumulator is exhausted
    and the caller disallowed spilling to full-width accumulators.
    """


class AnalysisError(ReproError):
    """Two static-analysis passes disagree (``VB4xx``).

    The dataflow verifier and the closed-form interval prover are run
    differentially; any verdict or budget mismatch means one of them is
    unsound and must never be silently resolved in either's favour.
    """


class SplitError(ReproError):
    """Matrix splitting (Algorithm 1) received inconsistent parameters."""


class SimulationError(ReproError):
    """The cycle-approximate simulator hit an invalid machine state."""


class ScheduleError(ReproError):
    """Warp-to-pipe scheduling constraints cannot be satisfied."""


class CalibrationError(ReproError):
    """Analytic performance model calibration failed to converge."""


class ModelConfigError(ReproError):
    """A DNN model configuration is internally inconsistent."""


class ServeError(ReproError):
    """The inference serving layer hit an invalid state (e.g. deadlock)."""


class AdmissionError(ServeError):
    """A request was refused admission (queue full or deadline infeasible)."""


class ObservabilityError(ReproError):
    """A metric was registered or used inconsistently (type, buckets)."""


class RatioClampWarning(UserWarning):
    """The Tensor:CUDA split rule did not apply and was clamped to m = 1.

    Emitted by :func:`repro.fusion.ratio.tensor_cuda_ratio_from_times`
    when ``clamp=True`` and the CUDA-core GEMM came out faster than the
    Tensor-core GEMM — a configuration the paper's rule does not cover.
    """
