"""Named backend registry over :class:`~repro.arch.specs.MachineSpec`.

ROADMAP item 4: machine specs are *data*, and the registry makes whole
machines swappable by name anywhere a spec is accepted — the
performance model, the sweep runner, the serving preflight, and the
``repro whatif`` design-space explorer.

Four backends ship built in:

``orin-agx``
    The paper's evaluation platform (Table 2), unchanged — the default
    everywhere a backend is not named explicitly.

``ten-four``
    A Ten-Four-style mixed-precision fused-dot-product tensor-core
    unit: a fatter Tensor core with a per-precision throughput table
    extended down to FP8/INT2, on a smaller SM array (the related
    work's premise is that precision flexibility, not lane count, buys
    the throughput).

``camp-lv``
    A CAMP-style long-vector/matrix-tile machine: few SMs, very wide
    SIMD pipes (64-lane INT/FP per sub-partition), a large register
    file, and a matrix unit consuming bigger tiles per instruction.

``orin-rfc``
    Orin with a register-file-compression storage layer (Angerd et
    al.): half the physical register SRAM recovered by ~1.75x
    compression, trading a sliver of occupancy for die area.

The ``ten-four`` and ``camp-lv`` parameters are *speculative models*
derived from the cited papers' ratios, not silicon measurements — see
``docs/BACKENDS.md`` for the honest caveats.
"""

from __future__ import annotations

from repro.arch.specs import MachineSpec, SMSpec, TensorCoreSpec, jetson_orin_agx
from repro.errors import BackendError

__all__ = [
    "register_backend",
    "unregister_backend",
    "resolve_backend",
    "backend_names",
    "DEFAULT_BACKEND",
]

#: Name of the backend used when none is selected explicitly.
DEFAULT_BACKEND = "orin-agx"

_REGISTRY: dict[str, MachineSpec] = {}


def register_backend(
    name: str, spec: MachineSpec, *, replace: bool = False
) -> MachineSpec:
    """Register ``spec`` under ``name`` and return it.

    Raises :class:`~repro.errors.BackendError` if ``name`` is already
    taken and ``replace`` is false — duplicate registrations are almost
    always two modules fighting over a name, so they must be explicit.
    """
    if not isinstance(spec, MachineSpec):
        raise BackendError(
            f"backend {name!r} must be registered with a MachineSpec, "
            f"got {type(spec).__name__}"
        )
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} is already registered "
            f"(as {_REGISTRY[name].name!r}); pass replace=True to override"
        )
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> MachineSpec:
    """Remove and return the backend registered under ``name``.

    Raises :class:`~repro.errors.BackendError` for unknown names.
    Intended for tests that register throwaway backends.
    """
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def resolve_backend(name: str) -> MachineSpec:
    """Return the :class:`MachineSpec` registered under ``name``.

    Raises :class:`~repro.errors.BackendError` whose message lists the
    registered choices, so a CLI typo is self-diagnosing.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def _ten_four() -> MachineSpec:
    """Ten-Four-style mixed-precision fused-dot-product unit (speculative)."""
    return MachineSpec(
        name="Ten-Four mixed-precision FDP unit (speculative)",
        sm_count=8,
        clock_ghz=1.8,
        dram_bandwidth_gbps=153.6,
        dram_capacity_gb=16.0,
        die_area_mm2=280.0,
        sm=SMSpec(
            tensor_core=TensorCoreSpec(
                fp16_macs_per_cycle=512,
                format_multipliers={
                    "fp16": 1.0,
                    "bf16": 1.0,
                    "tf32": 0.5,
                    "fp8": 2.0,
                    "int8": 2.0,
                    "int4": 4.0,
                    "int2": 8.0,
                },
            ),
        ),
    )


def _camp_lv() -> MachineSpec:
    """CAMP-style long-vector/matrix-tile machine (speculative)."""
    return MachineSpec(
        name="CAMP long-vector matrix-tile machine (speculative)",
        sm_count=4,
        clock_ghz=1.4,
        dram_bandwidth_gbps=102.4,
        dram_capacity_gb=16.0,
        die_area_mm2=350.0,
        sm=SMSpec(
            partitions=2,
            int32_lanes_per_partition=64,
            fp32_lanes_per_partition=64,
            lsu_lanes_per_partition=32,
            sfu_lanes_per_partition=8,
            registers_per_sm=131072,
            max_warps_per_sm=32,
            max_tensor_warps=2,
            tensor_core=TensorCoreSpec(
                fp16_macs_per_cycle=520,
                macs_per_instruction=8192,
            ),
        ),
    )


def _orin_rfc() -> MachineSpec:
    """Orin with register-file compression (Angerd et al., speculative)."""
    orin = jetson_orin_agx()
    return MachineSpec(
        name="Jetson AGX Orin + register-file compression (speculative)",
        sm_count=orin.sm_count,
        clock_ghz=orin.clock_ghz,
        dram_bandwidth_gbps=orin.dram_bandwidth_gbps,
        dram_capacity_gb=orin.dram_capacity_gb,
        die_area_mm2=435.0,
        sm=SMSpec(
            registers_per_sm=32768,
            register_compression_ratio=1.75,
        ),
    )


register_backend(DEFAULT_BACKEND, jetson_orin_agx())
register_backend("ten-four", _ten_four())
register_backend("camp-lv", _camp_lv())
register_backend("orin-rfc", _orin_rfc())
