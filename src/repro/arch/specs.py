"""Machine/SM specifications (Table 2 of the paper) as *data*.

The model follows the paper's simplified Ampere SM: per Streaming
Multiprocessor, an INT32 pipe and an FP32 pipe of *equal* width that can
issue concurrently at full throughput, plus Tensor cores.  The paper
states both facts explicitly (Sec. 2.3 and Sec. 3.2: "the number of
available INT cores and FP cores per SM is the same", "Ampere ...
allows concurrent operation of FP32 and INT32 cores at full
throughput"), so we encode that model rather than the asymmetric
GA10x datasheet layout.

The paper's "1792 CUDA cores" maps to 896 INT32 + 896 FP32 lanes
(14 SMs x 4 partitions x (16 + 16)); each 16-lane pipe retires one
32-thread warp instruction every 2 cycles, which is what makes
INT/FP co-issue from one warp scheduler profitable — the mechanism
behind the paper's simultaneous-execution gains.  The effective clock
is chosen so the derived peaks land on Table 1 (FP32 4 TFLOPS over
896 FP lanes x 2 ops/FMA → 2.232 GHz); only ratios matter for the
reproduction, and this equal-pipe model at 2.232 GHz is numerically
identical to the physical 1792-lane part at its boost clock.

Since PR 10 a :class:`MachineSpec` is also a *serializable data
object*: :meth:`MachineSpec.to_dict` emits a versioned JSON document
(``schema_version`` = :data:`SPEC_SCHEMA_VERSION`) and
:meth:`MachineSpec.from_dict` validates it — missing/unknown/mistyped
fields and value constraint violations (negative throughputs, zero
lane counts) raise :class:`~repro.errors.SpecValidationError` listing
*every* problem.  The backend registry
(:mod:`repro.arch.registry`) builds on this to make whole machines
swappable by name.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, field

from repro.errors import FormatError, SpecValidationError
from repro.utils.validation import check_positive

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "TensorCoreSpec",
    "SMSpec",
    "MachineSpec",
    "jetson_orin_agx",
]

#: Version tag of the serialized :class:`MachineSpec` schema.  Bump on
#: any incompatible change to the field set so stale documents are
#: rejected with an actionable message instead of misparsed.
SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TensorCoreSpec:
    """One Tensor core's issue characteristics.

    ``fp16_macs_per_cycle`` is the dense FP16 MAC rate of a single Tensor
    core; other formats scale it by ``format_multipliers`` (TF32 runs at
    half the FP16 rate, INT8 at 2x, INT4 at 4x — the Ampere ratios that
    produce Table 1's 32/65/131/262 progression).  Backends with native
    mixed-precision fused dot-product units (Ten-Four) extend the table
    with more formats rather than subclassing.

    ``macs_per_instruction`` is the MAC count one *simulated* MMA
    instruction covers (a 16x8x32 INT8 fragment on Ampere): the unit the
    performance model divides GEMM work by, and the work one fragment
    occupies the Tensor pipe for.  Matrix-tile machines (CAMP) use a
    larger fragment.
    """

    fp16_macs_per_cycle: int = 260
    format_multipliers: dict[str, float] = field(
        default_factory=lambda: {
            "fp16": 1.0,
            "bf16": 1.0,
            "tf32": 0.5,
            "int8": 2.0,
            "int4": 4.0,
        }
    )
    macs_per_instruction: int = 4096

    def __post_init__(self) -> None:
        check_positive("fp16_macs_per_cycle", self.fp16_macs_per_cycle)
        check_positive("macs_per_instruction", self.macs_per_instruction)
        for fmt, mult in self.format_multipliers.items():
            if not mult > 0:
                raise ValueError(
                    f"format_multipliers[{fmt!r}] must be positive, got {mult!r}"
                )

    def macs_per_cycle(self, fmt: str) -> float:
        """Dense MACs per cycle for numeric format ``fmt``."""
        try:
            return self.fp16_macs_per_cycle * self.format_multipliers[fmt]
        except KeyError:
            raise FormatError(
                f"Tensor core does not support format {fmt!r}; "
                f"supported: {sorted(self.format_multipliers)}"
            ) from None


@dataclass(frozen=True)
class SMSpec:
    """One Streaming Multiprocessor.

    An SM is divided into ``partitions`` sub-partitions, each with its own
    warp scheduler (1 instruction issued per cycle per scheduler), a slice
    of the INT32 and FP32 lanes, and a Tensor core.

    ``max_tensor_warps`` is the Tensor-role warp population the model
    keeps resident per SM (1 per sub-partition on Orin keeps the Tensor
    pipe saturated — its initiation interval dwarfs the warp's per-MMA
    issue needs — without starving CUDA-role residency).

    ``register_compression_ratio`` models storage-side register-file
    compression (Angerd et al.): the effective register capacity is
    ``registers_per_sm * register_compression_ratio``, raising
    *occupancy* when registers limit residency while leaving the ALU
    operand width — and therefore peak throughput — unchanged
    (Sec. 2.2's distinction, now a machine knob).
    """

    partitions: int = 4
    int32_lanes_per_partition: int = 16
    fp32_lanes_per_partition: int = 16
    tensor_cores_per_partition: int = 1
    lsu_lanes_per_partition: int = 16
    sfu_lanes_per_partition: int = 4
    registers_per_sm: int = 65536
    max_warps_per_sm: int = 48
    max_threads_per_block: int = 1024
    warp_size: int = 32
    max_tensor_warps: int = 4
    register_compression_ratio: float = 1.0
    tensor_core: TensorCoreSpec = field(default_factory=TensorCoreSpec)

    def __post_init__(self) -> None:
        for name in (
            "partitions",
            "int32_lanes_per_partition",
            "fp32_lanes_per_partition",
            "tensor_cores_per_partition",
            "lsu_lanes_per_partition",
            "sfu_lanes_per_partition",
            "registers_per_sm",
            "max_warps_per_sm",
            "max_threads_per_block",
            "warp_size",
            "max_tensor_warps",
            "register_compression_ratio",
        ):
            check_positive(name, getattr(self, name))

    @property
    def cuda_cores(self) -> int:
        """Marketing CUDA-core count (INT32 + FP32 lanes; 128 on Orin)."""
        return self.partitions * (
            self.int32_lanes_per_partition + self.fp32_lanes_per_partition
        )

    @property
    def int_lanes(self) -> int:
        """Total INT32 lanes in the SM."""
        return self.partitions * self.int32_lanes_per_partition

    @property
    def fp_lanes(self) -> int:
        """Total FP32 lanes in the SM."""
        return self.partitions * self.fp32_lanes_per_partition

    @property
    def tensor_cores(self) -> int:
        """Total Tensor cores in the SM."""
        return self.partitions * self.tensor_cores_per_partition

    @property
    def max_warps_per_partition(self) -> int:
        """Warp slots available to each sub-partition's scheduler."""
        return self.max_warps_per_sm // self.partitions

    @property
    def effective_registers_per_sm(self) -> int:
        """Register capacity after storage-side compression (Angerd)."""
        return int(self.registers_per_sm * self.register_compression_ratio)

    def register_limited_warps(
        self, registers_per_thread: int, *, alloc_unit: int = 256
    ) -> int:
        """Resident warps the (effective) register file can hold.

        Registers round up to ``alloc_unit`` per warp, the classic CUDA
        occupancy rule; the result is floored at 1 so a spec never
        reports an unrunnable SM.
        """
        check_positive("registers_per_thread", registers_per_thread)
        regs_per_warp = (
            -(-registers_per_thread * self.warp_size // alloc_unit) * alloc_unit
        )
        return max(1, self.effective_registers_per_sm // regs_per_warp)


@dataclass(frozen=True)
class MachineSpec:
    """A full embedded GPU platform (Table 2).

    ``die_area_mm2`` is the area proxy used by the arithmetic-density
    metric; only ratios of densities are ever reported, so the absolute
    value does not matter.
    """

    name: str
    sm_count: int
    clock_ghz: float
    dram_bandwidth_gbps: float
    dram_capacity_gb: float
    sm: SMSpec = field(default_factory=SMSpec)
    die_area_mm2: float = 450.0
    kernel_launch_overhead_us: float = 5.0

    def __post_init__(self) -> None:
        check_positive("sm_count", self.sm_count)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("dram_bandwidth_gbps", self.dram_bandwidth_gbps)
        check_positive("dram_capacity_gb", self.dram_capacity_gb)
        check_positive("die_area_mm2", self.die_area_mm2)
        if self.kernel_launch_overhead_us < 0:
            raise ValueError(
                "kernel_launch_overhead_us must be >= 0, got "
                f"{self.kernel_launch_overhead_us!r}"
            )

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores across all SMs (1792 on Orin AGX)."""
        return self.sm_count * self.sm.cuda_cores

    @property
    def tensor_cores(self) -> int:
        """Total Tensor cores across all SMs (56 on Orin AGX)."""
        return self.sm_count * self.sm.tensor_cores

    @property
    def clock_hz(self) -> float:
        """Clock in Hz."""
        return self.clock_ghz * 1e9

    @property
    def dram_bandwidth_bytes_per_s(self) -> float:
        """DRAM bandwidth in bytes/second."""
        return self.dram_bandwidth_gbps * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at the GPU clock."""
        return cycles / self.clock_hz

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Versioned, JSON-serializable form of this spec.

        The inverse of :meth:`from_dict`:
        ``MachineSpec.from_dict(spec.to_dict()) == spec`` for every
        valid spec.
        """
        return {"schema_version": SPEC_SCHEMA_VERSION, **asdict(self)}

    def to_json(self, *, indent: int | None = 2) -> str:
        """:meth:`to_dict` rendered as canonical JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: object) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output, validating it.

        Raises :class:`~repro.errors.SpecValidationError` listing every
        schema problem: wrong/missing ``schema_version``,
        missing/unknown/mistyped fields, and value-constraint
        violations (non-positive lane counts, negative throughputs,
        negative launch overhead).
        """
        problems: list[str] = []
        if not isinstance(data, dict):
            raise SpecValidationError(
                f"machine spec must be a JSON object, got {type(data).__name__}"
            )
        body = dict(data)
        version = body.pop("schema_version", None)
        if version != SPEC_SCHEMA_VERSION:
            problems.append(
                f"schema_version must be {SPEC_SCHEMA_VERSION}, got {version!r}"
            )
        kwargs = _validate_section(cls, body, "", problems)
        if problems:
            raise SpecValidationError(
                "invalid machine spec: " + "; ".join(problems)
            )
        try:
            return cls(**kwargs)
        except (ValueError, TypeError) as exc:
            raise SpecValidationError(f"invalid machine spec: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "MachineSpec":
        """Parse and validate a spec from JSON text (see :meth:`from_dict`)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"machine spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _validate_section(
    cls: type, data: dict, where: str, problems: list[str]
) -> dict:
    """Check one (possibly nested) spec section against its dataclass.

    Field names and types come straight from ``dataclasses.fields`` so
    the schema can never drift from the code; every mismatch is
    appended to ``problems`` (dotted paths) and a best-effort kwargs
    dict is returned for construction once ``problems`` is empty.
    """
    types = {f.name: str(f.type) for f in dataclasses.fields(cls)}
    for name in sorted(set(data) - set(types)):
        problems.append(f"unknown field {where}{name!r}")
    for name in sorted(set(types) - set(data)):
        problems.append(f"missing field {where}{name!r}")
    kwargs: dict = {}
    for name, ftype in types.items():
        if name not in data:
            continue
        value = data[name]
        path = f"{where}{name}"
        if ftype == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                problems.append(f"{path} must be an integer, got {value!r}")
            else:
                kwargs[name] = value
        elif ftype == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                problems.append(f"{path} must be a number, got {value!r}")
            else:
                kwargs[name] = float(value)
        elif ftype == "str":
            if not isinstance(value, str):
                problems.append(f"{path} must be a string, got {value!r}")
            else:
                kwargs[name] = value
        elif ftype.startswith("dict"):
            if not isinstance(value, dict):
                problems.append(f"{path} must be an object, got {value!r}")
            else:
                table: dict[str, float] = {}
                for key, mult in value.items():
                    if (
                        not isinstance(key, str)
                        or isinstance(mult, bool)
                        or not isinstance(mult, (int, float))
                    ):
                        problems.append(
                            f"{path}[{key!r}] must map a format name to a "
                            f"number, got {mult!r}"
                        )
                    else:
                        table[key] = float(mult)
                kwargs[name] = table
        elif ftype in ("SMSpec", "TensorCoreSpec"):
            sub_cls = SMSpec if ftype == "SMSpec" else TensorCoreSpec
            if not isinstance(value, dict):
                problems.append(f"{path} must be an object, got {value!r}")
            else:
                before = len(problems)
                sub = _validate_section(sub_cls, value, f"{path}.", problems)
                if len(problems) == before:
                    try:
                        kwargs[name] = sub_cls(**sub)
                    except (ValueError, TypeError) as exc:
                        problems.append(f"{path}: {exc}")
        else:  # pragma: no cover - would mean a new unhandled field type
            problems.append(f"{path}: unhandled schema type {ftype!r}")
    return kwargs


def jetson_orin_agx() -> MachineSpec:
    """The paper's evaluation platform (Table 2): NVIDIA Jetson AGX Orin.

    1792 CUDA cores (14 SMs x 128), 56 Tensor cores (14 x 4), 32 GB
    LPDDR5 at 204.8 GB/s.  Clock calibrated to Table 1 (see module
    docstring).
    """
    return MachineSpec(
        name="NVIDIA Jetson AGX Orin",
        sm_count=14,
        clock_ghz=2.232,
        dram_bandwidth_gbps=204.8,
        dram_capacity_gb=32.0,
    )
