"""Machine/SM specifications (Table 2 of the paper).

The model follows the paper's simplified Ampere SM: per Streaming
Multiprocessor, an INT32 pipe and an FP32 pipe of *equal* width that can
issue concurrently at full throughput, plus Tensor cores.  The paper
states both facts explicitly (Sec. 2.3 and Sec. 3.2: "the number of
available INT cores and FP cores per SM is the same", "Ampere ...
allows concurrent operation of FP32 and INT32 cores at full
throughput"), so we encode that model rather than the asymmetric
GA10x datasheet layout.

The paper's "1792 CUDA cores" maps to 896 INT32 + 896 FP32 lanes
(14 SMs x 4 partitions x (16 + 16)); each 16-lane pipe retires one
32-thread warp instruction every 2 cycles, which is what makes
INT/FP co-issue from one warp scheduler profitable — the mechanism
behind the paper's simultaneous-execution gains.  The effective clock
is chosen so the derived peaks land on Table 1 (FP32 4 TFLOPS over
896 FP lanes x 2 ops/FMA → 2.232 GHz); only ratios matter for the
reproduction, and this equal-pipe model at 2.232 GHz is numerically
identical to the physical 1792-lane part at its boost clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FormatError
from repro.utils.validation import check_positive

__all__ = ["TensorCoreSpec", "SMSpec", "MachineSpec", "jetson_orin_agx"]


@dataclass(frozen=True)
class TensorCoreSpec:
    """One Tensor core's issue characteristics.

    ``fp16_macs_per_cycle`` is the dense FP16 MAC rate of a single Tensor
    core; other formats scale it by ``format_multipliers`` (TF32 runs at
    half the FP16 rate, INT8 at 2x, INT4 at 4x — the Ampere ratios that
    produce Table 1's 32/65/131/262 progression).
    """

    fp16_macs_per_cycle: int = 260
    format_multipliers: dict[str, float] = field(
        default_factory=lambda: {
            "fp16": 1.0,
            "bf16": 1.0,
            "tf32": 0.5,
            "int8": 2.0,
            "int4": 4.0,
        }
    )

    def macs_per_cycle(self, fmt: str) -> float:
        """Dense MACs per cycle for numeric format ``fmt``."""
        try:
            return self.fp16_macs_per_cycle * self.format_multipliers[fmt]
        except KeyError:
            raise FormatError(
                f"Tensor core does not support format {fmt!r}; "
                f"supported: {sorted(self.format_multipliers)}"
            ) from None


@dataclass(frozen=True)
class SMSpec:
    """One Streaming Multiprocessor.

    An SM is divided into ``partitions`` sub-partitions, each with its own
    warp scheduler (1 instruction issued per cycle per scheduler), a slice
    of the INT32 and FP32 lanes, and a Tensor core.
    """

    partitions: int = 4
    int32_lanes_per_partition: int = 16
    fp32_lanes_per_partition: int = 16
    tensor_cores_per_partition: int = 1
    lsu_lanes_per_partition: int = 16
    sfu_lanes_per_partition: int = 4
    registers_per_sm: int = 65536
    max_warps_per_sm: int = 48
    max_threads_per_block: int = 1024
    warp_size: int = 32
    tensor_core: TensorCoreSpec = field(default_factory=TensorCoreSpec)

    def __post_init__(self) -> None:
        for name in (
            "partitions",
            "int32_lanes_per_partition",
            "fp32_lanes_per_partition",
            "tensor_cores_per_partition",
            "lsu_lanes_per_partition",
            "sfu_lanes_per_partition",
            "warp_size",
        ):
            check_positive(name, getattr(self, name))

    @property
    def cuda_cores(self) -> int:
        """Marketing CUDA-core count (INT32 + FP32 lanes; 128 on Orin)."""
        return self.partitions * (
            self.int32_lanes_per_partition + self.fp32_lanes_per_partition
        )

    @property
    def int_lanes(self) -> int:
        """Total INT32 lanes in the SM."""
        return self.partitions * self.int32_lanes_per_partition

    @property
    def fp_lanes(self) -> int:
        """Total FP32 lanes in the SM."""
        return self.partitions * self.fp32_lanes_per_partition

    @property
    def tensor_cores(self) -> int:
        """Total Tensor cores in the SM."""
        return self.partitions * self.tensor_cores_per_partition

    @property
    def max_warps_per_partition(self) -> int:
        """Warp slots available to each sub-partition's scheduler."""
        return self.max_warps_per_sm // self.partitions


@dataclass(frozen=True)
class MachineSpec:
    """A full embedded GPU platform (Table 2).

    ``die_area_mm2`` is the area proxy used by the arithmetic-density
    metric; only ratios of densities are ever reported, so the absolute
    value does not matter.
    """

    name: str
    sm_count: int
    clock_ghz: float
    dram_bandwidth_gbps: float
    dram_capacity_gb: float
    sm: SMSpec = field(default_factory=SMSpec)
    die_area_mm2: float = 450.0
    kernel_launch_overhead_us: float = 5.0

    def __post_init__(self) -> None:
        check_positive("sm_count", self.sm_count)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("dram_bandwidth_gbps", self.dram_bandwidth_gbps)
        check_positive("die_area_mm2", self.die_area_mm2)

    @property
    def cuda_cores(self) -> int:
        """Total CUDA cores across all SMs (1792 on Orin AGX)."""
        return self.sm_count * self.sm.cuda_cores

    @property
    def tensor_cores(self) -> int:
        """Total Tensor cores across all SMs (56 on Orin AGX)."""
        return self.sm_count * self.sm.tensor_cores

    @property
    def clock_hz(self) -> float:
        """Clock in Hz."""
        return self.clock_ghz * 1e9

    @property
    def dram_bandwidth_bytes_per_s(self) -> float:
        """DRAM bandwidth in bytes/second."""
        return self.dram_bandwidth_gbps * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds at the GPU clock."""
        return cycles / self.clock_hz


def jetson_orin_agx() -> MachineSpec:
    """The paper's evaluation platform (Table 2): NVIDIA Jetson AGX Orin.

    1792 CUDA cores (14 SMs x 128), 56 Tensor cores (14 x 4), 32 GB
    LPDDR5 at 204.8 GB/s.  Clock calibrated to Table 1 (see module
    docstring).
    """
    return MachineSpec(
        name="NVIDIA Jetson AGX Orin",
        sm_count=14,
        clock_ghz=2.232,
        dram_bandwidth_gbps=204.8,
        dram_capacity_gb=32.0,
    )
