"""Peak-throughput model — regenerates Table 1 of the paper.

Every row of Table 1 is derived from the :class:`~repro.arch.specs.MachineSpec`
rather than hard-coded, so the same code answers "what if" questions
(e.g. the Sec. 2.1 thought experiment: if CUDA cores natively supported
INT8, 4 TOPS would become 32 TOPS) and quantifies the throughput VitBit
packing unlocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import MachineSpec
from repro.errors import FormatError

__all__ = [
    "PeakThroughput",
    "cuda_core_peak_ops",
    "tensor_core_peak_ops",
    "packed_cuda_core_peak_ops",
    "peak_throughput_table",
]

#: ops per multiply-accumulate (the industry convention Table 1 uses).
OPS_PER_MAC = 2


@dataclass(frozen=True)
class PeakThroughput:
    """One Table 1 row: a numeric format, the unit it runs on, and peak ops/s."""

    fmt: str
    unit: str  # "CUDA Core" | "Tensor Core"
    ops_per_second: float

    @property
    def teraops(self) -> float:
        """Peak in TOPS / TFLOPS."""
        return self.ops_per_second / 1e12


def cuda_core_peak_ops(
    machine: MachineSpec, pipe: str = "fp32", *, simd_factor: int = 1
) -> float:
    """Peak ops/s of one CUDA-core pipe.

    ``pipe`` is ``'fp32'``, ``'fp16'`` (dual-rate half2 on FP lanes) or
    ``'int32'``.  ``simd_factor`` models register-operand packing: a
    packed multiply retires ``simd_factor`` useful MACs per lane per
    cycle (VitBit's contribution; 1 = no packing).
    """
    if simd_factor < 1:
        raise FormatError(f"simd_factor must be >= 1, got {simd_factor}")
    sm = machine.sm
    if pipe == "fp32":
        lanes = sm.fp_lanes
        rate = 1
    elif pipe == "fp16":
        lanes = sm.fp_lanes
        rate = 2  # half2 vector math doubles FP16 throughput
    elif pipe == "int32":
        lanes = sm.int_lanes
        rate = 1
    else:
        raise FormatError(f"unknown CUDA-core pipe {pipe!r}")
    return (
        machine.sm_count * lanes * rate * simd_factor * OPS_PER_MAC * machine.clock_hz
    )


def tensor_core_peak_ops(machine: MachineSpec, fmt: str) -> float:
    """Peak ops/s of the Tensor cores for numeric format ``fmt``."""
    macs = machine.sm.tensor_core.macs_per_cycle(fmt)
    return machine.tensor_cores * macs * OPS_PER_MAC * machine.clock_hz


def packed_cuda_core_peak_ops(machine: MachineSpec, pack_factor: int) -> float:
    """INT pipe peak when ``pack_factor`` operands share each register.

    This is the quantity Sec. 2.1 argues for: packing INT8 pairs lifts
    the 4 TOPS INT32 ceiling toward the hypothetical native-INT8 rate.
    """
    return cuda_core_peak_ops(machine, "int32", simd_factor=pack_factor)


def peak_throughput_table(machine: MachineSpec) -> list[PeakThroughput]:
    """All rows of Table 1, in the paper's order.

    INT8/INT4 *CUDA-core* rows are not in the table because (caption)
    zero-masked INT8/INT4 on CUDA cores runs at INT32 speed; use
    :func:`packed_cuda_core_peak_ops` for the VitBit-augmented rates.
    """
    return [
        PeakThroughput("FP32", "CUDA Core", cuda_core_peak_ops(machine, "fp32")),
        PeakThroughput("FP16", "CUDA Core", cuda_core_peak_ops(machine, "fp16")),
        PeakThroughput("TF32", "Tensor Core", tensor_core_peak_ops(machine, "tf32")),
        PeakThroughput("FP16", "Tensor Core", tensor_core_peak_ops(machine, "fp16")),
        PeakThroughput("BFloat16", "Tensor Core", tensor_core_peak_ops(machine, "bf16")),
        PeakThroughput("INT32", "CUDA Core", cuda_core_peak_ops(machine, "int32")),
        PeakThroughput("INT8", "Tensor Core", tensor_core_peak_ops(machine, "int8")),
        PeakThroughput("INT4", "Tensor Core", tensor_core_peak_ops(machine, "int4")),
    ]
