"""Target machine description (NVIDIA Jetson AGX Orin, Ampere).

The paper's Table 1 (peak throughput per numeric format) and Table 2
(platform spec) are encoded here.  Everything downstream — the cycle
simulator, the analytic performance model, the arithmetic-density
metric — reads the same :class:`MachineSpec` so the reproduction has a
single source of architectural truth.
"""

from repro.arch.specs import MachineSpec, SMSpec, TensorCoreSpec, jetson_orin_agx
from repro.arch.throughput import (
    PeakThroughput,
    cuda_core_peak_ops,
    peak_throughput_table,
    tensor_core_peak_ops,
)
from repro.arch.density import arithmetic_density, normalized_density

__all__ = [
    "MachineSpec",
    "SMSpec",
    "TensorCoreSpec",
    "jetson_orin_agx",
    "PeakThroughput",
    "peak_throughput_table",
    "cuda_core_peak_ops",
    "tensor_core_peak_ops",
    "arithmetic_density",
    "normalized_density",
]
