"""Target machine description (NVIDIA Jetson AGX Orin, Ampere).

The paper's Table 1 (peak throughput per numeric format) and Table 2
(platform spec) are encoded here.  Everything downstream — the cycle
simulator, the analytic performance model, the arithmetic-density
metric — reads the same :class:`MachineSpec` so the reproduction has a
single source of architectural truth.

Since PR 10 specs are *data*: serializable (JSON round-trip with
schema validation) and registered by name in the backend registry
(:mod:`repro.arch.registry`), with speculative non-Orin machines
(``ten-four``, ``camp-lv``, ``orin-rfc``) available for what-if
sweeps alongside the default ``orin-agx``.
"""

from repro.arch.specs import (
    SPEC_SCHEMA_VERSION,
    MachineSpec,
    SMSpec,
    TensorCoreSpec,
    jetson_orin_agx,
)
from repro.arch.registry import (
    DEFAULT_BACKEND,
    backend_names,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.arch.throughput import (
    PeakThroughput,
    cuda_core_peak_ops,
    peak_throughput_table,
    tensor_core_peak_ops,
)
from repro.arch.density import arithmetic_density, normalized_density

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "MachineSpec",
    "SMSpec",
    "TensorCoreSpec",
    "jetson_orin_agx",
    "DEFAULT_BACKEND",
    "register_backend",
    "unregister_backend",
    "resolve_backend",
    "backend_names",
    "PeakThroughput",
    "peak_throughput_table",
    "cuda_core_peak_ops",
    "tensor_core_peak_ops",
    "arithmetic_density",
    "normalized_density",
]
