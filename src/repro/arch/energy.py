"""Energy model for the embedded GPU.

Improving *energy efficiency* under a strict power budget is the
paper's stated motivation (Secs. 1-2); it evaluates time and arithmetic
density, but an embedded deployment ultimately cares about joules per
inference.  This model prices a kernel execution from its simulator
outputs:

``E = E_dynamic + E_static``, with dynamic energy per issued
instruction by pipe (a 4096-MAC tensor instruction costs far more than
one IMAD, but far less per MAC) plus DRAM energy per byte, and static
(leakage + idle rail) power integrated over the execution time.

Per-op constants are order-of-magnitude figures for a Samsung 8N-class
embedded SoC, normalized so the modelled Orin draws on the order of
its 15-40 W envelope under load; only *ratios between strategies*
are meaningful, matching the reproduction's remit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelConfigError
from repro.sim.instruction import OpClass

__all__ = ["EnergyParams", "EnergyBreakdown", "kernel_energy", "inference_energy"]


@dataclass(frozen=True)
class EnergyParams:
    """Energy constants (picojoules per event, watts for static)."""

    #: pJ per warp instruction, by pipe (32 lanes of work each; the
    #: TENSOR figure covers a 4096-MAC fragment).
    pj_per_instruction: dict[OpClass, float] = field(
        default_factory=lambda: {
            OpClass.INT: 60.0,
            OpClass.FP: 90.0,
            OpClass.TENSOR: 2200.0,
            OpClass.LSU: 150.0,
            OpClass.SFU: 120.0,
            OpClass.MISC: 25.0,
        }
    )
    #: pJ per DRAM byte (LPDDR5 access incl. PHY).
    pj_per_dram_byte: float = 80.0
    #: static + idle-rail power of the GPU complex (W).
    static_watts: float = 6.0

    def __post_init__(self) -> None:
        if self.pj_per_dram_byte < 0 or self.static_watts < 0:
            raise ModelConfigError("energy constants must be non-negative")


@dataclass
class EnergyBreakdown:
    """Joules spent by one execution, by source."""

    dynamic_compute: float
    dynamic_dram: float
    static: float

    @property
    def total(self) -> float:
        """Total energy in joules (dynamic compute + DRAM + static)."""
        return self.dynamic_compute + self.dynamic_dram + self.static

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.dynamic_compute + other.dynamic_compute,
            self.dynamic_dram + other.dynamic_dram,
            self.static + other.static,
        )


def kernel_energy(
    issued: dict[OpClass, float],
    bytes_moved: float,
    seconds: float,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """Energy of one kernel from its issue counts, traffic and time."""
    p = params if params is not None else EnergyParams()
    if seconds < 0 or bytes_moved < 0:
        raise ModelConfigError("seconds and bytes_moved must be >= 0")
    compute = sum(
        n * p.pj_per_instruction.get(op, 0.0) for op, n in issued.items()
    ) * 1e-12
    dram = bytes_moved * p.pj_per_dram_byte * 1e-12
    return EnergyBreakdown(
        dynamic_compute=compute,
        dynamic_dram=dram,
        static=p.static_watts * seconds,
    )


def inference_energy(
    pm,
    strategy,
    *,
    params: EnergyParams | None = None,
    batch: int | None = None,
    config=None,
) -> EnergyBreakdown:
    """Energy of one ViT inference under a Table 3 strategy.

    ``pm`` is a :class:`~repro.perfmodel.PerformanceModel`; kernels are
    priced via :func:`repro.vit.runtime.time_inference` and their DRAM
    traffic re-derived from the workload descriptors.  ``config`` is an
    optional :class:`~repro.vit.config.ViTConfig` (``None`` = ViT-Base),
    matching ``time_inference``'s parameter.
    """
    from repro.fusion.strategies import TC as _TC
    from repro.perfmodel.warpsets import elementwise_bytes, gemm_bytes
    from repro.vit.runtime import (
        cuda_kernel_strategy_for,
        gemm_strategy_for,
        time_inference,
    )
    from repro.vit.workload import DEFAULT_BATCH, vit_workload

    b = batch if batch is not None else DEFAULT_BATCH
    work = vit_workload(config, batch=b)
    timing = time_inference(pm, strategy, workload=work)
    gemm_strat = gemm_strategy_for(strategy)
    cuda_strat = cuda_kernel_strategy_for(strategy)
    nbytes = 0.0
    for kw in work:
        if kw.kind == "gemm":
            strat = gemm_strat if kw.fusable else _TC
            if strat.uses_tensor and strat.uses_cuda:
                m = pm.determine_tensor_cuda_ratio(kw.gemm, strat)
            else:
                m = 4.0  # ignored; split_plan pins one side
            plan = strat.split_plan(kw.gemm.n, pm.policy, m)
            nbytes += gemm_bytes(kw.gemm, plan, pm.policy) * kw.repeat
        else:
            from repro.perfmodel.descriptors import ELEMENTWISE_KERNELS

            nbytes += (
                elementwise_bytes(
                    ELEMENTWISE_KERNELS[kw.elementwise],
                    kw.n_elements,
                    cuda_strat,
                    pm.policy,
                    pm.params,
                )
                * kw.repeat
            )
    return kernel_energy(
        timing.issued, nbytes, timing.total_seconds, params
    )
