"""Arithmetic density (ops/s per mm^2) — the metric behind Fig. 8.

The paper defines arithmetic density as operations per second per unit
die area and reports it *normalized to the TC baseline*.  Since the die
area is constant across techniques, the normalized density of a
technique equals the ratio of its achieved compute throughput to the
baseline's during the compute kernels — which is why the paper's Fig. 8
numbers track its Fig. 6 GEMM speedups.
"""

from __future__ import annotations

from repro.arch.specs import MachineSpec
from repro.utils.validation import check_positive

__all__ = ["arithmetic_density", "normalized_density"]


def arithmetic_density(
    machine: MachineSpec, useful_ops: float, seconds: float
) -> float:
    """Achieved ops/s/mm^2 for a workload of ``useful_ops`` taking ``seconds``.

    "Useful" ops are the algorithm's MAC-derived operation count
    (2 * M * N * K for a GEMM) — packing does not inflate it; it only
    shrinks ``seconds``.
    """
    check_positive("useful_ops", useful_ops)
    check_positive("seconds", seconds)
    return useful_ops / seconds / machine.die_area_mm2


def normalized_density(
    machine: MachineSpec,
    useful_ops: float,
    seconds: float,
    baseline_seconds: float,
) -> float:
    """Density of a technique divided by the baseline's on the same workload."""
    ours = arithmetic_density(machine, useful_ops, seconds)
    base = arithmetic_density(machine, useful_ops, baseline_seconds)
    return ours / base
