"""Metrics exporters and the atomic ``summary.json`` merge.

Three output formats over one :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
dict (all pure functions of the snapshot, so they render identically
from a live registry or from a snapshot read back out of
``summary.json``):

* :func:`snapshot_to_json` — canonical JSON (sorted keys), the form
  merged into ``benchmarks/out/summary.json`` under ``"metrics"``;
* :func:`snapshot_to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples, cumulative ``le=``
  histogram buckets), scrape-ready;
* :func:`render_metrics_table` — the human view ``repro metrics``
  prints.

:func:`merge_summary` is the one writer every summary producer goes
through: read the existing file, replace only the caller's sections,
write to a temp file in the same directory and :func:`os.replace` it
into place — so a concurrent ``repro bench`` and ``repro serve`` can
interleave without tearing each other's sections (rename is atomic on
POSIX; readers see the old or the new file, never a torn one).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

__all__ = [
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "render_metrics_table",
    "merge_summary",
]


def snapshot_to_json(snapshot: dict) -> str:
    """Canonical JSON encoding (sorted keys, 2-space indent, newline)."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


def _prom_number(value: float) -> str:
    """Prometheus sample rendering: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_line(name: str, labels: str, value: float,
               extra_label: str = "") -> str:
    joined = ",".join(x for x in (labels, extra_label) if x)
    body = f"{{{joined}}}" if joined else ""
    return f"{name}{body} {_prom_number(value)}"


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Histograms emit cumulative ``_bucket{le=...}`` samples plus
    ``_sum`` and ``_count``, counters and gauges one sample per label
    set; families are ordered by name, samples by label string, so the
    output is deterministic.
    """
    lines: list[str] = []
    for kind in ("counters", "gauges", "histograms"):
        prom_type = kind[:-1]
        for name in sorted(snapshot.get(kind, {})):
            fam = snapshot[kind][name]
            if fam.get("help"):
                lines.append(f"# HELP {name} {fam['help']}")
            lines.append(f"# TYPE {name} {prom_type}")
            for labels in sorted(fam["values"]):
                value = fam["values"][labels]
                if prom_type != "histogram":
                    lines.append(_prom_line(name, labels, float(value)))
                    continue
                cumulative = 0
                for bound, count in zip(fam["buckets"], value["counts"]):
                    cumulative += count
                    lines.append(_prom_line(
                        f"{name}_bucket", labels, cumulative,
                        f'le="{_prom_number(float(bound))}"',
                    ))
                cumulative += value["counts"][-1]
                lines.append(_prom_line(
                    f"{name}_bucket", labels, cumulative, 'le="+Inf"'
                ))
                lines.append(_prom_line(f"{name}_sum", labels,
                                        float(value["sum"])))
                lines.append(_prom_line(f"{name}_count", labels,
                                        float(value["count"])))
    return "\n".join(lines) + "\n"


def render_metrics_table(snapshot: dict) -> str:
    """Human-readable table of every metric (the ``repro metrics`` view)."""
    from repro.utils.tables import format_table

    rows: list[tuple] = []
    for kind in ("counters", "gauges"):
        for name in sorted(snapshot.get(kind, {})):
            fam = snapshot[kind][name]
            for labels in sorted(fam["values"]):
                shown = f"{name}{{{labels}}}" if labels else name
                rows.append((shown, kind[:-1], fam["values"][labels]))
    for name in sorted(snapshot.get("histograms", {})):
        fam = snapshot["histograms"][name]
        for labels in sorted(fam["values"]):
            v = fam["values"][labels]
            shown = f"{name}{{{labels}}}" if labels else name
            mean = v["sum"] / v["count"] if v["count"] else 0.0
            rows.append((shown, "histogram",
                         f"n={v['count']} mean={mean:.4g}"))
    if not rows:
        return "no metrics recorded"
    return format_table(["metric", "type", "value"], rows,
                        title="metrics snapshot")


def merge_summary(path: "str | pathlib.Path", sections: dict) -> pathlib.Path:
    """Atomically merge ``sections`` into the JSON file at ``path``.

    Only the given top-level keys are replaced; everything else in an
    existing file is preserved (a corrupt or non-dict file is treated
    as empty).  The write goes through a same-directory temp file and
    ``os.replace``, so concurrent writers interleave at file
    granularity instead of tearing each other's output.
    """
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload: dict = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text())
            if isinstance(existing, dict):
                payload = existing
        except (OSError, ValueError):
            payload = {}
    payload.update(sections)
    fd, tmp = tempfile.mkstemp(dir=out.parent, prefix=out.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, out)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return out
