"""Span-based tracing with deterministic timestamps.

A *span* is one named, timed region of work with optional attributes —
the serving layer opens one per dispatched batch, so a run's execution
timeline can be replayed in ``chrome://tracing`` / Perfetto next to the
instruction-level simulator traces of :mod:`repro.sim.traceexport`.

Timestamps come from the **active clock**: while a
:class:`~repro.serve.clock.SimulatedClock` drives a simulation it
registers itself here (:func:`activate_clock` /
:func:`deactivate_clock`), and every span opened in that window is
stamped with *simulated* seconds — the same seed therefore produces a
byte-identical trace on every run.  Outside a simulation, spans fall
back to the host's monotonic clock (:func:`time.perf_counter`).

The tracer itself is clock-agnostic: it calls :func:`current_time` at
span entry and exit and stores plain ``(name, start, duration, attrs)``
tuples.  Export to the Chrome-trace JSON format goes through
:func:`repro.sim.traceexport.spans_to_chrome_trace` so both trace
flavours share one serialization path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "activate_clock",
    "deactivate_clock",
    "active_clock",
    "current_time",
]

#: The innermost active simulated clock (a stack: nested drivers nest).
_ACTIVE_CLOCKS: list = []


def activate_clock(clock) -> None:
    """Make ``clock`` (anything with ``.now()``) the tracing time source."""
    _ACTIVE_CLOCKS.append(clock)


def deactivate_clock(clock) -> None:
    """Remove ``clock`` from the active stack (innermost-first)."""
    for i in range(len(_ACTIVE_CLOCKS) - 1, -1, -1):
        if _ACTIVE_CLOCKS[i] is clock:
            del _ACTIVE_CLOCKS[i]
            return


def active_clock():
    """The innermost active clock, or ``None`` outside a simulation."""
    return _ACTIVE_CLOCKS[-1] if _ACTIVE_CLOCKS else None


def current_time() -> float:
    """Seconds from the active clock (simulated) or the host (wall)."""
    clock = active_clock()
    return clock.now() if clock is not None else time.perf_counter()


@dataclass(frozen=True)
class Span:
    """One completed timed region: name, start, duration, attributes."""

    name: str
    start_seconds: float
    duration_seconds: float
    attrs: tuple = ()

    def as_dict(self) -> dict:
        """JSON-serializable form (attribute pairs become a dict)."""
        return {
            "name": self.name,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "attrs": dict(self.attrs),
        }


@dataclass
class Tracer:
    """Collects completed spans; one per process by default.

    ``with tracer.span("serve.batch", size=4): ...`` appends one
    :class:`Span` on exit.  Spans are recorded even when the body
    raises (the exception propagates), so failed work is visible in the
    timeline too.
    """

    spans: list = field(default_factory=list)

    @contextmanager
    def span(self, name: str, **attrs):
        """Context manager timing one region; attributes are frozen."""
        start = current_time()
        try:
            yield
        finally:
            end = current_time()
            self.spans.append(
                Span(
                    name=name,
                    start_seconds=start,
                    duration_seconds=end - start,
                    attrs=tuple(sorted(attrs.items())),
                )
            )

    def snapshot(self) -> list:
        """JSON-serializable list of every recorded span, in order."""
        return [s.as_dict() for s in self.spans]

    def to_chrome_trace(self) -> str:
        """Chrome-tracing JSON of the recorded spans (Perfetto-loadable)."""
        from repro.sim.traceexport import spans_to_chrome_trace

        return spans_to_chrome_trace(self.spans)

    def clear(self) -> None:
        """Forget every recorded span."""
        self.spans.clear()

    # -- process-wide default -------------------------------------------------

    _default: "Tracer | None" = None

    @classmethod
    def default(cls) -> "Tracer":
        """The shared process-wide tracer instrumented code appends to."""
        if cls._default is None:
            cls._default = cls()
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        """Replace the shared tracer with a fresh one (tests)."""
        cls._default = cls()
