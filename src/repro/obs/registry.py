"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every runtime signal the stack
emits — timing-cache hits, serve batch sizes, fallback counts, sweep
timings — so a run's health is one snapshot away instead of being
scattered across per-module counters.  The design follows the
Prometheus data model in miniature:

* a metric *family* is a name + type + help string;
* each family has one child per distinct **label set** (e.g.
  ``serve_requests_total{status="completed"}``);
* :class:`Counter` only goes up, :class:`Gauge` is set to the latest
  value, :class:`Histogram` buckets observations against **explicit**
  upper bounds (no adaptive buckets — bucket layout is part of the
  metric's identity, so snapshots from different runs are comparable).

Determinism
-----------
Snapshots are fully ordered (families by name, children by rendered
label string), so two runs that perform the same work produce
byte-identical ``json.dumps(snapshot, sort_keys=True)`` output — the
property the serving determinism tests lock down.  Nothing in this
module reads the wall clock.

Instrumented call sites use the module-level conveniences in
:mod:`repro.obs` (``counter(...)``, ``gauge(...)``,
``histogram(...)``), which proxy to the process-wide default registry;
tests swap the default with :meth:`MetricsRegistry.reset_default`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_labels",
]


def render_labels(labels: dict | None) -> str:
    """Canonical ``k="v"`` rendering of a label set (sorted, stable).

    The empty label set renders as ``""``; snapshots and the
    Prometheus exporter both key children by this string, so ordering
    is identical everywhere.
    """
    if not labels:
        return ""
    return ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))


class Counter:
    """A monotonically increasing value (events since process start)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; inc({amount}) is negative"
            )
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, cache entries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: int | float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += amount


class Histogram:
    """Observations bucketed against explicit upper bounds.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  ``counts[i]`` is the
    number of observations ``<= buckets[i]`` *exclusive of earlier
    buckets* (per-bucket, not cumulative — the exporters cumulate).
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ObservabilityError(
                f"histogram buckets must be non-empty and strictly "
                f"increasing, got {buckets!r}"
            )
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric family: shared name/type/help, children per label set."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: tuple[float, ...] | None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[str, Counter | Gauge | Histogram] = {}

    def child(self, labels: dict | None):
        """The child metric for ``labels`` (created on first use)."""
        key = render_labels(labels)
        got = self.children.get(key)
        if got is None:
            got = (
                Histogram(self.buckets)
                if self.kind == "histogram"
                else _KINDS[self.kind]()
            )
            self.children[key] = got
        return got


class MetricsRegistry:
    """Registry of metric families with a process-wide default instance."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str,
                buckets: tuple[float, ...] | None = None) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            with self._lock:
                fam = self._families.get(name)
                if fam is None:
                    fam = _Family(name, kind, help_text, buckets)
                    self._families[name] = fam
        if fam.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as a {fam.kind}, "
                f"requested as a {kind}"
            )
        if kind == "histogram" and buckets is not None and fam.buckets != tuple(
            float(b) for b in buckets
        ):
            raise ObservabilityError(
                f"histogram {name!r} already registered with buckets "
                f"{fam.buckets}, requested {tuple(buckets)} — bucket layout "
                "is part of a histogram's identity"
            )
        return fam

    def counter(self, name: str, help_text: str = "",
                labels: dict | None = None) -> Counter:
        """Get or create the counter ``name`` for ``labels``."""
        return self._family(name, "counter", help_text).child(labels)

    def gauge(self, name: str, help_text: str = "",
              labels: dict | None = None) -> Gauge:
        """Get or create the gauge ``name`` for ``labels``."""
        return self._family(name, "gauge", help_text).child(labels)

    def histogram(self, name: str, help_text: str = "", *,
                  buckets: tuple[float, ...],
                  labels: dict | None = None) -> Histogram:
        """Get or create the histogram ``name`` (explicit ``buckets``)."""
        fam = self._family(name, "histogram", help_text,
                           tuple(float(b) for b in buckets))
        return fam.child(labels)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every metric, deterministically ordered.

        Shape::

            {"counters":   {name: {"help": str, "values": {labels: v}}},
             "gauges":     {name: {"help": str, "values": {labels: v}}},
             "histograms": {name: {"help": str, "buckets": [...],
                                   "values": {labels: {"counts": [...],
                                                       "sum": s,
                                                       "count": n}}}}}

        ``labels`` keys are the :func:`render_labels` strings; the
        ``counts`` list has one entry per finite bucket plus ``+Inf``.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._families):
            fam = self._families[name]
            values: dict = {}
            for key in sorted(fam.children):
                child = fam.children[key]
                if fam.kind == "histogram":
                    values[key] = {
                        "counts": list(child.counts),
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    values[key] = child.value
            entry: dict = {"help": fam.help, "values": values}
            if fam.kind == "histogram":
                entry["buckets"] = list(fam.buckets)
            out[fam.kind + "s"][name] = entry
        return out

    def reset(self) -> None:
        """Drop every family (a fresh registry in place)."""
        with self._lock:
            self._families.clear()

    # -- process-wide default -------------------------------------------------

    _default: "MetricsRegistry | None" = None

    @classmethod
    def default(cls) -> "MetricsRegistry":
        """The shared process-wide registry instrumented code publishes to."""
        if cls._default is None:
            cls._default = cls()
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        """Replace the shared registry with a fresh one (tests)."""
        cls._default = cls()
