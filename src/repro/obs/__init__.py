"""Unified observability: one metrics registry and one tracer per process.

Runtime signals used to live in per-module counters — timing-cache
hit/miss tallies in :mod:`repro.perfmodel.timingcache`, fallback and
clamp counts in the serving layer, pack-instruction stats in
:mod:`repro.packing.gemm`.  This package gives them one home:

* :mod:`repro.obs.registry` — counters, gauges and explicit-bucket
  histograms in a process-wide :class:`MetricsRegistry`;
* :mod:`repro.obs.tracer` — span-based tracing whose timestamps come
  from the active :class:`~repro.serve.clock.SimulatedClock` during a
  simulation (deterministic traces) and the wall clock otherwise;
* :mod:`repro.obs.export` — JSON / Prometheus / table exporters plus
  the atomic ``summary.json`` section merge every writer shares.

Instrumented call sites use the conveniences below, which proxy to the
process-wide defaults::

    from repro import obs
    obs.counter("timing_cache_hits_total", "...").inc()
    with obs.get_tracer().span("serve.batch", size=4):
        ...

Existing per-module counters keep working (they are still the source
of per-instance numbers); the registry is the cross-cutting, per-run
aggregate view.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.export import (
    merge_summary,
    render_metrics_table,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_labels,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    activate_clock,
    active_clock,
    current_time,
    deactivate_clock,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "render_labels",
    "Tracer",
    "Span",
    "activate_clock",
    "deactivate_clock",
    "active_clock",
    "current_time",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "get_tracer",
    "snapshot",
    "reset_observability",
    "merge_summary",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "render_metrics_table",
]


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return MetricsRegistry.default()


def get_tracer() -> Tracer:
    """The process-wide default :class:`Tracer`."""
    return Tracer.default()


def counter(name: str, help_text: str = "", labels: dict | None = None) -> Counter:
    """Get or create ``name`` as a counter in the default registry."""
    return get_registry().counter(name, help_text, labels)


def gauge(name: str, help_text: str = "", labels: dict | None = None) -> Gauge:
    """Get or create ``name`` as a gauge in the default registry."""
    return get_registry().gauge(name, help_text, labels)


def histogram(name: str, help_text: str = "", *,
              buckets: tuple[float, ...],
              labels: dict | None = None) -> Histogram:
    """Get or create ``name`` as a histogram in the default registry."""
    return get_registry().histogram(name, help_text, buckets=buckets,
                                    labels=labels)


def snapshot() -> dict:
    """Deterministically ordered snapshot of the default registry."""
    return get_registry().snapshot()


def reset_observability() -> None:
    """Fresh default registry *and* tracer (test isolation)."""
    MetricsRegistry.reset_default()
    Tracer.reset_default()
