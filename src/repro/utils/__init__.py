"""Shared utilities: bit manipulation, validation, RNG, table rendering."""

from repro.utils.bitops import (
    bit_length_unsigned,
    field_mask,
    lane_masks,
    min_signed,
    max_signed,
    max_unsigned,
    sign_extend,
)
from repro.utils.rng import make_rng
from repro.utils.validation import (
    check_dtype_integer,
    check_in_range,
    check_positive,
    check_shape_2d,
)

__all__ = [
    "bit_length_unsigned",
    "field_mask",
    "lane_masks",
    "min_signed",
    "max_signed",
    "max_unsigned",
    "sign_extend",
    "make_rng",
    "check_dtype_integer",
    "check_in_range",
    "check_positive",
    "check_shape_2d",
]
