"""Process-parallel parameter sweeps.

Design-space exploration (architecture what-ifs, tile autotuning,
calibration grids) is embarrassingly parallel: every point builds its
own PerformanceModel and runs its own simulations.  :func:`sweep` maps
a worker over a grid of points with ``ProcessPoolExecutor``, preserving
input order and failing loudly — the standard HPC pattern, wrapped so
benchmarks and examples don't re-implement it.

The worker must be a module-level function (it is pickled to the
workers), and each point must be picklable.  Pass ``processes=1`` to
run serially (useful under coverage or debuggers).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["sweep", "default_processes"]

P = TypeVar("P")
R = TypeVar("R")


def default_processes(limit: int | None = None) -> int:
    """A sensible worker count: physical-ish parallelism, capped."""
    n = os.cpu_count() or 1
    return max(1, min(n, limit) if limit else n)


def sweep(
    worker: Callable[[P], R],
    points: Sequence[P] | Iterable[P],
    *,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Evaluate ``worker`` on every point, in parallel, in input order.

    Exceptions in workers propagate to the caller (the sweep is only as
    good as its worst point).  With ``processes=1`` the map runs in the
    calling process.
    """
    pts = list(points)
    if not pts:
        return []
    n = processes if processes is not None else default_processes()
    if n < 1:
        raise ValueError(f"processes must be >= 1, got {n}")
    if n == 1 or len(pts) == 1:
        return [worker(p) for p in pts]
    with ProcessPoolExecutor(max_workers=min(n, len(pts))) as pool:
        return list(pool.map(worker, pts, chunksize=chunksize))
