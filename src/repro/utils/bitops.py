"""Bit-level helpers used by the packing engine.

All helpers are vectorized over NumPy arrays and operate on *unsigned*
64-bit lanes internally so that shifts never invoke undefined behaviour.
They are deliberately tiny and side-effect free: the SWAR layer
(:mod:`repro.packing.swar`) builds its carry-isolation arguments out of
these primitives, and the property-based tests exercise them directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

__all__ = [
    "bit_length_unsigned",
    "field_mask",
    "lane_masks",
    "min_signed",
    "max_signed",
    "max_unsigned",
    "sign_extend",
]


def max_unsigned(bits: int) -> int:
    """Largest value representable in ``bits`` unsigned bits (``2**bits - 1``)."""
    if bits < 1:
        raise FormatError(f"bitwidth must be >= 1, got {bits}")
    return (1 << bits) - 1


def max_signed(bits: int) -> int:
    """Largest value representable in ``bits`` two's-complement bits."""
    if bits < 1:
        raise FormatError(f"bitwidth must be >= 1, got {bits}")
    return (1 << (bits - 1)) - 1


def min_signed(bits: int) -> int:
    """Smallest (most negative) value in ``bits`` two's-complement bits."""
    if bits < 1:
        raise FormatError(f"bitwidth must be >= 1, got {bits}")
    return -(1 << (bits - 1))


def field_mask(bits: int) -> int:
    """Mask with the low ``bits`` bits set, e.g. ``field_mask(8) == 0xFF``."""
    return max_unsigned(bits)


def lane_masks(field_bits: int, lanes: int, register_bits: int = 32) -> list[int]:
    """Per-lane masks for ``lanes`` fields of ``field_bits`` bits each.

    Lane 0 occupies the least-significant field.  Raises
    :class:`~repro.errors.FormatError` if the lanes do not fit in the
    register.

    >>> [hex(m) for m in lane_masks(16, 2)]
    ['0xffff', '0xffff0000']
    """
    if lanes < 1:
        raise FormatError(f"lane count must be >= 1, got {lanes}")
    if field_bits * lanes > register_bits:
        raise FormatError(
            f"{lanes} lanes of {field_bits} bits exceed a "
            f"{register_bits}-bit register"
        )
    base = field_mask(field_bits)
    return [base << (i * field_bits) for i in range(lanes)]


def bit_length_unsigned(values: np.ndarray) -> int:
    """Minimum unsigned bitwidth that represents every element of ``values``.

    Values must be non-negative.  An all-zero array needs 1 bit.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return 1
    lo = int(arr.min())
    if lo < 0:
        raise FormatError("bit_length_unsigned requires non-negative values")
    hi = int(arr.max())
    return max(1, int(hi).bit_length())


def sign_extend(values: np.ndarray, bits: int) -> np.ndarray:
    """Sign-extend ``bits``-wide two's-complement fields to int64.

    ``values`` holds raw field contents (non-negative, < 2**bits); the
    result reinterprets each field as a signed integer.

    >>> sign_extend(np.array([0xFF]), 8).tolist()
    [-1]
    """
    arr = np.asarray(values, dtype=np.int64)
    if bits < 1 or bits > 63:
        raise FormatError(f"sign_extend supports 1..63 bits, got {bits}")
    sign_bit = np.int64(1) << np.int64(bits - 1)
    mask = np.int64(field_mask(bits))
    arr = arr & mask
    return np.where(arr & sign_bit, arr - (np.int64(1) << np.int64(bits)), arr)
