"""Small argument-validation helpers shared across the library.

These keep validation messages uniform and make the public API fail
early with actionable errors instead of deep NumPy stack traces.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_in_range",
    "check_dtype_integer",
    "check_shape_2d",
]


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_dtype_integer(name: str, arr: np.ndarray) -> None:
    """Raise ``TypeError`` unless ``arr`` has an integer dtype."""
    if not np.issubdtype(np.asarray(arr).dtype, np.integer):
        raise TypeError(
            f"{name} must have an integer dtype, got {np.asarray(arr).dtype}"
        )


def check_shape_2d(name: str, arr: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``arr`` is two-dimensional."""
    if np.asarray(arr).ndim != 2:
        raise ValueError(
            f"{name} must be a 2-D matrix, got shape {np.asarray(arr).shape}"
        )
