"""Plain-text table rendering for benchmark harness output.

The benchmark harness prints the same rows/series the paper reports;
this module renders them as aligned ASCII tables so the output of
``pytest benchmarks/ --benchmark-only`` is directly comparable to the
paper's tables and figure captions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v, ndigits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    labels: Sequence[str],
    values: Sequence[float],
    *,
    ndigits: int = 3,
) -> str:
    """Render one figure series as ``label: value`` lines with a header."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    width = max((len(x) for x in labels), default=0)
    lines = [name]
    for label, value in zip(labels, values):
        lines.append(f"  {label.ljust(width)} : {value:.{ndigits}f}")
    return "\n".join(lines)
