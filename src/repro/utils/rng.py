"""Deterministic random-number-generator factories.

Every stochastic component in the library (workload generators, synthetic
weights, dropout masks) takes an explicit seed or Generator; this module
centralizes construction so benchmarks and tests stay reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "DEFAULT_SEED"]

DEFAULT_SEED = 0x51B17  # "VitBit"-flavoured default seed


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    * ``None`` → the library default seed (deterministic).
    * ``int`` → PCG64 seeded with that value.
    * an existing ``Generator`` → returned unchanged (caller keeps control).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)
