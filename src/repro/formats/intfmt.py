"""Arbitrary-bitwidth integer format descriptors.

An :class:`IntFormat` names a two's-complement (or unsigned) integer
format of 1..32 bits.  It knows its representable range, can clip/cast
NumPy arrays into that range, and reports the *product* and
*accumulation* bit requirements the packing policy (Fig. 3 of the paper)
is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.utils.bitops import max_signed, max_unsigned, min_signed

__all__ = [
    "IntFormat",
    "INT2",
    "INT3",
    "INT4",
    "INT5",
    "INT6",
    "INT7",
    "INT8",
    "INT16",
    "INT32",
    "UINT4",
    "UINT8",
]


@dataclass(frozen=True)
class IntFormat:
    """An integer numeric format: ``bits`` wide, signed or unsigned.

    Attributes
    ----------
    bits:
        Total storage width in bits, 1..32.
    signed:
        Two's-complement when True, unsigned otherwise.
    """

    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise FormatError(f"IntFormat supports 1..32 bits, got {self.bits}")
        if self.signed and self.bits < 2:
            raise FormatError("signed formats need at least 2 bits")

    # -- range -----------------------------------------------------------

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        return min_signed(self.bits) if self.signed else 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        return max_signed(self.bits) if self.signed else max_unsigned(self.bits)

    @property
    def magnitude_bits(self) -> int:
        """Bits needed to store ``abs(value)`` for any representable value.

        For signed formats the most negative value has magnitude
        ``2**(bits-1)``, which needs ``bits`` bits, but packing always
        clips to the symmetric range ``[-(2**(bits-1)-1), 2**(bits-1)-1]``
        so ``bits - 1`` magnitude bits suffice.
        """
        return self.bits - 1 if self.signed else self.bits

    @property
    def name(self) -> str:
        """Conventional name, e.g. ``'int8'`` or ``'uint4'``."""
        return f"{'int' if self.signed else 'uint'}{self.bits}"

    # -- casting ---------------------------------------------------------

    def contains(self, values: np.ndarray) -> bool:
        """True when every element of ``values`` is representable."""
        arr = np.asarray(values)
        if arr.size == 0:
            return True
        return bool(arr.min() >= self.min_value and arr.max() <= self.max_value)

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Saturate ``values`` into the representable range (int64 output)."""
        return np.clip(np.asarray(values, dtype=np.int64), self.min_value, self.max_value)

    def symmetric_clip(self, values: np.ndarray) -> np.ndarray:
        """Saturate into the *symmetric* range used for packing.

        Signed formats lose the most-negative value (e.g. int8 clips to
        [-127, 127]) so that ``abs(x)`` always fits ``bits - 1`` bits.
        """
        if self.signed:
            bound = self.max_value
            return np.clip(np.asarray(values, dtype=np.int64), -bound, bound)
        return self.clip(values)

    def random(
        self, rng: np.random.Generator, shape: tuple[int, ...]
    ) -> np.ndarray:
        """Uniform random values over the full representable range (int64)."""
        return rng.integers(
            self.min_value, self.max_value, size=shape, endpoint=True, dtype=np.int64
        )

    # -- arithmetic sizing -----------------------------------------------

    def product_bits(self, other: "IntFormat | None" = None) -> int:
        """Bits needed for a single ``self * other`` product magnitude.

        Matches Fig. 3: an 8-bit × 8-bit product needs up to 16 bits, a
        5-bit × 5-bit product up to 10 bits, etc.  ``other`` defaults to
        ``self``.
        """
        rhs = other if other is not None else self
        return self.magnitude_bits + rhs.magnitude_bits

    def accumulation_bits(self, other: "IntFormat | None", depth: int) -> int:
        """Bits needed to accumulate ``depth`` products without overflow."""
        if depth < 1:
            raise FormatError(f"accumulation depth must be >= 1, got {depth}")
        return self.product_bits(other) + max(0, int(depth - 1).bit_length())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


INT2 = IntFormat(2)
INT3 = IntFormat(3)
INT4 = IntFormat(4)
INT5 = IntFormat(5)
INT6 = IntFormat(6)
INT7 = IntFormat(7)
INT8 = IntFormat(8)
INT16 = IntFormat(16)
INT32 = IntFormat(32)
UINT4 = IntFormat(4, signed=False)
UINT8 = IntFormat(8, signed=False)
