"""Floating-point format descriptors for the target machine.

These mirror the rows of Table 1 of the paper (FP32/FP16 on CUDA cores,
TF32/FP16/BF16 on Tensor cores).  The library never implements custom FP
bit manipulation — FP CUDA-core work is carried out in IEEE float32/64
via NumPy — but the descriptors let the throughput model reason about
per-format peak rates and let the preprocessing stage check that integer
values survive a round-trip through the FP format used for the B2 slice
(the paper converts int8 inputs to FP32, which is exact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError

__all__ = ["FloatFormat", "FP32", "FP16", "TF32", "BF16"]


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-like binary floating point format.

    Attributes
    ----------
    name:
        Display name (``'fp32'``, ``'tf32'``, ...).
    exponent_bits / mantissa_bits:
        Field widths; total storage is ``1 + exponent_bits + mantissa_bits``
        (TF32 is stored in 32 bits but only has 10 mantissa bits).
    storage_bits:
        Register storage footprint.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    storage_bits: int

    def __post_init__(self) -> None:
        if self.exponent_bits < 2 or self.mantissa_bits < 1:
            raise FormatError(f"degenerate float format: {self}")
        if self.storage_bits < 1 + self.exponent_bits + self.mantissa_bits:
            raise FormatError(
                f"{self.name}: storage_bits smaller than field widths"
            )

    @property
    def exact_int_bits(self) -> int:
        """Largest integer bitwidth represented exactly (mantissa + hidden bit)."""
        return self.mantissa_bits + 1

    def represents_int_exactly(self, bits: int, signed: bool = True) -> bool:
        """True when every ``bits``-wide integer converts to this format exactly.

        This is the correctness condition for the paper's B2 slice: int8
        values converted to FP32 (or even FP16) round-trip exactly, so FP
        CUDA cores compute the same dot products as INT cores.
        """
        magnitude = bits - 1 if signed else bits
        return magnitude <= self.exact_int_bits

    def roundtrip_exact(self, values: np.ndarray) -> bool:
        """Empirically check int -> float -> int round-trips for ``values``."""
        arr = np.asarray(values, dtype=np.int64)
        if self.name == "fp32":
            as_f = arr.astype(np.float32)
        elif self.name == "fp16":
            as_f = arr.astype(np.float16)
        else:
            # TF32/BF16 have no NumPy dtype; emulate by mantissa truncation
            # of float32 (adequate for exactness checks on small ints).
            as_f = arr.astype(np.float32)
            if self.mantissa_bits < 23:
                raw = as_f.view(np.uint32)
                drop = 23 - self.mantissa_bits
                raw = (raw >> drop) << drop
                as_f = raw.view(np.float32)
        return bool(np.array_equal(as_f.astype(np.int64), arr))


FP32 = FloatFormat("fp32", exponent_bits=8, mantissa_bits=23, storage_bits=32)
FP16 = FloatFormat("fp16", exponent_bits=5, mantissa_bits=10, storage_bits=16)
TF32 = FloatFormat("tf32", exponent_bits=8, mantissa_bits=10, storage_bits=32)
BF16 = FloatFormat("bf16", exponent_bits=8, mantissa_bits=7, storage_bits=16)
