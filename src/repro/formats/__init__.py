"""Numeric format descriptors and quantization.

The paper's motivation is that AI workloads use *arbitrary* integer
formats (2..8 bits) that GPU ALUs do not natively support.  This package
gives those formats a first-class representation (:class:`IntFormat`),
describes the natively-supported floating formats of the target machine
(:mod:`repro.formats.fpfmt`), and provides the symmetric/dyadic
quantization rules used by integer-only ViT inference
(:mod:`repro.formats.quantize`).
"""

from repro.formats.intfmt import (
    INT2,
    INT3,
    INT4,
    INT5,
    INT6,
    INT7,
    INT8,
    INT16,
    INT32,
    UINT4,
    UINT8,
    IntFormat,
)
from repro.formats.fpfmt import BF16, FP16, FP32, TF32, FloatFormat
from repro.formats.quantize import (
    DyadicScale,
    QuantParams,
    dequantize,
    dyadic_approximate,
    dyadic_rescale,
    quantize_symmetric,
)

__all__ = [
    "IntFormat",
    "INT2",
    "INT3",
    "INT4",
    "INT5",
    "INT6",
    "INT7",
    "INT8",
    "INT16",
    "INT32",
    "UINT4",
    "UINT8",
    "FloatFormat",
    "FP32",
    "FP16",
    "TF32",
    "BF16",
    "QuantParams",
    "DyadicScale",
    "quantize_symmetric",
    "dequantize",
    "dyadic_approximate",
    "dyadic_rescale",
]
