"""Low-bitwidth floating-point formats (FP8/FP6/FP4) and MX blocks.

The paper's introduction motivates VitBit with the flood of emerging
numeric formats — FP6-LLM, FP4 quantization, OCP microscaling (MX) —
that fixed GPU datapaths cannot execute natively.  This module makes
those formats concrete:

* :class:`MiniFloat` — a generic IEEE-style minifloat codec
  (round-to-nearest-even, subnormals, saturating to the format's max),
  instantiated for the OCP FP8/FP6/FP4 element types;
* :class:`MXBlock` — the OCP microscaling format: a shared power-of-two
  scale (E8M0) per block of K elements, each element a minifloat code.

Like the integer formats, these are *storage/quantization* substrates:
a GPU executes them by dequantizing into a supported format — exactly
the gap (Sec. 2.1) that motivates software techniques like VitBit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.utils.validation import check_positive

__all__ = [
    "MiniFloat",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP6_E3M2",
    "FP6_E2M3",
    "FP4_E2M1",
    "MXBlock",
]


@dataclass(frozen=True)
class MiniFloat:
    """A small IEEE-like float format: 1 sign, ``exp_bits``, ``man_bits``.

    Follows the OCP MX element conventions: no infinities, the largest
    exponent is a normal number range (E4M3-style), NaN is not
    representable — out-of-range values saturate to ``max_value``.
    Because *every* code is a finite value here, ``fp8_e4m3.max_value``
    is 480 rather than the OCP E4M3FN's 448 (which sacrifices its top
    mantissa code to NaN); the difference is one code point.
    """

    name: str
    exp_bits: int
    man_bits: int

    def __post_init__(self) -> None:
        if self.exp_bits < 1 or self.man_bits < 0:
            raise FormatError(f"degenerate minifloat {self}")
        if self.bits > 16:
            raise FormatError("MiniFloat supports at most 16 storage bits")

    # -- structure -----------------------------------------------------------

    @property
    def bits(self) -> int:
        """Total storage bits (sign + exponent + mantissa)."""
        return 1 + self.exp_bits + self.man_bits

    @property
    def bias(self) -> int:
        """Exponent bias (IEEE convention)."""
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def max_value(self) -> float:
        """Largest representable magnitude."""
        max_exp = (1 << self.exp_bits) - 1 - self.bias
        mantissa = 2.0 - 2.0 ** (-self.man_bits)
        return mantissa * 2.0**max_exp

    @property
    def min_normal(self) -> float:
        """Smallest positive normal magnitude."""
        return 2.0 ** (1 - self.bias)

    @property
    def min_subnormal(self) -> float:
        """Smallest positive representable magnitude."""
        return 2.0 ** (1 - self.bias - self.man_bits)

    @property
    def code_count(self) -> int:
        """Number of distinct bit patterns."""
        return 1 << self.bits

    # -- codec ----------------------------------------------------------------

    def all_values(self) -> np.ndarray:
        """Decoded value of every code (length ``2**bits``)."""
        return self.decode(np.arange(self.code_count, dtype=np.uint32))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Codes -> float64 values."""
        c = np.asarray(codes).astype(np.int64)
        if c.size and (c.min() < 0 or c.max() >= self.code_count):
            raise FormatError(
                f"{self.name}: codes out of range 0..{self.code_count - 1}"
            )
        sign = np.where((c >> (self.bits - 1)) & 1, -1.0, 1.0)
        exp = (c >> self.man_bits) & ((1 << self.exp_bits) - 1)
        man = c & ((1 << self.man_bits) - 1)
        normal = exp > 0
        frac = np.where(
            normal,
            1.0 + man / (1 << self.man_bits),
            man / (1 << self.man_bits),
        )
        e = np.where(normal, exp - self.bias, 1 - self.bias)
        return sign * frac * np.exp2(e.astype(np.float64))

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Values -> nearest code (round-to-nearest-even, saturating)."""
        x = np.asarray(values, dtype=np.float64)
        if x.size and not np.all(np.isfinite(x)):
            raise FormatError(f"{self.name}: cannot encode non-finite values")
        sign_bit = (np.signbit(x)).astype(np.int64) << (self.bits - 1)
        mag = np.minimum(np.abs(x), self.max_value)

        # Exponent of the enclosing binade, clamped into normal range.
        with np.errstate(divide="ignore"):
            e = np.floor(np.log2(np.where(mag > 0, mag, 1.0))).astype(np.int64)
        e = np.clip(e, 1 - self.bias, (1 << self.exp_bits) - 1 - self.bias)
        # Quantize the significand at that exponent (subnormals use the
        # minimum exponent automatically via the clamp above).
        step = np.exp2((e - self.man_bits).astype(np.float64))
        q = mag / step
        rounded = np.rint(q)
        # round-half-to-even correction
        half = np.abs(q - np.floor(q) - 0.5) < 1e-12
        rounded = np.where(
            half, np.floor(q) + (np.floor(q) % 2), rounded
        )
        mag_q = rounded * step
        # Rounding can carry into the next binade (e.g. 1.96 -> 2.0).
        carried = mag_q >= np.exp2((e + 1).astype(np.float64))
        e = np.where(carried, e + 1, e)
        e = np.clip(e, 1 - self.bias, (1 << self.exp_bits) - 1 - self.bias)
        step = np.exp2((e - self.man_bits).astype(np.float64))
        mag_q = np.minimum(np.rint(mag / step) * step, self.max_value)

        sig = np.rint(mag_q / step).astype(np.int64)  # includes hidden bit
        is_normal = sig >= (1 << self.man_bits)
        exp_field = np.where(is_normal, e + self.bias, 0)
        man_field = np.where(is_normal, sig - (1 << self.man_bits), sig)
        man_field = np.minimum(man_field, (1 << self.man_bits) - 1)
        return (sign_bit | (exp_field << self.man_bits) | man_field).astype(
            np.uint32
        )

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to the nearest representable (float64 out)."""
        return self.decode(self.encode(values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP8_E4M3 = MiniFloat("fp8_e4m3", exp_bits=4, man_bits=3)
FP8_E5M2 = MiniFloat("fp8_e5m2", exp_bits=5, man_bits=2)
FP6_E3M2 = MiniFloat("fp6_e3m2", exp_bits=3, man_bits=2)
FP6_E2M3 = MiniFloat("fp6_e2m3", exp_bits=2, man_bits=3)
FP4_E2M1 = MiniFloat("fp4_e2m1", exp_bits=2, man_bits=1)


@dataclass(frozen=True)
class MXBlock:
    """OCP microscaling: per-block power-of-two scale + minifloat elements.

    A tensor is split into blocks of ``block_size`` consecutive values;
    each block stores one shared scale exponent (E8M0: an 8-bit
    power-of-two) and ``block_size`` element codes.
    """

    element: MiniFloat
    block_size: int = 32

    def __post_init__(self) -> None:
        check_positive("block_size", self.block_size)

    @property
    def bits_per_value(self) -> float:
        """Effective storage bits per value including the shared scale."""
        return self.element.bits + 8.0 / self.block_size

    def quantize(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantize a 1-D array; returns (scales_exp, element_codes).

        The scale of each block is the power of two that maps its max
        magnitude to the element format's max value (the OCP rule).
        Trailing partial blocks are allowed.
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 1:
            raise FormatError("MXBlock.quantize expects a 1-D array")
        n = x.size
        blocks = -(-n // self.block_size)
        scales = np.zeros(blocks, dtype=np.int64)
        codes = np.zeros(n, dtype=np.uint32)
        for i in range(blocks):
            sl = slice(i * self.block_size, min(n, (i + 1) * self.block_size))
            chunk = x[sl]
            peak = float(np.max(np.abs(chunk))) if chunk.size else 0.0
            if peak == 0.0:
                scales[i] = 0
                continue
            exp = int(np.floor(np.log2(peak / self.element.max_value)))
            # round scale up so the peak stays representable
            while peak / 2.0**exp > self.element.max_value:
                exp += 1
            scales[i] = exp
            codes[sl] = self.element.encode(chunk / 2.0**exp)
        return scales, codes

    def dequantize(
        self, scales: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Inverse of :meth:`quantize`."""
        s = np.asarray(scales, dtype=np.int64)
        c = np.asarray(codes)
        out = np.zeros(c.size, dtype=np.float64)
        for i in range(s.size):
            sl = slice(i * self.block_size, min(c.size, (i + 1) * self.block_size))
            out[sl] = self.element.decode(c[sl]) * 2.0 ** int(s[i])
        return out

    def relative_error_bound(self) -> float:
        """Worst-case relative rounding error for normal-range values."""
        return 2.0 ** (-(self.element.man_bits + 1))
