"""Symmetric quantization and dyadic (shift-based) rescaling.

Integer-only ViT inference (I-ViT, the computation rules the paper adopts
for its ViT-Base workload) never touches floating point at inference
time: every re-quantization between layers is a *dyadic* operation
``(x * b) >> c`` where ``b`` and ``c`` are integers fixed at calibration
time.  This module supplies:

* :func:`quantize_symmetric` — float tensor → integer tensor + scale,
* :class:`DyadicScale` — an exact ``b / 2**c`` approximation of a real
  scale factor, applied with pure integer arithmetic,
* :func:`dyadic_rescale` — the vectorized requantization kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.formats.intfmt import IntFormat
from repro.utils.validation import check_positive

__all__ = [
    "QuantParams",
    "DyadicScale",
    "quantize_symmetric",
    "dequantize",
    "dyadic_approximate",
    "dyadic_rescale",
]


@dataclass(frozen=True)
class QuantParams:
    """Scale metadata attached to a symmetric-quantized tensor.

    ``real = scale * q`` for quantized values ``q`` in ``fmt``.
    """

    scale: float
    fmt: IntFormat

    def __post_init__(self) -> None:
        if not self.scale > 0:
            raise FormatError(f"scale must be positive, got {self.scale}")


def quantize_symmetric(
    values: np.ndarray, fmt: IntFormat, *, scale: float | None = None
) -> tuple[np.ndarray, QuantParams]:
    """Symmetric (zero-point-free) quantization of ``values`` into ``fmt``.

    When ``scale`` is None it is chosen so the max magnitude maps to the
    symmetric bound of ``fmt``.  Returns ``(q, params)`` where ``q`` is an
    int64 array saturated into the symmetric range.
    """
    arr = np.asarray(values, dtype=np.float64)
    bound = fmt.max_value if fmt.signed else fmt.max_value
    if scale is None:
        peak = float(np.max(np.abs(arr))) if arr.size else 0.0
        scale = (peak / bound) if peak > 0 else 1.0
    check_positive("scale", scale)
    q = np.round(arr / scale)
    q = fmt.symmetric_clip(q)
    return q, QuantParams(scale=scale, fmt=fmt)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map quantized integers back to real values (``float64``)."""
    return np.asarray(q, dtype=np.float64) * params.scale


@dataclass(frozen=True)
class DyadicScale:
    """A dyadic rational ``multiplier / 2**shift`` approximating a real scale.

    Applying it to an integer tensor costs one integer multiply and one
    arithmetic shift — exactly the operation budget I-ViT assumes.
    """

    multiplier: int
    shift: int

    def __post_init__(self) -> None:
        if self.multiplier < 0:
            raise FormatError("dyadic multiplier must be non-negative")
        if not 0 <= self.shift <= 62:
            raise FormatError(f"dyadic shift must be in 0..62, got {self.shift}")

    @property
    def value(self) -> float:
        """The real number this dyadic pair represents."""
        return self.multiplier / float(1 << self.shift)

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Rescale integers: ``round_half_up((v * multiplier) / 2**shift)``."""
        return dyadic_rescale(values, self)


def dyadic_approximate(scale: float, *, mult_bits: int = 16) -> DyadicScale:
    """Best dyadic approximation of ``scale`` with ≤ ``mult_bits``-bit multiplier.

    Mirrors I-ViT calibration: pick the largest shift such that
    ``round(scale * 2**shift)`` still fits ``mult_bits`` bits.
    """
    check_positive("scale", scale)
    if not 2 <= mult_bits <= 31:
        raise FormatError(f"mult_bits must be in 2..31, got {mult_bits}")
    limit = (1 << mult_bits) - 1
    shift = 0
    # Grow the shift while the multiplier stays in range and precision helps.
    while shift < 62:
        candidate = round(scale * (1 << (shift + 1)))
        if candidate > limit:
            break
        shift += 1
    multiplier = round(scale * (1 << shift))
    if multiplier == 0:
        # scale smaller than 2**-shift resolution; use smallest nonzero.
        multiplier = 1
    return DyadicScale(multiplier=multiplier, shift=shift)


def dyadic_rescale(values: np.ndarray, dyadic: DyadicScale) -> np.ndarray:
    """Integer-only requantization ``(v * b + 2**(c-1)) >> c`` (round half up).

    Works on int64 arrays; the caller is responsible for saturating the
    result into the destination format (layers do this via
    :meth:`IntFormat.symmetric_clip`).
    """
    arr = np.asarray(values, dtype=np.int64)
    prod = arr * np.int64(dyadic.multiplier)
    if dyadic.shift == 0:
        return prod
    bias = np.int64(1) << np.int64(dyadic.shift - 1)
    # Arithmetic shift of (prod + bias) implements round-half-up for both
    # signs the way integer-only accelerators do it.
    return (prod + bias) >> np.int64(dyadic.shift)
