"""Inter-kernel co-scheduling (the real Tacker, Zhao et al. HPCA 2022).

The paper compares against Tacker, which fuses *two different kernels*
(e.g. a Tensor-core GEMM from one workload and a CUDA-core kernel from
another) so their warps share SMs and complementary pipes overlap.
Sec. 4.1 notes the paper adapted Tacker to a single kernel for fair
comparison; this module implements the original inter-kernel form so
the adaptation itself can be evaluated:

* :func:`co_schedule` merges two kernel launches into one warp set,
  scaling each side's per-warp work so both finish together;
* :func:`throughput_gain` runs the pair sequentially and co-scheduled
  and reports the wall-clock saving.

Co-scheduling pays off exactly when the two kernels stress different
pipes (a Tensor-heavy GEMM + an INT-heavy elementwise kernel) and
wastes residency when they collide — both directions are tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.arch.specs import MachineSpec
from repro.perfmodel.warpsets import KernelLaunch
from repro.sim.gpu import GPUSim
from repro.sim.program import WarpProgram
from repro.sim.trace import KernelStats

__all__ = ["CoScheduleResult", "co_schedule", "throughput_gain"]


@dataclass
class CoScheduleResult:
    """Outcome of co-scheduling two kernels."""

    fused: KernelStats
    sequential_seconds: float
    fused_seconds: float

    @property
    def speedup(self) -> float:
        """Sequential / co-scheduled wall time (> 1 means fusion pays)."""
        return self.sequential_seconds / self.fused_seconds


def _scaled_warps(
    warps: list[WarpProgram], slots: int
) -> list[WarpProgram]:
    """Shrink a warp set to ``slots`` residency slots, conserving work."""
    active = [w for w in warps if w.total_instructions > 0]
    if not active:
        raise ScheduleError("kernel has no work to co-schedule")
    if slots < 1:
        raise ScheduleError("co-scheduled kernel needs at least one warp slot")
    if len(active) <= slots:
        return active
    # Keep the first `slots` warps and fold the dropped warps' work in.
    factor = len(active) / slots
    return [w.scaled(factor) for w in active[:slots]]


def co_schedule(
    machine: MachineSpec,
    a: KernelLaunch,
    b: KernelLaunch,
    *,
    share_a: float = 0.5,
    target_instructions: int = 30_000,
) -> CoScheduleResult:
    """Run ``a`` and ``b`` sequentially and fused; report both.

    ``share_a`` is the fraction of SM warp slots given to kernel ``a``
    (Tacker tunes this for QoS; 0.5 is its fair default).  Warps
    interleave a/b across the residency so both workloads land on every
    scheduler.  Work scaling (``target_instructions``) applies one
    common factor to both kernels, so the reported *speedup* is exact
    while absolute times are extrapolated steady-state rates.
    """
    if not 0.0 < share_a < 1.0:
        raise ScheduleError(f"share_a must be in (0, 1), got {share_a}")
    if target_instructions < 1:
        raise ScheduleError("target_instructions must be >= 1")
    total_instr = sum(
        w.total_instructions for launch in (a, b) for w in launch.warps
    )
    scale = max(1.0, total_instr / target_instructions)

    def _prepared(launch: KernelLaunch) -> tuple[list[WarpProgram], float]:
        warps = [
            w if w.total_instructions == 0 else w.scaled(1.0 / scale)
            for w in launch.warps
        ]
        return warps, launch.bytes_moved / scale

    gpu = GPUSim(machine, include_launch_overhead=False)
    warps_a, bytes_a = _prepared(a)
    warps_b, bytes_b = _prepared(b)
    sim_instr = sum(
        w.total_instructions for ws in (warps_a, warps_b) for w in ws
    )
    if sim_instr == 0:
        raise ScheduleError("kernels have no work to co-schedule")
    factor = total_instr / sim_instr  # realized scale (rounding-exact)
    stats_a = gpu.run_kernel(warps_a, bytes_moved=bytes_a)
    stats_b = gpu.run_kernel(warps_b, bytes_moved=bytes_b)
    sequential = (stats_a.seconds + stats_b.seconds) * factor

    slots = machine.sm.max_warps_per_sm
    slots_a = max(1, min(slots - 1, round(slots * share_a)))
    slots_b = slots - slots_a
    wa = _scaled_warps(warps_a, slots_a)
    wb = _scaled_warps(warps_b, slots_b)
    fused_warps: list[WarpProgram] = []
    ia = ib = 0
    # Interleave in partition-sized runs so both kernels reach every
    # scheduler (same reasoning as fusion.schedule).
    run = machine.sm.partitions
    while ia < len(wa) or ib < len(wb):
        take_a = min(run, len(wa) - ia)
        fused_warps.extend(wa[ia : ia + take_a])
        ia += take_a
        take_b = min(run, len(wb) - ib)
        fused_warps.extend(wb[ib : ib + take_b])
        ib += take_b
    fused = gpu.run_kernel(fused_warps, bytes_moved=bytes_a + bytes_b)
    fused.seconds *= factor
    fused.cycles = int(fused.cycles * factor)
    return CoScheduleResult(
        fused=fused,
        sequential_seconds=sequential,
        fused_seconds=fused.seconds,
    )


def throughput_gain(
    machine: MachineSpec, a: KernelLaunch, b: KernelLaunch, *, share_a: float = 0.5
) -> float:
    """Convenience wrapper: the co-scheduling speedup for a kernel pair."""
    return co_schedule(machine, a, b, share_a=share_a).speedup
