"""QoS prediction for co-scheduled kernels (Tacker's second contribution).

Tacker pairs kernel fusion with "accurate prediction modeling" so a
latency-critical kernel's slowdown under co-location stays within its
QoS budget *without* trial runs.  This module reproduces that idea
against our machine model:

* :func:`pipe_signature` — a kernel's demand on each shared resource
  (pipe-cycles and issue-slots per second of solo execution);
* :func:`predict_corun` — closed-form prediction of both kernels'
  co-run slowdowns from their signatures: each shared resource's total
  demand is summed, the most-oversubscribed one sets the slowdown;
* :class:`QosAdmission` — the admission test: co-schedule only if the
  predicted slowdown of the protected kernel respects its QoS target.

Accuracy is validated against the cycle simulator in
``tests/test_qos.py`` (within ~20% — the same ballpark Tacker reports
for its model on silicon).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import MachineSpec
from repro.errors import ScheduleError
from repro.fusion.coschedule import co_schedule
from repro.perfmodel.warpsets import KernelLaunch
from repro.sim.gpu import GPUSim
from repro.sim.instruction import OpClass, default_timings

__all__ = [
    "PipeSignature",
    "pipe_signature",
    "predict_corun",
    "QosAdmission",
    "QosClass",
    "INTERACTIVE",
    "STANDARD",
    "BATCH",
    "QOS_CLASSES",
    "qos_class",
]


@dataclass(frozen=True)
class PipeSignature:
    """A kernel's fractional demand on each shared SM resource.

    Each entry is the fraction of that resource's capacity the kernel
    consumes while running solo (1.0 = saturated).  ``issue`` covers
    the scheduler's one-instruction-per-cycle port; ``dram`` the memory
    bandwidth.
    """

    pipes: dict[OpClass, float]
    issue: float
    dram: float
    solo_seconds: float

    def demand(self, resource: "OpClass | str") -> float:
        """Demand on one resource (0..1)."""
        if isinstance(resource, OpClass):
            return self.pipes.get(resource, 0.0)
        if resource == "issue":
            return self.issue
        if resource == "dram":
            return self.dram
        raise ScheduleError(f"unknown resource {resource!r}")


def pipe_signature(machine: MachineSpec, launch: KernelLaunch) -> PipeSignature:
    """Compute a kernel's resource signature from its instruction totals.

    Uses the same grid-wide accounting the performance model simulates;
    solo time comes from one (work-scaled) simulator run so signatures
    reflect the machine, not just the bounds.
    """
    timings = default_timings(machine.sm)
    schedulers = machine.sm_count * machine.sm.partitions

    gpu = GPUSim(machine, include_launch_overhead=False)
    total = sum(w.total_instructions for w in launch.warps)
    scale = max(1.0, total / 20_000)
    warps = [w if w.total_instructions == 0 else w.scaled(1 / scale)
             for w in launch.warps]
    sim_total = sum(w.total_instructions for w in warps)
    if sim_total == 0:
        raise ScheduleError("kernel has no work")
    factor = total / sim_total
    stats = gpu.run_kernel(warps, bytes_moved=launch.bytes_moved / factor)
    solo = stats.seconds * factor

    cycles = solo * machine.clock_hz
    pipes = {
        op: (n * timings[op].initiation_interval / schedulers) / cycles
        for op, n in launch.instruction_totals.items()
        if n > 0
    }
    issue = sum(launch.instruction_totals.values()) / schedulers / cycles
    dram_seconds = launch.bytes_moved / (
        machine.dram_bandwidth_bytes_per_s * 0.75
    )
    return PipeSignature(
        pipes=pipes, issue=issue, dram=dram_seconds / solo, solo_seconds=solo
    )


def predict_corun(
    a: PipeSignature, b: PipeSignature
) -> tuple[float, float]:
    """Predicted slowdowns (a, b) when the two kernels co-run.

    Model: on each shared resource the combined demand is the sum of
    solo demands; if a resource oversubscribes (sum > 1), both kernels
    stretch by that factor.  The binding resource is the worst one.
    A slowdown is never below 1.
    """
    resources: set[object] = set(a.pipes) | set(b.pipes) | {"issue", "dram"}
    worst = 1.0
    for r in resources:
        combined = a.demand(r) + b.demand(r)  # type: ignore[arg-type]
        worst = max(worst, combined)
    return worst, worst


@dataclass(frozen=True)
class QosClass:
    """A service class: how much latency a request class will tolerate.

    The serving layer (:mod:`repro.serve`) tags every request with one
    of these; they map onto this module's admission machinery through
    ``max_slowdown`` — the same budget :class:`QosAdmission` protects a
    co-scheduled kernel with, here protecting a request against
    batching/queueing delay relative to a solo batch-1 inference.

    Attributes
    ----------
    name:
        Registry key (``qos_class(name)``).
    deadline_seconds:
        Default end-to-end deadline (arrival to completion) on the
        simulated clock; requests past it are expired, not served.
    max_slowdown:
        Admission budget: a request is only batched/queued while its
        predicted completion stays within ``max_slowdown`` times the
        solo batch-1 latency (>= 1, like :class:`QosAdmission`).
    """

    name: str
    deadline_seconds: float
    max_slowdown: float

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ScheduleError("QoS deadline must be positive")
        if self.max_slowdown < 1.0:
            raise ScheduleError("QoS slowdown budget must be >= 1")


#: Latency-critical traffic: small batches, tight deadline.
INTERACTIVE = QosClass("interactive", deadline_seconds=0.025, max_slowdown=3.0)
#: The default class: moderate batching for throughput.
STANDARD = QosClass("standard", deadline_seconds=0.100, max_slowdown=12.0)
#: Throughput traffic: deadline loose enough for full batches.
BATCH = QosClass("batch", deadline_seconds=1.000, max_slowdown=100.0)

QOS_CLASSES: dict[str, QosClass] = {
    c.name: c for c in (INTERACTIVE, STANDARD, BATCH)
}


def qos_class(name: str) -> QosClass:
    """Look up a QoS class by name (case-insensitive)."""
    try:
        return QOS_CLASSES[name.lower()]
    except KeyError:
        raise ScheduleError(
            f"unknown QoS class {name!r}; available: {sorted(QOS_CLASSES)}"
        ) from None


@dataclass
class QosAdmission:
    """Admission control: protect kernel A's latency under co-location."""

    machine: MachineSpec
    qos_slowdown: float = 1.3

    def __post_init__(self) -> None:
        if self.qos_slowdown < 1.0:
            raise ScheduleError("QoS slowdown target must be >= 1")

    def admit(self, protected: KernelLaunch, candidate: KernelLaunch) -> bool:
        """True when co-running ``candidate`` keeps ``protected`` within
        its QoS target, per the prediction model."""
        sa = pipe_signature(self.machine, protected)
        sb = pipe_signature(self.machine, candidate)
        slowdown, _ = predict_corun(sa, sb)
        return slowdown <= self.qos_slowdown

    def validate(
        self, protected: KernelLaunch, candidate: KernelLaunch
    ) -> tuple[float, float]:
        """(predicted, simulated) slowdown of the protected kernel."""
        sa = pipe_signature(self.machine, protected)
        sb = pipe_signature(self.machine, candidate)
        predicted, _ = predict_corun(sa, sb)
        result = co_schedule(self.machine, protected, candidate)
        simulated = result.fused_seconds / max(
            sa.solo_seconds, sb.solo_seconds
        )
        return predicted, simulated
