"""The evaluated execution strategies (Table 3 of the paper).

A :class:`Strategy` declares which execution units participate, whether
INT operands are packed, and how it applies to the two kernel families:

* **Tensor-core kernels** (GEMM): strategies with ``uses_tensor`` fuse
  CUDA-core warps into the Tensor-core kernel; pure CUDA strategies run
  the whole GEMM on CUDA cores.
* **CUDA-core kernels** (GeLU, Softmax, ...): Tensor cores cannot run
  them, so only the INT/FP/packing dimensions apply.

Given a packing policy and the Tensor:CUDA ratio ``m``, a strategy
yields the column split of Algorithm 1 via :meth:`Strategy.split_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.packing.policy import PackingPolicy
from repro.preprocess.split import SplitPlan, plan_split

__all__ = [
    "Strategy",
    "TC",
    "IC",
    "FC",
    "IC_FC",
    "TACKER",
    "TC_IC_FC",
    "VITBIT",
    "STRATEGIES",
    "strategy_by_name",
]


@dataclass(frozen=True)
class Strategy:
    """One row of Table 3.

    Attributes
    ----------
    name:
        Display name used throughout benchmarks and figures.
    uses_tensor / uses_int / uses_fp:
        Which execution units the strategy engages.
    packing:
        Whether INT-pipe operands are packed (VitBit's contribution).
    kernel_scope:
        ``"T"``, ``"C"`` or ``"T,C"`` — which kernel families the paper
        evaluates it on (Table 3's label column).
    """

    name: str
    uses_tensor: bool
    uses_int: bool
    uses_fp: bool
    packing: bool
    kernel_scope: str
    description: str

    def __post_init__(self) -> None:
        if not (self.uses_tensor or self.uses_int or self.uses_fp):
            raise ScheduleError(f"strategy {self.name!r} uses no execution units")
        if self.packing and not self.uses_int:
            raise ScheduleError(
                f"strategy {self.name!r} packs operands but never runs the INT pipe"
            )
        if self.kernel_scope not in {"T", "C", "T,C"}:
            raise ScheduleError(f"bad kernel_scope {self.kernel_scope!r}")

    @property
    def uses_cuda(self) -> bool:
        """True when any CUDA-core pipe participates."""
        return self.uses_int or self.uses_fp

    @property
    def is_fused(self) -> bool:
        """True when the strategy needs the packed/fused machinery —
        i.e. when a preflight refutation can apply to it at all."""
        return self.packing or (self.uses_tensor and self.uses_cuda)

    def degraded(self) -> "Strategy":
        """The graceful-degradation baseline for this strategy.

        When the fused/packed path fails preflight (overflow prover
        refutation, inapplicable split rule), the serving layer falls
        back to the plain single-pipe baseline: Tensor-only for
        Tensor-capable strategies, the INT CUDA baseline otherwise.
        Both are always schedulable — they need neither a packing plan
        nor the Tensor:CUDA split rule.
        """
        return TC if self.uses_tensor else IC

    def pack_factor(self, policy: PackingPolicy) -> int:
        """Operands per INT-pipe register under this strategy (1 = zero-masked)."""
        return policy.lanes if self.packing else 1

    def int_fp_ratio(self, policy: PackingPolicy) -> int:
        """Eq. 1's ``n``: columns given to INT per FP column.

        With packing, ``n`` equals the packing factor so the two pipes
        issue the same instruction count; without packing it is 1 (even
        split); 0 disables the missing pipe.
        """
        if not self.uses_int:
            return 0
        if not self.uses_fp:
            # All CUDA columns to the INT pipe: n/(n+1) -> 1 as n -> inf.
            return 10**9
        return policy.lanes if self.packing else 1

    def split_plan(
        self, n_columns: int, policy: PackingPolicy, tensor_cuda_ratio: float
    ) -> SplitPlan:
        """Algorithm 1 plan for a GEMM of ``n_columns`` under this strategy.

        ``tensor_cuda_ratio`` is ignored (forced) when the strategy uses
        only one side: Tensor-only pins every column to B3, CUDA-only to
        B1/B2.
        """
        if self.uses_tensor and not self.uses_cuda:
            m = float("inf")
        elif not self.uses_tensor:
            m = 0.0
        else:
            if tensor_cuda_ratio <= 0:
                raise ScheduleError(
                    f"{self.name} fuses Tensor and CUDA cores; the ratio m "
                    f"must be positive, got {tensor_cuda_ratio}"
                )
            m = tensor_cuda_ratio
        if m == float("inf"):
            return plan_split(n_columns, 1e18, policy, int_fp_ratio=0)
        # Packing alignment only matters when the INT pipe participates.
        pol = policy if self.packing else policy.with_lanes(1)
        return plan_split(n_columns, m, pol, int_fp_ratio=self.int_fp_ratio(policy))


TC = Strategy(
    name="TC",
    uses_tensor=True,
    uses_int=False,
    uses_fp=False,
    packing=False,
    kernel_scope="T",
    description="Tensor cores only (baseline for Tensor-core kernels)",
)
IC = Strategy(
    name="IC",
    uses_tensor=False,
    uses_int=True,
    uses_fp=False,
    packing=False,
    kernel_scope="C",
    description="INT CUDA cores only (baseline for CUDA-core kernels)",
)
FC = Strategy(
    name="FC",
    uses_tensor=False,
    uses_int=False,
    uses_fp=True,
    packing=False,
    kernel_scope="C",
    description="FP CUDA cores only, inputs type-cast to float",
)
IC_FC = Strategy(
    name="IC+FC",
    uses_tensor=False,
    uses_int=True,
    uses_fp=True,
    packing=False,
    kernel_scope="C",
    description="Simultaneous INT and FP CUDA cores",
)
TACKER = Strategy(
    name="Tacker",
    uses_tensor=True,
    uses_int=True,
    uses_fp=False,
    packing=False,
    kernel_scope="T",
    description="Tensor cores fused with INT CUDA cores (Zhao et al.)",
)
TC_IC_FC = Strategy(
    name="TC+IC+FC",
    uses_tensor=True,
    uses_int=True,
    uses_fp=True,
    packing=False,
    kernel_scope="T",
    description="Simultaneous Tensor, INT and FP CUDA cores (no packing)",
)
VITBIT = Strategy(
    name="VitBit",
    uses_tensor=True,
    uses_int=True,
    uses_fp=True,
    packing=True,
    kernel_scope="T,C",
    description="INT packing + simultaneous Tensor, INT and FP cores (ours)",
)

#: Table 3, in the paper's order.
STRATEGIES: tuple[Strategy, ...] = (TC, IC, FC, IC_FC, TACKER, TC_IC_FC, VITBIT)


def strategy_by_name(name: str) -> Strategy:
    """Look up a Table 3 strategy by its display name (case-insensitive)."""
    for s in STRATEGIES:
        if s.name.lower() == name.lower():
            return s
    raise ScheduleError(
        f"unknown strategy {name!r}; available: {[s.name for s in STRATEGIES]}"
    )
