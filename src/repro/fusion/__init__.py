"""Kernel reconstruction: execution strategies, ratios, warp scheduling.

This package encodes Sec. 3.3 and Table 3 of the paper:

* :mod:`repro.fusion.strategies` — the seven evaluated methods (TC, IC,
  FC, IC+FC, Tacker, TC+IC+FC, VitBit) as declarative descriptions of
  which pipes run and whether operands are packed;
* :mod:`repro.fusion.ratio` — Eq. 1 (the INT:FP data ratio equals the
  packing factor) and the measured-time rule that picks the
  Tensor:CUDA ratio ``m``;
* :mod:`repro.fusion.schedule` — warp-level interleaving: Tensor warps
  first, then INT and FP warps alternating, "to prevent task
  concentration on one core during warp scheduling".
"""

from repro.fusion.strategies import (
    FC,
    IC,
    IC_FC,
    STRATEGIES,
    TACKER,
    TC,
    TC_IC_FC,
    VITBIT,
    Strategy,
    strategy_by_name,
)
from repro.fusion.ratio import (
    PAPER_TENSOR_CUDA_RATIO,
    eq1_int_fp_ratio,
    tensor_cuda_ratio_from_times,
)
from repro.fusion.schedule import interleave_warp_roles
from repro.fusion.coschedule import CoScheduleResult, co_schedule, throughput_gain
from repro.fusion.qos import (
    BATCH,
    INTERACTIVE,
    QOS_CLASSES,
    STANDARD,
    PipeSignature,
    QosAdmission,
    QosClass,
    pipe_signature,
    predict_corun,
    qos_class,
)

__all__ = [
    "Strategy",
    "TC",
    "IC",
    "FC",
    "IC_FC",
    "TACKER",
    "TC_IC_FC",
    "VITBIT",
    "STRATEGIES",
    "strategy_by_name",
    "eq1_int_fp_ratio",
    "tensor_cuda_ratio_from_times",
    "PAPER_TENSOR_CUDA_RATIO",
    "interleave_warp_roles",
    "co_schedule",
    "CoScheduleResult",
    "throughput_gain",
    "PipeSignature",
    "pipe_signature",
    "predict_corun",
    "QosAdmission",
    "QosClass",
    "INTERACTIVE",
    "STANDARD",
    "BATCH",
    "QOS_CLASSES",
    "qos_class",
]
