"""Work-division ratios (Sec. 3.2 and Eq. 1).

Two ratios govern Algorithm 1:

* ``m`` — Tensor : CUDA columns.  The paper measures GEMM time on each
  core class and sets ``m`` to their ratio so both sides finish
  together (their study: CUDA-with-packing ~4x slower than Tensor ->
  m = 4).  :func:`tensor_cuda_ratio_from_times` implements the rule;
  ``PAPER_TENSOR_CUDA_RATIO`` pins the paper's chosen value.
* ``n`` — INT : FP columns, Eq. 1: with ``n`` values packed per
  register, giving the INT pipe ``n`` columns per FP column equalizes
  the two pipes' instruction counts (the SM has equally many INT and
  FP lanes).
"""

from __future__ import annotations

import warnings

from repro import obs
from repro.errors import RatioClampWarning, ScheduleError
from repro.packing.policy import PackingPolicy

__all__ = [
    "PAPER_TENSOR_CUDA_RATIO",
    "eq1_int_fp_ratio",
    "tensor_cuda_ratio_from_times",
]

#: The paper's measured assignment ratio: Tensor cores 4, CUDA cores 1.
PAPER_TENSOR_CUDA_RATIO = 4.0


def eq1_int_fp_ratio(policy: PackingPolicy, packing: bool = True) -> int:
    """Eq. 1's ``n``: data-for-packing : data-for-converting.

    Packing ``n`` integers per register reduces INT instructions by
    ``n``; matching instruction counts across equal INT/FP pipes means
    the INT pipe should receive ``n`` columns of data per FP column.
    """
    return policy.lanes if packing else 1


def tensor_cuda_ratio_from_times(
    tensor_seconds: float,
    cuda_seconds: float,
    *,
    round_to_int: bool = True,
    clamp: bool = False,
) -> float:
    """The paper's rule: ``m = time_CUDA / time_Tensor`` on the same GEMM.

    A CUDA-core pass that takes 4x the Tensor-core pass should receive
    1/4 of the columns Tensor cores get, so both finish together.  The
    paper rounds to an integer ratio (4:1); pass ``round_to_int=False``
    for the exact balance point.

    When the CUDA-core GEMM comes out *faster* than the Tensor-core GEMM
    the rule does not apply.  The strict default raises
    :class:`~repro.errors.ScheduleError` — the paper-faithful behaviour,
    right for calibration and the figures.  ``clamp=True`` instead
    degrades to an even ``m = 1`` split and records a
    :class:`~repro.errors.RatioClampWarning`, so long sweeps and the
    serving layer survive one odd calibration point instead of aborting
    from inside a worker.
    """
    if tensor_seconds <= 0 or cuda_seconds <= 0:
        raise ScheduleError(
            f"times must be positive, got tensor={tensor_seconds}, "
            f"cuda={cuda_seconds}"
        )
    m = cuda_seconds / tensor_seconds
    if m < 1.0:
        if not clamp:
            # CUDA cores faster than Tensor cores never happens on real
            # DNN GEMMs; treat it as a configuration error rather than
            # silently inverting the split.
            raise ScheduleError(
                "CUDA-core GEMM came out faster than the Tensor-core GEMM "
                f"(m = {m:.3f} < 1); the Tensor:CUDA split rule does not "
                "apply — pass clamp=True to degrade to an even m=1 split"
            )
        obs.counter(
            "ratio_clamps_total",
            "Tensor:CUDA split rules degraded to an even m = 1 split",
        ).inc()
        warnings.warn(
            RatioClampWarning(
                f"Tensor:CUDA ratio m = {m:.3f} < 1 (CUDA-core GEMM "
                "faster than Tensor-core GEMM); clamping to m = 1"
            ),
            stacklevel=2,
        )
        return 1.0
    return round(m) if round_to_int else m
