"""Warp-level role interleaving (Sec. 3.3).

The fused kernel assigns warps to Tensor / INT / FP roles inside one
thread block.  The paper places the (few) Tensor-core warps first, then
alternates INT and FP warps "to prevent task concentration on one core
during warp scheduling" — under loose-round-robin issue, adjacent warps
of the same role would collide on the same pipe and leave the other
pipe idle between turns.  :func:`interleave_warp_roles` reproduces that
layout and is what the performance model feeds to the simulator.
"""

from __future__ import annotations

from repro.errors import ScheduleError

__all__ = ["interleave_warp_roles"]


def interleave_warp_roles(
    n_tensor: int,
    n_int: int,
    n_fp: int,
    *,
    alternate: bool = True,
    group: int = 1,
) -> list[str]:
    """Ordered warp-role labels for one thread block.

    Returns a list drawn from ``{"tensor", "int", "fp"}`` of length
    ``n_tensor + n_int + n_fp``.  With ``alternate`` (the paper's
    scheme) INT and FP warps interleave as evenly as possible; without
    it they are laid out in contiguous runs (the ablation case).

    ``group`` repeats each role in runs of that length.  The hardware
    block scheduler deals consecutive warps round-robin to the SM's
    sub-partitions, so alternating with ``group = partitions`` is what
    actually lands INT and FP warps *alternating within each
    partition's scheduler* — a plain ``i,f,i,f`` list would be sampled
    stride-``partitions`` into single-role partitions and lose the
    co-issue benefit entirely.
    """
    for name, n in (("n_tensor", n_tensor), ("n_int", n_int), ("n_fp", n_fp)):
        if n < 0:
            raise ScheduleError(f"{name} must be >= 0, got {n}")
    if group < 1:
        raise ScheduleError(f"group must be >= 1, got {group}")
    roles: list[str] = ["tensor"] * n_tensor
    if not alternate:
        roles += ["int"] * n_int + ["fp"] * n_fp
        return roles
    # Evenly interleave the two CUDA roles (Bresenham-style merge) at
    # run-of-`group` granularity.
    total = n_int + n_fp
    placed_int = placed_fp = 0
    while placed_int + placed_fp < total:
        i = placed_int + placed_fp
        want_int = n_int * (i + 1) / total if total else 0
        if (placed_int < want_int and placed_int < n_int) or placed_fp >= n_fp:
            run = min(group, n_int - placed_int)
            roles += ["int"] * run
            placed_int += run
        else:
            run = min(group, n_fp - placed_fp)
            roles += ["fp"] * run
            placed_fp += run
    return roles
