"""Model zoo: standard ViT/DeiT variants for scaling studies.

The paper evaluates ViT-Base only; these configs let the benchmarks ask
how VitBit's gains scale with model width/depth (DeiT-Tiny's 192-wide
GEMMs stress the m rule differently than ViT-Large's 1024-wide ones).
All are integer-only models built through :class:`~repro.vit.model.IntViT`.
"""

from __future__ import annotations

from repro.errors import ModelConfigError
from repro.vit.config import ViTConfig

__all__ = ["MODEL_ZOO", "model_config"]


MODEL_ZOO: dict[str, ViTConfig] = {
    "deit-tiny": ViTConfig(hidden=192, depth=12, heads=3, mlp_dim=768),
    "deit-small": ViTConfig(hidden=384, depth=12, heads=6, mlp_dim=1536),
    "vit-base": ViTConfig.vit_base(),
    "vit-large": ViTConfig(hidden=1024, depth=24, heads=16, mlp_dim=4096),
    "test-tiny": ViTConfig.test_tiny(),
}


def model_config(name: str) -> ViTConfig:
    """Look up a zoo model by name (case-insensitive)."""
    try:
        return MODEL_ZOO[name.lower()]
    except KeyError:
        raise ModelConfigError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None
