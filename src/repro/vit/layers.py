"""Integer layers over a pluggable GEMM executor.

Activations travel as **stored uint8** arrays of shape
``(features, columns)`` — the paper's B-matrix orientation, where the
column axis (tokens x batch) is what Algorithm 1 splits and packs.  The
semantic value of an activation is ``stored - zero_point``; attention
probabilities use zero point 0 (they are naturally non-negative).

The :class:`GemmExecutor` decides *how* each GEMM runs: the plain
integer reference, or the strategy's fused Tensor/INT/FP kernel with
operand packing.  Every path is exact, which is what makes end-to-end
bit-exactness checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale
from repro.fusion.strategies import Strategy
from repro.kernels.fused_gemm import fused_gemm
from repro.kernels.gemm import ic_gemm
from repro.kernels.elementwise import requantize
from repro.packing.gemm import PackedGemmStats
from repro.packing.policy import PackingPolicy, policy_for_bitwidth
from repro.preprocess.convert import duplicate_weights
from repro.preprocess.split import split_matrix

__all__ = ["GemmExecutor", "IntLinear"]


class GemmExecutor:
    """Runs integer GEMMs either as the reference or as a fused kernel.

    Parameters
    ----------
    strategy:
        ``None`` for the plain integer reference; otherwise a Table 3
        strategy whose split/packing configuration every GEMM follows.
    policy:
        Packing policy (defaults to the Fig. 3 int8 policy).
    tensor_cuda_ratio:
        Algorithm 1's ``m`` for fused strategies (paper: 4).
    method:
        Packed-path evaluation, ``"lane"`` (fast, default) or
        ``"chunked"`` (hardware-faithful; see packing.gemm).
    """

    def __init__(
        self,
        strategy: Strategy | None = None,
        policy: PackingPolicy | None = None,
        *,
        tensor_cuda_ratio: float = 4.0,
        method: str = "lane",
    ):
        self.strategy = strategy
        self.policy = policy if policy is not None else policy_for_bitwidth(8)
        self.tensor_cuda_ratio = tensor_cuda_ratio
        self.method = method
        self.gemm_count = 0
        self.packed_stats = PackedGemmStats()

    def gemm(
        self,
        a: np.ndarray,
        b_stored: np.ndarray,
        *,
        b_zero_point: int | None,
    ) -> np.ndarray:
        """Exact ``a @ (b_stored - zp)`` under the configured strategy.

        ``a`` is a signed integer matrix (weights or centered
        activations); ``b_stored`` holds non-negative stored values.
        """
        self.gemm_count += 1
        a64 = np.asarray(a, dtype=np.int64)
        b64 = np.asarray(b_stored, dtype=np.int64)
        if self.strategy is None:
            c = ic_gemm(a64, b64)
            if b_zero_point:
                c = c - (a64.sum(axis=1, dtype=np.int64) * b_zero_point)[:, None]
            return c
        plan = self.strategy.split_plan(
            b64.shape[1], self.policy, self.tensor_cuda_ratio
        )
        pol = self.policy if self.strategy.packing else self.policy.with_lanes(1)
        split = split_matrix(b64, plan, pol)
        a1, a2 = duplicate_weights(a64)
        out = fused_gemm(
            a1, a2, split, pol, b_zero_point=b_zero_point, method=self.method
        )
        s, o = self.packed_stats, out.packed_stats
        s.packed_multiplies += o.packed_multiplies
        s.packed_adds += o.packed_adds
        s.spills += o.spills
        s.m, s.n, s.k, s.lanes = o.m, o.n, o.k, max(s.lanes, o.lanes)
        return out.c


@dataclass
class IntLinear:
    """Integer linear layer: ``requant(W @ x + bias)``.

    ``weight`` is (out, in) int8-range; ``bias`` lives in the
    accumulator scale; ``out_scale`` is the dyadic requantization into
    the next layer's stored-uint8 domain.
    """

    weight: np.ndarray
    bias: np.ndarray
    out_scale: DyadicScale
    zero_point: int = 128
    #: symmetric magnitude bound of the requantized output (the stored
    #: value is ``centered + zero_point``); 127 for int8 activations.
    out_bound: int = 127

    def __post_init__(self) -> None:
        w = np.asarray(self.weight)
        if w.ndim != 2:
            raise ModelConfigError(f"weight must be 2-D, got shape {w.shape}")
        if np.asarray(self.bias).shape != (w.shape[0],):
            raise ModelConfigError(
                f"bias shape {np.asarray(self.bias).shape} does not match "
                f"{w.shape[0]} output features"
            )

    @property
    def in_features(self) -> int:
        """Input width of the layer (columns of the weight matrix)."""
        return self.weight.shape[1]

    @property
    def out_features(self) -> int:
        """Output width of the layer (rows of the weight matrix)."""
        return self.weight.shape[0]

    def forward(
        self,
        x_stored: np.ndarray,
        executor: GemmExecutor,
        *,
        x_zero_point: int | None = None,
    ) -> np.ndarray:
        """(in, N) stored uint8 -> (out, N) stored uint8."""
        zp = self.zero_point if x_zero_point is None else x_zero_point
        acc = executor.gemm(self.weight, x_stored, b_zero_point=zp)
        acc = acc + np.asarray(self.bias, dtype=np.int64)[:, None]
        centered = requantize(
            acc, self.out_scale, out_min=-self.out_bound, out_max=self.out_bound
        )
        return centered + self.zero_point
