"""End-to-end inference: functional execution and simulated timing.

Two entry points mirror the paper's two claims:

* :func:`verify_bit_exact` — the accuracy claim: inference under a
  fused/packed strategy produces bit-identical logits to the plain
  integer reference (stronger than "no accuracy loss on ImageNet").
* :func:`time_inference` — the performance claim: price the full
  kernel stream of :func:`~repro.vit.workload.vit_workload` under a
  Table 3 strategy on the simulated Jetson, applying the paper's
  strategy -> kernel-family mapping (Table 3's T/C labels): T-scoped
  methods leave CUDA-core kernels at the IC baseline; VitBit (T,C)
  accelerates both; C-scoped methods leave Tensor-core kernels on
  Tensor cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelConfigError
from repro.fusion.strategies import IC, TC, Strategy
from repro.perfmodel.model import KernelTiming, PerformanceModel
from repro.sim.instruction import OpClass
from repro.utils.rng import make_rng
from repro.vit.config import ViTConfig
from repro.vit.layers import GemmExecutor
from repro.vit.model import IntViT
from repro.vit.workload import DEFAULT_BATCH, KernelWork, vit_workload

__all__ = [
    "run_inference",
    "verify_bit_exact",
    "InferenceTiming",
    "time_inference",
    "preflight_strategy",
    "gemm_strategy_for",
    "cuda_kernel_strategy_for",
]


# -- functional ----------------------------------------------------------------


def run_inference(
    model: IntViT,
    images: np.ndarray,
    strategy: Strategy | None = None,
    *,
    method: str = "lane",
) -> np.ndarray:
    """Integer inference under ``strategy`` (None = plain reference).

    The packing policy follows the model's activation bitwidth (Fig. 3:
    int8 packs 2 lanes, int4 packs 4, ...) unless a learned policy
    table is installed (``REPRO_POLICY_TABLE`` / ``--policy-table``),
    in which case the table's proven layout for the bitwidth wins.
    """
    from repro.packing.policy import policy_for_bitwidth
    from repro.packing.search import resolve_policy

    bits = model.config.activation_bits
    policy = resolve_policy(bits, bits, default=policy_for_bitwidth(bits))
    executor = GemmExecutor(strategy, policy, method=method)
    return model.forward(images, executor)


def verify_bit_exact(
    model: IntViT,
    strategy: Strategy,
    *,
    batch: int = 1,
    seed: int | None = None,
    method: str = "lane",
) -> bool:
    """The paper's accuracy claim, in its strongest checkable form.

    Runs the same random images through the reference executor and the
    ``strategy`` executor and compares logits bit for bit.
    """
    cfg = model.config
    rng = make_rng(seed)
    images = rng.integers(
        0, 256, size=(batch, cfg.in_channels, cfg.image_size, cfg.image_size)
    )
    ref = run_inference(model, images, None)
    got = run_inference(model, images, strategy, method=method)
    return bool(np.array_equal(ref, got))


# -- strategy mapping (Table 3's T/C scoping) -----------------------------------


def gemm_strategy_for(strategy: Strategy) -> Strategy:
    """How ``strategy`` executes Tensor-core kernels (GEMMs).

    C-scoped methods (IC, FC, IC+FC) do not change GEMM execution in
    the paper's end-to-end runs — GEMMs stay on Tensor cores.
    """
    return strategy if strategy.uses_tensor else TC


def cuda_kernel_strategy_for(strategy: Strategy) -> Strategy:
    """How ``strategy`` executes CUDA-core kernels.

    T-scoped methods (TC, Tacker, TC+IC+FC) leave them at the IC
    baseline; VitBit and the C-scoped methods apply themselves.
    """
    if "C" in strategy.kernel_scope.split(","):
        return strategy
    return IC


# -- serving preflight ----------------------------------------------------------

_DEPTH_TABLE_LOADED = False


def _install_proven_depths() -> None:
    """Install the benchmark run's proven-safe-depth table, if present.

    ``repro analyze --dataflow`` emits ``safe_depths`` under
    ``benchmarks/out/summary.json``; loading it lets the packer preflight
    reuse dataflow-proven chunk depths instead of re-deriving them (each
    entry is still cross-checked against the closed-form budget at use).
    """
    global _DEPTH_TABLE_LOADED
    if _DEPTH_TABLE_LOADED:
        return
    from repro.analysis.dataflow import load_safe_depth_table

    load_safe_depth_table()
    _DEPTH_TABLE_LOADED = True


def preflight_strategy(
    pm: PerformanceModel,
    strategy: Strategy,
    *,
    config: ViTConfig | None = None,
    batch: int = DEFAULT_BATCH,
    workload: list[KernelWork] | None = None,
) -> None:
    """Prove ``strategy`` serviceable for this workload before dispatch.

    The serving layer calls this once per (model, bitwidth, strategy)
    before committing a batch to the fused path; on failure the batch
    falls back to the :meth:`~repro.fusion.strategies.Strategy.degraded`
    baseline instead of erroring mid-request.  Two things can refute a
    fused plan:

    * the overflow prover refutes the packing plan for some fusable
      GEMM's reduction depth (:class:`~repro.errors.OverflowBudgetError`
      with a concrete witness), or
    * lowering the Tensor:CUDA split fails
      (:class:`~repro.errors.ScheduleError`; with ``pm.clamp_ratio``
      set, an inapplicable split *rule* degrades to m = 1 instead and
      is counted in ``pm.ratio_clamps``).

    Non-fused strategies pass trivially.  All probes land in the
    model's caches, so repeat preflights cost nothing.
    """
    if not strategy.is_fused:
        return
    from repro.analysis.overflow import preflight_gemm

    _install_proven_depths()
    work = workload if workload is not None else vit_workload(config, batch)
    gemm_strat = gemm_strategy_for(strategy)
    proven_depths: set[int] = set()
    for kw in work:
        if kw.kind != "gemm" or not kw.fusable or kw.gemm is None:
            continue
        if strategy.packing and kw.gemm.k not in proven_depths:
            proven_depths.add(kw.gemm.k)
            preflight_gemm(
                pm.policy,
                a_bits=pm.policy.effective_multiplier_bits,
                k=kw.gemm.k,
            )
        if gemm_strat.uses_tensor and gemm_strat.uses_cuda:
            pm.determine_tensor_cuda_ratio(kw.gemm, gemm_strat)


# -- timing ---------------------------------------------------------------------


@dataclass
class InferenceTiming:
    """Simulated end-to-end inference cost under one strategy."""

    strategy: str
    total_seconds: float
    gemm_seconds: float
    elementwise_seconds: float
    kernel_launches: int
    instructions: float
    issued: dict[OpClass, float] = field(default_factory=dict)
    per_kernel: list[tuple[str, float]] = field(default_factory=list)

    def seconds_for(self, prefix: str) -> float:
        """Total time of kernels whose name starts with ``prefix``."""
        return sum(s for name, s in self.per_kernel if name.startswith(prefix))

    def report(self) -> str:
        """Per-kernel timing breakdown as an ASCII table."""
        from repro.utils.tables import format_table

        rows = [
            (name, secs * 1e3, 100.0 * secs / self.total_seconds)
            for name, secs in sorted(
                self.per_kernel, key=lambda kv: kv[1], reverse=True
            )
        ]
        rows.append(("TOTAL", self.total_seconds * 1e3, 100.0))
        return format_table(
            ["kernel", "time (ms)", "% of inference"],
            rows,
            title=f"Inference breakdown — {self.strategy} "
            f"({self.kernel_launches} launches)",
        )


def time_inference(
    pm: PerformanceModel,
    strategy: Strategy,
    *,
    config: ViTConfig | None = None,
    batch: int = DEFAULT_BATCH,
    workload: list[KernelWork] | None = None,
) -> InferenceTiming:
    """Price one full inference under ``strategy`` on the simulated GPU."""
    work = workload if workload is not None else vit_workload(config, batch)
    if not work:
        raise ModelConfigError("empty workload")
    gemm_strat = gemm_strategy_for(strategy)
    cuda_strat = cuda_kernel_strategy_for(strategy)

    total = gemm_s = elem_s = 0.0
    launches = 0
    instructions = 0.0
    issued: dict[OpClass, float] = {}
    per_kernel: list[tuple[str, float]] = []
    for kw in work:
        if kw.kind == "gemm":
            strat = gemm_strat if kw.fusable else TC
            kt: KernelTiming = pm.time_gemm(kw.gemm, strat)
            gemm_s += kt.seconds * kw.repeat
        else:
            kt = pm.time_elementwise(kw.elementwise, kw.n_elements, cuda_strat)
            elem_s += kt.seconds * kw.repeat
        total += kt.seconds * kw.repeat
        launches += kw.repeat
        instructions += kt.instructions * kw.repeat
        for op, v in kt.issued.items():
            issued[op] = issued.get(op, 0.0) + v * kw.repeat
        per_kernel.append((kw.name, kt.seconds * kw.repeat))

    return InferenceTiming(
        strategy=strategy.name,
        total_seconds=total,
        gemm_seconds=gemm_s,
        elementwise_seconds=elem_s,
        kernel_launches=launches,
        instructions=instructions,
        issued=issued,
        per_kernel=per_kernel,
    )
