"""Integer-only ViT-Base (the paper's evaluation workload, Table 2).

The model follows I-ViT's computation rules (Li & Gu, ICCV 2023), which
the paper adopts: int8 symmetric weights, uint8 zero-point activations,
dyadic requantization, and shift-based Softmax/GeLU/LayerNorm — no
floating point anywhere on the inference path.  Weights are synthetic
(seeded random with calibrated scales); the paper's accuracy result
("no loss from VitBit") maps to the strongest checkable form here:
**bit-exactness** of packed/fused inference against the plain integer
reference, verified by :func:`repro.vit.runtime.verify_bit_exact`.

* :mod:`repro.vit.config` — hyperparameters (ViT-Base + test-size configs);
* :mod:`repro.vit.layers` — integer layers over a pluggable GEMM executor;
* :mod:`repro.vit.model` — the full IntViT;
* :mod:`repro.vit.workload` — the per-inference kernel inventory the
  performance model prices (Figs. 5-10);
* :mod:`repro.vit.runtime` — functional execution under a Table 3
  strategy + simulated end-to-end timing.
"""

from repro.vit.config import ViTConfig
from repro.vit.layers import GemmExecutor, IntLinear
from repro.vit.model import IntViT
from repro.vit.workload import KernelWork, vit_workload
from repro.vit.runtime import (
    InferenceTiming,
    preflight_strategy,
    run_inference,
    time_inference,
    verify_bit_exact,
)

__all__ = [
    "ViTConfig",
    "GemmExecutor",
    "IntLinear",
    "IntViT",
    "KernelWork",
    "vit_workload",
    "InferenceTiming",
    "run_inference",
    "time_inference",
    "preflight_strategy",
    "verify_bit_exact",
]
