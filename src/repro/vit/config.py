"""ViT model hyperparameters.

:func:`ViTConfig.vit_base` is the paper's workload (Table 2): ViT-Base,
224x224 images, patch 16 → 197 tokens, 12 layers of hidden 768 with 12
heads and a 3072-wide MLP.  :func:`ViTConfig.test_tiny` is a structurally
identical miniature for fast functional tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelConfigError

__all__ = ["ViTConfig"]


@dataclass(frozen=True)
class ViTConfig:
    """Integer-only Vision Transformer hyperparameters."""

    image_size: int = 224
    patch_size: int = 16
    in_channels: int = 3
    hidden: int = 768
    depth: int = 12
    heads: int = 12
    mlp_dim: int = 3072
    num_classes: int = 1000
    #: fixed-point fraction bits used by the shift-based kernels
    fraction_bits: int = 10
    #: stored-activation bitwidth (unsigned with a zero point); 8 is
    #: the paper's evaluated format, lower widths pack more lanes
    activation_bits: int = 8
    #: weight bitwidth (signed symmetric)
    weight_bits: int = 8

    def __post_init__(self) -> None:
        if self.image_size % self.patch_size:
            raise ModelConfigError(
                f"image size {self.image_size} is not a multiple of patch "
                f"size {self.patch_size}"
            )
        if self.hidden % self.heads:
            raise ModelConfigError(
                f"hidden {self.hidden} is not divisible by {self.heads} heads"
            )
        for name in ("hidden", "depth", "heads", "mlp_dim", "num_classes"):
            if getattr(self, name) < 1:
                raise ModelConfigError(f"{name} must be >= 1")
        if not 2 <= self.activation_bits <= 8:
            raise ModelConfigError("activation_bits must be in 2..8")
        if not 2 <= self.weight_bits <= 8:
            raise ModelConfigError("weight_bits must be in 2..8")

    @property
    def activation_zero_point(self) -> int:
        """Zero point of stored activations (semantic = stored - zp)."""
        return 1 << (self.activation_bits - 1)

    @property
    def activation_max(self) -> int:
        """Largest stored activation value (2**bits - 1)."""
        return (1 << self.activation_bits) - 1

    @property
    def weight_bound(self) -> int:
        """Symmetric weight magnitude bound (2**(bits-1) - 1)."""
        return (1 << (self.weight_bits - 1)) - 1

    @property
    def patches(self) -> int:
        """Patch count per image (196 for ViT-Base)."""
        return (self.image_size // self.patch_size) ** 2

    @property
    def tokens(self) -> int:
        """Sequence length including the class token (197 for ViT-Base)."""
        return self.patches + 1

    @property
    def head_dim(self) -> int:
        """Per-head feature width (64 for ViT-Base)."""
        return self.hidden // self.heads

    @property
    def patch_dim(self) -> int:
        """Flattened patch input width (768 for ViT-Base)."""
        return self.in_channels * self.patch_size * self.patch_size

    @staticmethod
    def vit_base() -> "ViTConfig":
        """The paper's workload: ViT-Base on 224x224 inputs."""
        return ViTConfig()

    @staticmethod
    def test_tiny() -> "ViTConfig":
        """A miniature for tests: 2 layers, hidden 32, 17 tokens."""
        return ViTConfig(
            image_size=64,
            patch_size=16,
            hidden=32,
            depth=2,
            heads=2,
            mlp_dim=64,
            num_classes=10,
        )
