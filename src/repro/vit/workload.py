"""The per-inference kernel inventory (what Figs. 5-10 price).

One ViT inference is a fixed sequence of kernel launches; this module
enumerates them with their shapes so the performance model can price
each under a Table 3 strategy.  Batched per-head GEMMs (attention
scores/context) fold their batch into the column axis — the batched-N
layout the real batched-GEMM kernels use, and the axis Algorithm 1
splits.

The default batch size is 8: the paper does not state one, and at
batch 1 the weight streams dominate DRAM so every strategy is
memory-bound on our LPDDR5 model; batch 8 puts the GEMMs in the
compute-bound regime the paper's measurements imply (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelConfigError
from repro.perfmodel.descriptors import ELEMENTWISE_KERNELS, GemmShape
from repro.vit.config import ViTConfig

__all__ = ["KernelWork", "vit_workload", "DEFAULT_BATCH"]

DEFAULT_BATCH = 8


@dataclass(frozen=True)
class KernelWork:
    """One kernel launch in the inference stream.

    ``kind`` is ``"gemm"`` or ``"elementwise"``; exactly one of
    ``gemm``/``elementwise`` is set.  ``scope`` mirrors Table 3's
    labels: ``"T"`` for Tensor-core kernels, ``"C"`` for CUDA-core
    kernels.  ``repeat`` counts identical launches (e.g. per block).

    ``fusable`` marks GEMMs the kernel-reconstruction step rewrites.
    The paper's reconstruction targets the *Linear* kernels (Fig. 6);
    the batched per-head attention matmuls and the classifier head are
    small/memory-bound shapes where splitting off an FP32 slice only
    adds traffic, so they stay on Tensor cores under every strategy.
    """

    name: str
    kind: str
    scope: str
    gemm: GemmShape | None = None
    elementwise: str | None = None
    n_elements: int = 0
    repeat: int = 1
    fusable: bool = True

    def __post_init__(self) -> None:
        if self.kind == "gemm":
            if self.gemm is None or self.elementwise is not None:
                raise ModelConfigError(f"GEMM work {self.name!r} needs a shape only")
        elif self.kind == "elementwise":
            if self.elementwise is None or self.n_elements < 1:
                raise ModelConfigError(
                    f"elementwise work {self.name!r} needs a kernel and size"
                )
            if self.elementwise not in ELEMENTWISE_KERNELS:
                raise ModelConfigError(
                    f"unknown elementwise kernel {self.elementwise!r}"
                )
        else:
            raise ModelConfigError(f"unknown kind {self.kind!r}")
        if self.repeat < 1:
            raise ModelConfigError("repeat must be >= 1")


def vit_workload(
    config: ViTConfig | None = None, batch: int = DEFAULT_BATCH
) -> list[KernelWork]:
    """All kernel launches of one ViT inference, in execution order."""
    cfg = config if config is not None else ViTConfig.vit_base()
    if batch < 1:
        raise ModelConfigError(f"batch must be >= 1, got {batch}")
    t, h, d = cfg.tokens, cfg.hidden, cfg.head_dim
    n = t * batch
    seq = h * n  # elements of one (hidden, tokens*batch) activation
    work: list[KernelWork] = []

    work.append(
        KernelWork(
            "patch_embed",
            "gemm",
            "T",
            gemm=GemmShape(h, cfg.patches * batch, cfg.patch_dim, name="patch_embed"),
        )
    )

    blocks = cfg.depth
    work += [
        KernelWork("ln1", "elementwise", "C", elementwise="layernorm",
                   n_elements=seq, repeat=blocks),
        KernelWork("qkv", "gemm", "T", repeat=blocks,
                   gemm=GemmShape(3 * h, n, h, name="qkv")),
        KernelWork("attn_scores", "gemm", "T", repeat=blocks, fusable=False,
                   gemm=GemmShape(t, t * cfg.heads * batch, d, name="attn_scores")),
        KernelWork("softmax", "elementwise", "C", elementwise="softmax",
                   n_elements=cfg.heads * t * t * batch, repeat=blocks),
        KernelWork("attn_context", "gemm", "T", repeat=blocks, fusable=False,
                   gemm=GemmShape(d, t * cfg.heads * batch, t, name="attn_context")),
        KernelWork("proj", "gemm", "T", repeat=blocks,
                   gemm=GemmShape(h, n, h, name="proj")),
        KernelWork("attn_dropout", "elementwise", "C", elementwise="dropout",
                   n_elements=seq, repeat=blocks),
        KernelWork("residual1", "elementwise", "C", elementwise="residual",
                   n_elements=seq, repeat=blocks),
        KernelWork("ln2", "elementwise", "C", elementwise="layernorm",
                   n_elements=seq, repeat=blocks),
        KernelWork("fc1", "gemm", "T", repeat=blocks,
                   gemm=GemmShape(cfg.mlp_dim, n, h, name="fc1")),
        KernelWork("gelu", "elementwise", "C", elementwise="gelu",
                   n_elements=cfg.mlp_dim * n, repeat=blocks),
        KernelWork("fc2", "gemm", "T", repeat=blocks,
                   gemm=GemmShape(h, n, cfg.mlp_dim, name="fc2")),
        KernelWork("mlp_dropout", "elementwise", "C", elementwise="dropout",
                   n_elements=seq, repeat=blocks),
        KernelWork("residual2", "elementwise", "C", elementwise="residual",
                   n_elements=seq, repeat=blocks),
        KernelWork("requant", "elementwise", "C", elementwise="requantize",
                   n_elements=seq, repeat=2 * blocks),
    ]

    work.append(
        KernelWork("head_ln", "elementwise", "C", elementwise="layernorm",
                   n_elements=seq)
    )
    work.append(
        KernelWork(
            "head", "gemm", "T", fusable=False,
            gemm=GemmShape(cfg.num_classes, batch, h, name="head"),
        )
    )
    return work
