"""The integer-only Vision Transformer.

Structure follows Dosovitskiy et al.'s ViT with pre-LayerNorm blocks;
all arithmetic follows I-ViT's integer-only rules via the kernels in
:mod:`repro.kernels.elementwise`.  Weights are synthetic: seeded int8
values with dyadic requantization scales chosen so activations occupy
their int8 range without saturating (the "calibration" a real
deployment derives from data).  This substitutes for the Hugging Face
pretrained checkpoint per DESIGN.md — every code path (shapes, ranges,
packing, fusion) matches the real model; only the parameter values are
synthetic, which is irrelevant to the bit-exactness and performance
questions the reproduction answers.

Data layout: activations are stored-uint8 matrices ``(features, N)``
with ``N = tokens * batch`` — the B-matrix orientation of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale, dyadic_approximate
from repro.kernels.elementwise import i_layernorm, requantize, residual_add, shiftgelu, shiftmax
from repro.utils.rng import make_rng
from repro.vit.config import ViTConfig
from repro.vit.layers import GemmExecutor, IntLinear

__all__ = ["IntViT"]


def _synthetic_linear(
    rng: np.random.Generator,
    out_features: int,
    in_features: int,
    cfg: ViTConfig,
) -> IntLinear:
    """A linear layer with range-preserving synthetic quantized weights.

    With centered activations of std ~``zp/2`` and symmetric weights of
    std ~``w_bound/2``, the accumulator std is ~``(zp * w_bound / 4) *
    sqrt(K)``; the dyadic scale maps ~2.5 sigma back to the activation
    bound, so every layer's output occupies its integer range without
    saturating — the property a real calibration run establishes.
    """
    wb = cfg.weight_bound
    zp = cfg.activation_zero_point
    w = rng.integers(-wb, wb + 1, size=(out_features, in_features), dtype=np.int64)
    bias = rng.integers(-(zp * 8), zp * 8, size=out_features, dtype=np.int64)
    acc_sigma = (zp * wb / 4.0) * np.sqrt(in_features)
    scale = dyadic_approximate((zp - 1) / (2.5 * acc_sigma))
    return IntLinear(
        weight=w, bias=bias, out_scale=scale, zero_point=zp, out_bound=zp - 1
    )


@dataclass
class _Block:
    """One transformer encoder block's parameters."""

    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    qkv: IntLinear
    proj: IntLinear
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray
    fc1: IntLinear
    fc2: IntLinear
    attn_scale: DyadicScale
    ctx_scale: DyadicScale
    gelu_in_scale: DyadicScale
    gelu_out_scale: DyadicScale
    ln_out_scale: DyadicScale


@dataclass
class IntViT:
    """Integer-only ViT (see module docstring).

    Build with :meth:`IntViT.create`; run with :meth:`forward` under a
    :class:`~repro.vit.layers.GemmExecutor`.
    """

    config: ViTConfig
    patch_embed: IntLinear
    cls_token: np.ndarray
    pos_embed: np.ndarray
    blocks: list[_Block]
    head_ln_gamma: np.ndarray
    head_ln_beta: np.ndarray
    head: IntLinear
    trace: dict = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @staticmethod
    def create(config: ViTConfig | None = None, seed: int | None = None) -> "IntViT":
        """Build a model with synthetic calibrated weights."""
        cfg = config if config is not None else ViTConfig.vit_base()
        rng = make_rng(seed)
        zp = cfg.activation_zero_point
        f = cfg.fraction_bits
        one = np.int64(1) << np.int64(f)

        def ln_params(width: int) -> tuple[np.ndarray, np.ndarray]:
            gamma = rng.integers(int(0.8 * one), int(1.2 * one), size=width, dtype=np.int64)
            beta = rng.integers(-(1 << (f - 3)), 1 << (f - 3), size=width, dtype=np.int64)
            return gamma, beta

        bound = zp - 1  # symmetric activation magnitude bound
        sigma_act = zp / 2.0
        sigma_w = cfg.weight_bound / 2.0
        prob_total = 1 << cfg.activation_bits  # shiftmax output scale
        blocks = []
        for _ in range(cfg.depth):
            hg1, hb1 = ln_params(cfg.hidden)
            hg2, hb2 = ln_params(cfg.hidden)
            blocks.append(
                _Block(
                    ln1_gamma=hg1,
                    ln1_beta=hb1,
                    qkv=_synthetic_linear(rng, 3 * cfg.hidden, cfg.hidden, cfg),
                    proj=_synthetic_linear(rng, cfg.hidden, cfg.hidden, cfg),
                    ln2_gamma=hg2,
                    ln2_beta=hb2,
                    fc1=_synthetic_linear(rng, cfg.mlp_dim, cfg.hidden, cfg),
                    fc2=_synthetic_linear(rng, cfg.hidden, cfg.mlp_dim, cfg),
                    # scores ~ sigma_act^2 * sqrt(d); map ~2 sigma to +-4
                    # fixed-point units so shiftmax sees usable range.
                    attn_scale=dyadic_approximate(
                        4.0 * (1 << f)
                        / (2.0 * sigma_act * sigma_act * np.sqrt(cfg.head_dim))
                    ),
                    # context = V (act range) @ probs (sum ~ prob_total)
                    ctx_scale=dyadic_approximate(
                        bound / (2.0 * sigma_act * prob_total)
                    ),
                    gelu_in_scale=dyadic_approximate(
                        4.0 * (1 << f)
                        / (2.5 * sigma_act * sigma_w * np.sqrt(cfg.hidden))
                    ),
                    gelu_out_scale=dyadic_approximate(bound / (4.0 * (1 << f))),
                    ln_out_scale=dyadic_approximate(bound / (3.0 * (1 << f))),
                )
            )
        hg, hb = ln_params(cfg.hidden)
        return IntViT(
            config=cfg,
            patch_embed=_synthetic_linear(rng, cfg.hidden, cfg.patch_dim, cfg),
            cls_token=rng.integers(
                0, cfg.activation_max + 1, size=(cfg.hidden, 1), dtype=np.int64
            ),
            pos_embed=rng.integers(
                -max(1, zp // 8), max(2, zp // 8),
                size=(cfg.hidden, cfg.tokens), dtype=np.int64,
            ),
            blocks=blocks,
            head_ln_gamma=hg,
            head_ln_beta=hb,
            head=_synthetic_linear(rng, cfg.num_classes, cfg.hidden, cfg),
        )

    # -- helpers ----------------------------------------------------------------

    def _layernorm(
        self, x_stored: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
        out_scale: DyadicScale,
    ) -> np.ndarray:
        """LN over the feature axis of (features, N) stored activations."""
        cfg = self.config
        bound = cfg.activation_zero_point - 1
        centered = np.asarray(x_stored, dtype=np.int64) - cfg.activation_zero_point
        normed = i_layernorm(
            centered.T, gamma, beta, fraction_bits=cfg.fraction_bits
        ).T
        out = requantize(normed, out_scale, out_min=-bound, out_max=bound)
        return out + cfg.activation_zero_point

    def _attention(
        self, x_stored: np.ndarray, blk: _Block, executor: GemmExecutor, batch: int
    ) -> np.ndarray:
        cfg = self.config
        zp = cfg.activation_zero_point
        qkv = blk.qkv.forward(x_stored, executor)  # (3h, N)
        h, n = cfg.hidden, x_stored.shape[1]
        q, k, v = qkv[:h], qkv[h : 2 * h], qkv[2 * h :]
        d = cfg.head_dim
        out = np.empty((h, n), dtype=np.int64)
        tokens = cfg.tokens
        for b in range(batch):
            cols = slice(b * tokens, (b + 1) * tokens)
            for head in range(cfg.heads):
                rows = slice(head * d, (head + 1) * d)
                q_c = q[rows, cols] - zp  # centered (d, T)
                # scores (T, T) = q_c^T @ (k_stored - zp)
                scores = executor.gemm(
                    np.ascontiguousarray(q_c.T), k[rows, cols], b_zero_point=zp
                )
                scores_fp = blk.attn_scale.apply(scores)
                probs = shiftmax(
                    scores_fp,
                    fraction_bits=cfg.fraction_bits,
                    out_bits=cfg.activation_bits,
                    axis=-1,
                )
                # stored unsigned, zero point 0 (probabilities are >= 0)
                probs = np.minimum(probs, cfg.activation_max)
                # context (d, T) = (v - zp) @ probs^T columns
                v_c = v[rows, cols] - zp
                ctx = executor.gemm(v_c, probs.T, b_zero_point=None)
                ctx_q = requantize(
                    ctx, blk.ctx_scale, out_min=-(zp - 1), out_max=zp - 1
                )
                out[rows, cols] = ctx_q + zp
        return blk.proj.forward(out, executor)

    def _mlp(self, x_stored: np.ndarray, blk: _Block, executor: GemmExecutor) -> np.ndarray:
        cfg = self.config
        zp = cfg.activation_zero_point
        acc = executor.gemm(blk.fc1.weight, x_stored, b_zero_point=zp)
        acc = acc + blk.fc1.bias[:, None]
        pre = blk.gelu_in_scale.apply(acc)  # fixed point, F fraction bits
        act = shiftgelu(pre, fraction_bits=cfg.fraction_bits)
        stored = requantize(
            act, blk.gelu_out_scale, out_min=-(zp - 1), out_max=zp - 1
        ) + zp
        return blk.fc2.forward(stored, executor)

    def _residual(self, a_stored: np.ndarray, b_stored: np.ndarray) -> np.ndarray:
        zp = self.config.activation_zero_point
        total = residual_add(
            np.asarray(a_stored, dtype=np.int64) - zp,
            np.asarray(b_stored, dtype=np.int64) - zp,
        )
        return np.clip(total, -(zp - 1), zp - 1) + zp

    # -- inference ---------------------------------------------------------------

    def forward(self, images: np.ndarray, executor: GemmExecutor) -> np.ndarray:
        """Integer inference.

        ``images`` is uint8 (batch, channels, H, W).  Returns int64
        logits of shape (num_classes, batch) — the head applied to each
        image's class-token column.
        """
        cfg = self.config
        imgs = np.asarray(images)
        if imgs.ndim != 4 or imgs.shape[1:] != (
            cfg.in_channels,
            cfg.image_size,
            cfg.image_size,
        ):
            raise ModelConfigError(
                f"expected images of shape (B, {cfg.in_channels}, "
                f"{cfg.image_size}, {cfg.image_size}), got {imgs.shape}"
            )
        if imgs.min() < 0 or imgs.max() > 255:
            raise ModelConfigError("images must be uint8-range")
        batch = imgs.shape[0]
        p = cfg.patch_size
        side = cfg.image_size // p

        # Patchify to (patch_dim, patches * batch), batch-major columns.
        cols = []
        for b in range(batch):
            img = imgs[b]
            patches = (
                img.reshape(cfg.in_channels, side, p, side, p)
                .transpose(1, 3, 0, 2, 4)
                .reshape(cfg.patches, cfg.patch_dim)
            )
            cols.append(patches.T)
        x = np.concatenate(cols, axis=1).astype(np.int64)
        # Quantize 8-bit pixels into the activation bitwidth (identity
        # for the paper's int8 configuration).
        if cfg.activation_bits < 8:
            x = x >> np.int64(8 - cfg.activation_bits)

        # Embed patches, prepend the class token, add position embeddings.
        zp = cfg.activation_zero_point
        emb = self.patch_embed.forward(x, executor)  # (hidden, patches*batch)
        tokens = []
        for b in range(batch):
            sl = emb[:, b * cfg.patches : (b + 1) * cfg.patches]
            tok = np.concatenate([self.cls_token, sl], axis=1) + self.pos_embed
            tokens.append(np.clip(tok, 0, cfg.activation_max))
        x = np.concatenate(tokens, axis=1)  # (hidden, tokens*batch)

        self.trace["block_ranges"] = []
        zp_f = float(zp)
        for blk in self.blocks:
            normed = self._layernorm(x, blk.ln1_gamma, blk.ln1_beta, blk.ln_out_scale)
            x = self._residual(x, self._attention(normed, blk, executor, batch))
            normed = self._layernorm(x, blk.ln2_gamma, blk.ln2_beta, blk.ln_out_scale)
            x = self._residual(x, self._mlp(normed, blk, executor))
            # Calibration telemetry: how much of the integer range each
            # block's activations occupy, and how hard they saturate.
            centered = x - zp
            bound = zp - 1
            self.trace["block_ranges"].append(
                {
                    "min": int(centered.min()),
                    "max": int(centered.max()),
                    "rms_fraction": float(
                        np.sqrt(np.mean((centered / zp_f) ** 2))
                    ),
                    "saturated_fraction": float(
                        np.mean(np.abs(centered) >= bound)
                    ),
                }
            )

        x = self._layernorm(x, self.head_ln_gamma, self.head_ln_beta,
                            self.blocks[-1].ln_out_scale if self.blocks else
                            dyadic_approximate(127 / (3.0 * (1 << cfg.fraction_bits))))
        cls_cols = x[:, [b * cfg.tokens for b in range(batch)]]  # (hidden, batch)
        logits = executor.gemm(self.head.weight, cls_cols, b_zero_point=zp)
        return logits + self.head.bias[:, None]
