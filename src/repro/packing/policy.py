"""The VitBit packing policy (Fig. 3 of the paper).

Given the bitwidth ``b`` of the integer operands, the policy decides how
many values share one 32-bit register and how wide each *field* (lane
slot) is, such that a full ``b x b`` product fits its field and carries
can never cross into the neighbouring lane:

========  =====  ==========  =================================
bitwidth  lanes  field bits  paper reference
========  =====  ==========  =================================
9..32       1        32      Fig. 3(a) — plain zero-masking
6..8        2        16      Fig. 3(b) — outputs 12..16 bits
5           3        10      Fig. 3(c) — outputs up to 10 bits
1..4        4         8      Fig. 3(d) — outputs up to 8 bits
========  =====  ==========  =================================

The general rule is ``lanes = floor(register_bits / (2 * b))`` clamped to
at least 1, with fields spread to use the whole register (wider fields
buy *guard bits* for dot-product accumulation; see
:mod:`repro.packing.accumulate`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FormatError, PackingError

__all__ = ["PackingPolicy", "policy_for_bitwidth", "max_lanes_for_bitwidth"]


@dataclass(frozen=True)
class PackingPolicy:
    """How operands of ``value_bits`` bits are packed into a register.

    Attributes
    ----------
    value_bits:
        Magnitude bitwidth of each packed operand (operands must satisfy
        ``0 <= v < 2**value_bits``; signedness is handled a level up by
        sign-splitting / zero-point offsetting).
    lanes:
        Number of operands per register.
    field_bits:
        Distance in bits between consecutive lane origins.  Must hold a
        full ``multiplier_bits x value_bits`` product whenever
        ``lanes > 1``.
    register_bits:
        Physical register width (32 on the target GPU).
    multiplier_bits:
        Magnitude bitwidth of the *unpacked* multiplier stream;
        defaults to ``value_bits`` (Fig. 3's symmetric case).  Mixed
        pairs (e.g. 4-bit weights x 8-bit activations) come from
        :func:`repro.packing.mixed.policy_for_operands`.
    """

    value_bits: int
    lanes: int
    field_bits: int
    register_bits: int = 32
    multiplier_bits: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.value_bits <= self.register_bits:
            raise FormatError(
                f"value_bits must be in 1..{self.register_bits}, got {self.value_bits}"
            )
        if self.lanes < 1:
            raise FormatError(f"lanes must be >= 1, got {self.lanes}")
        if self.lanes * self.field_bits > self.register_bits:
            raise FormatError(
                f"{self.lanes} lanes x {self.field_bits} bits exceed a "
                f"{self.register_bits}-bit register"
            )
        if self.field_bits < self.value_bits:
            raise FormatError(
                f"field of {self.field_bits} bits cannot hold {self.value_bits}-bit values"
            )
        mbits = self.effective_multiplier_bits
        if not 1 <= mbits <= self.register_bits:
            raise FormatError(
                f"multiplier_bits must be in 1..{self.register_bits}, got {mbits}"
            )
        if self.lanes > 1:
            # Exact fit test: the sum-of-widths bound is conservative when
            # either operand is 1 bit wide ((2**a - 1) * (2**b - 1) needs
            # a + b - 1 bits then), and those are exactly the layouts the
            # policy search wants to admit.
            product_width = (
                ((1 << mbits) - 1) * ((1 << self.value_bits) - 1)
            ).bit_length()
            if product_width > self.field_bits:
                raise FormatError(
                    f"field of {self.field_bits} bits cannot hold a "
                    f"{mbits}x{self.value_bits}-bit product "
                    f"({product_width} bits); carries would cross lanes"
                )

    @property
    def effective_multiplier_bits(self) -> int:
        """Multiplier magnitude width (``value_bits`` unless overridden)."""
        return (
            self.multiplier_bits if self.multiplier_bits is not None else self.value_bits
        )

    # -- derived quantities ------------------------------------------------

    @property
    def value_mask(self) -> int:
        """Mask selecting one operand's bits."""
        return (1 << self.value_bits) - 1

    @property
    def field_mask(self) -> int:
        """Mask selecting one full field."""
        return (1 << self.field_bits) - 1

    @property
    def max_value(self) -> int:
        """Largest packable operand value."""
        return self.value_mask

    @property
    def product_bits(self) -> int:
        """Bits of a worst-case lane product."""
        if self.lanes > 1:
            return self.effective_multiplier_bits + self.value_bits
        return self.register_bits

    @property
    def shift_amounts(self) -> tuple[int, ...]:
        """Left-shift for each lane (lane 0 in the least-significant field)."""
        return tuple(i * self.field_bits for i in range(self.lanes))

    def registers_needed(self, count: int) -> int:
        """Registers required to hold ``count`` operands."""
        if count < 0:
            raise PackingError(f"count must be >= 0, got {count}")
        return -(-count // self.lanes)

    def bit_utilization(self) -> float:
        """Fraction of register bits carrying operand payload.

        This is the "bit-level utilization of registers" the paper says
        packing improves (Sec. 3.2): e.g. int8 goes from 8/32 = 0.25
        unpacked to 16/32 = 0.5 with two lanes.
        """
        return (self.lanes * self.value_bits) / self.register_bits

    def with_lanes(self, lanes: int) -> "PackingPolicy":
        """A policy for the same bitwidth but a different lane count.

        Fields are spread evenly over the register.  Raises
        :class:`~repro.errors.FormatError` when products would not fit.
        """
        field = self.register_bits // lanes
        return PackingPolicy(
            value_bits=self.value_bits,
            lanes=lanes,
            field_bits=field,
            register_bits=self.register_bits,
            multiplier_bits=self.multiplier_bits,
        )


def max_lanes_for_bitwidth(bits: int, register_bits: int = 32) -> int:
    """Maximum carry-safe lanes for ``bits``-bit operands (uncapped rule)."""
    if not 1 <= bits <= register_bits:
        raise FormatError(f"bits must be in 1..{register_bits}, got {bits}")
    return max(1, register_bits // (2 * bits))


def policy_for_bitwidth(
    bits: int, register_bits: int = 32, *, cap_lanes: int | None = 4
) -> PackingPolicy:
    """The Fig. 3 policy for operands of ``bits`` bits.

    The paper's figure stops at 4 values per register even for sub-4-bit
    operands, so ``cap_lanes`` defaults to 4; pass ``None`` to let 2-bit
    operands pack 8-wide (an extension we explore in the ablations).

    >>> policy_for_bitwidth(8).lanes, policy_for_bitwidth(8).field_bits
    (2, 16)
    >>> policy_for_bitwidth(5).lanes, policy_for_bitwidth(5).field_bits
    (3, 10)
    >>> policy_for_bitwidth(4).lanes
    4
    >>> policy_for_bitwidth(9).lanes
    1
    >>> policy_for_bitwidth(2, cap_lanes=None).lanes
    8
    """
    lanes = max_lanes_for_bitwidth(bits, register_bits)
    if cap_lanes is not None:
        if cap_lanes < 1:
            raise FormatError(f"cap_lanes must be >= 1, got {cap_lanes}")
        lanes = min(lanes, cap_lanes)
    field = register_bits // lanes
    return PackingPolicy(
        value_bits=bits, lanes=lanes, field_bits=field, register_bits=register_bits
    )
