"""Packed GEMM — one INT32 multiply computes ``lanes`` output columns.

This is the computation of Fig. 4: the INT pipe multiplies an unpacked
scalar from matrix A against a packed register holding ``lanes``
adjacent columns of matrix B, and accumulates packed partial sums, so
the INT instruction count of the GEMM drops by the packing factor
(Eq. 1's premise, and the source of the Fig. 9 instruction reduction).

Exactness
---------
Zero-padded SWAR is carry-safe only for non-negative lane values, so:

* **unsigned path** (:func:`packed_gemm_unsigned`) — A and B must be
  non-negative; this is the kernel the paper's figures describe.
* **signed path** (:func:`packed_gemm`) — signed A is *sign-split* into
  ``A = A_pos - A_neg`` (two unsigned packed GEMMs, subtracted after
  unpacking); signed B is *offset* by its zero-point and corrected with
  one rank-1 term ``offset * rowsum(A)`` — the standard zero-point
  correction of production INT8 inference.  Both transformations are
  exact in integer arithmetic; their instruction cost is surfaced in
  :class:`PackedGemmStats` so the ablation benchmarks can price them.

Accumulation overflow is handled by chunking the K loop at the
guard-bit-safe depth and spilling to wide accumulators (see
:mod:`repro.packing.accumulate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import PackingError
from repro.packing.accumulate import safe_accumulation_depth
from repro.packing.packer import Packer
from repro.packing.policy import PackingPolicy
from repro.utils.bitops import bit_length_unsigned
from repro.utils.validation import check_dtype_integer, check_shape_2d

__all__ = [
    "PackedGemmStats",
    "reference_gemm",
    "packed_gemm_unsigned",
    "packed_gemm",
]

#: Lane-IR emission sink, installed by ``repro.analysis.laneir.capture``
#: (``None`` outside a capture).  The chunked method performs its packed
#: arithmetic as blocked int64 matmuls rather than per-step SWAR calls,
#: so it emits the equivalent compact loop-form chain program here.
_IR_SINK = None


@dataclass
class PackedGemmStats:
    """Instruction-level accounting of one packed GEMM.

    ``packed_multiplies`` counts IMAD-equivalents issued on the INT pipe;
    an unpacked GEMM of the same shape would issue
    ``packed_multiplies * lanes`` of them.  ``spills`` counts packed ->
    wide accumulator transfers; ``sign_split_passes`` is 2 when signed A
    forced two unsigned passes, else 1.  ``pack_instructions`` counts
    the shift/OR instructions that build the packed B registers — B is
    packed *once* even when sign-splitting runs two compute passes over
    it, so this term is charged once per distinct B.
    """

    m: int = 0
    n: int = 0
    k: int = 0
    lanes: int = 1
    safe_depth: int = 0
    packed_multiplies: int = 0
    packed_adds: int = 0
    spills: int = 0
    pack_instructions: int = 0
    sign_split_passes: int = 1
    extra: dict = field(default_factory=dict)

    @property
    def unpacked_multiplies(self) -> int:
        """IMADs an unpacked (zero-masked) GEMM of this shape issues."""
        return self.m * self.n * self.k

    @property
    def instruction_reduction(self) -> float:
        """Unpacked / packed INT-pipe instruction ratio (Fig. 9's metric)."""
        issued = self.packed_multiplies + self.spills
        if issued == 0:
            return 1.0
        return self.unpacked_multiplies / issued


def reference_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain exact integer GEMM (int64) used as the correctness oracle.

    The accumulator dtype is forced to int64 at the ``matmul`` itself
    (not just via input promotion): on platforms whose default integer
    is 32-bit, promotion-based casting would let large-K high-bitwidth
    dot products wrap silently, corrupting every differential fuzz test
    that uses this as its oracle.
    """
    check_dtype_integer("a", a)
    check_dtype_integer("b", b)
    check_shape_2d("a", a)
    check_shape_2d("b", b)
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    return np.matmul(a64, b64, dtype=np.int64)


def _validate_shapes(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    check_shape_2d("a", a)
    check_shape_2d("b", b)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise PackingError(f"inner dimensions differ: a is {a.shape}, b is {b.shape}")
    return m, n, k


def packed_gemm_unsigned(
    a: np.ndarray,
    b: np.ndarray,
    policy: PackingPolicy,
    *,
    a_bits: int | None = None,
    stats: PackedGemmStats | None = None,
    method: str = "chunked",
    backend: str | None = None,
) -> np.ndarray:
    """Exact ``a @ b`` with B packed ``policy.lanes``-wide (both non-negative).

    ``a`` is (M, K) with entries in ``[0, 2**a_bits)`` (``a_bits``
    inferred from the data when omitted); ``b`` is (K, N) with entries in
    ``[0, 2**policy.value_bits)``.  Returns the exact (M, N) int64
    product.  When ``stats`` is given it is filled in place.
    ``backend`` names the compute-pass kernel backend (default: the
    ``REPRO_GEMM_BACKEND`` env var, then ``numpy_blocked``); every
    backend is bit-identical, so this only changes speed.

    ``method`` selects the evaluation of the same packed arithmetic:

    * ``"chunked"`` — hardware-faithful: the K loop runs in chunks of
      the guard-bit-safe depth; within a chunk the packed
      multiply-accumulate is an int64 matmul whose packed result is
      asserted to fit 32 bits — the exact condition under which the
      hardware IMAD sequence is exact.  Use this to *verify* packing.
    * ``"lane"`` — fast: B is packed into real registers, each lane's
      field is sliced back out and multiplied in one matmul per lane.
      Algebraically identical to ``"chunked"`` (property-tested), at
      full NumPy speed; used for whole-model inference.  The reported
      ``stats`` describe the equivalent hardware execution either way.
    """
    check_dtype_integer("a", a)
    check_dtype_integer("b", b)
    m, n, k = _validate_shapes(a, b)
    a64 = np.asarray(a, dtype=np.int64)
    if a64.size and int(a64.min()) < 0:
        raise PackingError(
            "packed_gemm_unsigned requires non-negative A; use packed_gemm "
            "for signed multipliers"
        )
    if k == 0:
        return _empty_k_result(m, n, k, policy, stats)
    if a_bits is None:
        a_bits = bit_length_unsigned(a64) if a64.size else 1
    packer, bp, depth = _prepare_b(
        np.asarray(b, dtype=np.int64), policy, a_bits=a_bits, k=k, stats=stats
    )
    return _packed_gemm_prepacked(
        a64, bp, packer, policy,
        n=n, depth=depth, stats=stats, method=method, backend=backend,
    )


def _empty_k_result(
    m: int,
    n: int,
    k: int,
    policy: PackingPolicy,
    stats: PackedGemmStats | None,
) -> np.ndarray:
    """The K=0 product: an empty sum is zero in every output cell.

    ``reference_gemm`` (NumPy matmul) returns ``zeros((M, N))`` for
    ``(M, 0) @ (0, N)``; the packed paths must agree — no register is
    packed and no instruction issues, so the stats stay at zero work.
    """
    if stats is not None:
        stats.m, stats.n, stats.k = m, n, k
        stats.lanes = policy.lanes
        stats.safe_depth = safe_accumulation_depth(
            policy, policy.effective_multiplier_bits, policy.value_bits
        )
    return np.zeros((m, n), dtype=np.int64)


def _prepare_b(
    b64: np.ndarray,
    policy: PackingPolicy,
    *,
    a_bits: int,
    k: int,
    stats: PackedGemmStats | None,
) -> tuple[Packer, np.ndarray, int]:
    """Pre-flight the chunked plan and pack B once.

    Returns ``(packer, packed_b, safe_depth)``; charges the one-time
    packing cost to ``stats``.  The sign-split path calls this once and
    reuses the packed B across both unsigned passes.
    """
    # Pre-flight: prove the chunked plan safe (or fail with a concrete
    # witness) before packing a single register.  Imported lazily —
    # repro.analysis depends on this package.
    from repro.analysis.dataflow import proven_chunk_depth
    from repro.analysis.overflow import preflight_gemm

    preflight_gemm(policy, a_bits=a_bits, k=k)
    packer = Packer(policy)
    bp_u32 = packer.pack(b64)  # (K, G)
    bp = bp_u32.astype(np.int64)
    if _IR_SINK is not None:
        _IR_SINK.alias(bp, bp_u32)
    # The spill cadence comes from the dataflow-proven safe-depth table
    # (cross-checked against the closed-form budget on every resolve).
    depth = proven_chunk_depth(policy, a_bits)
    if stats is not None:
        # One shift+OR pair per lane merged into each packed register.
        stats.pack_instructions += bp.size * 2 * (policy.lanes - 1)
    obs.counter(
        "pack_instructions_total",
        "shift/OR instructions spent building packed B registers",
    ).inc(bp.size * 2 * (policy.lanes - 1))
    return packer, bp, depth


def _packed_gemm_prepacked(
    a64: np.ndarray,
    bp: np.ndarray,
    packer: Packer,
    policy: PackingPolicy,
    *,
    n: int,
    depth: int,
    stats: PackedGemmStats | None,
    method: str,
    backend: str | None = None,
) -> np.ndarray:
    """One unsigned compute pass over an already-packed B.

    The numeric work is delegated to the selected kernel backend
    (:func:`repro.packing.backends.get_backend`); this function owns
    everything semantic around it — lane-IR emission, instruction
    accounting, and the ``stats`` contract — which is why every backend
    produces byte-identical stats.  ``spills`` has the closed form
    ``ceil(k / depth)`` for both methods: the chunked loop spills once
    per chunk, and the lane method reports the cost of the equivalent
    hardware execution.
    """
    if method not in ("chunked", "lane"):
        raise PackingError(f"unknown packed GEMM method {method!r}")
    # Imported lazily: repro.packing.backends imports sibling modules of
    # this package while repro.packing.__init__ is still initializing.
    from repro.packing.backends import get_backend

    m, k = a64.shape
    groups = bp.shape[1]

    if _IR_SINK is not None:
        a_lo = int(a64.min()) if a64.size else 0
        a_hi = int(a64.max()) if a64.size else 0
        _IR_SINK.event(
            "gemm_chain",
            policy=policy,
            a_range=(a_lo, a_hi),
            b=bp,
            k=k,
            chunk_depth=depth,
        )

    c = get_backend(backend).run(a64, bp, policy, n=n, depth=depth, method=method)
    spills = -(-k // depth)

    if stats is not None:
        stats.m, stats.n, stats.k = m, n, k
        stats.lanes = policy.lanes
        stats.safe_depth = depth
        stats.packed_multiplies += m * groups * k
        stats.packed_adds += m * groups * max(0, k - spills)
        stats.spills += m * groups * spills
    obs.counter(
        "packed_multiplies_total",
        "packed IMAD-equivalents issued on the INT pipe",
    ).inc(m * groups * k)
    obs.counter(
        "packed_spills_total",
        "packed-accumulator spills to wide accumulators",
    ).inc(m * groups * spills)
    return c


def packed_gemm(
    a: np.ndarray,
    b: np.ndarray,
    policy: PackingPolicy,
    *,
    b_zero_point: int | None = None,
    stats: PackedGemmStats | None = None,
    method: str = "chunked",
    backend: str | None = None,
) -> np.ndarray:
    """Exact ``a @ b`` for signed A and signed-or-unsigned B, using packing.

    * Signed ``a`` is sign-split into two non-negative passes.
    * Signed ``b`` must come with ``b_zero_point`` such that
      ``b + b_zero_point`` lies in ``[0, 2**policy.value_bits)``; the
      rank-1 correction ``b_zero_point * rowsum(a)`` restores exactness.
      Pass ``b_zero_point=None`` (default) for already-unsigned B.

    Returns the exact (M, N) int64 product; fills ``stats`` when given.
    """
    check_dtype_integer("a", a)
    check_dtype_integer("b", b)
    _validate_shapes(a, b)
    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)

    if b_zero_point is not None:
        if b_zero_point < 0:
            raise PackingError("b_zero_point must be non-negative")
        b_shift = b64 + b_zero_point
    else:
        b_shift = b64
    if b_shift.size and (
        int(b_shift.min()) < 0 or int(b_shift.max()) > policy.max_value
    ):
        if b_zero_point is None and int(b64.min()) < 0:
            # The actionable diagnosis: the caller passed signed B but no
            # zero point, which is the parameter that fixes it.
            suggested = -int(b64.min())
            raise PackingError(
                f"signed B (min {int(b64.min())}) requires b_zero_point: "
                f"pass b_zero_point={suggested} (= -B.min()) so that "
                f"B + b_zero_point lies in [0, {policy.max_value}] for "
                f"{policy.value_bits}-bit lanes; the rank-1 zero-point "
                "correction keeps the product exact"
            )
        raise PackingError(
            f"B (after zero-point offset {b_zero_point or 0}) must lie in "
            f"[0, {policy.max_value}] for {policy.value_bits}-bit lanes; "
            f"got range [{int(b_shift.min())}, {int(b_shift.max())}] — "
            "adjust b_zero_point or widen the packing policy"
        )

    negative = a64.size and int(a64.min()) < 0
    if negative:
        a_pos = np.maximum(a64, 0)
        a_neg = np.maximum(-a64, 0)
        a_bits = max(bit_length_unsigned(a_pos), bit_length_unsigned(a_neg))
        # B is identical across the two passes: preflight and pack it
        # once and reuse the packed registers (the packing cost is
        # charged once, matching what a real kernel would do).
        n = b_shift.shape[1]
        packer, bp, depth = _prepare_b(
            b_shift, policy, a_bits=a_bits, k=b_shift.shape[0], stats=stats
        )
        c = _packed_gemm_prepacked(
            a_pos, bp, packer, policy,
            n=n, depth=depth, stats=stats, method=method, backend=backend,
        ) - _packed_gemm_prepacked(
            a_neg, bp, packer, policy,
            n=n, depth=depth, stats=stats, method=method, backend=backend,
        )
        if stats is not None:
            stats.sign_split_passes = 2
    else:
        c = packed_gemm_unsigned(
            a64, b_shift, policy, stats=stats, method=method, backend=backend
        )
        if stats is not None:
            stats.sign_split_passes = 1

    if b_zero_point is not None:
        # Zero-point correction: sum_k a[i,k] * zp, identical per column.
        c = c - (a64.sum(axis=1, dtype=np.int64) * b_zero_point)[:, None]
        if stats is not None:
            stats.extra["zero_point_corrected"] = True
    return c
