"""Fully blocked NumPy backend for the packed GEMM compute pass.

The previous implementation walked Python loops per accumulation chunk
(``for start in range(0, k, depth)``) and per lane — for the 8-bit
ViT-Base shape that is 768 chunk iterations per pass.  This backend
evaluates the same packed arithmetic as whole-array operations:

* **lane fields once** — every lane of every packed register is sliced
  out in one broadcast shift/mask, giving a (K, G, lanes) field tensor;
* **one matmul** — the per-lane totals of *all* chunks are a single
  ``(M, K) @ (K, G*lanes)`` product, run through float64 BLAS when every
  partial sum provably stays below 2**53 (where float64 integer
  arithmetic is exact) and int64 matmul otherwise;
* **field-overflow screen** — the chunked (hardware-faithful) method is
  only allowed onto that fast path when a cheap upper bound proves that
  no lane field can overflow within any chunk, which is exactly the
  condition under which the old per-chunk loop's register check passes
  and its mask-only unpack is the identity.  Operands that violate
  their declared bitwidths fail the screen and take
  :func:`_chunked_emulation` — a batched replay of the per-chunk
  semantics (packed partial sums, 32-bit register check, mask-only
  unpack) that reproduces the old loop bit for bit, including the
  :class:`~repro.errors.OverflowBudgetError` and the lane contamination
  masking causes on out-of-range data.

Bit-identity with the loop implementation is fuzzed in
``tests/test_backends.py`` and ``tests/test_fuzz_gemm.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OverflowBudgetError
from repro.packing.backends import GemmBackend, register_backend

__all__ = ["NumpyBlockedBackend", "lane_fields"]

_REG_MAX = (1 << 32) - 1

#: Below this bound every integer (product or partial sum) is exactly
#: representable in float64, so BLAS dgemm computes the integer GEMM
#: exactly — and an order of magnitude faster than int64 matmul.
_FLOAT_EXACT = 1 << 53


def lane_fields(bp: np.ndarray, policy) -> np.ndarray:
    """Slice every lane field out of (..., G) packed registers at once.

    Returns an int64 array of shape ``bp.shape + (lanes,)`` holding each
    register's ``lanes`` field payloads (lane 0 = least significant).
    ``bp`` must hold non-negative register images (int64 or uint32).
    """
    shifts = np.array(policy.shift_amounts, dtype=np.int64)
    mask = np.int64(policy.field_mask)
    return (np.asarray(bp, dtype=np.int64)[..., None] >> shifts) & mask


def _exact_matmul(a64: np.ndarray, flat: np.ndarray, bound: int) -> np.ndarray:
    """``a64 @ flat`` with every partial sum bounded by ``bound``.

    ``bound`` must be a sound upper bound computed in exact (Python int)
    arithmetic.  Below 2**53 the float64 BLAS path is exact; otherwise
    int64 matmul gives the same modular semantics as the per-lane loops
    it replaces (int64 addition is associative mod 2**64, so any
    summation order yields identical wrapped values).
    """
    if bound < _FLOAT_EXACT:
        return (a64.astype(np.float64) @ flat.astype(np.float64)).astype(np.int64)
    return a64 @ flat


def _chunk_fields_safe(
    a64: np.ndarray, fields: np.ndarray, policy, depth: int, amax: int, fmax: int
) -> bool:
    """Can any lane field overflow within one accumulation chunk?

    Soundly over-approximates every chunk's per-lane sum with
    ``sum(max_m a[m,k] * max_g field[k,g,l])`` over the chunk's K slice.
    A ``True`` return proves the old per-chunk loop never masks anything
    away: each lane sum fits its field, so the packed chunk sum is at
    most ``sum_l field_mask << shift_l <= 2**32 - 1`` (the register
    check passes) and the unpacked fields equal the algebraic per-lane
    sums — the fast single-matmul path is bit-identical.
    """
    k = a64.shape[1]
    if k == 0 or a64.size == 0:
        return True
    mask = int(policy.field_mask)
    # Exact Python-int arithmetic: the trivial worst case amax * fmax per
    # product over one chunk.  Honest operands (within their declared
    # bitwidths) pass here because depth is the proven safe depth.
    if min(depth, k) * amax * fmax <= mask:
        return True
    if depth * amax * fmax >= 1 << 62:
        # The per-column bound below could itself overflow int64; send
        # these (deliberately absurd) operands to the exact emulation.
        return False
    amax_col = a64.max(axis=0)  # (K,)
    lanemax = fields.max(axis=1)  # (K, L)
    chunks = -(-k // depth)
    pad = chunks * depth - k
    if pad:
        amax_col = np.concatenate([amax_col, np.zeros(pad, dtype=np.int64)])
        lanemax = np.concatenate(
            [lanemax, np.zeros((pad, lanemax.shape[1]), dtype=np.int64)]
        )
    ub = (
        amax_col.reshape(chunks, depth, 1) * lanemax.reshape(chunks, depth, -1)
    ).sum(axis=1)
    return int(ub.max()) <= mask


def _chunked_emulation(
    a64: np.ndarray, bp: np.ndarray, policy, *, n: int, depth: int
) -> np.ndarray:
    """Bit-exact batched replay of the per-chunk hardware loop.

    Taken only when the field-overflow screen cannot prove the fast path
    safe (operands exceeding their declared bitwidths).  The chunk axis
    becomes a batch dimension of one stacked matmul — sliced into slabs
    to bound peak memory — and the register check and mask-only unpack
    run on whole slabs, reproducing the loop's results exactly:
    identical packed partial sums, the identical
    :class:`~repro.errors.OverflowBudgetError`, and the identical lane
    contamination that masking causes on out-of-range data.
    """
    m, k = a64.shape
    groups = bp.shape[1]
    lanes = policy.lanes
    chunks = -(-k // depth)
    pad = chunks * depth - k
    a_pad = np.pad(a64, ((0, 0), (0, pad)))
    b_pad = np.pad(bp, ((0, pad), (0, 0)))
    a_batched = a_pad.reshape(m, chunks, depth).transpose(1, 0, 2)  # (C, M, D)
    b_batched = b_pad.reshape(chunks, depth, groups)  # (C, D, G)

    shifts = np.array(policy.shift_amounts, dtype=np.uint64)
    mask = np.uint64(policy.field_mask)
    wide = np.zeros((m, groups, lanes), dtype=np.int64)
    # Slab the chunk axis so the (slab, M, G) intermediates stay small;
    # the slab count is O(total size / 2**22), not O(chunks).
    slab = max(1, (1 << 22) // max(1, m * groups))
    for start in range(0, chunks, slab):
        sums = a_batched[start : start + slab] @ b_batched[start : start + slab]
        if sums.size and int(sums.max()) > _REG_MAX:
            raise OverflowBudgetError(
                "packed partial sum exceeded the 32-bit register despite "
                "the guard-bit budget; operands violate their declared "
                "bitwidths"
            )
        fields = (
            sums.astype(np.uint32).astype(np.uint64)[..., None] >> shifts
        ) & mask
        wide += fields.astype(np.int64).sum(axis=0)
    return wide.reshape(m, groups * lanes)[:, :n]


class NumpyBlockedBackend(GemmBackend):
    """The default backend: blocked NumPy over the (chunk, lane) axes."""

    name = "numpy_blocked"

    def run(self, a64, bp, policy, *, n, depth, method):
        """Run the vectorized compute pass; see :class:`GemmBackend.run`."""
        m, k = a64.shape
        groups = bp.shape[1]
        lanes = policy.lanes
        fields = lane_fields(bp, policy)  # (K, G, L)

        amax = int(a64.max()) if a64.size else 0
        fmax = int(fields.max()) if fields.size else 0

        if method == "chunked" and not _chunk_fields_safe(
            a64, fields, policy, depth, amax, fmax
        ):
            return _chunked_emulation(a64, bp, policy, n=n, depth=depth)

        # Lane l of group g lands in column g*lanes + l, matching the
        # loop implementation's stack-then-reshape layout.
        flat = fields.reshape(k, groups * lanes)
        c = _exact_matmul(a64, flat, k * amax * fmax)
        return c[:, :n]


register_backend(NumpyBlockedBackend())
