"""Optional numba JIT backend for the packed GEMM compute pass.

The compute kernels below are written as nopython-compatible pure
Python over preallocated int64 arrays — explicit chunk/lane loops, no
NumPy fancy indexing — so that:

* with numba installed, ``numba.njit`` compiles them to native loops
  (the hardware-faithful chunk loop runs fused, without materializing
  per-chunk intermediates);
* without numba, the very same functions run under CPython, which keeps
  the backend's *logic* testable everywhere (``tests/test_backends.py``
  runs the cores directly on small shapes) even though the backend
  reports itself unavailable and :func:`~repro.packing.backends.get_backend`
  falls back to ``numpy_blocked``.

Both cores mirror the loop semantics of the original implementation
exactly: int64 products and partial sums (modular on overflow, like
NumPy), the 32-bit register check per chunk, and mask-only unpacking —
so results are bit-identical to ``numpy_blocked`` on every input,
including declared-bitwidth violations.

This container does not ship numba; the CI ``perf-smoke`` job has an
optional leg that installs it and asserts parity.
"""

from __future__ import annotations

import numpy as np

from repro.packing.backends import GemmBackend, register_backend

__all__ = ["NumbaGemmBackend", "chunked_core", "lane_core", "numba_available"]

_REG_MAX = (1 << 32) - 1
_U32_MASK = (1 << 32) - 1

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container path
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        """No-op decorator standing in for numba.njit."""
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn


def numba_available() -> bool:
    """Whether numba imported in this process."""
    return _HAVE_NUMBA


@_njit(cache=True)
def chunked_core(a64, bp, shifts, field_mask, depth, wide):  # pragma: no cover
    """Hardware-faithful chunk loop; fills ``wide`` (M, G, lanes) in place.

    Returns 0 on success, 1 when a chunk's packed partial sum exceeded
    the 32-bit register (the caller raises the canonical
    ``OverflowBudgetError``).  Out-of-range data contaminates lanes via
    the mask-only unpack exactly as on hardware.
    """
    m, k = a64.shape
    groups = bp.shape[1]
    lanes = shifts.shape[0]
    for start in range(0, k, depth):
        stop = min(start + depth, k)
        for i in range(m):
            for g in range(groups):
                acc = np.int64(0)
                for kk in range(start, stop):
                    acc += a64[i, kk] * bp[kk, g]
                if acc > _REG_MAX:
                    return 1
                # NumPy's astype(uint32) semantics: the register image
                # is the partial sum reduced mod 2**32 (wrapped
                # negatives included).
                reg = acc & _U32_MASK
                for lane in range(lanes):
                    wide[i, g, lane] += (reg >> shifts[lane]) & field_mask
    return 0


@_njit(cache=True)
def lane_core(a64, bp, shifts, field_mask, out):  # pragma: no cover
    """Per-lane algebraic evaluation; fills ``out`` (M, G*lanes) in place.

    int64 accumulation, modular on overflow — identical to the int64
    matmul it replaces (associative mod 2**64).
    """
    m, k = a64.shape
    groups = bp.shape[1]
    lanes = shifts.shape[0]
    for i in range(m):
        for g in range(groups):
            for lane in range(lanes):
                acc = np.int64(0)
                for kk in range(k):
                    acc += a64[i, kk] * ((bp[kk, g] >> shifts[lane]) & field_mask)
                out[i, g * lanes + lane] = acc
    return 0


class NumbaGemmBackend(GemmBackend):
    """JIT-compiled chunk/lane loops (requires numba at runtime)."""

    name = "numba"

    def available(self) -> bool:
        """Whether numba imported in this process."""
        return numba_available()

    def run(self, a64, bp, policy, *, n, depth, method):
        """Run the compiled chunk/lane loop; see :class:`GemmBackend.run`."""
        # Imported here, not at module top: this backend must not make
        # repro.packing depend on repro.errors import order via gemm.
        from repro.errors import OverflowBudgetError

        m, k = a64.shape
        groups = bp.shape[1]
        lanes = policy.lanes
        shifts = np.array(policy.shift_amounts, dtype=np.int64)
        mask = np.int64(policy.field_mask)
        a_c = np.ascontiguousarray(a64, dtype=np.int64)
        b_c = np.ascontiguousarray(bp, dtype=np.int64)
        if method == "chunked":
            wide = np.zeros((m, groups, lanes), dtype=np.int64)
            if chunked_core(a_c, b_c, shifts, mask, depth, wide):
                raise OverflowBudgetError(
                    "packed partial sum exceeded the 32-bit register despite "
                    "the guard-bit budget; operands violate their declared "
                    "bitwidths"
                )
            return wide.reshape(m, groups * lanes)[:, :n]
        out = np.zeros((m, groups * lanes), dtype=np.int64)
        lane_core(a_c, b_c, shifts, mask, out)
        return out[:, :n]


register_backend(NumbaGemmBackend())
