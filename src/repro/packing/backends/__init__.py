"""Pluggable kernel backends for the packed GEMM compute pass.

The packed GEMM's *semantics* live in :mod:`repro.packing.gemm`
(pre-flight, packing, stats, IR emission, sign-splitting); the inner
compute pass over an already-packed B is a pure function of
``(a, packed_b, policy, depth, method)`` and is what a real deployment
would JIT or hand-vectorize.  This package makes that pass a pluggable
*backend* behind one registry:

* ``numpy_blocked`` (default) — fully blocked NumPy over the
  (chunk, lane) axes, no Python-level per-lane or per-chunk loops
  (:mod:`repro.packing.backends.numpy_blocked`);
* ``numba`` — optional JIT of the hardware-faithful chunk loop,
  registered only when numba imports
  (:mod:`repro.packing.backends.numba_jit`).

Every backend is bit-identical: same products, same
:class:`~repro.errors.OverflowBudgetError` behaviour, differentially
fuzzed in ``tests/test_backends.py``.  Selection is per call
(``packed_gemm(..., backend="numba")``), per process
(``REPRO_GEMM_BACKEND=numba``), or default; requesting an unavailable
backend falls back to ``numpy_blocked`` with a counted warning rather
than failing, so one environment's missing JIT never breaks a run.

This registry is the seam the ROADMAP's multi-backend what-if explorer
plugs into: backends are data, selected at runtime, each metered by an
``obs`` counter.
"""

from __future__ import annotations

import os
import warnings

from repro import obs
from repro.errors import PackingError

__all__ = [
    "GemmBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "reset_fallback_warnings",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
]

#: Environment knob selecting the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_GEMM_BACKEND"

#: The always-available pure-NumPy backend.
DEFAULT_BACKEND = "numpy_blocked"


class GemmBackend:
    """One implementation of the packed GEMM compute pass.

    Subclasses implement :meth:`run` — one unsigned compute pass over an
    already-packed B — and report :meth:`available`.  ``run`` must be
    bit-identical to the ``numpy_blocked`` reference for every input,
    including raising :class:`~repro.errors.OverflowBudgetError` with
    the canonical message when a chunk's packed partial sum exceeds the
    32-bit register.
    """

    #: Registry name (also the ``backend=`` / env-var spelling).
    name = "abstract"

    def available(self) -> bool:  # pragma: no cover - trivial default
        """Whether this backend can run in the current process."""
        return True

    def run(self, a64, bp, policy, *, n, depth, method):
        """Compute one unsigned packed GEMM pass.

        Parameters mirror ``repro.packing.gemm._packed_gemm_prepacked``:
        ``a64`` is the (M, K) int64 multiplier block, ``bp`` the (K, G)
        int64 packed registers, ``n`` the true output column count,
        ``depth`` the proven-safe chunk depth, and ``method`` either
        ``"chunked"`` (hardware-faithful, overflow-checked) or
        ``"lane"`` (per-lane algebraic evaluation).  Returns the (M, n)
        int64 product.
        """
        raise NotImplementedError


_REGISTRY: dict[str, GemmBackend] = {}

#: Requested-but-unavailable backend names already warned about — the
#: fallback RuntimeWarning fires once per process per name, not once
#: per GEMM call (a sweep dispatches thousands).
_FALLBACK_WARNED: set[str] = set()


def reset_fallback_warnings() -> None:
    """Re-arm the once-per-process fallback warning (tests use this)."""
    _FALLBACK_WARNED.clear()


def register_backend(backend: GemmBackend) -> GemmBackend:
    """Add ``backend`` to the registry (last registration wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Every registered backend name (available or not)."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can run in this process."""
    return tuple(n for n in backend_names() if _REGISTRY[n].available())


def get_backend(name: str | None = None) -> GemmBackend:
    """Resolve a backend by name, env var, or default — with fallback.

    Resolution order: explicit ``name`` argument, then the
    ``REPRO_GEMM_BACKEND`` environment variable, then
    :data:`DEFAULT_BACKEND`.  An unknown name raises
    :class:`~repro.errors.PackingError` (a typo should fail loudly); a
    known-but-unavailable backend (e.g. ``numba`` without numba
    installed) degrades to the default with a warning and bumps
    ``gemm_backend_fallbacks_total``.
    """
    requested = name or os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    backend = _REGISTRY.get(requested)
    if backend is None:
        raise PackingError(
            f"unknown GEMM backend {requested!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    if not backend.available():
        backend = _REGISTRY[DEFAULT_BACKEND]
        # Label with the backend that actually runs, consistent with
        # gemm_backend_calls_total below; "requested" records who fell.
        obs.counter(
            "gemm_backend_fallbacks_total",
            "packed-GEMM backend requests degraded to the default",
            labels={"backend": backend.name, "requested": requested},
        ).inc()
        if requested not in _FALLBACK_WARNED:
            _FALLBACK_WARNED.add(requested)
            warnings.warn(
                f"GEMM backend {requested!r} is not available in this "
                f"environment; falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    obs.counter(
        "gemm_backend_calls_total",
        "packed-GEMM compute passes dispatched, by backend",
        labels={"backend": backend.name},
    ).inc()
    return backend


# Built-in backends self-register on import.
from repro.packing.backends import numpy_blocked as _numpy_blocked  # noqa: E402
from repro.packing.backends import numba_jit as _numba_jit  # noqa: E402,F401
