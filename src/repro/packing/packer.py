"""Vectorized pack/unpack of integer arrays into 32-bit registers.

The :class:`Packer` implements Algorithm 1's inner loop (lines 19-30) —
"pack integer values using bit shifting" — as a NumPy broadcast instead
of the paper's per-element ``bitset`` manipulation, packing along the
*last* axis (matrix columns, matching Fig. 4 where one packed register
holds values destined for adjacent output columns).

Only non-negative lane payloads are carry-safe in zero-padded SWAR; the
packer therefore accepts values in ``[0, 2**value_bits)``.  Signed
operands are handled one level up (zero-point offsetting for activations
in :mod:`repro.vit`, sign-splitting for weights in
:mod:`repro.packing.gemm`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError
from repro.packing.policy import PackingPolicy
from repro.utils.validation import check_dtype_integer

__all__ = ["Packer"]

#: Lane-IR emission sink, installed by ``repro.analysis.laneir.capture``
#: (``None`` outside a capture).
_IR_SINK = None


class Packer:
    """Packs/unpacks NumPy integer arrays under a :class:`PackingPolicy`.

    Lane 0 is the least-significant field, holding the *lowest-index*
    element of each group (so ``unpack(pack(x)) == x``).
    """

    def __init__(self, policy: PackingPolicy):
        self.policy = policy
        lanes = policy.lanes
        self._shifts = np.array(policy.shift_amounts, dtype=np.uint64)
        self._lane_mask = np.uint64(policy.field_mask)
        self._value_mask = np.uint64(policy.value_mask)
        self._lanes = lanes

    @classmethod
    def for_bitwidth(cls, bits: int, register_bits: int = 32) -> "Packer":
        """Packer under the process's resolved policy for ``bits``-bit
        operands: the learned table's layout when one is installed
        (``REPRO_POLICY_TABLE``), the Fig. 3 rule otherwise."""
        from repro.packing.search import resolve_policy

        return cls(resolve_policy(bits, bits, register_bits=register_bits))

    @classmethod
    def for_operands(
        cls, a_bits: int, b_bits: int, register_bits: int = 32
    ) -> "Packer":
        """Packer for a mixed ``a_bits x b_bits`` pair, resolved through
        the learned table when installed, the mixed rule otherwise."""
        from repro.packing.search import resolve_policy

        return cls(resolve_policy(a_bits, b_bits, register_bits=register_bits))

    # -- packing -----------------------------------------------------------

    def pack(self, values: np.ndarray) -> np.ndarray:
        """Pack along the last axis; returns uint32 of trailing size
        ``ceil(n / lanes)``.

        Values must be integers in ``[0, 2**value_bits)``.  The tail group
        is zero-padded, which is harmless for all packed arithmetic.
        """
        arr = np.asarray(values)
        check_dtype_integer("values", arr)
        if arr.ndim == 0:
            raise PackingError("pack expects at least a 1-D array")
        if arr.size:
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi > self.policy.max_value:
                raise PackingError(
                    f"values outside packable range [0, {self.policy.max_value}]: "
                    f"saw [{lo}, {hi}] for {self.policy.value_bits}-bit lanes"
                )
        n = arr.shape[-1]
        groups = self.policy.registers_needed(n)
        padded = np.zeros(arr.shape[:-1] + (groups * self._lanes,), dtype=np.uint64)
        padded[..., :n] = arr.astype(np.uint64)
        grouped = padded.reshape(arr.shape[:-1] + (groups, self._lanes))
        packed = (grouped << self._shifts).sum(axis=-1, dtype=np.uint64)
        out = packed.astype(np.uint32)
        if _IR_SINK is not None:
            # Zero-padding means 0 is always a possible lane payload.
            hi = int(arr.max()) if arr.size else 0
            _IR_SINK.event("pack", policy=self.policy, out=out, range=(0, hi))
        return out

    def unpack(self, packed: np.ndarray, count: int | None = None) -> np.ndarray:
        """Inverse of :meth:`pack`.

        ``count`` trims the zero-padded tail; defaults to
        ``packed.shape[-1] * lanes``.  Returns int64 lane payloads
        (field contents masked to ``field_bits`` — full products fit).
        """
        arr = np.asarray(packed).astype(np.uint64)
        lanes = (arr[..., None] >> self._shifts) & self._lane_mask
        flat = lanes.reshape(arr.shape[:-1] + (arr.shape[-1] * self._lanes,))
        if count is not None:
            total = flat.shape[-1]
            if not 0 <= count <= total:
                raise PackingError(
                    f"count {count} out of range for {total} unpacked lanes"
                )
            flat = flat[..., :count]
        return flat.astype(np.int64)

    # -- diagnostics ---------------------------------------------------------

    def roundtrip_exact(self, values: np.ndarray) -> bool:
        """True when ``unpack(pack(values))`` reproduces ``values``."""
        arr = np.asarray(values)
        return bool(
            np.array_equal(self.unpack(self.pack(arr), arr.shape[-1]), arr)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        p = self.policy
        return (
            f"Packer(bits={p.value_bits}, lanes={p.lanes}, "
            f"field={p.field_bits}, reg={p.register_bits})"
        )
