"""Learned packing-policy search over proven-safe lane layouts.

The Fig. 3 table and its mixed-width generalization
(:func:`repro.packing.mixed.policy_for_operands`) are *rules*: closed
forms mapping operand widths to one layout.  Gope et al. (PAPERS.md)
show the rule is not the frontier — asymmetric pairs admit layouts the
symmetric rule never considers, and the best layout depends on what it
costs to *accumulate* under it, not just on single-product fit.  This
module turns the rule into a search:

1. **Enumerate** candidate plans per ``(a_bits, b_bits, depth)`` —
   every lane count whose evenly-spread field can hold one packed
   value, each considered both *unspilled* (the whole K chain packed)
   and *chunked* at its proven spill depth.  The Fig. 3 layout for the
   pair's wider operand and the mixed-rule layout are always in the
   candidate set, so the search can only match or beat them.
2. **Prove** every plan with the interval overflow prover
   (:func:`repro.analysis.overflow.prove_packed_accumulation`).  Only
   proven-safe plans are admissible; refuted plans are kept in the
   outcome log with their concrete :class:`OverflowWitness`, and
   layouts that cannot even hold one product are recorded with the
   offending product width.
3. **Price** each surviving layout through the cached
   :class:`~repro.perfmodel.model.PerformanceModel` via the parallel
   sweep runner (spill accounting on, so a deeper proven depth is a
   measurable win), and pick the fastest proven layout per pair.
4. **Emit** the learned :class:`PolicyTable` — a JSON artifact that
   :func:`resolve_policy` serves to the ViT runtime, the serving
   preflight and the benchmarks in place of the static rule, behind
   the ``REPRO_POLICY_TABLE`` / ``--policy-table`` knob (no table
   installed = exactly the old behavior).

Every step bumps an ``obs`` counter
(``policy_search_{candidates,proven,refuted,priced}_total``), and the
whole search is deterministic: same pairs, same depth, same machine →
byte-identical table JSON, with zero fresh simulations once the timing
cache is warm.  See ``docs/POLICY_SEARCH.md``.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro import obs
from repro.errors import FormatError, PackingError
from repro.packing.mixed import max_lanes_for_operands
from repro.packing.policy import PackingPolicy, policy_for_bitwidth

__all__ = [
    "SEARCH_PAIRS",
    "DEFAULT_DEPTH",
    "DEFAULT_TABLE_PATH",
    "POLICY_TABLE_ENV_VAR",
    "CandidateOutcome",
    "PolicyTable",
    "PolicySearchResult",
    "enumerate_layouts",
    "prove_plans",
    "search_policies",
    "install_policy_table",
    "clear_policy_table",
    "active_policy_table",
    "resolve_policy",
]

#: Pairs the default search covers: the proven-depth table's pairs plus
#: the 1-bit asymmetric extremes, where the exact product width
#: ``bitlen((2**a - 1) * (2**b - 1))`` drops below ``a + b`` and the
#: search finds layouts denser than both the Fig. 3 and mixed rules.
SEARCH_PAIRS: tuple[tuple[int, int], ...] = (
    (8, 8),
    (4, 4),
    (6, 6),
    (8, 4),
    (4, 8),
    (8, 2),
    (2, 8),
    (8, 1),
    (1, 8),
)

#: Default GEMM reduction depth the plans are proven/priced at
#: (ViT-Base hidden dimension — the paper's workhorse K).
DEFAULT_DEPTH = 768

#: (M, N) of the representative tile the pricing model times.
DEFAULT_SHAPE: tuple[int, int] = (196, 196)

#: Where the learned table lands by default.
DEFAULT_TABLE_PATH = "benchmarks/out/policy_table.json"

#: Environment knob naming a table JSON to serve process-wide.
POLICY_TABLE_ENV_VAR = "REPRO_POLICY_TABLE"

#: Name of the pricing strategy (recorded in table metadata).
PRICING_STRATEGY_NAME = "packed-int-search"


def pricing_strategy():
    """The CUDA-core packed pricing strategy: every column on the INT
    pipe, so the priced time isolates what the layout itself costs
    (lane count, spill cadence, register traffic) from Tensor-core
    split effects.  Built lazily — ``repro.fusion`` imports
    ``repro.packing``, so a module-level Strategy would be circular.
    """
    from repro.fusion.strategies import Strategy

    return Strategy(
        name=PRICING_STRATEGY_NAME,
        uses_tensor=False,
        uses_int=True,
        uses_fp=False,
        packing=True,
        kernel_scope="C",
        description="INT-pipe-only packed probe used to price search candidates",
    )


def _pair_name(a_bits: int, b_bits: int) -> str:
    return f"a{a_bits}b{b_bits}"


def _exact_product_width(a_bits: int, b_bits: int) -> int:
    """Bit length of the largest ``a_bits x b_bits`` product."""
    return (((1 << a_bits) - 1) * ((1 << b_bits) - 1)).bit_length()


@dataclass
class CandidateOutcome:
    """One enumerated plan and its oracle verdict.

    ``status`` is ``"proven"`` (admissible), ``"refuted"`` (the prover
    found a concrete overflow — ``witness`` holds its
    :class:`~repro.analysis.overflow.OverflowWitness` as a dict), or
    ``"infeasible"`` (the layout cannot hold a single product;
    ``reason`` names the offending product width).  ``mac_per_s`` is
    filled by the pricing stage for proven layouts.
    """

    a_bits: int
    b_bits: int
    lanes: int
    field_bits: int
    chunk_depth: int | None  # None = the unspilled full-K plan
    k: int
    status: str
    max_safe_depth: int = 0
    witness: dict | None = None
    reason: str | None = None
    is_static_rule: bool = False
    is_mixed_rule: bool = False
    density: float = 0.0
    mac_per_s: float | None = None

    @property
    def key(self) -> str:
        """Unique plan identifier: pair, layout and spill cadence."""
        plan = "unspilled" if self.chunk_depth is None else f"chunk{self.chunk_depth}"
        return (
            f"{_pair_name(self.a_bits, self.b_bits)}"
            f"L{self.lanes}f{self.field_bits}.{plan}"
        )

    @property
    def layout_key(self) -> str:
        """Layout identifier shared by this layout's plans (no cadence)."""
        return f"{_pair_name(self.a_bits, self.b_bits)}L{self.lanes}f{self.field_bits}"

    def policy(self, register_bits: int = 32) -> PackingPolicy:
        """The candidate's layout as a policy (infeasible ones raise)."""
        return PackingPolicy(
            value_bits=self.b_bits,
            lanes=self.lanes,
            field_bits=self.field_bits,
            register_bits=register_bits,
            multiplier_bits=self.a_bits,
        )

    def to_dict(self) -> dict:
        """JSON-ready form (omits unset witness/reason/price fields)."""
        d = {
            "a_bits": self.a_bits,
            "b_bits": self.b_bits,
            "lanes": self.lanes,
            "field_bits": self.field_bits,
            "chunk_depth": self.chunk_depth,
            "k": self.k,
            "status": self.status,
            "max_safe_depth": self.max_safe_depth,
            "density": self.density,
            "is_static_rule": self.is_static_rule,
            "is_mixed_rule": self.is_mixed_rule,
        }
        if self.witness is not None:
            d["witness"] = self.witness
        if self.reason is not None:
            d["reason"] = self.reason
        if self.mac_per_s is not None:
            d["mac_per_s"] = self.mac_per_s
        return d


def _static_rule_lanes(a_bits: int, b_bits: int, register_bits: int = 32) -> int:
    """Lane count the Fig. 3 rule gives this pair (at the wider width)."""
    return policy_for_bitwidth(max(a_bits, b_bits), register_bits).lanes


def enumerate_layouts(
    a_bits: int, b_bits: int, *, register_bits: int = 32
) -> list[tuple[int, int]]:
    """Every ``(lanes, field_bits)`` layout whose evenly-spread field can
    hold one packed ``b_bits`` value — including layouts the prover will
    refute (they document the search frontier) and always including the
    Fig. 3 and mixed-rule layouts."""
    layouts = []
    for lanes in range(1, register_bits // b_bits + 1):
        layouts.append((lanes, register_bits // lanes))
    return layouts


def prove_plans(
    a_bits: int,
    b_bits: int,
    *,
    k: int = DEFAULT_DEPTH,
    register_bits: int = 32,
) -> list[CandidateOutcome]:
    """Run the overflow-prover oracle over every enumerated plan.

    Per layout, two plans are judged: the *unspilled* full-K chain
    (usually refuted at real depths — its witness documents why
    spilling exists) and the *chunked* chain at the layout's proven
    spill depth.  Only ``status == "proven"`` outcomes are admissible
    downstream.
    """
    from repro.analysis.overflow import prove_packed_accumulation

    static_lanes = _static_rule_lanes(a_bits, b_bits, register_bits)
    mixed_lanes = max_lanes_for_operands(a_bits, b_bits, register_bits)
    outcomes: list[CandidateOutcome] = []
    for lanes, field_bits in enumerate_layouts(
        a_bits, b_bits, register_bits=register_bits
    ):
        common = dict(
            a_bits=a_bits,
            b_bits=b_bits,
            lanes=lanes,
            field_bits=field_bits,
            k=k,
            is_static_rule=lanes == static_lanes,
            is_mixed_rule=lanes == mixed_lanes,
            density=lanes * b_bits / register_bits,
        )
        try:
            policy = PackingPolicy(
                value_bits=b_bits,
                lanes=lanes,
                field_bits=field_bits,
                register_bits=register_bits,
                multiplier_bits=a_bits,
            )
        except FormatError as exc:
            outcomes.append(
                CandidateOutcome(
                    chunk_depth=None,
                    status="infeasible",
                    reason=str(exc),
                    **common,
                )
            )
            continue
        unspilled = prove_packed_accumulation(
            policy, k=k, a_bits=a_bits, b_bits=b_bits, chunk_depth=None
        )
        outcomes.append(
            CandidateOutcome(
                chunk_depth=None,
                status="proven" if unspilled.safe else "refuted",
                max_safe_depth=unspilled.max_safe_depth,
                witness=(
                    unspilled.witness.to_dict() if unspilled.witness else None
                ),
                **common,
            )
        )
        if unspilled.safe or unspilled.max_safe_depth < 1:
            continue  # no distinct chunked plan to judge
        chunk = min(unspilled.max_safe_depth, max(1, k))
        chunked = prove_packed_accumulation(
            policy, k=k, a_bits=a_bits, b_bits=b_bits, chunk_depth=chunk
        )
        outcomes.append(
            CandidateOutcome(
                chunk_depth=chunk,
                status="proven" if chunked.safe else "refuted",
                max_safe_depth=chunked.max_safe_depth,
                witness=chunked.witness.to_dict() if chunked.witness else None,
                **common,
            )
        )
    return outcomes


# -- pricing -------------------------------------------------------------------


def _price_layout(point: tuple) -> dict:
    """Sweep worker: price one proven layout (module-level, picklable).

    Spill accounting is on (``count_spills=True``) so a layout's proven
    accumulation depth shows up in its price; ``clamp_ratio`` matches
    the other sweep workers, though the INT-only pricing strategy never
    consults the split rule.
    """
    from repro.perfmodel.descriptors import CostParams, GemmShape
    from repro.perfmodel.model import PerformanceModel

    machine, policy_args, (m, n, k) = point
    policy = PackingPolicy(*policy_args)
    pm = PerformanceModel(
        machine,
        policy,
        params=CostParams(count_spills=True),
        clamp_ratio=True,
    )
    timing = pm.time_gemm(GemmShape(m=m, n=n, k=k), pricing_strategy())
    return {
        "seconds": timing.seconds,
        "mac_per_s": m * n * k / timing.seconds,
    }


def _policy_args(outcome: CandidateOutcome, register_bits: int) -> tuple:
    return (
        outcome.b_bits,
        outcome.lanes,
        outcome.field_bits,
        register_bits,
        outcome.a_bits,
    )


# -- the learned table ---------------------------------------------------------


@dataclass
class PolicyTable:
    """A learned pair -> layout table with provenance.

    ``entries`` maps ``"a{a}b{b}"`` to the chosen layout plus its
    proven depth, density and predicted throughput (and the static
    rule's, for the dominance audit).  Construct via
    :func:`search_policies`, :meth:`load`, or :meth:`from_dict`.
    """

    entries: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def policy_for(
        self, a_bits: int, b_bits: int, register_bits: int = 32
    ) -> PackingPolicy | None:
        """The learned policy for a pair, or None when not covered."""
        entry = self.entries.get(_pair_name(a_bits, b_bits))
        if entry is None or entry.get("register_bits", 32) != register_bits:
            return None
        return PackingPolicy(
            value_bits=entry["value_bits"],
            lanes=entry["lanes"],
            field_bits=entry["field_bits"],
            register_bits=entry.get("register_bits", 32),
            multiplier_bits=entry["multiplier_bits"],
        )

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {"version": 1, "meta": self.meta, "entries": self.entries}

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyTable":
        """Rebuild a table from :meth:`to_dict` output (validated)."""
        if not isinstance(data, dict) or "entries" not in data:
            raise PackingError(
                "policy table JSON must be an object with an 'entries' key"
            )
        return cls(entries=dict(data["entries"]), meta=dict(data.get("meta", {})))

    def to_json(self) -> str:
        """Canonical serialization — sorted keys, so identical searches
        produce byte-identical artifacts."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def save(self, path: str | pathlib.Path = DEFAULT_TABLE_PATH) -> pathlib.Path:
        """Write the canonical JSON artifact; returns its path."""
        p = pathlib.Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_json(), encoding="utf-8")
        return p

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "PolicyTable":
        """Load a saved table, with actionable missing/corrupt errors."""
        p = pathlib.Path(path)
        if not p.exists():
            raise PackingError(
                f"no policy table at {p} — run `python -m repro search` "
                "(or benchmarks/bench_policy_search.py) to learn one"
            )
        try:
            return cls.from_dict(json.loads(p.read_text(encoding="utf-8")))
        except json.JSONDecodeError as exc:
            raise PackingError(f"unreadable policy table at {p}: {exc}") from exc

    def reverify(self) -> dict:
        """Re-prove every entry; returns ``{pair: reason}`` refutations.

        An empty dict means every shipped layout still proves safe at
        its recorded chunk depth *and* its recorded proven depth still
        matches the prover — the CI policy-search smoke gate.
        """
        from repro.analysis.overflow import prove_packed_accumulation

        failures: dict = {}
        for pair, entry in sorted(self.entries.items()):
            try:
                policy = self.policy_for(entry["a_bits"], entry["b_bits"])
                if policy is None:
                    raise PackingError("entry does not resolve to a policy")
                proof = prove_packed_accumulation(
                    policy,
                    k=int(entry["k"]),
                    a_bits=entry["a_bits"],
                    b_bits=entry["b_bits"],
                    chunk_depth=int(entry["chunk_depth"]),
                )
                if not proof.safe:
                    failures[pair] = (
                        f"refuted: {proof.witness.describe()}"
                        if proof.witness
                        else "refuted"
                    )
                elif proof.max_safe_depth != int(entry["proven_depth"]):
                    failures[pair] = (
                        f"proven depth drifted: table says "
                        f"{entry['proven_depth']}, prover says "
                        f"{proof.max_safe_depth}"
                    )
            except (PackingError, FormatError, KeyError, ValueError) as exc:
                failures[pair] = f"{type(exc).__name__}: {exc}"
        return failures


@dataclass
class PolicySearchResult:
    """Everything one :func:`search_policies` run produced."""

    table: PolicyTable
    outcomes: list  # every CandidateOutcome, enumeration order
    counters: dict  # candidates / proven / refuted / priced
    sweep_simulations: int
    sweep_cache_hits: int

    def pareto_rows(self) -> list[tuple]:
        """(pair, lanes, field, status, depth, density, MAC/s) rows for
        the Pareto report, enumeration order."""
        rows = []
        for o in self.outcomes:
            rows.append(
                (
                    _pair_name(o.a_bits, o.b_bits),
                    o.lanes,
                    o.field_bits,
                    "-" if o.chunk_depth is None else o.chunk_depth,
                    o.status,
                    o.max_safe_depth,
                    round(o.density, 3),
                    round(o.mac_per_s / 1e6, 1) if o.mac_per_s else "-",
                )
            )
        return rows


def search_policies(
    pairs: tuple = SEARCH_PAIRS,
    *,
    k: int = DEFAULT_DEPTH,
    shape: tuple[int, int] = DEFAULT_SHAPE,
    machine=None,
    register_bits: int = 32,
    processes: int | None = 1,
) -> PolicySearchResult:
    """Enumerate, prove, price and select one layout per operand pair.

    Deterministic: no randomness anywhere, candidates are judged in
    enumeration order, and the emitted table serializes with sorted
    keys — the same inputs produce a byte-identical artifact, with zero
    fresh simulations once the timing cache is warm.
    """
    from repro.runner import run_sweep

    if machine is None:
        from repro.arch import jetson_orin_agx

        machine = jetson_orin_agx()

    outcomes: list[CandidateOutcome] = []
    for a_bits, b_bits in pairs:
        outcomes.extend(
            prove_plans(a_bits, b_bits, k=k, register_bits=register_bits)
        )

    n_proven = sum(1 for o in outcomes if o.status == "proven")
    n_refuted = len(outcomes) - n_proven
    obs.counter(
        "policy_search_candidates_total", "packing plans enumerated"
    ).inc(len(outcomes))
    obs.counter(
        "policy_search_proven_total", "packing plans proven safe"
    ).inc(n_proven)
    obs.counter(
        "policy_search_refuted_total",
        "packing plans refuted (witnessed) or structurally infeasible",
    ).inc(n_refuted)

    # Price each admissible *layout* once (its price doesn't depend on
    # which of its plans proved; the spill depth is derived from the
    # layout inside the cost model).
    priced_layouts: dict[str, CandidateOutcome] = {}
    for o in outcomes:
        if o.status == "proven" and o.layout_key not in priced_layouts:
            priced_layouts[o.layout_key] = o
    points = [
        (machine, _policy_args(o, register_bits), (shape[0], shape[1], k))
        for o in priced_layouts.values()
    ]
    report = run_sweep(
        _price_layout,
        points,
        labels=list(priced_layouts),
        processes=processes,
        label="policy search pricing",
    )
    obs.counter(
        "policy_search_priced_total", "proven layouts priced via the sweep"
    ).inc(len(points))
    prices = dict(zip(priced_layouts, report.values))
    for o in outcomes:
        if o.layout_key in prices:
            o.mac_per_s = prices[o.layout_key]["mac_per_s"]

    entries: dict = {}
    for a_bits, b_bits in pairs:
        pair = _pair_name(a_bits, b_bits)
        proven = [
            o
            for o in outcomes
            if o.a_bits == a_bits
            and o.b_bits == b_bits
            and o.status == "proven"
            and o.mac_per_s is not None
        ]
        if not proven:  # pragma: no cover - every pair has a 1-lane plan
            continue
        # Fastest predicted layout; ties break toward denser, then
        # deeper (stable because max() keeps the first winner).
        best = max(
            proven, key=lambda o: (o.mac_per_s, o.density, o.max_safe_depth)
        )
        static = next((o for o in proven if o.is_static_rule), None)
        entries[pair] = {
            "a_bits": a_bits,
            "b_bits": b_bits,
            "value_bits": b_bits,
            "multiplier_bits": a_bits,
            "lanes": best.lanes,
            "field_bits": best.field_bits,
            "register_bits": register_bits,
            "proven_depth": best.max_safe_depth,
            "chunk_depth": min(best.max_safe_depth, max(1, k)),
            "k": k,
            "density": best.density,
            "mac_per_s": best.mac_per_s,
            "static_lanes": _static_rule_lanes(a_bits, b_bits, register_bits),
            "static_mac_per_s": static.mac_per_s if static else None,
            "mixed_rule_lanes": max_lanes_for_operands(
                a_bits, b_bits, register_bits
            ),
        }

    table = PolicyTable(
        entries=entries,
        meta={
            "k": k,
            "shape": list(shape),
            "register_bits": register_bits,
            "pairs": [list(p) for p in pairs],
            "pricing_strategy": PRICING_STRATEGY_NAME,
            "selection": "max predicted MAC/s among proven-safe layouts",
        },
    )
    return PolicySearchResult(
        table=table,
        outcomes=outcomes,
        counters={
            "candidates": len(outcomes),
            "proven": n_proven,
            "refuted": n_refuted,
            "priced": len(points),
        },
        sweep_simulations=report.simulations,
        sweep_cache_hits=report.cache_hits,
    )


# -- process-wide table installation -------------------------------------------

_ACTIVE_TABLE: PolicyTable | None = None
_ENV_CHECKED = False


def install_policy_table(table: "PolicyTable | str | pathlib.Path | None") -> None:
    """Serve ``table`` (or the table at a path) process-wide.

    ``None`` clears the installed table *and* re-arms the
    ``REPRO_POLICY_TABLE`` environment lookup (tests use this to reset).
    """
    global _ACTIVE_TABLE, _ENV_CHECKED
    if table is None:
        _ACTIVE_TABLE = None
        _ENV_CHECKED = False
        return
    if not isinstance(table, PolicyTable):
        table = PolicyTable.load(table)
    _ACTIVE_TABLE = table
    _ENV_CHECKED = True


def clear_policy_table() -> None:
    """Alias for ``install_policy_table(None)``."""
    install_policy_table(None)


def active_policy_table() -> PolicyTable | None:
    """The installed table, lazily loading ``$REPRO_POLICY_TABLE`` once."""
    global _ENV_CHECKED, _ACTIVE_TABLE
    if _ACTIVE_TABLE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(POLICY_TABLE_ENV_VAR)
        if path:
            _ACTIVE_TABLE = PolicyTable.load(path)
    return _ACTIVE_TABLE


def resolve_policy(
    a_bits: int,
    b_bits: int,
    *,
    register_bits: int = 32,
    default: PackingPolicy | None = None,
) -> PackingPolicy:
    """The policy the process should use for an ``a_bits x b_bits`` GEMM.

    With a learned table installed (programmatically or via
    ``REPRO_POLICY_TABLE``) and covering the pair, the learned layout
    wins; otherwise ``default`` when given, else the static rules —
    Fig. 3 for symmetric pairs, the mixed rule for asymmetric ones.
    Callers that pass their historical policy as ``default`` are
    therefore bit-for-bit unchanged until a table is installed.
    """
    table = active_policy_table()
    if table is not None:
        learned = table.policy_for(a_bits, b_bits, register_bits)
        if learned is not None:
            return learned
    if default is not None:
        return default
    if a_bits == b_bits:
        return policy_for_bitwidth(b_bits, register_bits)
    from repro.packing.mixed import policy_for_operands

    return policy_for_operands(a_bits, b_bits, register_bits)
