"""Register operand packing — the paper's primary contribution.

This package implements VitBit's SWAR (SIMD-within-a-register) scheme:

* :mod:`repro.packing.policy` — the Fig. 3 packing policy mapping an
  operand bitwidth to (lane count, field width) inside a 32-bit register;
* :mod:`repro.packing.packer` — vectorized pack/unpack of NumPy arrays;
* :mod:`repro.packing.swar` — packed add / scalar-multiply primitives
  with carry-isolation checking;
* :mod:`repro.packing.accumulate` — guard-bit budgets and chunked
  dot-product accumulation (the overflow story Fig. 3 leaves implicit);
* :mod:`repro.packing.gemm` — the packed GEMM kernel, exact for signed
  weights via sign-splitting;
* :mod:`repro.packing.backends` — pluggable compute-pass backends for
  the packed GEMM (blocked NumPy by default, numba JIT when installed);
* :mod:`repro.packing.search` — learned policy tables: enumerate
  candidate layouts per operand pair, prove them with the overflow
  prover, price survivors, and serve the winners via
  :func:`~repro.packing.search.resolve_policy`.
"""

from repro.packing.policy import (
    PackingPolicy,
    max_lanes_for_bitwidth,
    policy_for_bitwidth,
)
from repro.packing.mixed import max_lanes_for_operands, policy_for_operands
from repro.packing.bitstream import (
    bitstream_words,
    expand_to_registers,
    pack_bitstream,
    unpack_bitstream,
)
from repro.packing.packer import Packer
from repro.packing.swar import (
    lane_extract,
    lane_insert,
    lanes_extract,
    packed_add,
    packed_scalar_mul,
)
from repro.packing.backends import (
    available_backends,
    backend_names,
    get_backend,
)
from repro.packing.accumulate import (
    ChunkedAccumulator,
    guard_bits,
    safe_accumulation_depth,
)
from repro.packing.gemm import (
    PackedGemmStats,
    packed_gemm,
    packed_gemm_unsigned,
    reference_gemm,
)
from repro.packing.search import (
    PolicyTable,
    clear_policy_table,
    install_policy_table,
    resolve_policy,
    search_policies,
)

__all__ = [
    "PackingPolicy",
    "policy_for_bitwidth",
    "max_lanes_for_bitwidth",
    "policy_for_operands",
    "max_lanes_for_operands",
    "pack_bitstream",
    "unpack_bitstream",
    "bitstream_words",
    "expand_to_registers",
    "Packer",
    "packed_add",
    "packed_scalar_mul",
    "lane_extract",
    "lanes_extract",
    "lane_insert",
    "available_backends",
    "backend_names",
    "get_backend",
    "guard_bits",
    "safe_accumulation_depth",
    "ChunkedAccumulator",
    "PackedGemmStats",
    "packed_gemm",
    "packed_gemm_unsigned",
    "reference_gemm",
    "PolicyTable",
    "search_policies",
    "install_policy_table",
    "clear_policy_table",
    "resolve_policy",
]
