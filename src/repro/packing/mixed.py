"""Mixed-bitwidth packing policies.

The paper claims support for *arbitrary* integer formats; its Fig. 3
policy assumes both multiplicands share one bitwidth.  Real quantized
networks routinely mix widths (4-bit weights x 8-bit activations is the
classic W4A8 configuration), and the carry-safety rule generalizes
directly: a lane field must hold one ``a_bits x b_bits`` product, so

``lanes = floor(register_bits / (a_bits + b_bits))``.

:func:`policy_for_operands` builds the widest carry-safe policy for a
(multiplier, packed-operand) width pair; the resulting
:class:`~repro.packing.policy.PackingPolicy` plugs into the existing
packer/SWAR/GEMM machinery unchanged, because all of it sizes products
from the actual operand magnitudes at run time.
"""

from __future__ import annotations

from repro.errors import FormatError
from repro.packing.policy import PackingPolicy

__all__ = ["policy_for_operands", "max_lanes_for_operands"]


def max_lanes_for_operands(
    a_bits: int, b_bits: int, register_bits: int = 32
) -> int:
    """Maximum carry-safe lanes for ``a_bits x b_bits`` products."""
    for name, bits in (("a_bits", a_bits), ("b_bits", b_bits)):
        if not 1 <= bits <= register_bits:
            raise FormatError(f"{name} must be in 1..{register_bits}, got {bits}")
    return max(1, register_bits // (a_bits + b_bits))


def policy_for_operands(
    a_bits: int,
    b_bits: int,
    register_bits: int = 32,
    *,
    cap_lanes: int | None = None,
) -> PackingPolicy:
    """Packing policy for unpacked ``a_bits`` multipliers against packed
    ``b_bits`` operands.

    The policy's ``value_bits`` is ``b_bits`` (what gets packed); the
    field width is sized for the *mixed* product, so e.g. W4A8
    (``a_bits=4, b_bits=8``) packs 2 activations per register with
    12-bit products in 16-bit fields — 4 guard bits of accumulation
    budget that the symmetric int8 policy does not have.

    >>> policy_for_operands(4, 8).lanes      # W4A8
    2
    >>> policy_for_operands(4, 4).lanes      # W4A4
    4
    >>> policy_for_operands(8, 2).lanes      # W8A2: 3 lanes of 10-bit fields
    3
    """
    lanes = max_lanes_for_operands(a_bits, b_bits, register_bits)
    if cap_lanes is not None:
        if cap_lanes < 1:
            raise FormatError(f"cap_lanes must be >= 1, got {cap_lanes}")
        lanes = min(lanes, cap_lanes)
    field = register_bits // lanes
    # At lanes == 1 PackingPolicy deliberately skips the product-fit
    # check (single-lane scalars use the whole register and downgrade
    # paths call with_lanes(1) freely), so pairs whose product exceeds
    # the register would slip through here and only fail at prover
    # time.  Reject them eagerly, naming the offending product width.
    product_width = (((1 << a_bits) - 1) * ((1 << b_bits) - 1)).bit_length()
    if product_width > field:
        raise FormatError(
            f"a {a_bits}x{b_bits}-bit product needs {product_width} bits "
            f"but the widest carry-safe field is {field} bits "
            f"({lanes} lane(s) in a {register_bits}-bit register)"
        )
    return PackingPolicy(
        value_bits=b_bits,
        lanes=lanes,
        field_bits=field,
        register_bits=register_bits,
        multiplier_bits=a_bits,
    )
