"""Accumulation budgets for packed dot products.

Fig. 3 sizes each field to hold one worst-case product; it is silent
about *accumulating* K of them, which any GEMM must do.  This module
makes the budget explicit:

* :func:`guard_bits` — spare bits per field beyond a single product;
* :func:`safe_accumulation_depth` — how many products a lane can sum
  before it can overflow its field;
* :class:`ChunkedAccumulator` — a packed accumulator that sums safe-depth
  chunks in packed form and *spills* to full-width (per-lane int64)
  accumulators between chunks, counting the spills so the cost model can
  price them.

With the Fig. 3 default fields, int8 pairs have zero guard bits
(safe depth 2 only because 127*255 < 65536/2 fails — it is computed
exactly, not from powers of two), so real packed GEMMs alternate
multiply-accumulate and spill; the ablation benchmark quantifies what
that costs relative to the paper's idealized "no overhead" claim.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError
from repro.packing.policy import PackingPolicy
from repro.packing.swar import packed_add
from repro.packing.packer import Packer

__all__ = ["guard_bits", "safe_accumulation_depth", "ChunkedAccumulator"]


def guard_bits(policy: PackingPolicy, a_bits: int, b_bits: int) -> int:
    """Spare field bits beyond one ``a_bits x b_bits`` product.

    ``a_bits`` is the magnitude bitwidth of the unpacked multiplier
    stream, ``b_bits`` of the packed operands (``<= policy.value_bits``).
    """
    if b_bits > policy.value_bits:
        raise PackingError(
            f"packed operands of {b_bits} bits exceed the policy's "
            f"{policy.value_bits}-bit lanes"
        )
    if a_bits < 1 or b_bits < 1:
        raise PackingError("operand bitwidths must be >= 1")
    return policy.field_bits - (a_bits + b_bits)


def safe_accumulation_depth(policy: PackingPolicy, a_bits: int, b_bits: int) -> int:
    """Largest K such that K worst-case products cannot overflow a field.

    Exact integer computation: ``floor(field_max / (a_max * b_max))``
    with ``x_max = 2**bits - 1``.  Always >= 1 when a single product
    fits (which the policy guarantees for its own ``value_bits``).
    """
    g = guard_bits(policy, a_bits, b_bits)  # validates arguments
    a_max = (1 << a_bits) - 1
    b_max = (1 << b_bits) - 1
    product_max = a_max * b_max
    if product_max == 0:
        return 1 << 30  # degenerate 0/1-bit operands never overflow
    depth = policy.field_mask // product_max
    if depth < 1:
        raise PackingError(
            f"a single {a_bits}x{b_bits}-bit product does not fit a "
            f"{policy.field_bits}-bit field (guard bits = {g})"
        )
    return int(depth)


class ChunkedAccumulator:
    """Accumulates packed partial products with overflow-safe spilling.

    The accumulator owns (a) a *packed* register accumulator summed with
    :func:`~repro.packing.swar.packed_add`, and (b) wide per-lane int64
    accumulators it spills into every ``safe_depth`` additions.  The
    final value is exact regardless of K.

    Parameters
    ----------
    policy, a_bits, b_bits:
        As for :func:`safe_accumulation_depth`.
    shape:
        Shape of the packed-register array being accumulated
        (e.g. ``(M, G)`` for a GEMM output tile of G register groups).
    """

    def __init__(
        self,
        policy: PackingPolicy,
        a_bits: int,
        b_bits: int,
        shape: tuple[int, ...],
    ):
        self.policy = policy
        self.safe_depth = safe_accumulation_depth(policy, a_bits, b_bits)
        self._packer = Packer(policy)
        self._packed = np.zeros(shape, dtype=np.uint32)
        self._wide = np.zeros(shape + (policy.lanes,), dtype=np.int64)
        self._pending = 0
        self.spill_count = 0
        self.add_count = 0

    def add(self, packed_products: np.ndarray) -> None:
        """Accumulate one packed partial-product array (uint32, same shape)."""
        if self._pending >= self.safe_depth:
            self.spill()
        self._packed = packed_add(
            self._packed, np.asarray(packed_products), self.policy, strict=True
        )
        self._pending += 1
        self.add_count += 1

    def spill(self) -> None:
        """Move the packed accumulator into the wide per-lane accumulators."""
        if self._pending == 0:
            return
        lanes = self._packer.unpack(self._packed[..., None], self.policy.lanes)
        self._wide += lanes
        self._packed = np.zeros_like(self._packed)
        self._pending = 0
        self.spill_count += 1

    def result(self) -> np.ndarray:
        """Exact per-lane totals, shape ``shape + (lanes,)`` (int64)."""
        self.spill()
        return self._wide.copy()
