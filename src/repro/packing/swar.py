"""SWAR primitives: packed add and scalar multiply on 32-bit registers.

These model the two instructions VitBit's packed GEMM actually issues on
the INT pipe — one IMAD per (scalar, packed register) pair — and prove
the carry-isolation property the paper relies on ("a single
multiplication automatically completes the multiplications with packed
values", Sec. 3.2).

All functions take/return ``uint32`` arrays and work element-wise;
``strict=True`` (the default) verifies that no lane overflowed its
field, which is exactly the condition under which the hardware
instruction is exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OverflowBudgetError, PackingError
from repro.packing.policy import PackingPolicy

__all__ = [
    "packed_add",
    "packed_scalar_mul",
    "lane_extract",
    "lanes_extract",
    "lane_insert",
]

_U64_REG_MASK = np.uint64(0xFFFFFFFF)

#: Lane-IR emission sink, installed by ``repro.analysis.laneir.capture``
#: (``None`` outside a capture).  When set, every packed op reports
#: itself so real executions record the lane program they perform.
_IR_SINK = None


def _as_u64(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype != np.uint32:
        raise PackingError(f"packed operands must be uint32, got {arr.dtype}")
    return arr.astype(np.uint64)


def _check_fits_register(wide: np.ndarray, what: str) -> None:
    if wide.size and int(wide.max()) > int(_U64_REG_MASK):
        raise OverflowBudgetError(
            f"{what} overflowed the 32-bit register; the hardware instruction "
            "would wrap and corrupt the top lane"
        )


def _lanes_of(wide: np.ndarray, policy: PackingPolicy) -> np.ndarray:
    shifts = np.array(policy.shift_amounts, dtype=np.uint64)
    return (wide[..., None] >> shifts) & np.uint64(policy.field_mask)


def packed_add(
    x: np.ndarray, y: np.ndarray, policy: PackingPolicy, *, strict: bool = True
) -> np.ndarray:
    """Lane-wise add via one 32-bit integer ADD.

    Exact iff every lane sum fits its field.  With ``strict`` the
    condition is checked (by recomputing lane-wise in 64 bits) and
    :class:`~repro.errors.OverflowBudgetError` raised on violation;
    without it the wrapped (hardware) result is returned.
    """
    xw, yw = _as_u64(x), _as_u64(y)
    total = xw + yw
    if strict:
        lane_sum = _lanes_of(xw, policy) + _lanes_of(yw, policy)
        if lane_sum.size and int(lane_sum.max()) > policy.field_mask:
            raise OverflowBudgetError(
                "packed_add: a lane sum exceeded its "
                f"{policy.field_bits}-bit field"
            )
        _check_fits_register(total, "packed_add")
    out = (total & _U64_REG_MASK).astype(np.uint32)
    if _IR_SINK is not None:
        _IR_SINK.event("packed_add", policy=policy, srcs=(x, y), out=out)
    return out


def packed_scalar_mul(
    scalar: np.ndarray | int,
    packed: np.ndarray,
    policy: PackingPolicy,
    *,
    strict: bool = True,
) -> np.ndarray:
    """Multiply every lane by a non-negative scalar via one 32-bit multiply.

    ``scalar`` broadcasts against ``packed``.  Exact iff each lane
    product fits its field (the Fig. 3 sizing guarantees this when the
    scalar respects the policy's ``value_bits``).
    """
    s = np.asarray(scalar, dtype=np.int64)
    if s.size and int(s.min()) < 0:
        raise PackingError(
            "packed_scalar_mul requires non-negative scalars; sign-split "
            "signed multipliers first (see repro.packing.gemm)"
        )
    sw = s.astype(np.uint64)
    pw = _as_u64(packed)
    total = sw * pw
    if strict:
        lane_prod = sw[..., None] * _lanes_of(pw, policy)
        if lane_prod.size and int(lane_prod.max()) > policy.field_mask:
            raise OverflowBudgetError(
                "packed_scalar_mul: a lane product exceeded its "
                f"{policy.field_bits}-bit field"
            )
        _check_fits_register(total, "packed_scalar_mul")
    out = (total & _U64_REG_MASK).astype(np.uint32)
    if _IR_SINK is not None:
        lo = int(s.min()) if s.size else 0
        hi = int(s.max()) if s.size else 0
        _IR_SINK.event(
            "packed_mul",
            policy=policy,
            srcs=(scalar, packed),
            out=out,
            scalar_range=(lo, hi),
        )
    return out


def lane_extract(packed: np.ndarray, lane: int, policy: PackingPolicy) -> np.ndarray:
    """Read one lane's field contents (int64)."""
    if not 0 <= lane < policy.lanes:
        raise PackingError(f"lane {lane} out of range for {policy.lanes} lanes")
    pw = _as_u64(packed)
    return ((pw >> np.uint64(lane * policy.field_bits)) & np.uint64(policy.field_mask)).astype(
        np.int64
    )


def lanes_extract(packed: np.ndarray, policy: PackingPolicy) -> np.ndarray:
    """Read every lane's field contents at once (int64).

    The vectorized replacement for ``for lane in range(policy.lanes):
    lane_extract(...)`` loops: one broadcast shift/mask over a trailing
    lane axis instead of ``lanes`` passes, with the per-call
    :class:`~repro.errors.PackingError` validation hoisted to a single
    dtype check up front (extracting *all* lanes needs no lane-range
    check at all).  Returns shape ``packed.shape + (lanes,)``, lane 0
    (least significant) first — so
    ``lanes_extract(p, policy)[..., i] == lane_extract(p, i, policy)``.
    """
    return _lanes_of(_as_u64(packed), policy).astype(np.int64)


def lane_insert(
    packed: np.ndarray, lane: int, values: np.ndarray, policy: PackingPolicy
) -> np.ndarray:
    """Overwrite one lane's field with ``values`` (must fit the field)."""
    if not 0 <= lane < policy.lanes:
        raise PackingError(f"lane {lane} out of range for {policy.lanes} lanes")
    vals = np.asarray(values, dtype=np.int64)
    if vals.size and (int(vals.min()) < 0 or int(vals.max()) > policy.field_mask):
        raise PackingError(
            f"lane_insert values must fit a {policy.field_bits}-bit field"
        )
    pw = _as_u64(packed)
    shift = np.uint64(lane * policy.field_bits)
    hole = ~(np.uint64(policy.field_mask) << shift) & _U64_REG_MASK
    out = (pw & hole) | (vals.astype(np.uint64) << shift)
    return out.astype(np.uint32)
