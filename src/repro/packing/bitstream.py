"""Dense bit-stream packing of arbitrary-width fields.

Register operand packing (the paper's contribution) aligns values to
carry-safe fields inside one register; *storage* of arbitrary formats
in DRAM wants the opposite — no padding at all.  A tensor of 6-bit
codes (FP6 weights, INT6 activations) stores 5.33 values per 32-bit
word with fields straddling word boundaries.  This module implements
that codec, vectorized:

* :func:`pack_bitstream` — n-bit codes -> dense uint32 word stream;
* :func:`unpack_bitstream` — the exact inverse.

Together with :mod:`repro.formats.lowfp` this completes the "arbitrary
numeric formats" story: quantize to any element format, store densely,
load + expand to a packed register layout for SWAR compute.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError
from repro.utils.validation import check_dtype_integer

__all__ = [
    "pack_bitstream",
    "unpack_bitstream",
    "bitstream_words",
    "expand_to_registers",
]

_WORD = 32


def bitstream_words(count: int, bits: int) -> int:
    """uint32 words needed for ``count`` fields of ``bits`` bits."""
    if count < 0:
        raise PackingError(f"count must be >= 0, got {count}")
    _check_bits(bits)
    return -(-count * bits // _WORD)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= _WORD:
        raise PackingError(f"field width must be 1..32, got {bits}")


def pack_bitstream(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative ``bits``-wide codes into a dense uint32 stream.

    Value ``i`` occupies bit positions ``[i*bits, (i+1)*bits)`` of the
    stream, little-endian within and across words (value 0's LSB is
    word 0's bit 0).  The tail of the last word is zero.
    """
    _check_bits(bits)
    arr = np.asarray(values)
    check_dtype_integer("values", arr)
    if arr.ndim != 1:
        raise PackingError("pack_bitstream expects a 1-D array")
    v = arr.astype(np.uint64)
    if v.size and int(arr.min()) < 0:
        raise PackingError("bitstream codes must be non-negative")
    if v.size and bits < 64 and int(v.max()) >> bits:
        raise PackingError(f"codes exceed {bits} bits")

    n = v.size
    words = bitstream_words(n, bits)
    out = np.zeros(words, dtype=np.uint64)
    starts = np.arange(n, dtype=np.uint64) * np.uint64(bits)
    word_idx = (starts // _WORD).astype(np.int64)
    offset = starts % _WORD

    # Low part: bits that land in the starting word.
    np.add.at(out, word_idx, (v << offset) & np.uint64(0xFFFFFFFF))
    # High part: spill into the next word when the field straddles.
    spill = offset + np.uint64(bits) > _WORD
    if np.any(spill):
        hi = v[spill] >> (np.uint64(_WORD) - offset[spill])
        np.add.at(out, word_idx[spill] + 1, hi)
    return out.astype(np.uint32)


def unpack_bitstream(words: np.ndarray, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bitstream`; returns ``count`` int64 codes."""
    _check_bits(bits)
    w = np.asarray(words)
    if w.dtype != np.uint32:
        raise PackingError(f"bitstream words must be uint32, got {w.dtype}")
    if count < 0:
        raise PackingError(f"count must be >= 0, got {count}")
    needed = bitstream_words(count, bits)
    if w.size < needed:
        raise PackingError(
            f"{count} fields of {bits} bits need {needed} words, got {w.size}"
        )
    w64 = w.astype(np.uint64)
    starts = np.arange(count, dtype=np.uint64) * np.uint64(bits)
    word_idx = (starts // _WORD).astype(np.int64)
    offset = starts % _WORD
    mask = np.uint64((1 << bits) - 1)

    lo = w64[word_idx] >> offset
    out = lo & mask
    spill = offset + np.uint64(bits) > _WORD
    if np.any(spill):
        hi = w64[word_idx[spill] + 1] << (np.uint64(_WORD) - offset[spill])
        out[spill] = (lo[spill] | hi) & mask
    return out.astype(np.int64)


def expand_to_registers(
    words: np.ndarray, count: int, bits: int, policy
) -> np.ndarray:
    """Dense storage -> carry-safe register layout (the load-expand step).

    This is the bridge between the two packings: values live in DRAM as
    a dense ``bits``-wide bitstream (maximum density) and are expanded
    on load into ``policy``'s zero-padded lane fields (carry-safe SWAR
    compute).  ``policy.value_bits`` must be able to hold the stored
    codes.

    Returns uint32 registers, ``ceil(count / policy.lanes)`` of them.
    """
    from repro.packing.packer import Packer

    if bits > policy.value_bits:
        raise PackingError(
            f"{bits}-bit stored codes do not fit the policy's "
            f"{policy.value_bits}-bit lanes"
        )
    values = unpack_bitstream(words, count, bits)
    return Packer(policy).pack(values)
