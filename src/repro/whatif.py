"""Cross-backend design-space what-if explorer (ROADMAP item 4).

Sweeps the bitwidth x strategy x backend design space through the
parallel sweep runner (:func:`repro.runner.run_sweep`) with the
content-addressed timing cache as the shared artifact store: every
point builds a :class:`~repro.perfmodel.PerformanceModel` for its
backend, prices one full ViT inference, and reports the three
first-class metrics —

* **throughput** — inferences per second,
* **energy** — joules per inference (:mod:`repro.arch.energy`),
* **density** — useful ops/s per mm^2 of die (:mod:`repro.arch.density`)

— from which per-backend and cross-backend Pareto frontiers are
extracted (maximize throughput and density, minimize energy; dominated
points excluded, exact ties kept).

Everything in :meth:`WhatifReport.summary` is derived from simulator
outputs only — no wall clocks, no counters — so same-seed reruns are
byte-identical and warm-cache reruns (``REPRO_REQUIRE_WARM_CACHE=1``)
produce the same document with zero simulations.  The CLI entry point
is ``repro whatif --backend NAME|all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.registry import backend_names, resolve_backend
from repro.runner import SweepReport, run_sweep

__all__ = [
    "WHATIF_BITS",
    "WHATIF_STRATEGIES",
    "WhatifPoint",
    "WhatifReport",
    "pareto_frontier",
    "run_whatif",
]

#: Operand bitwidths the explorer sweeps (Fig. 3's packing-relevant
#: corners: 8-bit packs 2 lanes, 4-bit packs 4).
WHATIF_BITS: tuple[int, ...] = (4, 8)

#: Table 3 strategies the explorer sweeps — the Tensor baseline, both
#: published fusion baselines, and VitBit.
WHATIF_STRATEGIES: tuple[str, ...] = ("TC", "Tacker", "TC+IC+FC", "VitBit")


@dataclass(frozen=True)
class WhatifPoint:
    """One priced (backend, bits, strategy) design point."""

    backend: str
    bits: int
    strategy: str
    total_seconds: float
    throughput_inf_per_s: float
    energy_joules: float
    density_ops_per_s_mm2: float

    def metrics(self) -> dict[str, float]:
        """The Pareto-relevant metric vector."""
        return {
            "throughput_inf_per_s": self.throughput_inf_per_s,
            "energy_joules": self.energy_joules,
            "density_ops_per_s_mm2": self.density_ops_per_s_mm2,
        }

    def as_dict(self) -> dict:
        """JSON-serializable row (deterministic: simulator outputs only)."""
        return {
            "backend": self.backend,
            "bits": self.bits,
            "strategy": self.strategy,
            "total_seconds": self.total_seconds,
            "throughput_inf_per_s": self.throughput_inf_per_s,
            "energy_joules": self.energy_joules,
            "density_ops_per_s_mm2": self.density_ops_per_s_mm2,
        }


def pareto_frontier(
    points: list,
    *,
    maximize: tuple[str, ...] = ("throughput_inf_per_s", "density_ops_per_s_mm2"),
    minimize: tuple[str, ...] = ("energy_joules",),
) -> list:
    """Non-dominated subset of ``points``, input order preserved.

    ``points`` are :class:`WhatifPoint` (or anything with a
    ``metrics()`` dict).  A point is dominated when some other point is
    at least as good on *every* metric and strictly better on at least
    one; exact metric ties dominate in neither direction, so tied
    points are all kept.
    """

    def dominates(a: dict, b: dict) -> bool:
        no_worse = all(a[m] >= b[m] for m in maximize) and all(
            a[m] <= b[m] for m in minimize
        )
        better = any(a[m] > b[m] for m in maximize) or any(
            a[m] < b[m] for m in minimize
        )
        return no_worse and better

    vecs = [p.metrics() for p in points]
    return [
        p
        for i, p in enumerate(points)
        if not any(dominates(vecs[j], vecs[i]) for j in range(len(points)) if j != i)
    ]


def _whatif_point(point: tuple) -> dict:
    """Worker: price one (backend, bits, strategy) design point.

    Module-level and fed only primitives (the backend crosses the
    process boundary as its registry *name*), so it pickles cleanly to
    sweep workers.  ``clamp_ratio=True`` for the same reason as
    :func:`repro.runner._price_strategy`: an inapplicable split rule on
    one exotic backend degrades that point instead of killing the sweep.
    """
    from repro.arch.density import arithmetic_density
    from repro.arch.energy import inference_energy
    from repro.fusion.strategies import strategy_by_name
    from repro.packing.policy import policy_for_bitwidth
    from repro.perfmodel.model import PerformanceModel
    from repro.vit.runtime import time_inference
    from repro.vit.workload import vit_workload
    from repro.vit.zoo import model_config

    backend, bits, strategy_name, model_name, batch = point
    machine = resolve_backend(backend)
    strategy = strategy_by_name(strategy_name)
    config = model_config(model_name)
    pm = PerformanceModel(
        machine, policy=policy_for_bitwidth(bits), clamp_ratio=True
    )
    timing = time_inference(pm, strategy, config=config, batch=batch)
    energy = inference_energy(pm, strategy, config=config, batch=batch)
    useful_ops = sum(
        kw.gemm.flops * kw.repeat
        for kw in vit_workload(config, batch=batch)
        if kw.kind == "gemm"
    )
    return {
        "total_seconds": timing.total_seconds,
        "throughput_inf_per_s": batch / timing.total_seconds,
        "energy_joules": energy.total / batch,
        "density_ops_per_s_mm2": arithmetic_density(
            machine, useful_ops, timing.total_seconds
        ),
    }


@dataclass
class WhatifReport:
    """Outcome of one :func:`run_whatif` sweep."""

    model_name: str
    batch: int
    backends: tuple[str, ...]
    points: list[WhatifPoint] = field(default_factory=list)
    sweep: SweepReport | None = None

    def backend_points(self, backend: str) -> list[WhatifPoint]:
        """All design points priced on ``backend``, sweep order."""
        return [p for p in self.points if p.backend == backend]

    def pareto(self, backend: str | None = None) -> list[WhatifPoint]:
        """Pareto frontier — per backend, or cross-backend when ``None``."""
        pts = self.points if backend is None else self.backend_points(backend)
        return pareto_frontier(pts)

    def summary(self) -> dict:
        """The deterministic ``"whatif_backends"`` summary section.

        Contains only simulator-derived values (no wall clocks, no
        cache counters), so cold and warm same-seed runs serialize
        byte-identically.
        """
        per_backend = {}
        for b in self.backends:
            per_backend[b] = {
                "machine": resolve_backend(b).name,
                "points": [p.as_dict() for p in self.backend_points(b)],
                "pareto": [p.as_dict() for p in self.pareto(b)],
            }
        return {
            "model": self.model_name,
            "batch": self.batch,
            "bits": sorted({p.bits for p in self.points}),
            "strategies": sorted({p.strategy for p in self.points}),
            "backends": per_backend,
            "global_pareto": [p.as_dict() for p in self.pareto()],
        }

    def render(self) -> str:
        """Human-readable cross-backend table, frontier rows starred."""
        from repro.utils.tables import format_table

        frontier = set(map(id, self.pareto()))
        rows = [
            (
                ("* " if id(p) in frontier else "  ") + p.backend,
                p.bits,
                p.strategy,
                p.total_seconds * 1e3,
                p.throughput_inf_per_s,
                p.energy_joules * 1e3,
                p.density_ops_per_s_mm2 / 1e9,
            )
            for p in self.points
        ]
        return format_table(
            [
                "backend (* = global Pareto)",
                "bits",
                "strategy",
                "latency (ms)",
                "inf/s",
                "mJ/inf",
                "Gops/s/mm2",
            ],
            rows,
            title=f"what-if — {self.model_name} @ batch {self.batch}, "
            f"{len(self.backends)} backend(s)",
            ndigits=2,
        )


def run_whatif(
    backends: tuple[str, ...] | list[str] | None = None,
    *,
    bits: tuple[int, ...] = WHATIF_BITS,
    strategies: tuple[str, ...] = WHATIF_STRATEGIES,
    model_name: str = "vit-base",
    batch: int = 8,
    processes: int | None = None,
) -> WhatifReport:
    """Run the bitwidth x strategy x backend sweep and collect frontiers.

    ``backends=None`` sweeps every registered backend.  Unknown names
    fail fast (in the parent, listing the registered choices) before
    any work is dispatched.
    """
    names = tuple(backends) if backends else backend_names()
    for n in names:
        resolve_backend(n)
    pts = [
        (b, nbits, s, model_name, batch)
        for b in names
        for nbits in bits
        for s in strategies
    ]
    sweep = run_sweep(
        _whatif_point,
        pts,
        labels=[f"{b}/{nbits}b/{s}" for b, nbits, s, _, _ in pts],
        processes=processes,
        label=f"what-if backends — {model_name} @ batch {batch}",
    )
    points = [
        WhatifPoint(backend=b, bits=nbits, strategy=s, **value)
        for (b, nbits, s, _, _), value in zip(pts, sweep.values)
    ]
    return WhatifReport(
        model_name=model_name,
        batch=batch,
        backends=names,
        points=points,
        sweep=sweep,
    )
