"""The SM issue-loop simulator.

Each SM sub-partition has one warp scheduler that issues at most one
instruction per cycle, chosen loose-round-robin among resident warps
whose next instruction's pipe is free and whose issue gap has elapsed.
Pipes are occupied for their initiation interval per instruction.  This
is the mechanism that makes the paper's story quantitative:

* an INT-only kernel leaves the FP pipe dark and is capped at
  ``1/ii_INT`` issue throughput for arithmetic;
* assigning alternate warps to INT and FP work (Sec. 3.3's warp-level
  interleaving) lets one scheduler keep both 2-cycle pipes busy,
  approaching 1 IPC — the Fig. 10 effect;
* packing shortens the INT instruction stream by the packing factor —
  the Fig. 9 effect.

The loop fast-forwards over cycles where nothing can issue, so
simulation cost scales with issued instructions, not wall-clock cycles.
On top of that, the default ``"periodic"`` engine exploits steady-state
loop homogeneity (cf. the work-scaling argument in
:mod:`repro.perfmodel.model`): the scheduler's *relative* state —
per-warp segment cursor and readiness offsets, per-pipe busy offsets —
is finite, so once it recurs the schedule is periodic and whole periods
are advanced arithmetically in O(1).  The result is bit-identical to
``mode="exact"`` (the plain loop); see ``docs/PERF.md`` for the
recurrence argument.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.program import WarpProgram
from repro.sim.trace import PartitionStats
from repro.arch.specs import SMSpec

__all__ = ["SubPartitionSim", "SMSim", "SIM_MODES", "clear_partition_memo"]

_MAX_DEFAULT_CYCLES = 50_000_000

#: Issue-loop engines: ``"periodic"`` (steady-state fast-forward, the
#: default) and ``"exact"`` (the plain cycle loop, kept as the escape
#: hatch and the oracle the property tests compare against).
SIM_MODES = ("periodic", "exact")

#: Recurrence-anchor budget: beyond this many distinct relative states
#: the detector stops recording (a workload this irregular has no
#: steady state worth finding; memory stays bounded).
_MAX_TRACKED_STATES = 8192

#: Process-wide partition-result memo (see :meth:`SMSim.run`): launches
#: lowered from the same kernel family repeat identical warp buckets,
#: and the simulator is deterministic, so equal inputs replay equal
#: stats.  Bounded; cleared wholesale when full.
_PARTITION_MEMO: dict[tuple, PartitionStats] = {}
_PARTITION_MEMO_MAX = 2048


def clear_partition_memo() -> None:
    """Drop the process-wide partition-result memo (test hygiene)."""
    _PARTITION_MEMO.clear()


class _WarpState:
    """Mutable per-warp cursor over a compressed program."""

    __slots__ = (
        "program", "ops", "seg", "remaining", "iters_left", "next_ready", "done"
    )

    def __init__(self, program: WarpProgram):
        self.program = program
        # Per-segment op classes, unpacked once: the issue scan reads
        # the current op on every eligibility probe.
        self.ops = tuple(op for op, _ in program.body)
        self.seg = 0
        self.iters_left = program.iterations
        self.next_ready = 0
        body = program.body
        if not body or program.iterations == 0:
            self.done = True
            self.remaining = 0
        else:
            self.done = False
            self.remaining = body[0][1]

    def current_op(self) -> OpClass:
        """Op class of the instruction this warp issues next."""
        return self.ops[self.seg]

    def advance(self) -> None:
        """Consume one instruction."""
        self.remaining -= 1
        if self.remaining:
            return
        body = self.program.body
        self.seg += 1
        if self.seg == len(body):
            self.seg = 0
            self.iters_left -= 1
            if self.iters_left == 0:
                self.done = True
                return
        self.remaining = body[self.seg][1]


class SubPartitionSim:
    """One scheduler + pipe set, simulating a set of resident warps.

    ``policy`` selects the eligible-warp arbiter:

    * ``"oldest"`` (default) — greedy-then-oldest: the lowest-index
      eligible warp issues, i.e. list position is priority.  This is
      the Volta+ hardware policy and it is what keeps the long-latency
      Tensor pipe fed when a few Tensor warps share the scheduler with
      many CUDA warps (the fused-kernel case).
    * ``"lrr"`` — loose round robin, kept for the scheduling ablation;
      it visibly starves Tensor warps in fused kernels.

    ``mode`` selects the issue-loop engine (see :data:`SIM_MODES`):
    ``"periodic"`` fast-forwards recurring steady-state schedules by
    whole periods and is bit-identical to ``"exact"``.
    """

    #: Process-wide count of :meth:`run` calls — the benchmark harness
    #: uses it to assert that warm-cache reruns simulate nothing.
    invocations = 0

    def __init__(
        self,
        timings: dict[OpClass, PipeTiming],
        warps: list[WarpProgram],
        *,
        policy: str = "oldest",
        mode: str = "periodic",
    ):
        if policy not in ("oldest", "lrr"):
            raise SimulationError(f"unknown scheduling policy {policy!r}")
        if mode not in SIM_MODES:
            raise SimulationError(
                f"unknown simulation mode {mode!r}; expected one of {SIM_MODES}"
            )
        self.policy = policy
        self.mode = mode
        self.timings = timings
        self.warps = [_WarpState(w) for w in warps]

    def _state_key(
        self,
        cycle: int,
        pipe_busy_until: dict[OpClass, int],
        op_order: tuple[OpClass, ...],
        rr: int,
    ) -> tuple:
        """Normalized relative scheduler state (the recurrence signature).

        Per warp: segment cursor, instructions left in the segment, and
        readiness offset (clamped at 0 — "ready since when" cannot
        influence the future).  Per pipe: busy offset, same clamp.
        ``iters_left`` is deliberately excluded: it is the one unbounded
        coordinate, and the fast-forward handles it arithmetically.
        """
        warp_sig = tuple(
            0
            if w.done
            else (
                w.seg,
                w.remaining,
                w.next_ready - cycle if w.next_ready > cycle else 0,
            )
            for w in self.warps
        )
        pipe_sig = tuple(
            pipe_busy_until[op] - cycle if pipe_busy_until[op] > cycle else 0
            for op in op_order
        )
        return (warp_sig, pipe_sig, rr if self.policy == "lrr" else 0)

    def run(self, max_cycles: int = _MAX_DEFAULT_CYCLES) -> PartitionStats:
        """Run to completion; returns issue statistics.

        Raises :class:`~repro.errors.SimulationError` if the workload
        does not drain within ``max_cycles`` (a deadlock guard; the
        model has no deadlocks, so this indicates an absurd workload).
        """
        SubPartitionSim.invocations += 1
        stats = PartitionStats()
        warps = self.warps
        pending = sum(0 if w.done else 1 for w in warps)
        if pending == 0:
            return stats

        timings = self.timings
        op_order = tuple(timings)
        # Flattened timing tables: the issue loop reads these once per
        # eligibility probe, so attribute chains are hoisted out.
        ii_of = {op: t.initiation_interval for op, t in timings.items()}
        gap_of = {op: t.issue_gap for op, t in timings.items()}
        pipe_busy_until = {op: 0 for op in timings}
        issued = {op: 0 for op in timings}
        busy_cycles = {op: 0 for op in timings}
        cycle = 0
        idle = 0
        rr = 0
        n = len(warps)
        lrr = self.policy == "lrr"

        detect = self.mode == "periodic"
        # Recurrence anchors: relative state -> absolute progress at the
        # moment that state was first seen.  Anchors are only taken at
        # the *reference warp's* iteration boundaries (the lowest-index
        # live warp): a periodic schedule revisits those anchors once
        # per period, and sampling one warp's wraps keeps detector
        # overhead at O(1) amortized per issued instruction.
        seen: dict[tuple, tuple] = {}
        snapshot_due = False
        ref = next((i for i, w in enumerate(warps) if not w.done), -1)

        while pending:
            if cycle > max_cycles:
                raise SimulationError(
                    f"workload did not drain within {max_cycles} cycles"
                )
            if snapshot_due:
                snapshot_due = False
                key = self._state_key(cycle, pipe_busy_until, op_order, rr)
                prev = seen.get(key)
                if prev is None:
                    if len(seen) < _MAX_TRACKED_STATES:
                        seen[key] = (
                            cycle,
                            tuple(w.iters_left for w in warps),
                            tuple(issued[op] for op in op_order),
                            tuple(busy_cycles[op] for op in op_order),
                            idle,
                        )
                else:
                    p_cycle, p_iters, p_issued, p_busy, p_idle = prev
                    period = cycle - p_cycle
                    # Whole periods every warp can replay without any
                    # warp finishing mid-period: the schedule between
                    # the two visits repeats verbatim until then.
                    skips = None
                    for i, w in enumerate(warps):
                        d = p_iters[i] - w.iters_left
                        if d > 0:
                            avail = (w.iters_left - 1) // d
                            skips = avail if skips is None else min(skips, avail)
                    if period > 0 and skips:
                        jump = skips * period
                        for i, w in enumerate(warps):
                            d = p_iters[i] - w.iters_left
                            if d:
                                w.iters_left -= skips * d
                            if w.next_ready > cycle:
                                w.next_ready += jump
                        for j, op in enumerate(op_order):
                            if pipe_busy_until[op] > cycle:
                                pipe_busy_until[op] += jump
                            issued[op] += skips * (issued[op] - p_issued[j])
                            busy_cycles[op] += skips * (
                                busy_cycles[op] - p_busy[j]
                            )
                        idle += skips * (idle - p_idle)
                        cycle += jump
                        seen.clear()
                        continue
            issued_this_cycle = False
            # "oldest": scan from index 0 (list position = priority).
            # "lrr": scan from the warp after the last issuer.
            for k in range(n) if not lrr else range(rr, rr + n):
                idx = k if k < n else k - n
                w = warps[idx]
                if w.done or w.next_ready > cycle:
                    continue
                op = w.ops[w.seg]
                if pipe_busy_until[op] > cycle:
                    continue
                pipe_busy_until[op] = cycle + ii_of[op]
                w.next_ready = cycle + gap_of[op]
                issued[op] += 1
                busy_cycles[op] += ii_of[op]
                # Inline of _WarpState.advance(), plus wrap/done hooks
                # for the recurrence detector.
                w.remaining -= 1
                if not w.remaining:
                    body = w.program.body
                    seg = w.seg + 1
                    if seg == len(body):
                        w.seg = 0
                        w.iters_left -= 1
                        if w.iters_left == 0:
                            w.done = True
                            pending -= 1
                            if detect:
                                # The warp population changed; anchors
                                # recorded against the old population
                                # cannot recur.
                                seen.clear()
                                if idx == ref:
                                    ref = next(
                                        (
                                            i
                                            for i, w2 in enumerate(warps)
                                            if not w2.done
                                        ),
                                        -1,
                                    )
                        else:
                            w.remaining = body[0][1]
                            if detect and idx == ref:
                                snapshot_due = True
                    else:
                        w.seg = seg
                        w.remaining = body[seg][1]
                rr = idx + 1 if idx + 1 < n else 0
                issued_this_cycle = True
                break
            if issued_this_cycle:
                cycle += 1
                continue
            # Nothing issuable: fast-forward to the next time anything
            # could become eligible.
            horizon: list[int] = []
            for w in warps:
                if not w.done:
                    if w.next_ready > cycle:
                        horizon.append(w.next_ready)
                    else:
                        horizon.append(pipe_busy_until[w.ops[w.seg]])
            nxt = min(horizon)
            if nxt <= cycle:  # pragma: no cover - defensive
                nxt = cycle + 1
            idle += nxt - cycle
            cycle = nxt

        # The kernel finishes when the last pipe drains, not at the
        # last issue slot (a lone instruction still occupies its pipe
        # for the full initiation interval).
        cycle = max([cycle] + list(pipe_busy_until.values()))
        stats.cycles = cycle
        stats.idle_cycles = idle
        stats.issued = {op: c for op, c in issued.items() if c}
        stats.pipe_busy = {op: min(c, cycle) for op, c in busy_cycles.items() if c}
        return stats


class SMSim:
    """A full SM: ``partitions`` independent sub-partition simulators.

    Warps are distributed round-robin across sub-partitions (the
    hardware block scheduler's policy for evenly sized blocks); the SM
    finishes when its slowest partition drains.
    """

    def __init__(
        self,
        sm: SMSpec,
        timings: dict[OpClass, PipeTiming] | None = None,
        *,
        policy: str = "oldest",
        mode: str = "periodic",
    ):
        self.sm = sm
        self.timings = timings if timings is not None else default_timings(sm)
        self.policy = policy
        self.mode = mode

    def distribute(self, warps: list[WarpProgram]) -> list[list[WarpProgram]]:
        """Round-robin warp placement across sub-partitions."""
        if len(warps) > self.sm.max_warps_per_sm:
            raise SimulationError(
                f"{len(warps)} warps exceed SM residency of "
                f"{self.sm.max_warps_per_sm}"
            )
        buckets: list[list[WarpProgram]] = [[] for _ in range(self.sm.partitions)]
        for i, w in enumerate(warps):
            buckets[i % self.sm.partitions].append(w)
        return buckets

    def run(self, warps: list[WarpProgram]) -> list[PartitionStats]:
        """Simulate all partitions; returns per-partition stats.

        Equal buckets are simulated once and the (deterministic) result
        is replayed for the other partitions — the common case, since
        the warp-set lowering deals roles in multiples of the partition
        count precisely so the buckets come out identical.  The memo is
        process-wide: launches lowered from the same kernel family
        (e.g. all the attention GEMMs of one model) repeat identical
        buckets across separate :meth:`run` calls too.
        """
        results = []
        timing_sig = tuple(
            (op, t.initiation_interval, t.issue_gap)
            for op, t in self.timings.items()
        )
        for bucket in self.distribute(warps):
            key = (timing_sig, self.policy, self.mode, tuple(bucket))
            prev = _PARTITION_MEMO.get(key)
            if prev is None:
                prev = SubPartitionSim(
                    self.timings, bucket, policy=self.policy, mode=self.mode
                ).run()
                if len(_PARTITION_MEMO) >= _PARTITION_MEMO_MAX:
                    _PARTITION_MEMO.clear()
                _PARTITION_MEMO[key] = prev
            results.append(
                PartitionStats(
                    cycles=prev.cycles,
                    issued=dict(prev.issued),
                    pipe_busy=dict(prev.pipe_busy),
                    idle_cycles=prev.idle_cycles,
                )
            )
        return results
