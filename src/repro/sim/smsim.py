"""The SM issue-loop simulator.

Each SM sub-partition has one warp scheduler that issues at most one
instruction per cycle, chosen loose-round-robin among resident warps
whose next instruction's pipe is free and whose issue gap has elapsed.
Pipes are occupied for their initiation interval per instruction.  This
is the mechanism that makes the paper's story quantitative:

* an INT-only kernel leaves the FP pipe dark and is capped at
  ``1/ii_INT`` issue throughput for arithmetic;
* assigning alternate warps to INT and FP work (Sec. 3.3's warp-level
  interleaving) lets one scheduler keep both 2-cycle pipes busy,
  approaching 1 IPC — the Fig. 10 effect;
* packing shortens the INT instruction stream by the packing factor —
  the Fig. 9 effect.

The loop fast-forwards over cycles where nothing can issue, so
simulation cost scales with issued instructions, not wall-clock cycles.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.program import WarpProgram
from repro.sim.trace import PartitionStats
from repro.arch.specs import SMSpec

__all__ = ["SubPartitionSim", "SMSim"]

_MAX_DEFAULT_CYCLES = 50_000_000


class _WarpState:
    """Mutable per-warp cursor over a compressed program."""

    __slots__ = ("program", "seg", "remaining", "iters_left", "next_ready", "done")

    def __init__(self, program: WarpProgram):
        self.program = program
        self.seg = 0
        self.iters_left = program.iterations
        self.next_ready = 0
        body = program.body
        if not body or program.iterations == 0:
            self.done = True
            self.remaining = 0
        else:
            self.done = False
            self.remaining = body[0][1]

    def current_op(self) -> OpClass:
        """Op class of the instruction this warp issues next."""
        return self.program.body[self.seg][0]

    def advance(self) -> None:
        """Consume one instruction."""
        self.remaining -= 1
        if self.remaining:
            return
        body = self.program.body
        self.seg += 1
        if self.seg == len(body):
            self.seg = 0
            self.iters_left -= 1
            if self.iters_left == 0:
                self.done = True
                return
        self.remaining = body[self.seg][1]


class SubPartitionSim:
    """One scheduler + pipe set, simulating a set of resident warps.

    ``policy`` selects the eligible-warp arbiter:

    * ``"oldest"`` (default) — greedy-then-oldest: the lowest-index
      eligible warp issues, i.e. list position is priority.  This is
      the Volta+ hardware policy and it is what keeps the long-latency
      Tensor pipe fed when a few Tensor warps share the scheduler with
      many CUDA warps (the fused-kernel case).
    * ``"lrr"`` — loose round robin, kept for the scheduling ablation;
      it visibly starves Tensor warps in fused kernels.
    """

    def __init__(
        self,
        timings: dict[OpClass, PipeTiming],
        warps: list[WarpProgram],
        *,
        policy: str = "oldest",
    ):
        if policy not in ("oldest", "lrr"):
            raise SimulationError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self.timings = timings
        self.warps = [_WarpState(w) for w in warps]

    def run(self, max_cycles: int = _MAX_DEFAULT_CYCLES) -> PartitionStats:
        """Run to completion; returns issue statistics.

        Raises :class:`~repro.errors.SimulationError` if the workload
        does not drain within ``max_cycles`` (a deadlock guard; the
        model has no deadlocks, so this indicates an absurd workload).
        """
        stats = PartitionStats()
        warps = self.warps
        pending = sum(0 if w.done else 1 for w in warps)
        if pending == 0:
            return stats

        timings = self.timings
        pipe_busy_until = {op: 0 for op in timings}
        issued = {op: 0 for op in timings}
        busy_cycles = {op: 0 for op in timings}
        cycle = 0
        rr = 0
        n = len(warps)

        while pending:
            if cycle > max_cycles:
                raise SimulationError(
                    f"workload did not drain within {max_cycles} cycles"
                )
            issued_this_cycle = False
            # "oldest": scan from index 0 (list position = priority).
            # "lrr": scan from the warp after the last issuer.
            base = rr if self.policy == "lrr" else 0
            for k in range(n):
                w = warps[(base + k) % n]
                if w.done or w.next_ready > cycle:
                    continue
                op = w.current_op()
                if pipe_busy_until[op] > cycle:
                    continue
                t = timings[op]
                pipe_busy_until[op] = cycle + t.initiation_interval
                w.next_ready = cycle + t.issue_gap
                issued[op] += 1
                busy_cycles[op] += t.initiation_interval
                w.advance()
                if w.done:
                    pending -= 1
                rr = (base + k + 1) % n
                issued_this_cycle = True
                break
            if issued_this_cycle:
                cycle += 1
                continue
            # Nothing issuable: fast-forward to the next time anything
            # could become eligible.
            horizon: list[int] = []
            for w in warps:
                if not w.done:
                    if w.next_ready > cycle:
                        horizon.append(w.next_ready)
                    else:
                        horizon.append(pipe_busy_until[w.current_op()])
            nxt = min(horizon)
            if nxt <= cycle:  # pragma: no cover - defensive
                nxt = cycle + 1
            stats.idle_cycles += nxt - cycle
            cycle = nxt

        # The kernel finishes when the last pipe drains, not at the
        # last issue slot (a lone instruction still occupies its pipe
        # for the full initiation interval).
        cycle = max([cycle] + list(pipe_busy_until.values()))
        stats.cycles = cycle
        stats.issued = {op: c for op, c in issued.items() if c}
        stats.pipe_busy = {op: min(c, cycle) for op, c in busy_cycles.items() if c}
        return stats


class SMSim:
    """A full SM: ``partitions`` independent sub-partition simulators.

    Warps are distributed round-robin across sub-partitions (the
    hardware block scheduler's policy for evenly sized blocks); the SM
    finishes when its slowest partition drains.
    """

    def __init__(
        self,
        sm: SMSpec,
        timings: dict[OpClass, PipeTiming] | None = None,
        *,
        policy: str = "oldest",
    ):
        self.sm = sm
        self.timings = timings if timings is not None else default_timings(sm)
        self.policy = policy

    def distribute(self, warps: list[WarpProgram]) -> list[list[WarpProgram]]:
        """Round-robin warp placement across sub-partitions."""
        if len(warps) > self.sm.max_warps_per_sm:
            raise SimulationError(
                f"{len(warps)} warps exceed SM residency of "
                f"{self.sm.max_warps_per_sm}"
            )
        buckets: list[list[WarpProgram]] = [[] for _ in range(self.sm.partitions)]
        for i, w in enumerate(warps):
            buckets[i % self.sm.partitions].append(w)
        return buckets

    def run(self, warps: list[WarpProgram]) -> list[PartitionStats]:
        """Simulate all partitions; returns per-partition stats."""
        results = []
        for bucket in self.distribute(warps):
            results.append(
                SubPartitionSim(self.timings, bucket, policy=self.policy).run()
            )
        return results
