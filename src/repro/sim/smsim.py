"""The SM issue-loop simulator.

Each SM sub-partition has one warp scheduler that issues at most one
instruction per cycle, chosen loose-round-robin among resident warps
whose next instruction's pipe is free and whose issue gap has elapsed.
Pipes are occupied for their initiation interval per instruction.  This
is the mechanism that makes the paper's story quantitative:

* an INT-only kernel leaves the FP pipe dark and is capped at
  ``1/ii_INT`` issue throughput for arithmetic;
* assigning alternate warps to INT and FP work (Sec. 3.3's warp-level
  interleaving) lets one scheduler keep both 2-cycle pipes busy,
  approaching 1 IPC — the Fig. 10 effect;
* packing shortens the INT instruction stream by the packing factor —
  the Fig. 9 effect.

The loop fast-forwards over cycles where nothing can issue, so
simulation cost scales with issued instructions, not wall-clock cycles.
On top of that, the default ``"periodic"`` engine exploits steady-state
loop homogeneity (cf. the work-scaling argument in
:mod:`repro.perfmodel.model`): the scheduler's *relative* state —
per-warp segment cursor and readiness offsets, per-pipe busy offsets —
is finite, so once it recurs the schedule is periodic and whole periods
are advanced arithmetically in O(1).  The result is bit-identical to
``mode="exact"`` (the plain loop); see ``docs/PERF.md`` for the
recurrence argument.
"""

from __future__ import annotations

from repro import obs
from repro.errors import SimulationError
from repro.sim import _jit
from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.program import WarpProgram
from repro.sim.trace import PartitionStats
from repro.arch.specs import SMSpec

__all__ = [
    "SubPartitionSim",
    "SMSim",
    "SIM_MODES",
    "clear_partition_memo",
    "clear_schedule_memo",
]

_MAX_DEFAULT_CYCLES = 50_000_000

#: Issue-loop engines: ``"periodic"`` (steady-state fast-forward, the
#: default) and ``"exact"`` (the plain cycle loop, kept as the escape
#: hatch and the oracle the property tests compare against).
SIM_MODES = ("periodic", "exact")

#: Recurrence-anchor budget: beyond this many distinct relative states
#: the detector stops recording (a workload this irregular has no
#: steady state worth finding; memory stays bounded).
_MAX_TRACKED_STATES = 8192

#: Process-wide partition-result memo (see :meth:`SMSim.run`): launches
#: lowered from the same kernel family repeat identical warp buckets,
#: and the simulator is deterministic, so equal inputs replay equal
#: stats.  Bounded; cleared wholesale when full.
_PARTITION_MEMO: dict[tuple, PartitionStats] = {}
_PARTITION_MEMO_MAX = 2048

#: Process-wide steady-state *schedule* memo, keyed by (timing
#: signature, policy, per-warp loop bodies) — deliberately excluding
#: iteration counts.  Issue decisions never read ``iters_left`` (only
#: completion does), so the warm-up schedule up to the first detected
#: recurrence replays verbatim for any kernel with the same loop
#: structure whose warps run at least that many iterations.  Recording
#: the two anchor visits lets sibling kernels — e.g. every layer of a
#: ViT forward pass — land directly on the steady state.
_SCHEDULE_MEMO: dict[tuple, tuple] = {}
_SCHEDULE_MEMO_MAX = 1024


def clear_partition_memo() -> None:
    """Drop the process-wide partition-result memo (test hygiene)."""
    _PARTITION_MEMO.clear()


def clear_schedule_memo() -> None:
    """Drop the process-wide steady-state schedule memo (test hygiene)."""
    _SCHEDULE_MEMO.clear()


class _WarpState:
    """Mutable per-warp cursor over a compressed program."""

    __slots__ = (
        "program", "ops", "seg", "remaining", "iters_left", "next_ready", "done"
    )

    def __init__(self, program: WarpProgram):
        self.program = program
        # Per-segment op classes, unpacked once: the issue scan reads
        # the current op on every eligibility probe.
        self.ops = tuple(op for op, _ in program.body)
        self.seg = 0
        self.iters_left = program.iterations
        self.next_ready = 0
        body = program.body
        if not body or program.iterations == 0:
            self.done = True
            self.remaining = 0
        else:
            self.done = False
            self.remaining = body[0][1]

    def current_op(self) -> OpClass:
        """Op class of the instruction this warp issues next."""
        return self.ops[self.seg]

    def advance(self) -> None:
        """Consume one instruction."""
        self.remaining -= 1
        if self.remaining:
            return
        body = self.program.body
        self.seg += 1
        if self.seg == len(body):
            self.seg = 0
            self.iters_left -= 1
            if self.iters_left == 0:
                self.done = True
                return
        self.remaining = body[self.seg][1]


class SubPartitionSim:
    """One scheduler + pipe set, simulating a set of resident warps.

    ``policy`` selects the eligible-warp arbiter:

    * ``"oldest"`` (default) — greedy-then-oldest: the lowest-index
      eligible warp issues, i.e. list position is priority.  This is
      the Volta+ hardware policy and it is what keeps the long-latency
      Tensor pipe fed when a few Tensor warps share the scheduler with
      many CUDA warps (the fused-kernel case).
    * ``"lrr"`` — loose round robin, kept for the scheduling ablation;
      it visibly starves Tensor warps in fused kernels.

    ``mode`` selects the issue-loop engine (see :data:`SIM_MODES`):
    ``"periodic"`` fast-forwards recurring steady-state schedules by
    whole periods and is bit-identical to ``"exact"``.
    """

    #: Process-wide count of :meth:`run` calls — the benchmark harness
    #: uses it to assert that warm-cache reruns simulate nothing.
    invocations = 0

    def __init__(
        self,
        timings: dict[OpClass, PipeTiming],
        warps: list[WarpProgram],
        *,
        policy: str = "oldest",
        mode: str = "periodic",
    ):
        if policy not in ("oldest", "lrr"):
            raise SimulationError(f"unknown scheduling policy {policy!r}")
        if mode not in SIM_MODES:
            raise SimulationError(
                f"unknown simulation mode {mode!r}; expected one of {SIM_MODES}"
            )
        self.policy = policy
        self.mode = mode
        self.timings = timings
        self.warps = [_WarpState(w) for w in warps]

    def run(self, max_cycles: int = _MAX_DEFAULT_CYCLES) -> PartitionStats:
        """Run to completion; returns issue statistics.

        Raises :class:`~repro.errors.SimulationError` if the workload
        does not drain within ``max_cycles`` (a deadlock guard; the
        model has no deadlocks, so this indicates an absurd workload).
        """
        SubPartitionSim.invocations += 1
        if not any(not w.done for w in self.warps):
            return PartitionStats()
        if self.mode == "exact":
            return self._run_exact(max_cycles)
        req = _jit.jit_requested()
        if req == "1" and not _jit.jit_available():
            raise SimulationError(
                "REPRO_SIM_JIT=1 but numba is not importable; install numba "
                "or unset the knob"
            )
        if req != "0" and _jit.jit_available():
            return self._run_compiled(max_cycles)
        return self._run_periodic(max_cycles)

    def _run_compiled(self, max_cycles: int) -> PartitionStats:
        """Periodic mode on the compiled drain loop (:mod:`repro.sim._jit`).

        Bit-identical to the other engines: the compiled loop replicates
        the exact engine's arbitration instruction for instruction, and
        issue counts are closed-form regardless of engine.
        """
        live = [w.program for w in self.warps if not w.done]
        for p in live:
            for op, _ in p.body:
                if op not in self.timings:
                    raise KeyError(op)
        res = _jit.drain(live, self.timings, self.policy, max_cycles)
        if res is None:
            raise SimulationError(
                f"workload did not drain within {max_cycles} cycles"
            )
        cycles, idle = res
        return self._final_stats(cycles, idle)

    def _final_stats(self, cycle: int, idle: int) -> PartitionStats:
        """Assemble PartitionStats from the drained run's cycle counts.

        Issue counts are schedule-independent — the loop drains every
        program completely, so they follow from the programs in closed
        form, and each issue occupies its pipe for exactly the
        initiation interval.  Only ``cycles``/``idle`` need the loop.
        """
        counts = {op: 0 for op in self.timings}
        for w in self.warps:
            it = w.program.iterations
            if it:
                for op, c in w.program.body:
                    counts[op] += c * it
        stats = PartitionStats()
        stats.cycles = cycle
        stats.idle_cycles = idle
        stats.issued = {op: c for op, c in counts.items() if c}
        stats.pipe_busy = {
            op: min(c * self.timings[op].initiation_interval, cycle)
            for op, c in counts.items()
            if c * self.timings[op].initiation_interval
        }
        return stats

    def _run_exact(self, max_cycles: int) -> PartitionStats:
        """The plain cycle loop — the ``mode="exact"`` escape hatch and
        the oracle the periodic engine is property-tested against."""
        warps = self.warps
        pending = sum(0 if w.done else 1 for w in warps)
        timings = self.timings
        ii_of = {op: t.initiation_interval for op, t in timings.items()}
        gap_of = {op: t.issue_gap for op, t in timings.items()}
        pipe_busy_until = {op: 0 for op in timings}
        cycle = 0
        idle = 0
        rr = 0
        n = len(warps)
        lrr = self.policy == "lrr"
        while pending:
            if cycle > max_cycles:
                raise SimulationError(
                    f"workload did not drain within {max_cycles} cycles"
                )
            issued_this_cycle = False
            # "oldest": scan from index 0 (list position = priority).
            # "lrr": scan from the warp after the last issuer.
            for k in range(n) if not lrr else range(rr, rr + n):
                idx = k if k < n else k - n
                w = warps[idx]
                if w.done or w.next_ready > cycle:
                    continue
                op = w.ops[w.seg]
                if pipe_busy_until[op] > cycle:
                    continue
                pipe_busy_until[op] = cycle + ii_of[op]
                w.next_ready = cycle + gap_of[op]
                w.advance()
                if w.done:
                    pending -= 1
                rr = idx + 1 if idx + 1 < n else 0
                issued_this_cycle = True
                break
            if issued_this_cycle:
                cycle += 1
                continue
            # Nothing issuable: fast-forward to the next time anything
            # could become eligible.
            horizon: list[int] = []
            for w in warps:
                if not w.done:
                    if w.next_ready > cycle:
                        horizon.append(w.next_ready)
                    else:
                        horizon.append(pipe_busy_until[w.ops[w.seg]])
            nxt = min(horizon)
            if nxt <= cycle:  # pragma: no cover - defensive
                nxt = cycle + 1
            idle += nxt - cycle
            cycle = nxt
        # The kernel finishes when the last pipe drains, not at the
        # last issue slot (a lone instruction still occupies its pipe
        # for the full initiation interval).
        cycle = max([cycle] + list(pipe_busy_until.values()))
        return self._final_stats(cycle, idle)

    def _run_periodic(self, max_cycles: int) -> PartitionStats:
        """The fast engine: bitmask arbitration + steady-state jumps.

        Semantically identical to :meth:`_run_exact` (property-tested on
        every :class:`PartitionStats` field), reorganized for speed:

        * Warp state lives in flat parallel lists; per-op *want* masks
          (bit ``i`` set when warp ``i``'s next instruction needs that
          pipe) and a *ready* mask turn the priority scan into a few
          integer ops — ``eligible = ready & union(want[free pipes])``,
          and the lowest set bit IS the oldest-policy winner.
        * A ``wake`` table (cycle -> warp mask) re-readies warps after
          their issue gap without per-warp comparisons.
        * The recurrence detector anchors at the reference warp's wrap
          boundaries; on a repeat of the relative state the schedule is
          periodic and whole periods are advanced arithmetically.
          Anchors survive jumps and completions: the state key marks
          each done warp, so a key match proves the done-set is
          unchanged between the two visits and the deltas stay exact.
        * A process-wide schedule memo replays the warm-up prefix
          across kernels that share (timings, policy, loop bodies) —
          see :data:`_SCHEDULE_MEMO`.
        """
        timings = self.timings
        op_order = tuple(timings)
        n_ops = len(OpClass)
        ii = [0] * n_ops
        gap = [0] * n_ops
        present = [False] * n_ops
        for op, t in timings.items():
            ii[op] = t.initiation_interval
            gap[op] = t.issue_gap
            present[op] = True
        warps = self.warps
        n = len(warps)
        full = (1 << n) - 1
        segops: list[tuple[int, ...]] = []
        segcnt: list[tuple[int, ...]] = []
        seg = [0] * n
        rem = [0] * n
        iters = [0] * n
        ready_at = [0] * n
        cur = [0] * n
        live = 0
        for i, w in enumerate(warps):
            p = w.program
            iters[i] = p.iterations
            if w.done:
                segops.append(())
                segcnt.append(())
                continue
            ops_i = tuple(int(op) for op in w.ops)
            for o in ops_i:
                if not present[o]:
                    raise KeyError(OpClass(o))
            segops.append(ops_i)
            segcnt.append(tuple(c for _, c in p.body))
            live |= 1 << i
            rem[i] = p.body[0][1]
            cur[i] = ops_i[0]
        used = set()
        for t_ in segops:
            used.update(t_)
        ops_active = sorted(used)
        want = [0] * n_ops
        for i in range(n):
            if (live >> i) & 1:
                want[cur[i]] |= 1 << i
        pending = bin(live).count("1")
        pipe_busy = [0] * n_ops
        ready = live
        wake: dict[int, int] = {}
        cycle = 0
        idle = 0
        rr = 0
        lrr = self.policy == "lrr"
        # Recurrence anchors: relative state -> absolute progress at the
        # moment that state was last seen.  Anchors are only taken at
        # the *reference warp's* iteration boundaries (the lowest-index
        # live warp): a periodic schedule revisits those anchors once
        # per period, and sampling one warp's wraps keeps detector
        # overhead at O(1) amortized per issued instruction.
        seen: dict[tuple, tuple] = {}
        snapshot_due = False
        ref = (live & -live).bit_length() - 1
        completed_any = False
        init_iters = tuple(iters)
        memo_key = (
            tuple((op, ii[op], gap[op]) for op in op_order),
            self.policy,
            tuple(w.program.body for w in warps),
        )
        rec = _SCHEDULE_MEMO.get(memo_key)
        if rec is not None:
            # Cross-kernel warm-up replay.  Issue decisions never read
            # ``iters_left`` (only completion does), so the memoized
            # prefix schedule replays verbatim for any workload whose
            # live warps each hold more iterations than the prefix
            # consumed; land on the second anchor, advanced by as many
            # whole periods as the iteration counts allow.
            c0, cons0, idle0, c1, cons1, idle1, key0, rr0 = rec
            iters_c1 = [0] * n
            ok = True
            for i in range(n):
                if not (live >> i) & 1:
                    iters_c1[i] = iters[i]
                    continue
                left = iters[i] - cons1[i]
                if left < 1:
                    ok = False
                    break
                iters_c1[i] = left
            if ok:
                period = c1 - c0
                skips = None
                for i in range(n):
                    d = cons1[i] - cons0[i]
                    if d > 0:
                        avail = (iters_c1[i] - 1) // d
                        skips = avail if skips is None else min(skips, avail)
                if skips is None:  # pragma: no cover - recurrence implies progress
                    skips = 0
                cycle = c1 + skips * period
                idle = idle1 + skips * (idle1 - idle0)
                warp_sig, pipe_sig, _ = key0
                want = [0] * n_ops
                ready = live
                for i in range(n):
                    sig = warp_sig[i]
                    if sig == 0:
                        continue  # done at init; matched by the memo key
                    b = 1 << i
                    seg[i] = sig[0]
                    rem[i] = sig[1]
                    cur[i] = segops[i][sig[0]]
                    want[cur[i]] |= b
                    off = sig[2]
                    if off:
                        ready &= ~b
                        t_ = cycle + off
                        wake[t_] = wake.get(t_, 0) | b
                        ready_at[i] = t_
                    else:
                        ready_at[i] = cycle
                    iters[i] = iters_c1[i] - skips * (cons1[i] - cons0[i])
                for j, op in enumerate(op_order):
                    pipe_busy[op] = cycle + pipe_sig[j]
                rr = rr0
                # Seed the detector with the landing anchor so the next
                # visit (one period out) jumps immediately.
                seen[key0] = (cycle, tuple(iters), idle)
                memo_key = None

        while pending:
            if cycle > max_cycles:
                raise SimulationError(
                    f"workload did not drain within {max_cycles} cycles"
                )
            if wake:
                m = wake.pop(cycle, 0)
                if m:
                    ready |= m
            if snapshot_due:
                snapshot_due = False
                key = (
                    tuple(
                        (
                            seg[i],
                            rem[i],
                            ready_at[i] - cycle if ready_at[i] > cycle else 0,
                        )
                        if (live >> i) & 1
                        else 0
                        for i in range(n)
                    ),
                    tuple(
                        pipe_busy[op] - cycle if pipe_busy[op] > cycle else 0
                        for op in op_order
                    ),
                    rr if lrr else 0,
                )
                prev = seen.get(key)
                if prev is None:
                    if len(seen) < _MAX_TRACKED_STATES:
                        seen[key] = (cycle, tuple(iters), idle)
                else:
                    p_cycle, p_iters, p_idle = prev
                    period = cycle - p_cycle
                    if memo_key is not None and not completed_any:
                        # First recurrence of an un-memoized structure,
                        # with the full warm-up schedule still intact:
                        # record both anchor visits (as consumed
                        # iterations, so kernels with other iteration
                        # counts can reuse them) for sibling launches.
                        if len(_SCHEDULE_MEMO) >= _SCHEDULE_MEMO_MAX:
                            _SCHEDULE_MEMO.clear()
                        _SCHEDULE_MEMO[memo_key] = (
                            p_cycle,
                            tuple(
                                init_iters[i] - p_iters[i] for i in range(n)
                            ),
                            p_idle,
                            cycle,
                            tuple(
                                init_iters[i] - iters[i] for i in range(n)
                            ),
                            idle,
                            key,
                            rr,
                        )
                        memo_key = None
                    # Whole periods every warp can replay without any
                    # warp finishing mid-period: the schedule between
                    # the two visits repeats verbatim until then.
                    skips = None
                    for i in range(n):
                        d = p_iters[i] - iters[i]
                        if d > 0:
                            avail = (iters[i] - 1) // d
                            skips = avail if skips is None else min(skips, avail)
                    jumped = False
                    if period > 0 and skips:
                        jump = skips * period
                        for i in range(n):
                            d = p_iters[i] - iters[i]
                            if d:
                                iters[i] -= skips * d
                            if ready_at[i] > cycle:
                                ready_at[i] += jump
                        if wake:
                            wake = {t + jump: m for t, m in wake.items()}
                        for op in ops_active:
                            if pipe_busy[op] > cycle:
                                pipe_busy[op] += jump
                        idle += skips * (idle - p_idle)
                        cycle += jump
                        jumped = True
                    # Slide the anchor to this (possibly post-jump)
                    # visit.  Any prior visit of the same relative state
                    # makes an exact delta, but the freshest pair keeps
                    # the per-period consumption minimal — under the
                    # "oldest" policy the front-runner warp burns
                    # iterations far faster than the rest, and a stale
                    # anchor's inflated deltas would pin ``skips`` at 0
                    # for the remainder of the run.
                    seen[key] = (cycle, tuple(iters), idle)
                    if jumped:
                        continue
            elig = 0
            for o in ops_active:
                if pipe_busy[o] <= cycle:
                    elig |= want[o]
            elig &= ready
            if elig:
                if lrr and rr:
                    # Rotate so the scan starts at the warp after the
                    # last issuer, then the lowest set bit wins.
                    rot = ((elig >> rr) | (elig << (n - rr))) & full
                    idx = (rot & -rot).bit_length() - 1 + rr
                    if idx >= n:
                        idx -= n
                    b = 1 << idx
                else:
                    b = elig & -elig
                    idx = b.bit_length() - 1
                op = cur[idx]
                pipe_busy[op] = cycle + ii[op]
                t_ = cycle + gap[op]
                ready &= ~b
                ready_at[idx] = t_
                wake[t_] = wake.get(t_, 0) | b
                r = rem[idx] - 1
                if r:
                    rem[idx] = r
                else:
                    s = seg[idx] + 1
                    ops_i = segops[idx]
                    if s == len(ops_i):
                        seg[idx] = 0
                        it = iters[idx] - 1
                        iters[idx] = it
                        if it == 0:
                            live &= ~b
                            want[op] &= ~b
                            m2 = wake[t_] & ~b
                            if m2:
                                wake[t_] = m2
                            else:
                                del wake[t_]
                            pending -= 1
                            completed_any = True
                            if idx == ref:
                                ref = (live & -live).bit_length() - 1
                        else:
                            rem[idx] = segcnt[idx][0]
                            nop = ops_i[0]
                            if nop != op:
                                want[op] &= ~b
                                want[nop] |= b
                                cur[idx] = nop
                            if idx == ref:
                                snapshot_due = True
                    else:
                        seg[idx] = s
                        rem[idx] = segcnt[idx][s]
                        nop = ops_i[s]
                        if nop != op:
                            want[op] &= ~b
                            want[nop] |= b
                            cur[idx] = nop
                rr = idx + 1 if idx + 1 < n else 0
                cycle += 1
                continue
            # Nothing issuable: fast-forward to the next time anything
            # could become eligible — the earliest pending wake-up or,
            # for ready-but-blocked warps, the earliest pipe release.
            nxt = -1
            for t_ in wake:
                if nxt < 0 or t_ < nxt:
                    nxt = t_
            for o in ops_active:
                if want[o] & ready:
                    pb = pipe_busy[o]
                    if nxt < 0 or pb < nxt:
                        nxt = pb
            if nxt <= cycle:  # pragma: no cover - defensive
                nxt = cycle + 1
            idle += nxt - cycle
            cycle = nxt

        # The kernel finishes when the last pipe drains, not at the
        # last issue slot (a lone instruction still occupies its pipe
        # for the full initiation interval).
        cycle = max([cycle] + pipe_busy)
        return self._final_stats(cycle, idle)



class SMSim:
    """A full SM: ``partitions`` independent sub-partition simulators.

    Warps are distributed round-robin across sub-partitions (the
    hardware block scheduler's policy for evenly sized blocks); the SM
    finishes when its slowest partition drains.
    """

    def __init__(
        self,
        sm: SMSpec,
        timings: dict[OpClass, PipeTiming] | None = None,
        *,
        policy: str = "oldest",
        mode: str = "periodic",
    ):
        self.sm = sm
        self.timings = timings if timings is not None else default_timings(sm)
        self.policy = policy
        self.mode = mode

    def distribute(self, warps: list[WarpProgram]) -> list[list[WarpProgram]]:
        """Round-robin warp placement across sub-partitions."""
        if len(warps) > self.sm.max_warps_per_sm:
            raise SimulationError(
                f"{len(warps)} warps exceed SM residency of "
                f"{self.sm.max_warps_per_sm}"
            )
        buckets: list[list[WarpProgram]] = [[] for _ in range(self.sm.partitions)]
        for i, w in enumerate(warps):
            buckets[i % self.sm.partitions].append(w)
        return buckets

    def run(self, warps: list[WarpProgram]) -> list[PartitionStats]:
        """Simulate all partitions; returns per-partition stats.

        Equal buckets are simulated once and the (deterministic) result
        is replayed for the other partitions — the common case, since
        the warp-set lowering deals roles in multiples of the partition
        count precisely so the buckets come out identical.  The memo is
        process-wide: launches lowered from the same kernel family
        (e.g. all the attention GEMMs of one model) repeat identical
        buckets across separate :meth:`run` calls too.
        """
        results = []
        timing_sig = tuple(
            (op, t.initiation_interval, t.issue_gap)
            for op, t in self.timings.items()
        )
        # Counted per bucket *priced* (memo hits included), not per
        # engine execution: pricing activity is deterministic for a
        # deterministic workload, while execution counts would depend
        # on what earlier runs left in the process-wide memo.
        if self.mode == "exact":
            engine = "exact"
        elif _jit.jit_requested() != "0" and _jit.jit_available():
            engine = "numba"
        else:
            engine = "fastforward"
        buckets = self.distribute(warps)
        obs.counter(
            "sim_partitions_priced_total",
            "sub-partition buckets priced, by issue-loop engine",
            labels={"engine": engine},
        ).inc(len(buckets))
        for bucket in buckets:
            key = (timing_sig, self.policy, self.mode, tuple(bucket))
            prev = _PARTITION_MEMO.get(key)
            if prev is None:
                prev = SubPartitionSim(
                    self.timings, bucket, policy=self.policy, mode=self.mode
                ).run()
                if len(_PARTITION_MEMO) >= _PARTITION_MEMO_MAX:
                    _PARTITION_MEMO.clear()
                _PARTITION_MEMO[key] = prev
            results.append(
                PartitionStats(
                    cycles=prev.cycles,
                    issued=dict(prev.issued),
                    pipe_busy=dict(prev.pipe_busy),
                    idle_cycles=prev.idle_cycles,
                )
            )
        return results
