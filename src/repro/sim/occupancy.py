"""Occupancy calculator and the register-file packing of prior work.

The paper positions VitBit against X. Wang & W. Zhang's *GPU register
packing* (Trustcom 2017) and CORF's register coalescing: those
techniques pack narrow values in the **register file**, freeing space
so more thread blocks fit per SM (better latency hiding), but the
operands reaching the ALUs are unchanged, so peak throughput is not
(Sec. 2.2).  This module implements that storage-side model:

* :class:`KernelResources` + :func:`occupancy` — the classic CUDA
  occupancy calculation (warp slots, registers, block limits);
* :func:`registers_after_packing` — the effective register footprint
  when narrow-width live values share architectural registers;
* :func:`occupancy_gain_from_register_packing` — how many extra
  resident warps storage-side packing buys.

The distinction the paper draws becomes checkable: storage packing
raises *occupancy*; VitBit's operand packing raises *throughput*
(tests assert both directions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.specs import SMSpec
from repro.errors import SimulationError

__all__ = [
    "KernelResources",
    "Occupancy",
    "occupancy",
    "registers_after_packing",
    "occupancy_gain_from_register_packing",
]


@dataclass(frozen=True)
class KernelResources:
    """Per-thread/per-block resource demands of one kernel."""

    registers_per_thread: int
    threads_per_block: int
    shared_mem_per_block: int = 0

    def __post_init__(self) -> None:
        if self.registers_per_thread < 1:
            raise SimulationError("registers_per_thread must be >= 1")
        if self.threads_per_block < 1:
            raise SimulationError("threads_per_block must be >= 1")
        if self.shared_mem_per_block < 0:
            raise SimulationError("shared_mem_per_block must be >= 0")

    @property
    def warps_per_block(self) -> int:
        """Warps one block occupies (threads rounded up to warp size)."""
        return -(-self.threads_per_block // 32)


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation."""

    blocks_per_sm: int
    warps_per_sm: int
    limiter: str  # "warps" | "registers" | "blocks" | "shared_mem"

    @property
    def occupancy_fraction(self) -> float:
        """Resident warps / warp slots (computed against 48 on Orin)."""
        return self.warps_per_sm / 48.0


#: Hardware block-residency limit per SM (Ampere).
_MAX_BLOCKS_PER_SM = 16
#: Shared memory per SM (bytes) on the modelled part.
_SHARED_MEM_PER_SM = 164 * 1024
#: Register allocation granularity (registers round up per warp).
_REG_ALLOC_UNIT = 256


def occupancy(sm: SMSpec, kernel: KernelResources) -> Occupancy:
    """Resident blocks/warps per SM for ``kernel`` on ``sm``."""
    wpb = kernel.warps_per_block
    if kernel.threads_per_block > sm.max_threads_per_block:
        raise SimulationError(
            f"block of {kernel.threads_per_block} threads exceeds the SM "
            f"limit of {sm.max_threads_per_block}"
        )
    # Registers round up to the allocation unit per warp.
    regs_per_warp = (
        -(-kernel.registers_per_thread * sm.warp_size // _REG_ALLOC_UNIT)
        * _REG_ALLOC_UNIT
    )
    # The register limit sees the *effective* capacity, so backends
    # with storage-side register-file compression (orin-rfc, Angerd)
    # recover occupancy exactly as the prior work describes.
    limits = {
        "warps": sm.max_warps_per_sm // wpb,
        "registers": sm.effective_registers_per_sm // (regs_per_warp * wpb),
        "blocks": _MAX_BLOCKS_PER_SM,
    }
    if kernel.shared_mem_per_block:
        limits["shared_mem"] = _SHARED_MEM_PER_SM // kernel.shared_mem_per_block
    blocks = min(limits.values())
    if blocks < 1:
        raise SimulationError(
            f"kernel {kernel} does not fit a single block on the SM"
        )
    limiter = min(limits, key=lambda k: limits[k])
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * wpb,
        limiter=limiter,
    )


def registers_after_packing(
    registers_per_thread: int,
    narrow_fraction: float,
    narrow_bits: int,
    *,
    register_bits: int = 32,
) -> int:
    """Effective register demand under storage-side register packing.

    ``narrow_fraction`` of the live registers hold values of
    ``narrow_bits`` bits (detected at write-back in the prior work);
    those share architectural registers ``register_bits //
    narrow_bits``-to-one.  The rest stay full width.  Always >= 1.
    """
    if not 0.0 <= narrow_fraction <= 1.0:
        raise SimulationError("narrow_fraction must be in [0, 1]")
    if not 1 <= narrow_bits <= register_bits:
        raise SimulationError("narrow_bits must be in 1..register_bits")
    share = register_bits // narrow_bits
    packed = registers_per_thread * narrow_fraction / share
    full = registers_per_thread * (1.0 - narrow_fraction)
    return max(1, math.ceil(packed + full))


def occupancy_gain_from_register_packing(
    sm: SMSpec,
    kernel: KernelResources,
    narrow_fraction: float,
    narrow_bits: int,
) -> tuple[Occupancy, Occupancy]:
    """(baseline, packed) occupancy under Wang & Zhang-style packing.

    The packed variant only changes the register demand — Sec. 2.2's
    point that register-file packing raises *residency*, never the
    ALUs' operand width or peak throughput.
    """
    base = occupancy(sm, kernel)
    packed_kernel = KernelResources(
        registers_per_thread=registers_after_packing(
            kernel.registers_per_thread, narrow_fraction, narrow_bits
        ),
        threads_per_block=kernel.threads_per_block,
        shared_mem_per_block=kernel.shared_mem_per_block,
    )
    return base, occupancy(sm, packed_kernel)
