"""Instruction classes and pipe timings.

The simulator classifies warp instructions by the execution pipe they
occupy.  Each class has a :class:`PipeTiming`:

* ``initiation_interval`` — cycles the pipe stays busy per warp
  instruction (``warp_size / pipe_lanes``; 2 for the 16-lane INT and FP
  pipes, which is what makes co-issuing the two pipes from one
  scheduler profitable);
* ``issue_gap`` — cycles before the *same warp* may issue its next
  instruction, a compact stand-in for dependent-instruction latency
  partially hidden by ILP.

Timings are derived from the :class:`~repro.arch.specs.SMSpec` by
:func:`default_timings`, so architecture experiments (wider pipes, more
tensor throughput) automatically propagate into the simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.specs import SMSpec
from repro.errors import SimulationError

__all__ = [
    "OpClass",
    "PipeTiming",
    "default_timings",
    "TENSOR_MACS_PER_INSTR",
    "TC_GEMM_EFFICIENCY",
]


class OpClass(enum.IntEnum):
    """Execution pipe an instruction occupies."""

    INT = 0  # INT32 ALU (IMAD and friends)
    FP = 1  # FP32 ALU (FFMA and friends)
    TENSOR = 2  # Tensor core MMA
    LSU = 3  # load/store (shared-memory and global traffic)
    SFU = 4  # special function (exp/rsqrt); also covers shifts on some parts
    MISC = 5  # moves, predicates, branches, uniform ops (full-width path)


#: MACs performed by one simulated tensor-core MMA instruction on the
#: *default* (Orin-shaped) spec — a 16x8x32 INT8 fragment.  Kept as a
#: documented reference value; the simulator itself reads the
#: per-backend ``SMSpec.tensor_core.macs_per_instruction``.
TENSOR_MACS_PER_INSTR = 4096


@dataclass(frozen=True)
class PipeTiming:
    """Timing of one execution pipe."""

    initiation_interval: int
    issue_gap: int

    def __post_init__(self) -> None:
        if self.initiation_interval < 1:
            raise SimulationError("initiation_interval must be >= 1")
        if self.issue_gap < 1:
            raise SimulationError("issue_gap must be >= 1")


def _ii(warp_size: int, lanes: int) -> int:
    return max(1, -(-warp_size // lanes))


#: Fraction of Tensor-core peak a real GEMM kernel sustains on the
#: paper's small ViT-Base shapes.  Calibrated so the Sec. 3.2 initial
#: study reproduces: an INT-CUDA-core GEMM (pipe-bound at 16 warp-MACs
#: per cycle per partition) takes ~7.5x the Tensor-core time.
TC_GEMM_EFFICIENCY = 0.21


def default_timings(
    sm: SMSpec, tc_format: str = "int8", *, tc_efficiency: float = TC_GEMM_EFFICIENCY
) -> dict[OpClass, PipeTiming]:
    """Pipe timings implied by an SM spec.

    The Tensor pipe's initiation interval is the time one MMA fragment
    (``sm.tensor_core.macs_per_instruction`` MACs) occupies a Tensor
    core at the spec's per-format MAC rate, derated by
    ``tc_efficiency`` (peak MMA issue is never sustained on small
    GEMMs — operand fetch and fragment layout stalls land inside the
    MMA's shadow).
    """
    if not 0 < tc_efficiency <= 1:
        raise SimulationError(
            f"tc_efficiency must be in (0, 1], got {tc_efficiency}"
        )
    ws = sm.warp_size
    tc_macs_per_cycle = sm.tensor_core.macs_per_cycle(tc_format) * tc_efficiency
    tc_ii = max(1, round(sm.tensor_core.macs_per_instruction / tc_macs_per_cycle))
    return {
        OpClass.INT: PipeTiming(_ii(ws, sm.int32_lanes_per_partition), issue_gap=2),
        OpClass.FP: PipeTiming(_ii(ws, sm.fp32_lanes_per_partition), issue_gap=2),
        OpClass.TENSOR: PipeTiming(tc_ii, issue_gap=2),
        OpClass.LSU: PipeTiming(_ii(ws, sm.lsu_lanes_per_partition), issue_gap=2),
        OpClass.SFU: PipeTiming(_ii(ws, sm.sfu_lanes_per_partition), issue_gap=2),
        # Moves/predicates/branches retire through the full-width dispatch
        # path: they consume an issue slot but no ALU pipe cycles.
        OpClass.MISC: PipeTiming(1, issue_gap=1),
    }
