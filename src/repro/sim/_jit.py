"""Optional numba-compiled drain loop for the sub-partition simulator.

The dominant cost of pricing a kernel stream is the per-cycle issue
loop of :class:`~repro.sim.smsim.SubPartitionSim`: realistic multi-warp
buckets have *chaotic* schedules (the relative warp state rarely
recurs before the first completion reshuffles it), so the periodic
fast-forward cannot skip ahead and the loop runs cycle by cycle.  This
module compiles that loop.

:func:`drain_core` is written as nopython-compatible pure Python over
flat int64 arrays — explicit loops, no dicts, no objects — so that:

* with numba installed, ``numba.njit`` compiles it to a native loop
  (~two orders of magnitude over CPython per cycle);
* without numba, the very same function runs under CPython, which
  keeps its *logic* testable everywhere (``tests/test_sim_fastforward``
  runs it directly against the exact engine) even though
  :func:`jit_available` reports ``False`` and the periodic engine
  falls back to the arithmetic fast-forward path.

The core replicates the exact engine's semantics instruction for
instruction — same priority arbitration ("oldest" scan order or "lrr"
round-robin), same idle fast-forward, same final pipe drain — so its
``(cycles, idle)`` result is bit-identical to ``mode="exact"`` by
construction; issue counts are schedule-independent and computed in
closed form by the caller.

Selection is governed by ``REPRO_SIM_JIT``:

``auto`` (default)
    Use the compiled loop in periodic mode when numba is importable.
``0``
    Never use it (pure-Python periodic engine with fast-forward).
``1``
    Require it: raise if numba is missing (the CI numba leg).

This container does not ship numba; the CI ``perf-smoke`` job has an
optional leg that installs it and asserts parity.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["drain_core", "drain", "jit_available", "jit_requested"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the container path
    _HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        """No-op decorator standing in for numba.njit."""
        if args and callable(args[0]):
            return args[0]
        return lambda fn: fn


def jit_available() -> bool:
    """Whether numba imported in this process."""
    return _HAVE_NUMBA


def jit_requested() -> str:
    """The ``REPRO_SIM_JIT`` knob, normalized to ``auto``/``0``/``1``."""
    val = os.environ.get("REPRO_SIM_JIT", "auto").strip().lower()
    if val in ("0", "off", "false", "no"):
        return "0"
    if val in ("1", "require", "true", "yes"):
        return "1"
    return "auto"


@_njit(cache=True)
def drain_core(
    segop, segcnt, segstart, nseg, iters, ii, gap, lrr, max_cycles, out
):  # pragma: no cover - compiled; logic covered via direct pure-Python calls
    """Run the issue loop to completion; writes ``[cycles, idle]`` to ``out``.

    Inputs are flat int64 arrays describing only the *live* warps (the
    caller filters done ones — they never issue, so dropping them
    preserves both policies' arbitration order):

    * ``segop``/``segcnt`` — all warps' ``(op, count)`` segments
      concatenated; ``segstart[i]``/``nseg[i]`` delimit warp ``i``;
    * ``iters[i]`` — remaining loop iterations (>= 1);
    * ``ii[op]``/``gap[op]`` — initiation interval and issue gap per
      op-class ordinal;
    * ``lrr`` — 1 for the "lrr" policy, 0 for "oldest".

    Returns 0 on success, 1 when the workload did not drain within
    ``max_cycles`` (the caller raises the canonical SimulationError).
    """
    n = segstart.shape[0]
    n_ops = ii.shape[0]
    seg = np.zeros(n, dtype=np.int64)
    rem = np.zeros(n, dtype=np.int64)
    ready = np.zeros(n, dtype=np.int64)
    pipe_busy = np.zeros(n_ops, dtype=np.int64)
    for i in range(n):
        rem[i] = segcnt[segstart[i]]
    pending = n
    cycle = np.int64(0)
    idle = np.int64(0)
    rr = 0
    while pending > 0:
        if cycle > max_cycles:
            return 1
        issued = False
        for k in range(n):
            idx = k
            if lrr == 1:
                idx = k + rr
                if idx >= n:
                    idx -= n
            if iters[idx] == 0:
                continue
            if ready[idx] > cycle:
                continue
            op = segop[segstart[idx] + seg[idx]]
            if pipe_busy[op] > cycle:
                continue
            pipe_busy[op] = cycle + ii[op]
            ready[idx] = cycle + gap[op]
            rem[idx] -= 1
            if rem[idx] == 0:
                s = seg[idx] + 1
                if s == nseg[idx]:
                    seg[idx] = 0
                    iters[idx] -= 1
                    if iters[idx] == 0:
                        pending -= 1
                    else:
                        rem[idx] = segcnt[segstart[idx]]
                else:
                    seg[idx] = s
                    rem[idx] = segcnt[segstart[idx] + s]
            rr = idx + 1
            if rr == n:
                rr = 0
            issued = True
            break
        if issued:
            cycle += 1
            continue
        # Nothing issuable: fast-forward to the next time anything
        # could become eligible.
        nxt = np.int64(-1)
        for i in range(n):
            if iters[i] > 0:
                if ready[i] > cycle:
                    t = ready[i]
                else:
                    t = pipe_busy[segop[segstart[i] + seg[i]]]
                if nxt < 0 or t < nxt:
                    nxt = t
        if nxt <= cycle:
            nxt = cycle + 1
        idle += nxt - cycle
        cycle = nxt
    # The kernel finishes when the last pipe drains, not at the last
    # issue slot.
    for o in range(n_ops):
        if pipe_busy[o] > cycle:
            cycle = pipe_busy[o]
    out[0] = cycle
    out[1] = idle
    return 0


def drain(programs, timings, policy: str, max_cycles: int) -> tuple[int, int] | None:
    """Flatten live ``programs`` and run :func:`drain_core`.

    ``programs`` are the live warps' :class:`~repro.sim.program.WarpProgram`
    objects in partition order.  Returns ``(cycles, idle)``, or ``None``
    when the workload did not drain within ``max_cycles``.
    """
    from repro.sim.instruction import OpClass

    n_ops = len(OpClass)
    ii = np.zeros(n_ops, dtype=np.int64)
    gap = np.zeros(n_ops, dtype=np.int64)
    for op, t in timings.items():
        ii[op] = t.initiation_interval
        gap[op] = t.issue_gap
    segop_l: list[int] = []
    segcnt_l: list[int] = []
    segstart = np.zeros(len(programs), dtype=np.int64)
    nseg = np.zeros(len(programs), dtype=np.int64)
    iters = np.zeros(len(programs), dtype=np.int64)
    for i, p in enumerate(programs):
        segstart[i] = len(segop_l)
        nseg[i] = len(p.body)
        iters[i] = p.iterations
        for op, c in p.body:
            segop_l.append(int(op))
            segcnt_l.append(c)
    out = np.zeros(2, dtype=np.int64)
    status = drain_core(
        np.array(segop_l, dtype=np.int64),
        np.array(segcnt_l, dtype=np.int64),
        segstart,
        nseg,
        iters,
        ii,
        gap,
        1 if policy == "lrr" else 0,
        max_cycles,
        out,
    )
    if status:
        return None
    return int(out[0]), int(out[1])
