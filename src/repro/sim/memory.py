"""DRAM bandwidth model.

The embedded GPU's LPDDR5 (204.8 GB/s on Orin AGX) is shared by all
SMs; kernels that stream more bytes than their compute hides become
memory bound.  The model is a classic roofline bound applied at kernel
granularity: a kernel moving ``bytes`` takes at least
``bytes / bandwidth`` seconds regardless of its compute time.  That is
deliberately coarse — it is exactly the effect that caps the paper's
CUDA-core-kernel speedups (Fig. 7's 1.05x for IC+FC against the 2x an
issue-only model would predict).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.specs import MachineSpec
from repro.utils.validation import check_positive

__all__ = ["DramModel"]


@dataclass(frozen=True)
class DramModel:
    """Bandwidth bound with a fixed efficiency factor.

    ``efficiency`` is the fraction of peak bandwidth a streaming kernel
    actually achieves (row-buffer misses, refresh, command overhead);
    0.75 is a typical LPDDR5 figure and our calibration default.
    """

    machine: MachineSpec
    efficiency: float = 0.75

    def __post_init__(self) -> None:
        check_positive("efficiency", self.efficiency)
        if self.efficiency > 1.0:
            raise ValueError(f"efficiency must be <= 1, got {self.efficiency}")

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bytes/second."""
        return self.machine.dram_bandwidth_bytes_per_s * self.efficiency

    def transfer_seconds(self, nbytes: float) -> float:
        """Minimum time to move ``nbytes`` through DRAM."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.effective_bandwidth

    def transfer_cycles(self, nbytes: float) -> float:
        """Same bound expressed in GPU cycles."""
        return self.transfer_seconds(nbytes) * self.machine.clock_hz
