"""Whole-GPU kernel launch simulation.

A kernel launch provides the warps resident on one *representative SM
wave* (the grid is assumed homogeneous across SMs, true for the tiled
GEMM and elementwise kernels this reproduction uses) plus the total
grid size and DRAM traffic.  The GPU simulator runs the representative
SM through the issue loop, scales to the number of waves, and applies
the DRAM roofline:

``kernel_cycles = max(compute_cycles, dram_cycles) + launch_overhead``.

IPC and per-pipe utilization are reported against the final (possibly
memory-bound) cycle count, matching how hardware profilers compute
them — which is why memory-bound kernels show depressed IPC in Fig. 10
just as they do on silicon.
"""

from __future__ import annotations

import math

from repro.arch.specs import MachineSpec
from repro.errors import SimulationError
from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.memory import DramModel
from repro.sim.program import WarpProgram
from repro.sim.smsim import SMSim
from repro.sim.trace import KernelStats

__all__ = ["GPUSim"]


class GPUSim:
    """Simulates kernel launches on a :class:`~repro.arch.specs.MachineSpec`."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        timings: dict[OpClass, PipeTiming] | None = None,
        dram: DramModel | None = None,
        include_launch_overhead: bool = True,
        mode: str = "periodic",
    ):
        self.machine = machine
        self.timings = timings if timings is not None else default_timings(machine.sm)
        self.dram = dram if dram is not None else DramModel(machine)
        self.include_launch_overhead = include_launch_overhead
        self.mode = mode

    # -- launches -----------------------------------------------------------

    def run_kernel(
        self,
        warps: list[WarpProgram],
        *,
        bytes_moved: float = 0.0,
        total_warps: int | None = None,
    ) -> KernelStats:
        """Simulate one kernel.

        Parameters
        ----------
        warps:
            The warps resident on one SM during one wave (at most
            ``sm.max_warps_per_sm``).
        bytes_moved:
            Total DRAM traffic of the whole kernel (all waves, all SMs).
        total_warps:
            Grid-wide warp count; defaults to ``len(warps) * sm_count``
            (a single full wave).  Additional waves repeat the
            representative SM's compute time.
        """
        if not warps:
            raise SimulationError("run_kernel needs at least one warp")
        sm = SMSim(self.machine.sm, self.timings, mode=self.mode)
        parts = sm.run(warps)
        wave_cycles = max(p.cycles for p in parts)

        per_sm_wave = len(warps)
        if total_warps is None:
            total_warps = per_sm_wave * self.machine.sm_count
        waves = max(1, math.ceil(total_warps / (per_sm_wave * self.machine.sm_count)))

        compute_cycles = wave_cycles * waves
        dram_cycles = self.dram.transfer_cycles(bytes_moved)
        cycles = max(compute_cycles, int(math.ceil(dram_cycles)))
        seconds = self.machine.cycles_to_seconds(cycles)
        if self.include_launch_overhead:
            seconds += self.machine.kernel_launch_overhead_us * 1e-6
            cycles = int(round(seconds * self.machine.clock_hz))

        # Scale the representative SM's instruction counts to the grid.
        scale = total_warps / per_sm_wave
        issued: dict[OpClass, int] = {}
        for p in parts:
            for op, n in p.issued.items():
                issued[op] = issued.get(op, 0) + n
        issued = {op: int(round(n * scale)) for op, n in issued.items()}

        # Utilization against the final cycle count (memory-boundness
        # shows up as depressed pipe utilization, as on hardware).
        busy: dict[OpClass, float] = {}
        for p in parts:
            for op, b in p.pipe_busy.items():
                busy[op] = busy.get(op, 0.0) + b
        n_parts = len(parts)
        util = {
            op: (b / n_parts) * waves / cycles if cycles else 0.0
            for op, b in busy.items()
        }

        return KernelStats(
            cycles=cycles,
            compute_cycles=compute_cycles,
            dram_cycles=int(math.ceil(dram_cycles)),
            seconds=seconds,
            instructions=sum(issued.values()),
            issued=issued,
            pipe_utilization=util,
            sm_count=self.machine.sm_count,
            waves=waves,
            memory_bound=dram_cycles > compute_cycles,
        )
