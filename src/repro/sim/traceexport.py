"""Chrome-tracing export of simulated kernel executions.

``chrome://tracing`` / Perfetto read a simple JSON event format; this
module re-runs a sub-partition's issue loop while recording one
complete event per issued instruction (pipe occupancy) and emits the
trace, giving the reproduction the visual debugging loop a CUDA
engineer gets from Nsight timelines.

The recorder duplicates the scheduler semantics of
:class:`~repro.sim.smsim.SubPartitionSim` (same policy, same timings);
``tests/test_traceexport.py`` locks the two to identical cycle counts
so they cannot drift apart silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.instruction import OpClass, PipeTiming
from repro.sim.program import WarpProgram
from repro.sim.smsim import _WarpState

__all__ = [
    "TraceEvent",
    "record_partition_trace",
    "to_chrome_trace",
    "spans_to_chrome_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One issued instruction: which warp, which pipe, when, how long."""

    warp: int
    op: OpClass
    start_cycle: int
    duration: int


def record_partition_trace(
    timings: dict[OpClass, PipeTiming],
    warps: list[WarpProgram],
    *,
    policy: str = "oldest",
    max_events: int = 200_000,
) -> tuple[list[TraceEvent], int]:
    """Re-run one sub-partition, recording every issue.

    Returns ``(events, total_cycles)``.  Raises
    :class:`~repro.errors.SimulationError` if the workload would exceed
    ``max_events`` (traces are for small workloads by construction).
    """
    total = sum(w.total_instructions for w in warps)
    if total > max_events:
        raise SimulationError(
            f"workload has {total} instructions; tracing caps at {max_events} "
            "(scale the programs down first)"
        )
    states = [_WarpState(w) for w in warps]
    pending = sum(0 if s.done else 1 for s in states)
    pipe_busy_until = {op: 0 for op in timings}
    events: list[TraceEvent] = []
    cycle = 0
    rr = 0
    n = len(states)
    while pending:
        issued = False
        base = rr if policy == "lrr" else 0
        for k in range(n):
            idx = (base + k) % n
            w = states[idx]
            if w.done or w.next_ready > cycle:
                continue
            op = w.current_op()
            if pipe_busy_until[op] > cycle:
                continue
            t = timings[op]
            pipe_busy_until[op] = cycle + t.initiation_interval
            w.next_ready = cycle + t.issue_gap
            events.append(
                TraceEvent(
                    warp=idx,
                    op=op,
                    start_cycle=cycle,
                    duration=t.initiation_interval,
                )
            )
            w.advance()
            if w.done:
                pending -= 1
            rr = (base + k + 1) % n
            issued = True
            break
        if issued:
            cycle += 1
            continue
        horizon = []
        for w in states:
            if not w.done:
                if w.next_ready > cycle:
                    horizon.append(w.next_ready)
                else:
                    horizon.append(pipe_busy_until[w.current_op()])
        nxt = min(horizon)
        cycle = nxt if nxt > cycle else cycle + 1
    cycle = max([cycle] + list(pipe_busy_until.values()))
    return events, cycle


def to_chrome_trace(
    events: list[TraceEvent], *, clock_ghz: float = 1.0, by: str = "pipe"
) -> str:
    """Serialize events as Chrome-tracing JSON.

    ``by`` groups timeline rows by ``"pipe"`` (one row per execution
    unit — the utilization view) or ``"warp"`` (one row per warp — the
    scheduling view).  Cycles convert to microseconds at ``clock_ghz``.
    """
    if by not in ("pipe", "warp"):
        raise SimulationError(f"unknown grouping {by!r}")
    us_per_cycle = 1e-3 / clock_ghz
    out = []
    for ev in events:
        tid = ev.op.name if by == "pipe" else f"warp {ev.warp}"
        out.append(
            {
                "name": ev.op.name,
                "cat": "issue",
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": ev.start_cycle * us_per_cycle,
                "dur": ev.duration * us_per_cycle,
                "args": {"warp": ev.warp, "cycle": ev.start_cycle},
            }
        )
    return json.dumps({"traceEvents": out, "displayTimeUnit": "ns"})


def spans_to_chrome_trace(spans) -> str:
    """Serialize observability spans as Chrome-tracing JSON.

    ``spans`` is an iterable of :class:`repro.obs.tracer.Span` (or any
    object with ``name``, ``start_seconds``, ``duration_seconds`` and
    an ``attrs`` pair sequence).  Span times are *seconds* — simulated
    seconds when a :class:`~repro.serve.clock.SimulatedClock` was
    active — and convert to the microsecond ``ts``/``dur`` the format
    expects; each distinct span name gets its own timeline row, so the
    serving layer's batches land next to the simulator's pipe rows in
    one Perfetto view.
    """
    out = []
    for sp in spans:
        out.append(
            {
                "name": sp.name,
                "cat": "span",
                "ph": "X",
                "pid": 0,
                "tid": sp.name,
                "ts": sp.start_seconds * 1e6,
                "dur": sp.duration_seconds * 1e6,
                "args": dict(sp.attrs),
            }
        )
    return json.dumps({"traceEvents": out, "displayTimeUnit": "ns"})
