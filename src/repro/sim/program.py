"""Compressed warp instruction streams.

A :class:`WarpProgram` is a loop body (sequence of ``(OpClass, count)``
segments) executed for a number of iterations — the compressed form of
a GPU kernel's steady-state inner loop.  Compression keeps simulation
state tiny while preserving the *interleaving* of pipe demands, which is
what the issue model cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from repro.errors import SimulationError
from repro.sim.instruction import OpClass

__all__ = ["WarpProgram"]


@dataclass(frozen=True)
class WarpProgram:
    """A warp's instruction stream: ``body`` repeated ``iterations`` times.

    ``body`` is a tuple of ``(op, count)`` segments; a segment of
    ``(INT, 4)`` means four consecutive INT instructions.
    """

    body: tuple[tuple[OpClass, int], ...]
    iterations: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise SimulationError("iterations must be >= 0")
        if self.iterations == 0 and self.body:
            # The empty-program contract: zero instructions is spelled
            # WarpProgram.empty() — body () — so `is_empty` and equality
            # have one canonical form.  A non-empty body that never runs
            # is almost always a scaling bug upstream.
            raise SimulationError(
                "iterations=0 with a non-empty body; use WarpProgram.empty() "
                "for a padding warp"
            )
        for op, count in self.body:
            if not isinstance(op, OpClass):
                raise SimulationError(f"segment op must be OpClass, got {op!r}")
            if count < 1:
                raise SimulationError(f"segment count must be >= 1, got {count}")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def loop(
        body: list[tuple[OpClass, int]], iterations: int
    ) -> "WarpProgram":
        """A program repeating ``body`` (list of segments) ``iterations`` times."""
        return WarpProgram(body=tuple(body), iterations=iterations)

    @staticmethod
    def straight(counts: dict[OpClass, int]) -> "WarpProgram":
        """A single-iteration program with one segment per op class.

        All-zero ``counts`` normalize to :meth:`empty`.
        """
        body = tuple((op, c) for op, c in counts.items() if c > 0)
        if not body:
            return WarpProgram.empty()
        return WarpProgram(body=body, iterations=1)

    @staticmethod
    def empty() -> "WarpProgram":
        """A warp with nothing to do (used for padding partitions)."""
        return WarpProgram(body=(), iterations=0)

    # -- queries --------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the program issues no instructions at all."""
        return not self.body or self.iterations == 0

    @cached_property
    def instructions_per_iteration(self) -> int:
        """Total instructions in one loop body."""
        return sum(count for _, count in self.body)

    @cached_property
    def total_instructions(self) -> int:
        """Total instructions over all iterations."""
        return self.instructions_per_iteration * self.iterations

    def count(self, op: OpClass) -> int:
        """Total instructions of class ``op`` over all iterations."""
        per_iter = sum(c for o, c in self.body if o is op)
        return per_iter * self.iterations

    def mix(self) -> dict[OpClass, int]:
        """Instruction totals per op class."""
        out: dict[OpClass, int] = {}
        for op, c in self.body:
            out[op] = out.get(op, 0) + c
        return {op: c * self.iterations for op, c in out.items()}

    def scaled(self, factor: float) -> "WarpProgram":
        """The same body with iterations scaled by ``factor`` (rounded, >= 0).

        A scale that rounds the iteration count to zero yields
        :meth:`empty` — the canonical no-work program — rather than a
        dead body.  Results are memoized (programs are immutable and
        the performance model rescales the same launches repeatedly).
        """
        if factor < 0:
            raise SimulationError("scale factor must be >= 0")
        return _scaled(self, factor)


@lru_cache(maxsize=8192)
def _scaled(program: WarpProgram, factor: float) -> WarpProgram:
    iterations = max(0, round(program.iterations * factor))
    if iterations == 0:
        return WarpProgram.empty()
    return WarpProgram(body=program.body, iterations=iterations)
