"""Simulation statistics containers.

:class:`PartitionStats` comes out of one sub-partition's issue loop;
:class:`KernelStats` aggregates a whole kernel launch (all waves, all
SMs, DRAM bound applied) and exposes the derived metrics the paper's
figures use: IPC (Fig. 10), per-pipe instruction counts (Fig. 9) and
pipe utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.instruction import OpClass

__all__ = ["PartitionStats", "KernelStats"]


@dataclass
class PartitionStats:
    """Issue-loop results for one SM sub-partition."""

    cycles: int = 0
    issued: dict[OpClass, int] = field(default_factory=dict)
    pipe_busy: dict[OpClass, int] = field(default_factory=dict)
    idle_cycles: int = 0

    @property
    def instructions(self) -> int:
        """Total instructions issued."""
        return sum(self.issued.values())

    @property
    def ipc(self) -> float:
        """Instructions per cycle through this scheduler (<= 1)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def utilization(self, op: OpClass) -> float:
        """Fraction of cycles the pipe for ``op`` was busy."""
        if not self.cycles:
            return 0.0
        return self.pipe_busy.get(op, 0) / self.cycles


@dataclass
class KernelStats:
    """Aggregate results of one simulated kernel launch."""

    cycles: int = 0
    compute_cycles: int = 0
    dram_cycles: int = 0
    seconds: float = 0.0
    instructions: int = 0
    issued: dict[OpClass, int] = field(default_factory=dict)
    pipe_utilization: dict[OpClass, float] = field(default_factory=dict)
    sm_count: int = 1
    waves: int = 1
    memory_bound: bool = False

    @property
    def ipc(self) -> float:
        """Average instructions per cycle per SM (4 schedulers -> max 4)."""
        if not self.cycles:
            return 0.0
        return self.instructions / (self.cycles * self.sm_count)

    def scaled_add(self, other: "KernelStats") -> "KernelStats":
        """Accumulate another kernel's stats (sequential execution)."""
        out = KernelStats(
            cycles=self.cycles + other.cycles,
            compute_cycles=self.compute_cycles + other.compute_cycles,
            dram_cycles=self.dram_cycles + other.dram_cycles,
            seconds=self.seconds + other.seconds,
            instructions=self.instructions + other.instructions,
            sm_count=max(self.sm_count, other.sm_count),
            waves=self.waves + other.waves,
            memory_bound=self.memory_bound or other.memory_bound,
        )
        for src in (self.issued, other.issued):
            for op, n in src.items():
                out.issued[op] = out.issued.get(op, 0) + n
        # Utilizations combine as cycle-weighted averages.
        total = out.cycles or 1
        ops = set(self.pipe_utilization) | set(other.pipe_utilization)
        for op in ops:
            out.pipe_utilization[op] = (
                self.pipe_utilization.get(op, 0.0) * self.cycles
                + other.pipe_utilization.get(op, 0.0) * other.cycles
            ) / total
        return out
