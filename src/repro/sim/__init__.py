"""Cycle-approximate GPU simulator.

This is the hardware substrate the reproduction runs on instead of a
physical Jetson: a warp-scheduler/issue-port model of an Ampere SM with
separate INT, FP, Tensor, load-store and SFU pipes.  It is *cycle
approximate*: instruction streams are compressed (loop bodies x
iterations), dependencies are modelled as a per-warp issue gap, and
DRAM is a bandwidth bound applied at kernel granularity — enough to
reproduce the paper's concurrency, IPC and instruction-count effects,
at pure-Python speed.

Typical use::

    from repro.arch import jetson_orin_agx
    from repro.sim import GPUSim, WarpProgram, OpClass

    machine = jetson_orin_agx()
    gpu = GPUSim(machine)
    prog = WarpProgram.loop([(OpClass.LSU, 1), (OpClass.INT, 4)], iterations=64)
    stats = gpu.run_kernel([prog] * 32, bytes_moved=1 << 20)
    print(stats.ipc, stats.pipe_utilization[OpClass.INT])
"""

from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.program import WarpProgram
from repro.sim.smsim import SIM_MODES, SMSim, SubPartitionSim, clear_partition_memo
from repro.sim.gpu import GPUSim
from repro.sim.memory import DramModel
from repro.sim.trace import KernelStats

__all__ = [
    "OpClass",
    "PipeTiming",
    "default_timings",
    "WarpProgram",
    "SubPartitionSim",
    "SMSim",
    "SIM_MODES",
    "clear_partition_memo",
    "GPUSim",
    "DramModel",
    "KernelStats",
]
