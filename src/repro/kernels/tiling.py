"""Tiled-GEMM kernel construction: explicit warp programs from tile shapes.

The aggregate cost model (:mod:`repro.perfmodel.warpsets`) summarizes a
GEMM's instruction stream with two constants (loads and misc per ALU
op).  This module builds the stream *structurally* instead, the way the
paper's reconstructed kernels are actually written: a thread block owns
a ``BM x BN`` output tile, stages ``BK``-deep slabs of A and B through
shared memory, and each warp runs

    prologue (global->shared loads)
    steady state: per BK-slab { slab loads | per k: operand fetch + MACs }
    epilogue (requantize + store)

so the loads-per-ALU ratio *emerges* from the tiling (BK and the
register blocking set the reuse) rather than being assumed.  The
resulting :class:`TiledGemm` lowers to simulator warp programs, and
:func:`autotune` searches tile space on the simulated machine — the
methodology a CUDA engineer applies with nsight, reproduced against the
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.specs import MachineSpec
from repro.errors import ModelConfigError, ScheduleError
from repro.perfmodel.descriptors import GemmShape
from repro.sim.gpu import GPUSim
from repro.sim.instruction import OpClass
from repro.sim.program import WarpProgram
from repro.sim.trace import KernelStats

__all__ = ["TileConfig", "TiledGemm", "build_tiled_gemm", "autotune"]

_WARP = 32


@dataclass(frozen=True)
class TileConfig:
    """Thread-block tiling parameters of a CUDA-core GEMM.

    ``bm x bn`` is the block's output tile, ``bk`` the shared-memory
    slab depth, ``warps`` the warps per block, and ``regs_m x regs_n``
    each thread's register blocking (outputs per thread).
    """

    bm: int = 64
    bn: int = 64
    bk: int = 16
    warps: int = 8
    regs_m: int = 4
    regs_n: int = 4

    def __post_init__(self) -> None:
        for name in ("bm", "bn", "bk", "warps", "regs_m", "regs_n"):
            if getattr(self, name) < 1:
                raise ModelConfigError(f"{name} must be >= 1")
        outputs = self.bm * self.bn
        per_thread = self.regs_m * self.regs_n
        threads = self.warps * _WARP
        if per_thread * threads < outputs:
            raise ModelConfigError(
                f"tile {self.bm}x{self.bn} needs {outputs} outputs but "
                f"{self.warps} warps x {per_thread} regs cover only "
                f"{per_thread * threads}"
            )

    @property
    def threads(self) -> int:
        """Threads per block (32 per warp)."""
        return self.warps * _WARP

    @property
    def macs_per_thread_per_k(self) -> int:
        """MAC instructions each thread issues per k step."""
        return self.regs_m * self.regs_n

    def label(self) -> str:
        """Compact tile descriptor used in tables and sweep output."""
        return (
            f"{self.bm}x{self.bn}x{self.bk}/w{self.warps}"
            f"r{self.regs_m}x{self.regs_n}"
        )


@dataclass
class TiledGemm:
    """A GEMM lowered to explicit per-warp programs."""

    shape: GemmShape
    tile: TileConfig
    pipe: OpClass
    warps_per_sm: list[WarpProgram]
    total_warps: int
    bytes_moved: float

    @property
    def loads_per_alu(self) -> float:
        """The emergent LSU : ALU instruction ratio of this tiling."""
        mix: dict[OpClass, int] = {}
        for w in self.warps_per_sm:
            for op, n in w.mix().items():
                mix[op] = mix.get(op, 0) + n
        alu = mix.get(self.pipe, 0)
        return mix.get(OpClass.LSU, 0) / alu if alu else float("inf")


def build_tiled_gemm(
    shape: GemmShape,
    tile: TileConfig,
    machine: MachineSpec,
    *,
    pipe: OpClass = OpClass.INT,
    pack_lanes: int = 1,
) -> TiledGemm:
    """Lower a GEMM with ``tile`` into per-warp programs.

    ``pack_lanes`` > 1 models VitBit's operand packing: each of the
    thread's ``regs_n`` B-registers holds ``pack_lanes`` packed
    columns, so one block tile covers ``bn * pack_lanes`` output
    columns and the grid needs proportionally fewer blocks — the
    per-thread instruction stream is unchanged, the *grid* shrinks.

    Instruction accounting per warp per BK-slab:

    * slab staging: each thread loads its share of the A and B slabs
      (``(bm + bn) * bk / threads`` elements — packed registers count
      as one element — vectorized 4 per LSU);
    * per k step: ``(regs_m + regs_n) / 2`` shared-memory operand
      fetches (A values + B registers) and ``regs_m * regs_n`` MACs;
    * loop bookkeeping: one MISC per slab.
    """
    if pipe not in (OpClass.INT, OpClass.FP):
        raise ScheduleError("tiled CUDA GEMMs run on the INT or FP pipe")
    if pack_lanes < 1:
        raise ModelConfigError(f"pack_lanes must be >= 1, got {pack_lanes}")
    t = tile
    blocks = math.ceil(shape.m / t.bm) * math.ceil(shape.n / (t.bn * pack_lanes))
    slabs = math.ceil(shape.k / t.bk)

    stage_elems = (t.bm + t.bn) * t.bk / t.threads
    stage_lsu = max(1, round(stage_elems / 4))  # 128-bit vector loads
    fetch_lsu = max(1, round((t.regs_m + t.regs_n) / 2))
    macs = t.regs_m * t.regs_n

    body = (
        (OpClass.LSU, stage_lsu),
        (OpClass.MISC, 1),
        # Steady k-loop for one slab, flattened: bk repetitions of
        # (operand fetch + MAC bundle).
        (OpClass.LSU, fetch_lsu * t.bk),
        (pipe, macs * t.bk),
    )
    program = WarpProgram(body=body, iterations=slabs)

    total_warps = blocks * t.warps
    sm_capacity = machine.sm.max_warps_per_sm
    resident = min(sm_capacity, max(t.warps, total_warps // machine.sm_count))
    # Fold the whole grid's work into the representative resident set.
    warps_needed = total_warps / machine.sm_count
    fold = max(1.0, warps_needed / resident)
    warps_per_sm = [program.scaled(fold) for _ in range(resident)]

    bytes_a = shape.m * shape.k * 1 * math.ceil(shape.n / (t.bn * pack_lanes))
    bytes_b = shape.k * shape.n * 1 * math.ceil(shape.m / t.bm)
    bytes_c = shape.m * shape.n * 1
    return TiledGemm(
        shape=shape,
        tile=t,
        pipe=pipe,
        warps_per_sm=warps_per_sm,
        total_warps=total_warps,
        bytes_moved=float(bytes_a + bytes_b + bytes_c),
    )


def simulate_tiled(
    gemm: TiledGemm, machine: MachineSpec, *, target_instructions: int = 25_000
) -> KernelStats:
    """Run a tiled GEMM through the simulator with work scaling."""
    total = sum(w.total_instructions for w in gemm.warps_per_sm)
    scale = max(1.0, total / target_instructions)
    warps = [w.scaled(1.0 / scale) for w in gemm.warps_per_sm]
    sim_total = sum(w.total_instructions for w in warps)
    if sim_total == 0:
        raise ScheduleError("tiled GEMM scaled to zero work")
    factor = total / sim_total  # realized scale (iteration rounding)
    gpu = GPUSim(machine, include_launch_overhead=False)
    stats = gpu.run_kernel(warps, bytes_moved=gemm.bytes_moved / factor)
    stats.seconds *= factor
    stats.cycles = int(stats.cycles * factor)
    return stats


def autotune(
    shape: GemmShape,
    machine: MachineSpec,
    *,
    pipe: OpClass = OpClass.INT,
    pack_lanes: int = 1,
    candidates: tuple[TileConfig, ...] | None = None,
) -> tuple[TileConfig, KernelStats]:
    """Pick the fastest tile configuration on the simulated machine."""
    if candidates is None:
        candidates = (
            TileConfig(32, 32, 8, 4, 4, 2),
            TileConfig(64, 32, 16, 4, 4, 4),
            TileConfig(64, 64, 16, 8, 4, 4),
            TileConfig(128, 64, 16, 8, 8, 4),
            TileConfig(64, 64, 32, 8, 4, 4),
            TileConfig(128, 128, 16, 16, 8, 4),
        )
    best: tuple[TileConfig, KernelStats] | None = None
    for tile in candidates:
        gemm = build_tiled_gemm(
            shape, tile, machine, pipe=pipe, pack_lanes=pack_lanes
        )
        stats = simulate_tiled(gemm, machine)
        if best is None or stats.seconds < best[1].seconds:
            best = (tile, stats)
    assert best is not None  # candidates is non-empty
    return best
