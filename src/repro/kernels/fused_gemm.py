"""Algorithm 2: the fused Tensor + INT + FP GEMM kernel (functional half).

``VitBit_GEMM`` in the paper dispatches warps of one thread block to
three code paths; functionally that is three partial GEMMs over the
column slices produced by Algorithm 1, whose outputs concatenate into
the full product:

* B3 columns x A1 on Tensor cores   (``tc_gemm``),
* B1 columns x A1 on INT cores with packed operands (``packed_gemm``),
* B2 columns x A2 on FP cores       (``fc_gemm``).

The function verifies the invariant the paper's accuracy claim rests
on: the fused result is bit-identical to a plain integer GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PackingError
from repro.kernels.gemm import fc_gemm, tc_gemm
from repro.packing.gemm import PackedGemmStats, packed_gemm
from repro.packing.policy import PackingPolicy
from repro.preprocess.convert import restore_outputs
from repro.preprocess.split import SplitMatrices
from repro.utils.bitops import bit_length_unsigned

__all__ = ["FusedGemmOutput", "fused_gemm"]


@dataclass
class FusedGemmOutput:
    """Result of a fused GEMM: the full product plus per-path partials."""

    c: np.ndarray
    c1: np.ndarray
    c2: np.ndarray
    c3: np.ndarray
    packed_stats: PackedGemmStats


def fused_gemm(
    a1: np.ndarray,
    a2: np.ndarray,
    split: SplitMatrices,
    policy: PackingPolicy,
    *,
    b_zero_point: int | None = None,
    method: str = "chunked",
    backend: str | None = None,
) -> FusedGemmOutput:
    """Compute ``a1 @ B`` through the three fused paths of Algorithm 2.

    ``a1``/``a2`` are the INT and FP duplicates of the weight matrix
    (from :func:`repro.preprocess.duplicate_weights`); ``split`` holds
    the B1/B2/B3 column slices.  ``b_zero_point`` is subtracted from the
    *stored* (offset) B values to recover the true product — pass the
    activation zero point when B was offset to non-negative for packing;
    it is applied consistently to all three paths.  ``backend`` selects
    the packed-GEMM kernel backend for the INT path (see
    :mod:`repro.packing.backends`); results are bit-identical across
    backends.
    """
    a1 = np.asarray(a1, dtype=np.int64)
    if a1.shape != a2.shape:
        raise PackingError(
            f"A1 {a1.shape} and A2 {a2.shape} must be the same weight matrix"
        )
    plan = split.plan
    m = a1.shape[0]
    stats = PackedGemmStats()

    # Zero-point correction shared by all three paths: B is *stored*
    # offset (non-negative for packing); sum_k a[i,k] * zp restores the
    # true product and is identical for every output column.
    correction = (
        (a1.sum(axis=1, dtype=np.int64) * b_zero_point)[:, None]
        if b_zero_point
        else None
    )

    # INT path: packed SWAR GEMM over the stored (non-negative) B1.
    if plan.n1:
        # Pre-flight the packing plan before any path computes: proves
        # the chunked accumulation safe for the worst-case magnitudes or
        # fails with a concrete overflow witness (lazy import — analysis
        # depends on the packing package).
        from repro.analysis import laneir
        from repro.analysis.overflow import preflight_gemm

        a_mag = np.abs(a1)
        a_bits = bit_length_unsigned(a_mag) if a_mag.size else 1
        preflight_gemm(policy, a_bits=a_bits, k=a1.shape[1])
        laneir.note(
            f"fused_gemm INT path: n1={plan.n1} columns, a_bits={a_bits}, "
            f"k={a1.shape[1]}, zero_point={b_zero_point or 0}"
        )
        c1 = packed_gemm(
            a1, split.b1_raw, policy, stats=stats, method=method, backend=backend
        )
        if correction is not None:
            c1 = c1 - correction
    else:
        c1 = np.zeros((m, 0), dtype=np.int64)

    # FP path: float32 GEMM; zero-point correction applied afterwards in
    # integer space (the FP kernel sees the stored values, as on the GPU).
    if plan.n2:
        c2 = fc_gemm(a1, split.b2.astype(np.int64))
        if correction is not None:
            c2 = c2 - correction
    else:
        c2 = np.zeros((m, 0), dtype=np.int64)

    # Tensor path: zero-masked integer MMA.
    if plan.n3:
        c3 = tc_gemm(a1, split.b3)
        if correction is not None:
            c3 = c3 - correction
    else:
        c3 = np.zeros((m, 0), dtype=np.int64)

    c = restore_outputs(c1, c2, c3, plan)
    return FusedGemmOutput(c=c, c1=c1, c2=c2, c3=c3, packed_stats=stats)
