"""Functional GPU kernels (exact integer math) used by the reproduction.

Each kernel here is the *functional* half of a CUDA kernel the paper
runs: it computes exactly what the hardware kernel computes, in NumPy.
The *cost* half (instruction mixes, DRAM bytes) lives in
:mod:`repro.perfmodel`, which prices these kernels on the simulated
machine.  The split mirrors the paper's own argument structure:
correctness (packing is exact) is separate from performance (packing
shortens the instruction stream).
"""

from repro.kernels.gemm import fc_gemm, ic_gemm, tc_gemm
from repro.kernels.fused_gemm import FusedGemmOutput, fused_gemm
from repro.kernels.elementwise import (
    dropout,
    i_exp2_fixed,
    i_layernorm,
    i_sqrt,
    residual_add,
    requantize,
    shiftgelu,
    shiftmax,
)

__all__ = [
    "tc_gemm",
    "ic_gemm",
    "fc_gemm",
    "fused_gemm",
    "FusedGemmOutput",
    "shiftmax",
    "shiftgelu",
    "i_layernorm",
    "i_sqrt",
    "i_exp2_fixed",
    "dropout",
    "residual_add",
    "requantize",
]
