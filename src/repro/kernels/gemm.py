"""Reference GEMM kernels for each execution unit.

Functionally all three compute the same exact integer product; they
differ in the numeric path the hardware would take, and each path's
validity conditions are enforced:

* :func:`tc_gemm` — Tensor-core IMMA: int8 operands, int32 accumulate
  (saturation behaviour checked);
* :func:`ic_gemm` — INT32 CUDA-core path (zero-masked or packed);
* :func:`fc_gemm` — FP32 CUDA-core path: operands converted to float32;
  exact as long as every partial sum stays inside FP32's 2**24 integer
  window, which is checked.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PackingError
from repro.utils.validation import check_dtype_integer, check_shape_2d

__all__ = ["tc_gemm", "ic_gemm", "fc_gemm"]

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1
_FP32_EXACT = 1 << 24


def _validate(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    check_dtype_integer("a", a)
    check_dtype_integer("b", b)
    check_shape_2d("a", a)
    check_shape_2d("b", b)
    if a.shape[1] != b.shape[0]:
        raise PackingError(
            f"inner dimensions differ: a is {a.shape}, b is {b.shape}"
        )
    return np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)


def tc_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tensor-core GEMM: exact int64 result, int32-accumulator checked.

    Raises :class:`~repro.errors.PackingError` if any accumulator value
    leaves the int32 range the IMMA instruction accumulates in — in
    which case the hardware result would differ and the workload needs
    rescaling (ViT-Base shapes never get close).
    """
    a64, b64 = _validate(a, b)
    c = a64 @ b64
    if c.size and (int(c.min()) < _INT32_MIN or int(c.max()) > _INT32_MAX):
        raise PackingError(
            "tensor-core GEMM accumulator left the int32 range; "
            "requantize inputs before the GEMM"
        )
    return c


def ic_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """INT CUDA-core GEMM (zero-masked operands): exact int64 result."""
    a64, b64 = _validate(a, b)
    c = a64 @ b64
    if c.size and (int(c.min()) < _INT32_MIN or int(c.max()) > _INT32_MAX):
        raise PackingError(
            "INT-core GEMM accumulator left the int32 range; "
            "requantize inputs before the GEMM"
        )
    return c


def fc_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """FP32 CUDA-core GEMM on integer data (the paper's FC method).

    The integer inputs are cast to float32 and multiplied with float32
    accumulation.  The result is converted back and verified exact:
    integer dot products are representable as long as partial sums stay
    within 2**24, which we check conservatively via the exact integer
    product.
    """
    a64, b64 = _validate(a, b)
    exact = a64 @ b64
    if exact.size and int(np.max(np.abs(exact))) > _FP32_EXACT:
        raise PackingError(
            "FP-core GEMM dot products exceed float32's exact integer "
            "window (2**24); the FC path would round"
        )
    c = a64.astype(np.float32) @ b64.astype(np.float32)
    c_int = np.rint(c).astype(np.int64)
    if not np.array_equal(c_int, exact):
        raise PackingError(
            "float32 accumulation diverged from the exact integer product"
        )
    return c_int
