"""Integer-only elementwise kernels (the paper's "CUDA core kernels").

These are the non-GEMM kernels of a ViT attention block — Softmax,
GeLU, LayerNorm, Dropout, residual adds, requantization — implemented
with the integer-only computation rules of I-ViT (Li & Gu, ICCV 2023),
which the paper adopts for its ViT-Base workload: shift-based exp2
approximations instead of transcendental functions, and an integer
Newton square root for normalization.  Everything is deterministic and
float-free, which is what makes "packed execution is bit-exact" a
meaningful claim end to end.

All kernels operate on int64 NumPy arrays holding fixed-point values;
``fraction_bits`` states how many low bits are fractional.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError
from repro.formats.quantize import DyadicScale
from repro.utils.validation import check_dtype_integer

__all__ = [
    "i_exp2_fixed",
    "shiftmax",
    "shiftgelu",
    "i_sqrt",
    "i_layernorm",
    "dropout",
    "residual_add",
    "requantize",
]


def _check_fraction_bits(fraction_bits: int) -> None:
    if not 1 <= fraction_bits <= 24:
        raise ModelConfigError(
            f"fraction_bits must be in 1..24, got {fraction_bits}"
        )


def i_exp2_fixed(t: np.ndarray, fraction_bits: int) -> np.ndarray:
    """Integer approximation of ``2**t`` for non-positive fixed-point ``t``.

    ``t`` is fixed point with ``fraction_bits`` fractional bits and must
    be <= 0.  Decomposes ``t = -k + r/2**F`` and approximates the
    fractional factor with the integer quadratic
    ``2**x ~ 1 + x*(0.6602 + 0.3398*x)`` for ``x in [0, 1)`` (minimax
    fit, max error 0.27%) — a two-multiply refinement of the shift-and-add scheme
    I-ViT's Shiftmax uses.  Returns fixed-point values in
    ``(0, 2**F]``.
    """
    _check_fraction_bits(fraction_bits)
    arr = np.asarray(t, dtype=np.int64)
    if arr.size and int(arr.max()) > 0:
        raise ModelConfigError("i_exp2_fixed requires non-positive inputs")
    f = np.int64(fraction_bits)
    one = np.int64(1) << f
    k = (-arr + one - 1) >> f  # ceil(-t) so the remainder is non-negative
    r = arr + (k << f)  # fractional remainder in [0, 2**F)
    c1 = np.int64(round(0.6602 * (1 << fraction_bits)))
    c2 = np.int64(round(0.3398 * (1 << fraction_bits)))
    mantissa = one + ((r * (c1 + ((c2 * r) >> f))) >> f)
    k = np.minimum(k, np.int64(62))  # deep underflow clamps to 0 anyway
    return mantissa >> k


def shiftmax(
    scores: np.ndarray, *, fraction_bits: int = 10, out_bits: int = 8, axis: int = -1
) -> np.ndarray:
    """Integer-only softmax (I-ViT Shiftmax).

    ``scores`` are fixed-point logits with ``fraction_bits`` fractional
    bits.  Steps: subtract the row max; convert the natural exponent to
    a base-2 exponent with the shift identity
    ``x / ln 2 ~ x + x>>1 - x>>4`` (0.1% error); evaluate
    :func:`i_exp2_fixed`; normalize to unsigned ``out_bits`` fixed-point
    probabilities.  Rows sum to ~``2**out_bits`` (floor division loses
    at most one ULP per element).
    """
    check_dtype_integer("scores", scores)
    _check_fraction_bits(fraction_bits)
    if not 2 <= out_bits <= 16:
        raise ModelConfigError(f"out_bits must be in 2..16, got {out_bits}")
    q = np.asarray(scores, dtype=np.int64)
    d = q - q.max(axis=axis, keepdims=True)
    # x * log2(e): 1 + 1/2 - 1/16 = 1.4375 ~ 1.4427
    t = d + (d >> 1) - (d >> 4)
    e = i_exp2_fixed(t, fraction_bits)
    total = e.sum(axis=axis, keepdims=True)
    scale = np.int64(1) << np.int64(out_bits)
    return (e * scale) // np.maximum(total, 1)


def shiftgelu(q: np.ndarray, *, fraction_bits: int = 10) -> np.ndarray:
    """Integer-only GeLU (I-ViT ShiftGELU): ``x * sigmoid(1.702 x)``.

    ``1.702 x`` is built from shifts (``x + x>>1 + x>>3 + x>>4 + x>>7``
    = 1.7109x, 0.5% error), the sigmoid from the integer exp2 of the
    negative magnitude.  Input/output are fixed point with
    ``fraction_bits`` fractional bits.
    """
    check_dtype_integer("q", q)
    _check_fraction_bits(fraction_bits)
    x = np.asarray(q, dtype=np.int64)
    z = x + (x >> 1) + (x >> 3) + (x >> 4) + (x >> 7)
    mag = np.abs(z)
    # exp(-|z|) = 2**(-|z| * log2 e)
    t = -(mag + (mag >> 1) - (mag >> 4))
    p = i_exp2_fixed(t, fraction_bits)  # in (0, 2**F]
    one = np.int64(1) << np.int64(fraction_bits)
    # sigmoid(z) = p/(1+p) for z<0, 1/(1+p) for z>=0, in F-bit fixed point.
    denom = one + p
    sig = np.where(z < 0, (p << np.int64(fraction_bits)) // denom,
                   (one << np.int64(fraction_bits)) // denom)
    return (x * sig) >> np.int64(fraction_bits)


def i_sqrt(values: np.ndarray) -> np.ndarray:
    """Exact integer square root (floor) for non-negative int64 arrays.

    Float seed + two correction passes — the vectorized equivalent of
    I-ViT's Newton iteration, exact for all inputs below 2**52.
    """
    check_dtype_integer("values", values)
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and int(arr.min()) < 0:
        raise ModelConfigError("i_sqrt requires non-negative inputs")
    if arr.size and int(arr.max()) >= (1 << 52):
        raise ModelConfigError("i_sqrt supports inputs below 2**52")
    root = np.sqrt(arr.astype(np.float64)).astype(np.int64)
    # Correct the float seed to the exact floor square root.
    for _ in range(2):
        root = np.where((root + 1) * (root + 1) <= arr, root + 1, root)
        root = np.where(root * root > arr, root - 1, root)
    return root


def i_layernorm(
    q: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    fraction_bits: int = 10,
    axis: int = -1,
) -> np.ndarray:
    """Integer-only LayerNorm (I-ViT I-LayerNorm).

    Mean and variance in integer arithmetic, the standard deviation via
    :func:`i_sqrt`, and the normalized value scaled to ``fraction_bits``
    fixed point before the integer affine ``gamma * x_hat + beta``
    (``gamma`` in ``fraction_bits`` fixed point, ``beta`` in output
    scale).  Output has ``fraction_bits`` fractional bits.
    """
    check_dtype_integer("q", q)
    check_dtype_integer("gamma", gamma)
    check_dtype_integer("beta", beta)
    _check_fraction_bits(fraction_bits)
    x = np.asarray(q, dtype=np.int64)
    n = x.shape[axis]
    if n == 0:
        raise ModelConfigError("cannot normalize over an empty axis")
    # The variance accumulates n * centered^2 in int64; bound the input
    # so the sum cannot silently wrap (2**20 squared times any
    # realistic width stays far below 2**52, i_sqrt's domain).
    if x.size and int(np.max(np.abs(x))) > (1 << 20):
        raise ModelConfigError(
            "i_layernorm inputs must fit 20 bits; rescale upstream"
        )
    mean = x.sum(axis=axis, keepdims=True) // n
    centered = x - mean
    var = (centered * centered).sum(axis=axis, keepdims=True) // n
    std = np.maximum(i_sqrt(var), 1)
    one = np.int64(1) << np.int64(fraction_bits)
    x_hat = (centered * one) // std
    g = np.asarray(gamma, dtype=np.int64)
    b = np.asarray(beta, dtype=np.int64)
    return ((x_hat * g) >> np.int64(fraction_bits)) + b


def dropout(
    q: np.ndarray,
    *,
    rate: float = 0.0,
    training: bool = False,
    seed: int = 0,
) -> np.ndarray:
    """Dropout kernel.  Identity at inference (the paper's setting).

    In training mode a counter-based integer LCG generates the mask so
    the kernel stays deterministic and float-free; surviving values are
    scaled by ``1/(1-rate)`` via integer multiply-shift.
    """
    check_dtype_integer("q", q)
    if not 0.0 <= rate < 1.0:
        raise ModelConfigError(f"dropout rate must be in [0, 1), got {rate}")
    x = np.asarray(q, dtype=np.int64)
    if not training or rate == 0.0:
        return x.copy()
    # Philox-style counter hash (one round is plenty for a mask).
    idx = np.arange(x.size, dtype=np.uint64).reshape(x.shape)
    h = (idx + np.uint64(seed)) * np.uint64(0x9E3779B97F4A7C15)
    h ^= h >> np.uint64(29)
    keep = (h % np.uint64(1 << 20)) >= np.uint64(int(rate * (1 << 20)))
    scale = DyadicScale(
        multiplier=round((1.0 / (1.0 - rate)) * (1 << 12)), shift=12
    )
    return np.where(keep, scale.apply(x), 0)


def residual_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Integer residual addition (shapes must match)."""
    check_dtype_integer("a", a)
    check_dtype_integer("b", b)
    x = np.asarray(a, dtype=np.int64)
    y = np.asarray(b, dtype=np.int64)
    if x.shape != y.shape:
        raise ModelConfigError(f"residual shapes differ: {x.shape} vs {y.shape}")
    return x + y


def requantize(
    acc: np.ndarray, scale: DyadicScale, *, out_min: int, out_max: int
) -> np.ndarray:
    """Requantization: dyadic rescale + saturation into the output format."""
    check_dtype_integer("acc", acc)
    if out_min > out_max:
        raise ModelConfigError(f"empty output range [{out_min}, {out_max}]")
    return np.clip(scale.apply(np.asarray(acc, dtype=np.int64)), out_min, out_max)
