"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Regenerate Table 1 (peak throughput per numeric format).
``policy [--bits N]``
    Show the Fig. 3 packing policy (all bitwidths, or one).
``study [--batch B]``
    The Sec. 3.2 initial GEMM study and the selected ratio m.
``fig5 [--batch B] [--model NAME]``
    End-to-end inference speedups for all Table 3 strategies.
``verify [--model NAME] [--seed S]``
    Functional bit-exactness of packed/fused inference vs reference.
``energy [--batch B]``
    Energy per inference per strategy (extension; see EXPERIMENTS.md).
``render [--bits N] [--columns N]``
    Emit the reconstructed fused GEMM as annotated CUDA-like source.
``breakdown [--batch B] [--strategy NAME]``
    Per-kernel timing breakdown of one inference.
``bench [--batch B] [--model NAME] [--processes N] [--clear-cache]``
    Price the Fig. 5 workload with the parallel sweep runner; reports
    wall-clock, timing-cache hit rate and per-kernel timings.
``models``
    List the model zoo.
``analyze [--bits N --k K | --dataflow | --strategy NAME | --lint [PATH ...] | --self-check]``
    Static verification: prove/refute a packing plan's overflow safety,
    run the lane dataflow verifier (``--dataflow``: capture the IR of
    real packed GEMMs and abstractly interpret it, or verify one
    ``--a-bits/--b-bits/--lanes/--k`` plan; the sweep also emits the
    proven-safe-depth table into ``--summary``), check a strategy's
    lowered schedules, lint the repo, or run the full self-check sweep
    (the default).  ``--format json`` prints machine-readable
    diagnostics (code, severity, location, witness) for CI annotation.
    Exits non-zero on error findings.
``serve [--requests N] [--rate R] [--seed S] [--model NAME] ...``
    Deterministic open-loop serving benchmark on the simulated clock:
    admission control, dynamic batching, QoS deadlines, graceful
    degradation.  Reports throughput and p50/p95/p99 latency and merges
    them into ``benchmarks/out/summary.json`` under ``"serve"`` plus a
    full metrics snapshot under ``"metrics"``; ``--trace PATH`` writes
    the span timeline as Chrome-tracing JSON.  ``--replicas N`` (> 1)
    serves through the self-healing replicated cluster instead, and
    ``--chaos-seed S`` injects the seeded fault schedule while it runs
    (see ``docs/ROBUSTNESS.md``).
``chaos [--seed S] [--requests N] [--replicas N] ...``
    Deterministic chaos drill: run one seeded fault scenario against
    the replicated cluster **twice** and require byte-identical stats
    and traces plus zero bit-inexact results.  Non-zero exit on any
    determinism or correctness violation — the CI chaos smoke job is
    exactly this command.
``metrics [--format table|json|prom] [--summary PATH]``
    Render the ``"metrics"`` section of ``summary.json`` (written by
    ``serve``/``bench``) as a table, canonical JSON, or the Prometheus
    text exposition format.  See ``docs/OBSERVABILITY.md``.
``whatif [--backend NAME|all] [--list-backends] ...``
    Cross-backend design-space explorer: sweep bitwidth x strategy x
    backend through the parallel runner and report per-backend and
    global Pareto frontiers (throughput, energy, density).  Merges the
    deterministic section into ``summary.json`` under
    ``"whatif_backends"``.  See ``docs/BACKENDS.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.arch import (
    backend_names,
    jetson_orin_agx,
    peak_throughput_table,
    resolve_backend,
)
from repro.arch.energy import inference_energy
from repro.fusion import (
    IC,
    STRATEGIES,
    TACKER,
    TC,
    TC_IC_FC,
    VITBIT,
    strategy_by_name,
)
from repro.fusion.strategies import Strategy
from repro.packing import policy_for_bitwidth, safe_accumulation_depth
from repro.perfmodel import GemmShape, PerformanceModel
from repro.utils.tables import format_table
from repro.vit import IntViT, time_inference, verify_bit_exact
from repro.vit.zoo import MODEL_ZOO, model_config


def _cmd_table1(_args: argparse.Namespace) -> int:
    machine = jetson_orin_agx()
    rows = [(r.fmt, r.unit, r.teraops) for r in peak_throughput_table(machine)]
    print(format_table(["format", "unit", "peak (TOPS)"], rows,
                       title=f"Table 1 — {machine.name}", ndigits=1))
    return 0


def _cmd_policy(args: argparse.Namespace) -> int:
    bits_list = [args.bits] if args.bits else list(range(1, 17))
    rows = []
    for bits in bits_list:
        pol = policy_for_bitwidth(bits)
        depth = safe_accumulation_depth(pol, max(1, bits - 1), bits)
        rows.append((bits, pol.lanes, pol.field_bits, depth,
                     f"{pol.bit_utilization():.0%}"))
    print(format_table(
        ["bits", "values/reg", "field bits", "safe acc depth", "bit util"],
        rows, title="Fig. 3 — VitBit packing policy",
    ))
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    pm = PerformanceModel(jetson_orin_agx(), include_launch_overhead=False)
    shape = GemmShape(768, 197 * args.batch, 768, name="proj")
    packed = Strategy("IC+FC+P", False, True, True, True, "C", "packed")
    t_tc = pm.time_gemm(shape, TC).seconds
    rows = [("TC", 1.0)]
    from repro.fusion import FC, IC_FC

    for s in (IC, FC, IC_FC, packed):
        rows.append((s.name, pm.time_gemm(shape, s).seconds / t_tc))
    print(format_table(["case", "time (x TC)"], rows,
                       title=f"Sec. 3.2 initial study — {shape.label()}",
                       ndigits=2))
    print(f"\nselected Tensor:CUDA ratio m = "
          f"{pm.determine_tensor_cuda_ratio(shape, packed)} (paper: 4)")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    pm = PerformanceModel(jetson_orin_agx())
    cfg = model_config(args.model)
    rows = []
    base = None
    for s in (TC, TACKER, TC_IC_FC, VITBIT):
        t = time_inference(pm, s, config=cfg, batch=args.batch)
        if base is None:
            base = t.total_seconds
        rows.append((s.name, t.total_seconds * 1e3, base / t.total_seconds))
    print(format_table(
        ["method", "inference (ms)", "speedup"], rows,
        title=f"Fig. 5 — {args.model} @ batch {args.batch} (simulated)",
    ))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    cfg = model_config(args.model)
    print(f"building integer-only {args.model} (depth {cfg.depth}, "
          f"hidden {cfg.hidden})...")
    model = IntViT.create(cfg, seed=args.seed)
    ok = True
    for s in STRATEGIES:
        if s is TC:
            continue  # reference path is TC-equivalent plain integer GEMM
        exact = verify_bit_exact(model, s, batch=1, seed=args.seed)
        print(f"  {s.name:9s}: bit-exact = {exact}")
        ok &= exact
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_energy(args: argparse.Namespace) -> int:
    pm = PerformanceModel(jetson_orin_agx())
    rows = []
    for s in (TC, TACKER, TC_IC_FC, VITBIT):
        e = inference_energy(pm, s, batch=args.batch)
        rows.append((s.name, e.total * 1e3, e.dynamic_compute * 1e3,
                     e.dynamic_dram * 1e3, e.static * 1e3))
    print(format_table(
        ["method", "total (mJ)", "compute", "DRAM", "static"], rows,
        title=f"Energy per ViT-Base inference @ batch {args.batch} "
        "(extension; simultaneous execution trades energy for latency)",
        ndigits=1,
    ))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.kernels.render import render_fused_gemm, render_pack_helpers

    policy = policy_for_bitwidth(args.bits)
    plan = VITBIT.split_plan(args.columns, policy, 4.0)
    print(render_pack_helpers(policy))
    print()
    print(render_fused_gemm(plan, policy))
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    pm = PerformanceModel(jetson_orin_agx())
    strategy = strategy_by_name(args.strategy)
    timing = time_inference(pm, strategy, batch=args.batch)
    print(timing.report())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perfmodel import TimingCache
    from repro.runner import price_inference_strategies

    cache = TimingCache.default()
    if args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} timing-cache entries")
    machine = jetson_orin_agx()
    strategies = [TC, TACKER, TC_IC_FC, VITBIT]
    rep = price_inference_strategies(
        machine,
        strategies,
        model_name=args.model,
        batch=args.batch,
        processes=args.processes,
    )
    print(rep.render())
    base = rep.values[0]["total_seconds"]
    rows = [
        (
            v["strategy"],
            v["total_seconds"] * 1e3,
            base / v["total_seconds"],
            v["gemm_seconds"] * 1e3,
            v["elementwise_seconds"] * 1e3,
            v["kernel_launches"],
        )
        for v in rep.values
    ]
    print()
    print(format_table(
        ["method", "inference (ms)", "speedup", "GEMM (ms)", "CUDA (ms)",
         "launches"],
        rows,
        title=f"{args.model} @ batch {args.batch} — "
        f"wall {rep.wall_seconds*1e3:.0f} ms, "
        f"cache hit rate {rep.hit_rate:.0%}, "
        f"{rep.simulations} fresh simulations",
    ))
    slowest = sorted(
        rep.values[-1]["per_kernel"], key=lambda kv: kv[1], reverse=True
    )[:8]
    print()
    print(format_table(
        ["kernel", "time (ms)"],
        [(name, s * 1e3) for name, s in slowest],
        title=f"slowest kernels — {rep.values[-1]['strategy']}",
        ndigits=4,
    ))
    stats = cache.stats()
    print(f"\ntiming cache: {stats.entries} entries at "
          f"{stats.directory or '<memory>'}")
    return 0


def _analyze_dataflow(args: argparse.Namespace, *, echo: bool) -> list:
    """Run the lane dataflow verifier; returns its diagnostics.

    With explicit operand widths this verifies a single plan's canonical
    chain; otherwise it executes small packed GEMMs over the standard
    Fig. 3 and asymmetric configurations under IR capture, verifies every
    emitted program, and writes the proven-safe-depth table.
    """
    import numpy as np

    from repro.analysis import dataflow, laneir
    from repro.packing.gemm import packed_gemm_unsigned
    from repro.packing.mixed import policy_for_operands

    diags: list = []
    if args.bits is not None or args.a_bits is not None or args.b_bits is not None:
        # Single-plan mode: prove/refute one (a_bits, b_bits, layout).
        if args.a_bits is not None or args.b_bits is not None:
            a_bits = args.a_bits if args.a_bits is not None else (args.bits or 8)
            b_bits = args.b_bits if args.b_bits is not None else (args.bits or 8)
            pol = policy_for_operands(a_bits, b_bits)
        else:
            pol = policy_for_bitwidth(args.bits)
            a_bits = pol.effective_multiplier_bits
            b_bits = pol.value_bits
        if args.lanes is not None:
            pol = pol.with_lanes(args.lanes)
        chunk = args.chunk
        if chunk == 0:  # 0 = the proven-safe depth
            chunk = dataflow.proven_chunk_depth(pol, a_bits, b_bits)
        res = dataflow.prove_chain(
            pol,
            k=args.k,
            a_bits=a_bits,
            chunk_depth=chunk,
            name=f"a{a_bits}b{b_bits}x{pol.lanes}",
        )
        if echo:
            print(res.describe())
        return list(res.diagnostics)

    # Sweep mode: capture the IR real packed GEMMs emit and verify it.
    rng = np.random.default_rng(0)
    cases = []
    for bits in (2, 4, 8):
        pol = policy_for_bitwidth(bits)
        cases.append(
            (f"fig3_b{bits}", pol, pol.effective_multiplier_bits, bits)
        )
    for a_b, b_b in ((8, 4), (4, 8), (8, 2)):
        cases.append((f"mixed_a{a_b}b{b_b}", policy_for_operands(a_b, b_b), a_b, b_b))
    for name, pol, a_bits, b_bits in cases:
        k = 48
        a = rng.integers(0, 1 << a_bits, size=(3, k)).astype(np.int64)
        b = rng.integers(0, 1 << b_bits, size=(k, 2 * pol.lanes)).astype(np.int64)
        with laneir.capture(name) as prog:
            c = packed_gemm_unsigned(a, b, pol, a_bits=a_bits)
        assert np.array_equal(c, a @ b)  # verifier and execution see one chain
        res = dataflow.verify_program(prog)
        if echo:
            print(f"{res.describe()}  [{prog.flat_size()} ops]")
        diags.extend(res.diagnostics)
    table = dataflow.write_safe_depth_table(args.summary)
    if echo:
        print(f"wrote safe-depth table ({len(table)} plans) to {args.summary}")
    return diags


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DiagnosticReport,
        Severity,
        check_launch,
        lint_paths,
        prove_packed_accumulation,
        run_repo_lint,
        self_check,
    )
    from repro.packing.accumulate import safe_accumulation_depth as _depth

    report = DiagnosticReport()
    ran_anything = False
    echo = args.format == "text"

    if args.dataflow:
        report.extend(_analyze_dataflow(args, echo=echo))
        ran_anything = True
    elif args.bits is not None:
        pol = policy_for_bitwidth(args.bits)
        if args.lanes is not None:
            pol = pol.with_lanes(args.lanes)
        chunk = args.chunk
        if chunk == 0:  # 0 = the planner's safe depth
            a_bits = (
                args.a_bits
                if args.a_bits is not None
                else pol.effective_multiplier_bits
            )
            chunk = min(args.k, _depth(pol, a_bits, pol.value_bits))
        proof = prove_packed_accumulation(
            pol, k=args.k, a_bits=args.a_bits, chunk_depth=chunk
        )
        if echo:
            print(proof.describe())
        report.extend(proof.diagnostics)
        ran_anything = True

    if args.strategy is not None:
        from repro.perfmodel.descriptors import CostParams
        from repro.perfmodel.warpsets import gemm_launch

        machine = jetson_orin_agx()
        strategy = strategy_by_name(args.strategy)
        pol = policy_for_bitwidth(8)
        shape = GemmShape(768, 197 * args.batch, 768, name="proj")
        launch = gemm_launch(shape, strategy, machine, pol, CostParams(), 4.0)
        plan_policy = (
            pol.with_lanes(launch.plan.lanes) if launch.plan is not None else pol
        )
        report.extend(check_launch(launch, machine, policy=plan_policy))
        ran_anything = True

    if args.lint:
        if args.path:
            # Explicit paths get the full rule set (src/-style strictness).
            report.extend(lint_paths(args.path))
        else:
            # Whole repo with per-directory rule sets (tests/benchmarks
            # only get the unused-import rule).
            report.extend(run_repo_lint().diagnostics)
        ran_anything = True

    if args.self_check or not ran_anything:
        report.extend(self_check().diagnostics)

    min_sev = Severity.INFO if args.verbose else Severity.WARNING
    if args.format == "json":
        print(report.to_json(min_severity=min_sev))
    else:
        print(report.render(min_severity=min_sev))
    return report.exit_code


def _default_chaos_spec(seed: int, horizon: float) -> "object":
    """The CLI's standard fault mix for one seeded chaos scenario."""
    from repro.chaos import ChaosSpec

    return ChaosSpec(
        seed=seed,
        horizon_seconds=horizon,
        crashes=1,
        hangs=1,
        latency_spikes=1,
        refute_storms=1,
        poison_requests=1,
    )


def _write_trace(path: str) -> None:
    from repro import obs

    trace_out = pathlib.Path(path)
    trace_out.parent.mkdir(parents=True, exist_ok=True)
    trace_out.write_text(obs.get_tracer().to_chrome_trace() + "\n")
    print(f"wrote {len(obs.get_tracer().spans)} spans to {trace_out} "
          "(load in chrome://tracing or Perfetto)")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import BackendError
    from repro.serve import LoadSpec, ServeConfig, run_load
    from repro.vit.zoo import model_config as _model_config

    _model_config(args.model)  # fail fast on unknown models
    try:
        machine = resolve_backend(args.backend)
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = ServeConfig(
        strategy=strategy_by_name(args.strategy),
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        inject_refute_bits=(
            frozenset(args.inject_refute) if args.inject_refute else frozenset()
        ),
    )
    spec = LoadSpec(
        requests=args.requests,
        rate_per_s=args.rate,
        seed=args.seed,
        model=args.model,
    )
    if args.replicas > 1 or args.chaos_seed is not None:
        from repro.serve import ClusterConfig, run_cluster_load

        chaos = None
        if args.chaos_seed is not None:
            chaos = _default_chaos_spec(
                args.chaos_seed, horizon=0.8 * args.requests / args.rate
            )
        cluster_config = ClusterConfig(
            replicas=args.replicas, service=config, seed=args.seed
        )
        report = run_cluster_load(machine, cluster_config, spec, chaos=chaos)
        print(report.render())
        if args.summary:
            out = report.write_summary(args.summary)
            print(f"\nwrote cluster summary + metrics to {out} "
                  "(inspect with: python -m repro metrics)")
        if args.trace:
            _write_trace(args.trace)
        return 1 if report.bit_inexact else 0
    report = run_load(machine, config, spec)
    print(report.render())
    if args.summary:
        out = report.write_summary(args.summary)
        print(f"\nwrote serve summary + metrics to {out} "
              "(inspect with: python -m repro metrics)")
    if args.trace:
        _write_trace(args.trace)
    return 1 if report.unhandled_errors or report.stats.get("failed", 0) else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.serve import ClusterConfig, LoadSpec, run_cluster_load

    spec = LoadSpec(
        requests=args.requests,
        rate_per_s=args.rate,
        seed=args.seed,
        model=args.model,
    )
    config = ClusterConfig(replicas=args.replicas, seed=args.seed)
    chaos = _default_chaos_spec(
        args.chaos_seed, horizon=0.8 * args.requests / args.rate
    )

    def _one_run() -> tuple:
        tracer = obs.get_tracer()
        before = len(tracer.spans)
        report = run_cluster_load(jetson_orin_agx(), config, spec, chaos=chaos)
        return report, tracer.snapshot()[before:]

    report1, trace1 = _one_run()
    report2, trace2 = _one_run()
    print(report1.render())
    print()

    ok = True
    s1 = json.dumps(report1.deterministic_summary(), sort_keys=True)
    s2 = json.dumps(report2.deterministic_summary(), sort_keys=True)
    if s1 != s2:
        ok = False
        print("FAIL: two runs of the same seeds produced different stats")
    t1, t2 = json.dumps(trace1, sort_keys=True), json.dumps(trace2, sort_keys=True)
    if t1 != t2:
        ok = False
        print("FAIL: two runs of the same seeds produced different traces")
    if report1.bit_inexact or report2.bit_inexact:
        ok = False
        print(f"FAIL: {report1.bit_inexact + report2.bit_inexact} "
              "bit-inexact batch results under chaos (must be zero)")
    if ok:
        print(f"chaos drill PASS: seed {args.chaos_seed} is deterministic "
              f"({len(trace1)} spans byte-identical across runs) and every "
              f"one of {report1.verified_batches} verified batches was "
              "bit-exact")
    if args.summary:
        out = report1.write_summary(args.summary)
        print(f"wrote cluster summary + metrics to {out}")
    return 0 if ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import obs

    path = pathlib.Path(args.summary)
    if not path.exists():
        print(f"no summary at {path} — run `python -m repro serve` or "
              "`python -m repro bench` first")
        return 1
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"unreadable summary at {path}: {exc}")
        return 1
    if not isinstance(payload, dict):
        print(f"{path} is not a summary object (top-level JSON is "
              f"{type(payload).__name__}, expected an object) — regenerate "
              "it with `python -m repro serve` or `python -m repro bench`")
        return 1
    snapshot = payload.get("metrics")
    if not isinstance(snapshot, dict) or not snapshot:
        print(f"{path} has no \"metrics\" section — rerun "
              "`python -m repro serve` (PR 5+) to record one")
        return 1
    if args.format == "json":
        print(obs.snapshot_to_json(snapshot), end="")
    elif args.format == "prom":
        print(obs.snapshot_to_prometheus(snapshot), end="")
    else:
        print(obs.render_metrics_table(snapshot))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.packing.search import search_policies
    from repro.utils.tables import format_table as _format_table

    result = search_policies(k=args.k, processes=args.processes)
    table = result.table
    out = table.save(args.out)
    print(_format_table(
        ["pair", "lanes", "field", "chunk", "status", "depth", "density",
         "MAC/s (1e6)"],
        result.pareto_rows(),
        title=f"policy search — k={args.k}, "
              f"{result.counters['candidates']} plans "
              f"({result.counters['proven']} proven, "
              f"{result.counters['refuted']} refuted/infeasible, "
              f"{result.counters['priced']} layouts priced)",
    ))
    chosen = [
        (pair, e["lanes"], e["field_bits"], e["chunk_depth"],
         round(e["density"], 3), round(e["mac_per_s"] / 1e6, 1),
         e["static_lanes"])
        for pair, e in sorted(table.entries.items())
    ]
    print(_format_table(
        ["pair", "lanes", "field", "chunk", "density", "MAC/s (1e6)",
         "Fig.3 lanes"],
        chosen,
        title=f"learned table ({len(chosen)} pairs) -> {out}",
    ))
    failures = table.reverify()
    if failures:
        for pair, reason in failures.items():
            print(f"REVERIFY FAIL {pair}: {reason}")
        return 1
    print(f"reverify OK: all {len(table.entries)} entries re-prove safe "
          f"(pricing ran {result.sweep_simulations} fresh simulations, "
          f"{result.sweep_cache_hits} cache hits)")
    if args.summary:
        obs.merge_summary(args.summary, {"policy_search": {
            "table_path": str(out),
            "counters": result.counters,
            "entries": table.entries,
            "sweep_simulations": result.sweep_simulations,
        }})
        print(f"merged policy_search section into {args.summary}")
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.errors import BackendError
    from repro.whatif import run_whatif

    if args.list_backends:
        rows = [
            (n, (m := resolve_backend(n)).name, m.sm_count, m.sm.cuda_cores,
             m.clock_ghz, m.dram_bandwidth_gbps, m.die_area_mm2)
            for n in backend_names()
        ]
        print(format_table(
            ["backend", "machine", "SMs", "cores/SM", "GHz", "GB/s", "mm2"],
            rows, title="registered backends (docs/BACKENDS.md)",
        ))
        return 0
    names = None if args.backend == "all" else tuple(args.backend.split(","))
    try:
        report = run_whatif(
            names,
            model_name=args.model,
            batch=args.batch,
            processes=args.processes,
        )
    except BackendError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    sweep = report.sweep
    print(f"\nsweep: {len(report.points)} points, "
          f"wall {sweep.wall_seconds*1e3:.0f} ms, "
          f"cache hit rate {sweep.hit_rate:.0%}, "
          f"{sweep.simulations} fresh simulations")
    for b in report.backends:
        front = report.pareto(b)
        print(f"  {b}: {len(front)} Pareto point(s): "
              + ", ".join(f"{p.bits}b/{p.strategy}" for p in front))
    if args.summary:
        obs.merge_summary(args.summary, {"whatif_backends": report.summary()})
        print(f"merged whatif_backends section into {args.summary}")
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    rows = [
        (name, c.hidden, c.depth, c.heads, c.mlp_dim, c.tokens)
        for name, c in sorted(MODEL_ZOO.items())
    ]
    print(format_table(
        ["model", "hidden", "depth", "heads", "mlp", "tokens"], rows,
        title="model zoo",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="VitBit reproduction command line",
    )
    parser.add_argument(
        "--gemm-backend", default=None, dest="gemm_backend", metavar="NAME",
        help="packed-GEMM kernel backend for this run (numpy_blocked, "
             "numba, ...); equivalent to setting REPRO_GEMM_BACKEND. "
             "All backends are bit-identical — this only changes speed.",
    )
    parser.add_argument(
        "--policy-table", default=None, dest="policy_table", metavar="PATH",
        help="serve learned packing policies from this table JSON "
             "(see `python -m repro search`); equivalent to setting "
             "REPRO_POLICY_TABLE. Default: the static Fig. 3 rule.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 peak throughputs")

    p = sub.add_parser("policy", help="Fig. 3 packing policy")
    p.add_argument("--bits", type=int, default=None)

    p = sub.add_parser("study", help="Sec. 3.2 initial GEMM study")
    p.add_argument("--batch", type=int, default=8)

    p = sub.add_parser("fig5", help="end-to-end inference speedups")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--model", default="vit-base")

    p = sub.add_parser("verify", help="bit-exactness of fused inference")
    p.add_argument("--model", default="test-tiny")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("energy", help="energy per inference (extension)")
    p.add_argument("--batch", type=int, default=8)

    p = sub.add_parser("render", help="emit the fused kernel as CUDA-like source")
    p.add_argument("--bits", type=int, default=8)
    p.add_argument("--columns", type=int, default=1576)

    p = sub.add_parser("breakdown", help="per-kernel timing breakdown")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--strategy", default="VitBit")

    p = sub.add_parser("bench", help="parallel pricing sweep with cache metering")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--model", default="vit-base")
    p.add_argument("--processes", type=int, default=None)
    p.add_argument("--clear-cache", action="store_true", dest="clear_cache",
                   help="drop the persistent timing cache first (cold run)")

    p = sub.add_parser("serve", help="batched serving benchmark (simulated clock)")
    p.add_argument("--requests", type=int, default=200,
                   help="requests in the open-loop stream (default 200)")
    p.add_argument("--rate", type=float, default=300.0,
                   help="mean Poisson arrival rate, req/s (default 300)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--model", default="vit-base")
    p.add_argument("--strategy", default="VitBit",
                   help="preferred execution strategy (Table 3 name)")
    p.add_argument("--backend", default="orin-agx",
                   help="registered machine backend to serve on (default "
                   "orin-agx; see `repro whatif --list-backends`)")
    p.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                   help="bounded-queue capacity (backpressure threshold)")
    p.add_argument("--max-batch", type=int, default=32, dest="max_batch")
    p.add_argument("--inject-refute", type=int, nargs="*", default=None,
                   dest="inject_refute", metavar="BITS",
                   help="treat these bitwidths' packing preflight as refuted "
                   "(forces the degraded fallback path; used by CI)")
    p.add_argument("--replicas", type=int, default=1,
                   help="serve through the replicated cluster with this many "
                   "replicas (default 1 = single service)")
    p.add_argument("--chaos-seed", type=int, default=None, dest="chaos_seed",
                   help="inject the seeded chaos fault schedule while serving "
                   "(implies the cluster path)")
    p.add_argument("--summary", default="benchmarks/out/summary.json",
                   help="summary.json to merge the report into "
                   "('' to skip writing)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write the span timeline as Chrome-tracing JSON")

    p = sub.add_parser("chaos", help="deterministic chaos drill (run twice, "
                       "require identical stats/traces and bit-exactness)")
    p.add_argument("--chaos-seed", type=int, default=42, dest="chaos_seed",
                   help="seed of the fault timeline (default 42)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed of the load schedule and router jitter")
    p.add_argument("--requests", type=int, default=150)
    p.add_argument("--rate", type=float, default=400.0)
    p.add_argument("--model", default="vit-base")
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--summary", default="",
                   help="summary.json to merge the first run's report into "
                   "(default: don't write)")

    p = sub.add_parser("metrics", help="render the recorded metrics snapshot")
    p.add_argument("--format", choices=["table", "json", "prom"],
                   default="table",
                   help="output format (default: table; prom = Prometheus "
                   "text exposition)")
    p.add_argument("--summary", default="benchmarks/out/summary.json",
                   help="summary.json holding the \"metrics\" section")

    p = sub.add_parser("search", help="learn a proven-safe packing-policy "
                       "table (enumerate, prove, price, emit)")
    p.add_argument("--k", type=int, default=768,
                   help="GEMM reduction depth to prove/price at (default "
                   "768 = ViT-Base hidden)")
    p.add_argument("--out", default="benchmarks/out/policy_table.json",
                   help="where to write the learned table JSON")
    p.add_argument("--processes", type=int, default=None,
                   help="pricing sweep worker processes (default: serial)")
    p.add_argument("--summary", default="benchmarks/out/summary.json",
                   help="summary.json receiving the policy_search section "
                   "('' to skip writing)")

    p = sub.add_parser("whatif", help="cross-backend design-space explorer "
                       "(bitwidth x strategy x backend Pareto frontiers)")
    p.add_argument("--backend", default="all",
                   help="registered backend name, comma-list, or 'all' "
                   "(default). Unknown names list the registered choices.")
    p.add_argument("--list-backends", action="store_true", dest="list_backends",
                   help="list the registered backends and exit")
    p.add_argument("--model", default="vit-base")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--processes", type=int, default=None,
                   help="sweep worker processes (default: serial)")
    p.add_argument("--summary", default="benchmarks/out/summary.json",
                   help="summary.json receiving the whatif_backends section "
                   "('' to skip writing)")

    sub.add_parser("models", help="list the model zoo")

    p = sub.add_parser("analyze", help="static verification (see docs/ANALYSIS.md)")
    p.add_argument("--bits", type=int, default=None,
                   help="prove/refute the Fig. 3 policy for this bitwidth")
    p.add_argument("--k", type=int, default=4096,
                   help="GEMM reduction depth to prove (default 4096)")
    p.add_argument("--a-bits", type=int, default=None,
                   help="multiplier bitwidth (default: the policy's width)")
    p.add_argument("--b-bits", type=int, default=None, dest="b_bits",
                   help="packed operand bitwidth (with --dataflow: derive "
                   "an asymmetric layout via policy_for_operands)")
    p.add_argument("--lanes", type=int, default=None,
                   help="override the policy's packing factor")
    p.add_argument("--dataflow", action="store_true",
                   help="run the lane dataflow verifier: one plan when "
                   "operand widths are given, else capture+verify the "
                   "standard configs and emit the safe-depth table")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="diagnostic output format (json = machine-readable "
                   "codes, locations, witnesses)")
    p.add_argument("--summary", default="benchmarks/out/summary.json",
                   help="summary.json receiving the safe-depth table "
                   "(--dataflow sweep mode)")
    p.add_argument("--chunk", type=int, default=None,
                   help="spill chunk depth; 0 = the planner's safe depth "
                   "(default: no spilling)")
    p.add_argument("--strategy", default=None,
                   help="check one Table 3 strategy's lowered GEMM schedule")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--lint", action="store_true",
                   help="run the VB3xx AST lint (whole repo, or --path)")
    p.add_argument("--path", nargs="*", default=None,
                   help="files/directories for --lint (full rule set)")
    p.add_argument("--self-check", action="store_true", dest="self_check",
                   help="run every pass over the repo's own configurations")
    p.add_argument("--verbose", action="store_true",
                   help="also print info-level findings")

    args = parser.parse_args(argv)
    if args.gemm_backend:
        # Propagates to every packed GEMM in this process *and* to the
        # sweep runner's worker processes (env is inherited).
        import os

        from repro.packing.backends import BACKEND_ENV_VAR

        os.environ[BACKEND_ENV_VAR] = args.gemm_backend
    if args.policy_table:
        import os

        from repro.packing.search import POLICY_TABLE_ENV_VAR

        # Same propagation contract as --gemm-backend: the env reaches
        # sweep workers; the lazy in-process loader picks it up on the
        # first resolve_policy call.
        os.environ[POLICY_TABLE_ENV_VAR] = args.policy_table
    handlers = {
        "table1": _cmd_table1,
        "policy": _cmd_policy,
        "study": _cmd_study,
        "fig5": _cmd_fig5,
        "verify": _cmd_verify,
        "energy": _cmd_energy,
        "render": _cmd_render,
        "breakdown": _cmd_breakdown,
        "bench": _cmd_bench,
        "models": _cmd_models,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "metrics": _cmd_metrics,
        "search": _cmd_search,
        "whatif": _cmd_whatif,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
