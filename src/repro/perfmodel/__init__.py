"""Performance model: prices kernels on the simulated Jetson.

The model has two levels that share one instruction/byte accounting
(:mod:`repro.perfmodel.descriptors` + :mod:`repro.perfmodel.warpsets`):

* the **simulator path** (:class:`PerformanceModel`) builds the fused
  kernel's warp set for a strategy and runs it through the
  issue-loop simulator (:mod:`repro.sim`) — the reference model used by
  all benchmarks;
* the **analytic path** (:mod:`repro.perfmodel.analytic`) bounds the
  same kernel by its busiest resource (INT/FP/Tensor pipe, issue slots,
  DRAM) in closed form — a fast cross-check that
  :mod:`repro.perfmodel.calibrate` validates against the simulator.
"""

from repro.perfmodel.descriptors import (
    ELEMENTWISE_KERNELS,
    CostParams,
    ElementwiseDesc,
    GemmShape,
)
from repro.perfmodel.model import KernelTiming, PerformanceModel
from repro.perfmodel.analytic import analytic_gemm_seconds, analytic_elementwise_seconds
from repro.perfmodel.calibrate import CalibrationReport, calibrate
from repro.perfmodel.timingcache import ENGINE_VERSION, CacheStats, TimingCache

__all__ = [
    "GemmShape",
    "CostParams",
    "ElementwiseDesc",
    "ELEMENTWISE_KERNELS",
    "PerformanceModel",
    "KernelTiming",
    "TimingCache",
    "CacheStats",
    "ENGINE_VERSION",
    "analytic_gemm_seconds",
    "analytic_elementwise_seconds",
    "calibrate",
    "CalibrationReport",
]
