"""Closed-form resource-bound model (fast cross-check of the simulator).

A kernel's time is bounded below by each resource it uses:

* each ALU pipe: ``instructions x initiation_interval`` cycles,
* the issue slots: total instructions (one per scheduler per cycle),
* the Tensor pipe: MMA instructions x its interval,
* DRAM: bytes / effective bandwidth.

All pipe bounds are per sub-partition (instructions divide evenly over
``sm_count x partitions`` schedulers for the homogeneous grids used
here); the kernel runs at the max of the bounds.  The simulator adds
second-order effects (issue-slot interference between roles, warp
granularity); :mod:`repro.perfmodel.calibrate` checks the two agree.
"""

from __future__ import annotations

from repro.arch.specs import MachineSpec
from repro.fusion.ratio import PAPER_TENSOR_CUDA_RATIO
from repro.fusion.strategies import Strategy
from repro.packing.policy import PackingPolicy
from repro.perfmodel.descriptors import CostParams, ElementwiseDesc, GemmShape
from repro.perfmodel.warpsets import (
    elementwise_bytes,
    elementwise_instruction_totals,
    gemm_bytes,
    gemm_instruction_totals,
)
from repro.sim.instruction import OpClass, default_timings
from repro.sim.memory import DramModel

__all__ = ["analytic_gemm_seconds", "analytic_elementwise_seconds", "analytic_seconds"]


def analytic_seconds(
    machine: MachineSpec,
    totals: dict[OpClass, float],
    nbytes: float,
    *,
    include_launch_overhead: bool = True,
) -> float:
    """Max-of-bounds time for grid-wide instruction totals + bytes."""
    timings = default_timings(machine.sm)
    schedulers = machine.sm_count * machine.sm.partitions
    pipe_bounds = [
        totals.get(op, 0.0) * t.initiation_interval / schedulers
        for op, t in timings.items()
    ]
    issue_bound = sum(totals.values()) / schedulers
    cycles = max(pipe_bounds + [issue_bound])
    seconds = machine.cycles_to_seconds(cycles)
    seconds = max(seconds, DramModel(machine).transfer_seconds(nbytes))
    if include_launch_overhead:
        seconds += machine.kernel_launch_overhead_us * 1e-6
    return seconds


def analytic_gemm_seconds(
    shape: GemmShape,
    strategy: Strategy,
    machine: MachineSpec,
    policy: PackingPolicy,
    params: CostParams | None = None,
    *,
    tensor_cuda_ratio: float = PAPER_TENSOR_CUDA_RATIO,
    include_launch_overhead: bool = True,
) -> float:
    """Closed-form GEMM time under ``strategy``."""
    params = params if params is not None else CostParams()
    plan = strategy.split_plan(shape.n, policy, tensor_cuda_ratio)
    totals = gemm_instruction_totals(shape, plan, policy, params, sm=machine.sm)
    nbytes = gemm_bytes(shape, plan, policy)
    return analytic_seconds(
        machine, totals, nbytes, include_launch_overhead=include_launch_overhead
    )


def analytic_elementwise_seconds(
    desc: ElementwiseDesc,
    n_elements: int,
    strategy: Strategy,
    machine: MachineSpec,
    policy: PackingPolicy,
    params: CostParams | None = None,
    *,
    include_launch_overhead: bool = True,
) -> float:
    """Closed-form elementwise-kernel time under ``strategy``."""
    params = params if params is not None else CostParams()
    totals = elementwise_instruction_totals(
        desc, n_elements, strategy, policy, sm=machine.sm
    )
    nbytes = elementwise_bytes(desc, n_elements, strategy, policy, params)
    return analytic_seconds(
        machine, totals, nbytes, include_launch_overhead=include_launch_overhead
    )
