"""Kernel -> warp-set lowering: the shared accounting of the model.

For a GEMM (or elementwise kernel) under a Table 3 strategy, this
module computes

* grid-total instruction counts per pipe (also used analytically and by
  the Fig. 9 instruction-count benchmark),
* grid-total DRAM bytes,
* the warp set resident on one representative SM — role mix, per-role
  loop bodies, iteration counts — that the issue-loop simulator runs.

The warp-role layout follows Sec. 3.3: a small fixed population of
Tensor-core warps per block, the rest alternating INT/FP per
:func:`repro.fusion.schedule.interleave_warp_roles`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelConfigError, ScheduleError
from repro.arch.specs import MachineSpec, SMSpec
from repro.fusion.schedule import interleave_warp_roles
from repro.fusion.strategies import Strategy
from repro.packing.accumulate import safe_accumulation_depth
from repro.packing.policy import PackingPolicy
from repro.perfmodel.descriptors import CostParams, ElementwiseDesc, GemmShape
from repro.preprocess.split import SplitPlan
from repro.sim.instruction import OpClass, default_timings
from repro.sim.program import WarpProgram

__all__ = ["KernelLaunch", "gemm_launch", "elementwise_launch"]

# All machine-dependent quantities (warp width, MACs per MMA fragment,
# Tensor-role warp cap, register-limited residency) come from the
# SMSpec so every registered backend is priced by its own numbers —
# nothing Orin-specific is baked in at module level (VB308).


def _resident_warps(sm: SMSpec, params: CostParams) -> int:
    """Warps resident on one SM under every residency limit.

    The scheduler cap (``max_warps_per_sm``) and the (possibly
    compressed, Angerd-style) register file both bound what the
    launch-time request (``params.resident_warps``) can achieve.
    """
    return min(
        params.resident_warps,
        sm.max_warps_per_sm,
        sm.register_limited_warps(params.registers_per_thread),
    )


@dataclass
class KernelLaunch:
    """A kernel lowered for simulation.

    ``warps`` is the resident set of one representative SM with
    iteration counts already scaled to that SM's share of the grid.
    ``instruction_totals`` and ``bytes_moved`` are grid-wide.
    """

    warps: list[WarpProgram]
    bytes_moved: float
    instruction_totals: dict[OpClass, float]
    plan: SplitPlan | None = None
    label: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def total_instructions(self) -> float:
        """Grid-wide instruction count."""
        return sum(self.instruction_totals.values())


def _body(mix: dict[OpClass, float], granularity: int) -> tuple[tuple[OpClass, int], ...]:
    """Quantize a fractional per-iteration op mix into integer segments.

    The mix is scaled so its largest entry becomes ``granularity``
    instructions; entries rounding to zero are dropped (their cost is
    below the model's resolution).
    """
    peak = max((v for v in mix.values() if v > 0), default=0.0)
    if peak <= 0:
        return ()
    scale = granularity / peak
    segs = []
    # Fixed emission order keeps bodies deterministic; LSU first models
    # the load-then-compute structure of the steady-state loop.
    for op in (OpClass.LSU, OpClass.MISC, OpClass.INT, OpClass.FP,
               OpClass.SFU, OpClass.TENSOR):
        count = round(mix.get(op, 0.0) * scale)
        if count > 0:
            segs.append((op, count))
    return tuple(segs)


def _round_role(n: float, partitions: int, lo: int, hi: int) -> int:
    """Round a role's warp count to a multiple of ``partitions``.

    Warps are dealt round-robin to sub-partitions, so non-multiple role
    populations land unevenly (6 INT warps on one scheduler, 5 on the
    next) and the SM finishes at the slowest partition; multiples keep
    per-partition role work equal.
    """
    mult = max(lo // partitions if lo else 0, round(n / partitions))
    mult = max(mult, 1 if n > 0 else 0)
    return min(hi, mult * partitions)


def _warps_for_role(
    body: tuple[tuple[OpClass, int], ...],
    role_instr_per_sm: float,
    n_warps: int,
) -> list[WarpProgram]:
    """Build ``n_warps`` identical warps covering a role's per-SM work."""
    if not body or role_instr_per_sm <= 0 or n_warps <= 0:
        return []
    instr_per_iter = sum(c for _, c in body)
    iters_total = role_instr_per_sm / instr_per_iter
    iters_per_warp = max(1, round(iters_total / n_warps))
    return [WarpProgram(body=body, iterations=iters_per_warp) for _ in range(n_warps)]


def _interleaved(
    tc: list[WarpProgram],
    ints: list[WarpProgram],
    fps: list[WarpProgram],
    alternate: bool,
    partitions: int,
) -> list[WarpProgram]:
    roles = interleave_warp_roles(
        len(tc), len(ints), len(fps), alternate=alternate, group=partitions
    )
    it_tc, it_int, it_fp = iter(tc), iter(ints), iter(fps)
    out = []
    for r in roles:
        out.append(next(it_tc if r == "tensor" else it_int if r == "int" else it_fp))
    return out


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------


def gemm_instruction_totals(
    shape: GemmShape,
    plan: SplitPlan,
    policy: PackingPolicy,
    params: CostParams,
    sm: SMSpec | None = None,
) -> dict[OpClass, float]:
    """Grid-wide instruction counts of the fused GEMM under ``plan``.

    ``sm`` supplies the warp width and the MMA fragment size; ``None``
    means the default (Orin-shaped) :class:`SMSpec`.
    """
    sm = sm if sm is not None else SMSpec()
    warp = sm.warp_size
    lanes = max(1, plan.lanes)
    i_tc = shape.m * plan.n3 * shape.k / sm.tensor_core.macs_per_instruction
    i_int = shape.m * plan.n1 * shape.k / (warp * lanes)
    if lanes > 1 and params.count_spills and plan.n1:
        # Spill cadence follows the proven accumulation depth.  For the
        # symmetric Fig. 3 policies the historical signed-magnitude
        # bound (value_bits - 1 multiplier) is kept so existing cache
        # keys stay valid; asymmetric policies carry their true
        # multiplier width (and value_bits == 1 would make the signed
        # bound degenerate to a 0-bit multiplier).
        if policy.multiplier_bits is not None:
            a_bits = policy.effective_multiplier_bits
        else:
            a_bits = max(1, policy.value_bits - 1)
        depth = safe_accumulation_depth(policy, a_bits, policy.value_bits)
        i_int += i_int / depth
    if lanes > 1 and params.count_sign_split and plan.n1:
        i_int *= 2
    i_fp = shape.m * plan.n2 * shape.k / warp
    alu = i_int + i_fp
    return {
        OpClass.TENSOR: i_tc,
        OpClass.INT: i_int,
        OpClass.FP: i_fp,
        OpClass.LSU: alu * params.gemm_loads_per_alu + i_tc * params.loads_per_mma,
        OpClass.MISC: alu * params.gemm_misc_per_alu,
    }


def gemm_bytes(shape: GemmShape, plan: SplitPlan, policy: PackingPolicy) -> float:
    """Grid-wide DRAM traffic of the fused GEMM (int8 operands).

    Packed B1 moves as full registers (field-width bits per value), the
    FP slice as float32, the Tensor slice as int8; the weight matrix is
    read once per engaged format.  Outputs are requantized in the
    kernel epilogue (the I-ViT pipeline the paper adopts), so C leaves
    as int8 — packed-slice outputs stay packed at field width.
    """
    k, m = shape.k, shape.m
    lanes = max(1, plan.lanes)
    field_bytes = max(1, policy.field_bits // 8) if lanes > 1 else 1
    b_bytes = k * (plan.n1 // lanes) * 4 + k * plan.n2 * 4 + k * plan.n3 * 1
    a_bytes = 0.0
    if plan.n1 or plan.n3:
        a_bytes += m * k * 1  # A1 (int8)
    if plan.n2:
        a_bytes += m * k * 4  # A2 (float32 duplicate)
    c_bytes = m * plan.n1 * field_bytes + m * plan.n2 * 1 + m * plan.n3 * 1
    return float(a_bytes + b_bytes + c_bytes)


def gemm_launch(
    shape: GemmShape,
    strategy: Strategy,
    machine: MachineSpec,
    policy: PackingPolicy,
    params: CostParams,
    tensor_cuda_ratio: float,
) -> KernelLaunch:
    """Lower a GEMM under ``strategy`` into a simulatable warp set."""
    plan = strategy.split_plan(shape.n, policy, tensor_cuda_ratio)
    sm = machine.sm
    totals = gemm_instruction_totals(shape, plan, policy, params, sm=sm)
    nbytes = gemm_bytes(shape, plan, policy)

    timings = default_timings(sm)
    g = params.body_granularity
    lam, mu = params.gemm_loads_per_alu, params.gemm_misc_per_alu

    # Per-role loop bodies (steady-state inner loops).
    tc_body = _body(
        {OpClass.LSU: params.loads_per_mma, OpClass.TENSOR: 1}, granularity=4
    )
    int_body = _body({OpClass.LSU: lam, OpClass.MISC: mu, OpClass.INT: 1.0}, g)
    fp_body = _body({OpClass.LSU: lam, OpClass.MISC: mu, OpClass.FP: 1.0}, g)

    # Role residency: a fixed small Tensor population, CUDA warps split
    # by pipe demand.
    resident = _resident_warps(sm, params)
    i_tc, i_int, i_fp = (
        totals[OpClass.TENSOR],
        totals[OpClass.INT],
        totals[OpClass.FP],
    )
    n_tc = min(sm.max_tensor_warps, resident) if i_tc > 0 else 0
    cuda_slots = resident - n_tc
    d_int = i_int * timings[OpClass.INT].initiation_interval
    d_fp = i_fp * timings[OpClass.FP].initiation_interval
    if d_int + d_fp > 0:
        raw_int = cuda_slots * d_int / (d_int + d_fp) if i_int > 0 else 0.0
        n_int = _round_role(raw_int, sm.partitions, sm.partitions, cuda_slots)
        if i_fp > 0:
            n_fp = _round_role(
                cuda_slots - n_int, sm.partitions, sm.partitions, cuda_slots
            )
            if n_int + n_fp > cuda_slots:
                n_int = cuda_slots - n_fp
        else:
            n_fp = 0
    else:
        n_int = n_fp = 0
    if i_int <= 0:
        n_int = 0

    sms = machine.sm_count
    warps = _interleaved(
        _warps_for_role(tc_body, i_tc * (1 + params.loads_per_mma) / sms, n_tc),
        _warps_for_role(int_body, i_int * (1 + lam + mu) / sms, n_int),
        _warps_for_role(fp_body, i_fp * (1 + lam + mu) / sms, n_fp),
        params.alternate_warps,
        sm.partitions,
    )
    if not warps:
        raise ScheduleError(
            f"strategy {strategy.name} produced no work for GEMM {shape.label()}"
        )
    return KernelLaunch(
        warps=warps,
        bytes_moved=nbytes,
        instruction_totals=totals,
        plan=plan,
        label=f"{strategy.name}:{shape.label()}",
    )


# ---------------------------------------------------------------------------
# Elementwise (CUDA-core) kernels
# ---------------------------------------------------------------------------


def _elementwise_split(
    strategy: Strategy, policy: PackingPolicy
) -> tuple[float, bool]:
    """(fraction of elements on the INT path, whether that path is packed)."""
    if strategy.uses_int and strategy.uses_fp:
        if strategy.packing:
            lanes = policy.lanes
            return lanes / (lanes + 1.0), True  # Eq. 1
        return 0.5, False
    if strategy.uses_int:
        return 1.0, strategy.packing
    if strategy.uses_fp:
        return 0.0, False
    raise ModelConfigError(
        f"strategy {strategy.name} engages no CUDA pipes; it cannot run "
        "CUDA-core kernels"
    )


def elementwise_instruction_totals(
    desc: ElementwiseDesc,
    n_elements: int,
    strategy: Strategy,
    policy: PackingPolicy,
    sm: SMSpec | None = None,
) -> dict[OpClass, float]:
    """Grid-wide instruction counts of one elementwise kernel.

    ``sm`` supplies the warp width; ``None`` means the default
    (Orin-shaped) :class:`SMSpec`.
    """
    warp = (sm if sm is not None else SMSpec()).warp_size
    if n_elements < 0:
        raise ModelConfigError(f"n_elements must be >= 0, got {n_elements}")
    x, packed = _elementwise_split(strategy, policy)
    lanes = policy.lanes if packed else 1
    pf = desc.packable_fraction if packed else 0.0
    reduce_f = pf / lanes + (1.0 - pf)  # per-op shrink on the packed path

    e_int = n_elements * x
    e_fp = n_elements * (1.0 - x)

    int_ops = e_int * (desc.int_ops * reduce_f + desc.addr_int_ops / lanes)
    misc_ops = e_int * desc.misc_ops * reduce_f
    lsu = e_int * (desc.loads + desc.stores) / lanes
    sfu = e_int * desc.sfu_ops

    int_ops += e_fp * desc.addr_int_ops
    fp_ops = e_fp * (desc.fp_ops + desc.convert_ops)
    misc_ops += e_fp * desc.misc_ops * 0.5  # float variants carry less predication
    lsu += e_fp * (desc.loads + desc.stores)
    sfu += e_fp * desc.sfu_ops

    return {
        OpClass.INT: int_ops / warp,
        OpClass.FP: fp_ops / warp,
        OpClass.MISC: misc_ops / warp,
        OpClass.LSU: lsu / warp,
        OpClass.SFU: sfu / warp,
        OpClass.TENSOR: 0.0,
    }


def elementwise_bytes(
    desc: ElementwiseDesc,
    n_elements: int,
    strategy: Strategy,
    policy: PackingPolicy,
    params: CostParams,
) -> float:
    """Grid-wide DRAM traffic; the packed slice moves compacted fields."""
    x, packed = _elementwise_split(strategy, policy)
    base = desc.bytes_per_element
    if packed:
        per_elem = x * base * params.packed_byte_factor + (1 - x) * base
    else:
        per_elem = base
    return float(n_elements * per_elem)


def elementwise_launch(
    desc: ElementwiseDesc,
    n_elements: int,
    strategy: Strategy,
    machine: MachineSpec,
    policy: PackingPolicy,
    params: CostParams,
) -> KernelLaunch:
    """Lower an elementwise kernel under ``strategy`` into a warp set."""
    totals = elementwise_instruction_totals(
        desc, n_elements, strategy, policy, sm=machine.sm
    )
    nbytes = elementwise_bytes(desc, n_elements, strategy, policy, params)
    x, packed = _elementwise_split(strategy, policy)
    lanes = policy.lanes if packed else 1
    pf = desc.packable_fraction if packed else 0.0
    reduce_f = pf / lanes + (1.0 - pf)
    g = params.body_granularity

    int_body = _body(
        {
            OpClass.LSU: (desc.loads + desc.stores) / lanes,
            OpClass.MISC: desc.misc_ops * reduce_f,
            OpClass.INT: desc.int_ops * reduce_f + desc.addr_int_ops / lanes,
            OpClass.SFU: desc.sfu_ops,
        },
        g,
    )
    fp_body = _body(
        {
            OpClass.LSU: desc.loads + desc.stores,
            OpClass.MISC: desc.misc_ops * 0.5,
            OpClass.INT: desc.addr_int_ops,
            OpClass.FP: desc.fp_ops + desc.convert_ops,
            OpClass.SFU: desc.sfu_ops,
        },
        g,
    )

    sm = machine.sm
    resident = _resident_warps(sm, params)
    n_int = (
        _round_role(resident * x, sm.partitions, sm.partitions, resident)
        if x > 0
        else 0
    )
    if x < 1:
        n_fp = _round_role(
            resident - n_int, sm.partitions, sm.partitions, resident
        )
        if n_int + n_fp > resident:
            n_int = resident - n_fp
    else:
        n_fp = 0

    sms = machine.sm_count
    # Split grid totals by path weight (elements routed to each path).
    total_instr = sum(totals.values())
    int_path_weight = x
    fp_path_weight = 1.0 - x
    warps = _interleaved(
        [],
        _warps_for_role(int_body, total_instr * int_path_weight / sms, n_int),
        _warps_for_role(fp_body, total_instr * fp_path_weight / sms, n_fp),
        params.alternate_warps,
        sm.partitions,
    )
    if not warps:
        raise ScheduleError(
            f"strategy {strategy.name} produced no work for kernel {desc.name}"
        )
    return KernelLaunch(
        warps=warps,
        bytes_moved=nbytes,
        instruction_totals=totals,
        label=f"{strategy.name}:{desc.name}",
        extra={"int_fraction": x, "packed": packed},
    )
