"""Cross-validation of the analytic model against the simulator.

The analytic bounds ignore issue interference between warp roles; the
simulator resolves it cycle by cycle.  :func:`calibrate` runs both on a
grid of (shape, strategy) points and reports per-point and aggregate
disagreement, raising :class:`~repro.errors.CalibrationError` when the
two models diverge beyond tolerance — the regression guard that keeps
the fast analytic path honest as cost parameters evolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CalibrationError
from repro.arch.specs import MachineSpec
from repro.fusion.strategies import STRATEGIES, Strategy
from repro.packing.policy import PackingPolicy, policy_for_bitwidth
from repro.perfmodel.analytic import analytic_gemm_seconds
from repro.perfmodel.descriptors import CostParams, GemmShape
from repro.perfmodel.model import PerformanceModel

__all__ = ["CalibrationPoint", "CalibrationReport", "calibrate"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One (shape, strategy) comparison."""

    shape: GemmShape
    strategy: str
    simulated_seconds: float
    analytic_seconds: float

    @property
    def ratio(self) -> float:
        """simulated / analytic (1.0 = perfect agreement; > 1 means the
        simulator found interference the bounds miss)."""
        return self.simulated_seconds / self.analytic_seconds


@dataclass
class CalibrationReport:
    """All comparison points plus aggregate statistics."""

    points: list[CalibrationPoint] = field(default_factory=list)

    @property
    def worst_ratio(self) -> float:
        """Largest |log-ratio| disagreement as a multiplicative factor."""
        worst = 1.0
        for p in self.points:
            r = p.ratio if p.ratio >= 1 else 1 / p.ratio
            worst = max(worst, r)
        return worst

    @property
    def mean_ratio(self) -> float:
        """Arithmetic mean of simulated/analytic ratios."""
        if not self.points:
            return 1.0
        return sum(p.ratio for p in self.points) / len(self.points)


DEFAULT_SHAPES = (
    GemmShape(768, 197, 768, name="proj"),
    GemmShape(3072, 197, 768, name="fc1"),
)


def calibrate(
    machine: MachineSpec,
    policy: PackingPolicy | None = None,
    params: CostParams | None = None,
    *,
    shapes: tuple[GemmShape, ...] = DEFAULT_SHAPES,
    strategies: tuple[Strategy, ...] = STRATEGIES,
    tolerance: float = 1.6,
) -> CalibrationReport:
    """Compare simulator vs analytic bounds over a strategy/shape grid.

    ``tolerance`` is the allowed multiplicative disagreement; the
    simulator legitimately runs somewhat slower than the bounds
    (issue interference), so tolerances are one-sided-ish but applied
    symmetrically for safety.
    """
    policy = policy if policy is not None else policy_for_bitwidth(8)
    params = params if params is not None else CostParams()
    pm = PerformanceModel(
        machine, policy, params, include_launch_overhead=False
    )
    report = CalibrationReport()
    for shape in shapes:
        for strategy in strategies:
            if not strategy.uses_tensor and strategy.name in ("FC",):
                # FC on a full GEMM exceeds FP32's exact window for the
                # functional kernels, but timing-wise it is fine; keep it.
                pass
            sim = pm.time_gemm(shape, strategy).seconds
            ana = analytic_gemm_seconds(
                shape,
                strategy,
                machine,
                policy,
                params,
                include_launch_overhead=False,
            )
            report.points.append(
                CalibrationPoint(
                    shape=shape,
                    strategy=strategy.name,
                    simulated_seconds=sim,
                    analytic_seconds=ana,
                )
            )
    if report.worst_ratio > tolerance:
        bad = max(report.points, key=lambda p: max(p.ratio, 1 / p.ratio))
        raise CalibrationError(
            f"simulator and analytic model disagree by {report.worst_ratio:.2f}x "
            f"(worst: {bad.strategy} on {bad.shape.label()}); "
            f"tolerance is {tolerance:.2f}x"
        )
    return report
