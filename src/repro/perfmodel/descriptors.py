"""Workload descriptors and cost parameters.

:class:`GemmShape` follows the paper's GEMM orientation: C (M x N) =
A (M x K) @ B (K x N) with A the weight/filter matrix and N the
token/batch axis that Algorithm 1 splits and packs.

:class:`ElementwiseDesc` captures the per-element instruction mix of a
CUDA-core kernel in both its integer-only (I-ViT) and float variants.
The counts are static-analysis estimates of the kernels in
:mod:`repro.kernels.elementwise`; they are calibration inputs, not
measurements, and the ablation benchmarks sweep them.

:class:`CostParams` gathers the cross-kernel calibration constants.
The defaults are chosen so the model lands on the paper's measured
anchors (Sec. 3.2: CUDA-core GEMM ~7.5x slower than Tensor cores,
~4x with packing, hence the 4:1 split) — the achieved values are
recorded by ``benchmarks/bench_initial_study.py`` and EXPERIMENTS.md.

Two regimes matter and are modelled differently on purpose:

* **GEMM kernels** are compute/issue bound: INT-pipe occupancy,
  issue-slot pressure and Tensor-pipe throughput set the time.
* **Elementwise (CUDA-core) kernels** are DRAM/launch bound on the
  embedded part; packing helps them by moving inter-kernel
  intermediates as 16-bit packed fields instead of 32-bit values
  (``packed_byte_factor``) and by cutting the instruction stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelConfigError
from repro.utils.validation import check_positive

__all__ = ["GemmShape", "ElementwiseDesc", "CostParams", "ELEMENTWISE_KERNELS"]


@dataclass(frozen=True)
class GemmShape:
    """C (m x n) = A (m x k) @ B (k x n); n is the split/packed axis."""

    m: int
    n: int
    k: int
    name: str = ""

    def __post_init__(self) -> None:
        for dim in ("m", "n", "k"):
            if getattr(self, dim) < 1:
                raise ModelConfigError(f"GEMM dimension {dim} must be >= 1")

    @property
    def macs(self) -> int:
        """Multiply-accumulates in the product."""
        return self.m * self.n * self.k

    @property
    def flops(self) -> int:
        """Operations (2 per MAC), the unit Table 1 uses."""
        return 2 * self.macs

    def label(self) -> str:
        """Human-readable label for tables/figures."""
        base = f"{self.m}x{self.n}x{self.k}"
        return f"{self.name} ({base})" if self.name else base


@dataclass(frozen=True)
class ElementwiseDesc:
    """Per-element instruction mix of one CUDA-core kernel.

    ``int_ops``/``misc_ops``/``sfu_ops`` describe the integer-only
    variant (``misc_ops`` are moves/predicates/branches on the dispatch
    path); ``fp_ops`` the float variant used when elements are routed
    to the FP pipe (plus ``convert_ops`` for the int<->float casts).
    ``addr_int_ops`` is index arithmetic that stays on the INT pipe
    regardless of variant.  ``packable_fraction`` is the share of
    integer work that operates lane-wise under SWAR packing (adds,
    shifts, scalar multiplies); comparisons, lookups and cross-lane
    reductions do not pack.  ``loads``/``stores`` are per-element
    memory instructions; ``bytes_per_element`` is the kernel's DRAM
    traffic per element in the unpacked layout (int32 where the kernel
    consumes raw accumulators, int8 where it consumes requantized
    activations).
    """

    name: str
    int_ops: float
    fp_ops: float
    misc_ops: float = 0.0
    sfu_ops: float = 0.0
    addr_int_ops: float = 1.0
    convert_ops: float = 2.0
    packable_fraction: float = 0.4
    loads: float = 1.0
    stores: float = 1.0
    bytes_per_element: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.packable_fraction <= 1.0:
            raise ModelConfigError(
                f"packable_fraction must be in [0, 1], got {self.packable_fraction}"
            )
        for f_name in ("int_ops", "fp_ops", "misc_ops", "bytes_per_element"):
            if getattr(self, f_name) < 0:
                raise ModelConfigError(f"{f_name} must be >= 0")


#: The CUDA-core kernels of a ViT attention block (Fig. 7's x-axis).
#: Mixes are static counts of the integer-only (I-ViT) implementations
#: in repro.kernels.elementwise, per element of the dominant tensor;
#: bytes assume int32 fixed-point intermediates in and out.
ELEMENTWISE_KERNELS: dict[str, ElementwiseDesc] = {
    "softmax": ElementwiseDesc(
        name="softmax",
        int_ops=9.0,  # max-subtract, shift chain, exp2 quadratic, div
        misc_ops=8.0,
        fp_ops=12.0,
        sfu_ops=0.5,
        packable_fraction=0.45,
        loads=1.0,
        stores=1.0,
        bytes_per_element=5.0,  # int32 scores in, uint8 probs out
    ),
    "gelu": ElementwiseDesc(
        name="gelu",
        int_ops=8.0,  # 1.702x shifts, exp2, sigmoid division, product
        misc_ops=7.0,
        fp_ops=10.0,
        sfu_ops=0.5,
        packable_fraction=0.5,
        loads=1.0,
        stores=1.0,
        bytes_per_element=5.0,  # int32 accumulators in, int8 out
    ),
    "layernorm": ElementwiseDesc(
        name="layernorm",
        int_ops=7.0,  # two reduction passes, isqrt amortized, affine
        misc_ops=5.0,
        fp_ops=9.0,
        sfu_ops=0.25,
        packable_fraction=0.5,
        loads=1.5,
        stores=1.0,
        bytes_per_element=2.5,  # int8 in/out plus gamma/beta stream
    ),
    "dropout": ElementwiseDesc(
        name="dropout",
        int_ops=4.0,  # hash, compare, select, scale
        misc_ops=3.0,
        fp_ops=5.0,
        packable_fraction=0.35,
        loads=1.0,
        stores=1.0,
        bytes_per_element=2.0,  # int8 in/out
    ),
    "residual": ElementwiseDesc(
        name="residual",
        int_ops=2.0,
        misc_ops=1.0,
        fp_ops=2.0,
        packable_fraction=0.8,
        loads=2.0,
        stores=1.0,
        bytes_per_element=3.0,  # two int8 reads, one int8 write
    ),
    "requantize": ElementwiseDesc(
        name="requantize",
        int_ops=4.0,  # dyadic multiply, shift-round, two clips
        misc_ops=2.0,
        fp_ops=4.0,
        packable_fraction=0.6,
        loads=1.0,
        stores=1.0,
        bytes_per_element=5.0,  # int32 accumulator in, int8 out
    ),
}


@dataclass(frozen=True)
class CostParams:
    """Cross-kernel calibration constants for the performance model."""

    #: LSU instructions per arithmetic instruction in CUDA-core GEMMs
    #: (inverse of shared-memory operand reuse).
    gemm_loads_per_alu: float = 0.45
    #: Moves/predicates/branches per arithmetic instruction in GEMMs.
    gemm_misc_per_alu: float = 0.10
    #: LSU instructions per Tensor-core MMA (fragment loads; operand
    #: registers are reused across the k-loop, so the steady-state cost
    #: is low — large values make TC warps steal issue slots from the
    #: fused CUDA warps, an interference the paper does not observe).
    loads_per_mma: float = 0.5
    #: Warps resident per SM for fused kernels.
    resident_warps: int = 48
    #: Registers allocated per thread by the fused kernels; combined
    #: with the backend's (possibly compressed) register file this can
    #: lower achieved residency below ``resident_warps``.  40 keeps the
    #: Orin register file non-binding (51 warps > the 48-warp scheduler
    #: cap), matching the paper's occupancy assumption.
    registers_per_thread: int = 40
    #: DRAM bytes of the packed slice relative to the unpacked layout.
    #: Only the activation payload compacts (16-bit packed fields vs
    #: 32-bit intermediates); masks, indices, norm parameters and
    #: read-modify-write traffic do not, so the blended factor sits
    #: well above the 0.5 payload ratio.
    packed_byte_factor: float = 0.8
    #: Charge the packed accumulator's spill instructions (ablation;
    #: the paper's idealized accounting leaves them out).
    count_spills: bool = False
    #: Charge the sign-split second pass for signed weights (ablation;
    #: the paper assumes packing-friendly operands).
    count_sign_split: bool = False
    #: Interleave INT/FP warps (the paper's scheme) or run them in
    #: contiguous role blocks (ablation).
    alternate_warps: bool = True
    #: Instruction granularity when quantizing per-element op mixes
    #: into warp-program bodies.
    body_granularity: int = 8
    #: Target issued instructions per simulated kernel (work scaling).
    target_sim_instructions: int = 24_000

    def __post_init__(self) -> None:
        check_positive("gemm_loads_per_alu", self.gemm_loads_per_alu)
        check_positive("resident_warps", self.resident_warps)
        check_positive("registers_per_thread", self.registers_per_thread)
        check_positive("body_granularity", self.body_granularity)
        check_positive("target_sim_instructions", self.target_sim_instructions)
        if not 0 < self.packed_byte_factor <= 1:
            raise ModelConfigError(
                f"packed_byte_factor must be in (0, 1], got {self.packed_byte_factor}"
            )
