"""Persistent, content-addressed kernel-timing cache.

The simulator is deterministic: a kernel timing is a pure function of
the machine spec, the pipe timings, the cost parameters, the engine
(mode + version), and the launch itself (warps + DRAM traffic).  That
function is expensive, so its results are cached *across processes* in
a directory of small JSON files, one per content hash — repeated
``make bench`` / pytest runs skip simulation entirely.

Keying
------
Callers build a JSON-serializable *payload* describing every input
that can influence the result (see
:meth:`repro.perfmodel.model.PerformanceModel._cache_payload`); the
cache hashes the canonical JSON encoding (sorted keys, no whitespace)
with SHA-256 and uses the digest as the filename.  An engine version
tag (:data:`ENGINE_VERSION`) is part of every payload, so changing the
simulator's observable behaviour only requires bumping one constant to
invalidate stale entries.

Environment knobs
-----------------
``REPRO_TIMING_CACHE=0``
    Disable the cache entirely (every lookup misses, nothing is
    written).
``REPRO_TIMING_CACHE_DIR=<dir>``
    Override the cache directory (default:
    ``benchmarks/out/.timing_cache/`` under the repo root).
``REPRO_REQUIRE_WARM_CACHE=1``
    Honoured by :class:`~repro.perfmodel.model.PerformanceModel`, not
    here: a cache miss raises instead of simulating — the CI benchmark
    smoke job uses it to prove warm reruns simulate nothing.

Unwritable directories degrade gracefully: the cache falls back to
process-local memory instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import obs

__all__ = ["ENGINE_VERSION", "CacheStats", "TimingCache"]

#: Version tag mixed into every cache key.  Bump whenever the simulator
#: or the performance model changes observable timing behaviour.
ENGINE_VERSION = "vitbit-perf-engine-1"

#: Default cache location, resolved relative to the repo root so every
#: entry point (pytest, ``make bench``, ``python -m repro``) shares it.
_DEFAULT_SUBDIR = Path("benchmarks") / "out" / ".timing_cache"


def _default_directory() -> Path:
    """The default on-disk location (repo-root relative)."""
    root = Path(__file__).resolve().parents[3]
    return root / _DEFAULT_SUBDIR


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters and entry count of one :class:`TimingCache`."""

    hits: int
    misses: int
    entries: int
    directory: str
    enabled: bool
    persistent: bool
    #: Corrupt on-disk entries quarantined by :meth:`TimingCache.get`.
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TimingCache:
    """Content-addressed JSON cache for kernel timings.

    ``get``/``put`` take the *payload* (a JSON-serializable dict of
    every timing-relevant input); hashing is internal.  Values must be
    JSON-serializable dicts.  A ``TimingCache(directory=None)`` or one
    whose directory cannot be created keeps entries in process memory
    only.
    """

    def __init__(self, directory: str | Path | None = None, *, enabled: bool = True):
        self.enabled = enabled
        self._memory: dict[str, dict] = {}
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        self._dir: Path | None = None
        if enabled and directory is not None:
            path = Path(directory)
            try:
                path.mkdir(parents=True, exist_ok=True)
                self._dir = path
            except OSError:
                self._dir = None  # degrade to memory-only

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def key_for(payload: dict) -> str:
        """SHA-256 of the canonical JSON encoding of ``payload``."""
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- lookup / store -------------------------------------------------------

    def get(self, payload: dict | None, *, key: str | None = None) -> dict | None:
        """Cached value for ``payload``, or ``None`` on a miss.

        ``key`` may carry a precomputed :meth:`key_for` digest so hot
        callers hash the payload once and share the key between
        ``get`` and ``put``; the payload is then not read and may be
        ``None``.

        A corrupt on-disk entry (unparseable JSON) is quarantined —
        renamed to ``<key>.json.corrupt``, or deleted when the rename
        fails — so the next cold process does not re-parse it forever;
        each quarantine increments ``timing_cache_corrupt_total``.
        """
        if not self.enabled:
            self._record_miss()
            return None
        if key is None:
            key = self.key_for(payload)
        value = self._memory.get(key)
        if value is None and self._dir is not None:
            try:
                with open(self._dir / f"{key}.json", encoding="utf-8") as fh:
                    value = json.load(fh)
                self._memory[key] = value
            except OSError:
                value = None  # missing/unreadable entry == miss
            except ValueError:
                value = None  # corrupt entry == miss, but quarantine it
                self._quarantine(key)
        if value is None:
            self._record_miss()
        else:
            self._hits += 1
            obs.counter(
                "timing_cache_hits_total",
                "kernel-timing cache lookups served without simulating",
            ).inc()
        return value

    def _record_miss(self) -> None:
        self._misses += 1
        obs.counter(
            "timing_cache_misses_total",
            "kernel-timing cache lookups that required fresh simulation",
        ).inc()

    def _quarantine(self, key: str) -> None:
        """Move a corrupt on-disk entry out of the lookup path."""
        self._corrupt += 1
        obs.counter(
            "timing_cache_corrupt_total",
            "corrupt kernel-timing cache entries quarantined on lookup",
        ).inc()
        if self._dir is None:
            return
        entry = self._dir / f"{key}.json"
        try:
            os.replace(entry, self._dir / f"{key}.json.corrupt")
        except OSError:
            try:
                entry.unlink()
            except OSError:
                pass  # leave it; the next lookup will retry the quarantine

    def put(
        self, payload: dict | None, value: dict, *, key: str | None = None
    ) -> None:
        """Store ``value`` under ``payload``'s content hash (atomic).

        ``key`` may carry a precomputed :meth:`key_for` digest (see
        :meth:`get`; ``payload`` may then be ``None``).  Persistence is
        best-effort: I/O errors and
        non-JSON-serializable values leave only the in-memory entry,
        and the ``mkstemp`` temp file is cleaned up on every failure
        path.
        """
        if not self.enabled:
            return
        if key is None:
            key = self.key_for(payload)
        self._memory[key] = value
        if self._dir is None:
            return
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self._dir, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(value, fh, separators=(",", ":"))
            os.replace(tmp, self._dir / f"{key}.json")
            tmp = None
        except (OSError, TypeError, ValueError):
            pass  # persistence is best-effort; memory entry stands
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns entries removed."""
        removed = len(self._memory)
        self._memory.clear()
        if self._dir is not None:
            for f in self._dir.glob("*.json"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
        self._hits = 0
        self._misses = 0
        self._corrupt = 0
        return removed

    def invalidate_memory(self) -> int:
        """Drop the in-process mirror of the on-disk entries.

        The next lookup of each key re-reads (and re-validates) the disk
        file.  Used by the chaos engine's cache-corruption/eviction
        faults, which edit the directory behind the running process;
        returns the number of entries dropped.
        """
        dropped = len(self._memory)
        self._memory.clear()
        return dropped

    def on_disk_entries(self) -> list[str]:
        """Sorted content-hash keys currently present on disk."""
        if self._dir is None:
            return []
        return sorted(p.stem for p in self._dir.glob("*.json"))

    def entry_path(self, key: str) -> Path | None:
        """Path of one on-disk entry, or ``None`` for a memory-only cache."""
        if self._dir is None:
            return None
        return self._dir / f"{key}.json"

    def stats(self) -> CacheStats:
        """Current hit/miss counters and entry count."""
        entries = len(self._memory)
        if self._dir is not None:
            entries = len(list(self._dir.glob("*.json")))
        obs.gauge(
            "timing_cache_entries",
            "entries in the persistent kernel-timing cache",
        ).set(entries)
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=entries,
            directory=str(self._dir) if self._dir is not None else "",
            enabled=self.enabled,
            persistent=self._dir is not None,
            corrupt=self._corrupt,
        )

    # -- process-wide default -------------------------------------------------

    _default: "TimingCache | None" = None

    @classmethod
    def default(cls) -> "TimingCache":
        """The shared process-wide cache, honouring the env knobs."""
        if cls._default is None:
            enabled = os.environ.get("REPRO_TIMING_CACHE", "1") != "0"
            override = os.environ.get("REPRO_TIMING_CACHE_DIR")
            directory: Path | None
            if not enabled:
                directory = None
            elif override:
                directory = Path(override)
            else:
                directory = _default_directory()
            cls._default = cls(directory, enabled=enabled)
        return cls._default

    @classmethod
    def reset_default(cls) -> None:
        """Forget the shared instance (re-reads env on next access)."""
        cls._default = None
