"""The :class:`PerformanceModel` facade.

Prices GEMM and elementwise kernels under any Table 3 strategy by
lowering them to warp sets (:mod:`repro.perfmodel.warpsets`) and running
the issue-loop simulator, with *work scaling*: large kernels are
simulated at a reduced iteration count and the measured steady-state
rate is extrapolated — valid because the compressed warp programs are
loop-homogeneous.  Per-kernel launch overhead is added once, after
scaling.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from functools import lru_cache

from repro import obs
from repro.arch.specs import MachineSpec
from repro.errors import RatioClampWarning, ScheduleError, SimulationError
from repro.fusion.ratio import PAPER_TENSOR_CUDA_RATIO, tensor_cuda_ratio_from_times
from repro.fusion.strategies import IC, TC, Strategy
from repro.packing.policy import PackingPolicy, policy_for_bitwidth
from repro.perfmodel.descriptors import (
    ELEMENTWISE_KERNELS,
    CostParams,
    ElementwiseDesc,
    GemmShape,
)
from repro.perfmodel.timingcache import ENGINE_VERSION, TimingCache
from repro.perfmodel.warpsets import (
    KernelLaunch,
    elementwise_launch,
    gemm_launch,
)
from repro.sim.gpu import GPUSim
from repro.sim.instruction import OpClass
from repro.sim.program import WarpProgram
from repro.sim.trace import KernelStats

__all__ = ["KernelTiming", "PerformanceModel"]


def _timing_to_value(timing: KernelTiming) -> dict:
    """JSON-serializable form of a timing (label/extra excluded: they
    are presentation metadata, reattached from the live launch)."""
    return {
        "seconds": timing.seconds,
        "compute_seconds": timing.compute_seconds,
        "dram_seconds": timing.dram_seconds,
        "launch_overhead_seconds": timing.launch_overhead_seconds,
        "instructions": timing.instructions,
        "issued": {op.name: n for op, n in timing.issued.items()},
        "ipc": timing.ipc,
        "pipe_utilization": {
            op.name: u for op, u in timing.pipe_utilization.items()
        },
        "memory_bound": timing.memory_bound,
    }


def _timing_from_value(value: dict, launch: KernelLaunch) -> KernelTiming:
    """Rebuild a :class:`KernelTiming` from its cached JSON form."""
    return KernelTiming(
        seconds=value["seconds"],
        compute_seconds=value["compute_seconds"],
        dram_seconds=value["dram_seconds"],
        launch_overhead_seconds=value["launch_overhead_seconds"],
        instructions=value["instructions"],
        issued={OpClass[name]: n for name, n in value["issued"].items()},
        ipc=value["ipc"],
        pipe_utilization={
            OpClass[name]: u for name, u in value["pipe_utilization"].items()
        },
        memory_bound=value["memory_bound"],
        label=launch.label,
        extra=dict(launch.extra),
    )


@lru_cache(maxsize=8192)
def _warp_key_fragment(w: WarpProgram) -> str:
    """Canonical JSON of one warp's cache-payload entry (memoized —
    the same compressed programs recur across layers and strategies)."""
    return json.dumps(
        [[op.name, c] for op, c in w.body] + [w.iterations],
        separators=(",", ":"),
    )


@dataclass
class KernelTiming:
    """Scaled simulation result for one kernel launch."""

    seconds: float
    compute_seconds: float
    dram_seconds: float
    launch_overhead_seconds: float
    instructions: float
    issued: dict[OpClass, float]
    ipc: float
    pipe_utilization: dict[OpClass, float]
    memory_bound: bool
    label: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def useful_seconds(self) -> float:
        """Time excluding launch overhead."""
        return self.seconds - self.launch_overhead_seconds


class PerformanceModel:
    """Prices kernels on a simulated machine under Table 3 strategies."""

    def __init__(
        self,
        machine: MachineSpec,
        policy: PackingPolicy | None = None,
        params: CostParams | None = None,
        *,
        include_launch_overhead: bool = True,
        sim_mode: str = "periodic",
        timing_cache: TimingCache | None = None,
        clamp_ratio: bool = False,
    ):
        self.machine = machine
        self.policy = policy if policy is not None else policy_for_bitwidth(8)
        self.params = params if params is not None else CostParams()
        self.include_launch_overhead = include_launch_overhead
        self.sim_mode = sim_mode
        #: Degrade an inapplicable Tensor:CUDA split rule to m = 1
        #: instead of raising (sweeps/serving); clamps are counted in
        #: :attr:`ratio_clamps`.  Strict (False) is paper-faithful.
        self.clamp_ratio = clamp_ratio
        self.ratio_clamps = 0
        self._gpu = GPUSim(machine, include_launch_overhead=False, mode=sim_mode)
        self.timing_cache = (
            timing_cache if timing_cache is not None else TimingCache.default()
        )
        self._cache: dict[tuple, KernelTiming] = {}
        self._ratio_cache: dict[tuple, float] = {}
        # Pre-serialized launch-independent slice of the cache payload
        # (see _cache_key); rebuilt if the defining attributes are
        # rebound (they are frozen dataclasses, so rebinding is the
        # only way to change them).
        self._static_blob: str | None = None
        self._static_blob_deps: tuple | None = None

    # -- scaled simulation ---------------------------------------------------

    def _static_payload(self) -> dict:
        """The launch-independent slice of :meth:`_cache_payload`."""
        return {
            "engine": ENGINE_VERSION,
            "machine": asdict(self.machine),
            "timings": {
                op.name: [t.initiation_interval, t.issue_gap]
                for op, t in self._gpu.timings.items()
            },
            "mode": self.sim_mode,
            "include_launch_overhead": self.include_launch_overhead,
            "params": asdict(self.params),
        }

    def _cache_payload(self, launch: KernelLaunch) -> dict:
        """Every input that can influence ``_simulate``'s result, in
        JSON-serializable form (the persistent cache key material)."""
        payload = self._static_payload()
        payload["warps"] = [
            [[op.name, c] for op, c in w.body] + [w.iterations]
            for w in launch.warps
        ]
        payload["bytes_moved"] = launch.bytes_moved
        return payload

    def _cache_key(self, launch: KernelLaunch) -> str:
        """:meth:`TimingCache.key_for` of :meth:`_cache_payload`, fast.

        Splices pre-serialized fragments into the canonical JSON
        encoding instead of rebuilding and re-dumping the full payload
        per lookup: the static slice is serialized once per model (its
        keys all sort between ``"bytes_moved"`` and ``"warps"``) and
        each distinct warp program's fragment is memoized process-wide.
        Key equality with the slow path is pinned by a unit test.
        """
        deps = (
            self.machine,
            self.params,
            self.sim_mode,
            self.include_launch_overhead,
        )
        if self._static_blob is None or self._static_blob_deps != deps:
            mid = json.dumps(
                self._static_payload(), sort_keys=True, separators=(",", ":")
            )
            self._static_blob = mid[1:-1]  # strip the outer braces
            self._static_blob_deps = deps
        blob = '{"bytes_moved":%s,%s,"warps":[%s]}' % (
            json.dumps(launch.bytes_moved),
            self._static_blob,
            ",".join(_warp_key_fragment(w) for w in launch.warps),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _simulate(self, launch: KernelLaunch) -> KernelTiming:
        """Run a launch through the simulator with work scaling.

        Results are memoized in the persistent :class:`TimingCache`
        keyed by :meth:`_cache_payload`, so repeat pricings — including
        across processes — skip simulation entirely.  With
        ``REPRO_REQUIRE_WARM_CACHE=1`` a cache miss raises instead of
        simulating (the CI warm-cache smoke check).
        """
        key = self._cache_key(launch)
        cached = self.timing_cache.get(None, key=key)
        if cached is not None:
            return _timing_from_value(cached, launch)
        if os.environ.get("REPRO_REQUIRE_WARM_CACHE") == "1":
            raise SimulationError(
                f"timing-cache miss for launch {launch.label!r} with "
                "REPRO_REQUIRE_WARM_CACHE=1 (the warm-cache run was "
                "expected to perform zero simulations)"
            )
        timing = self._simulate_uncached(launch)
        self.timing_cache.put(None, _timing_to_value(timing), key=key)
        return timing

    def _simulate_uncached(self, launch: KernelLaunch) -> KernelTiming:
        """The actual work-scaled simulation behind :meth:`_simulate`."""
        obs.counter(
            "perfmodel_simulations_total",
            "fresh (uncached) work-scaled kernel simulations",
        ).inc()
        resident_instr = sum(w.total_instructions for w in launch.warps)
        target = self.params.target_sim_instructions
        scale_down = max(1.0, resident_instr / target)
        if scale_down > 1.0:
            warps = [
                w if w.total_instructions == 0 else w.scaled(1.0 / scale_down)
                for w in launch.warps
            ]
        else:
            warps = launch.warps
        sim_instr = sum(w.total_instructions for w in warps)
        if sim_instr == 0:
            raise ScheduleError(f"launch {launch.label!r} scaled to zero work")
        factor = resident_instr / sim_instr  # exact realized scale
        stats: KernelStats = self._gpu.run_kernel(
            warps, bytes_moved=launch.bytes_moved / factor
        )
        compute_seconds = self.machine.cycles_to_seconds(stats.compute_cycles) * factor
        dram_seconds = self.machine.cycles_to_seconds(stats.dram_cycles) * factor
        seconds = max(compute_seconds, dram_seconds)
        overhead = (
            self.machine.kernel_launch_overhead_us * 1e-6
            if self.include_launch_overhead
            else 0.0
        )
        seconds += overhead
        issued = {op: n * factor for op, n in stats.issued.items()}
        instructions = sum(issued.values())
        cycles = seconds * self.machine.clock_hz
        ipc = instructions / (cycles * self.machine.sm_count) if cycles else 0.0
        return KernelTiming(
            seconds=seconds,
            compute_seconds=compute_seconds,
            dram_seconds=dram_seconds,
            launch_overhead_seconds=overhead,
            instructions=instructions,
            issued=issued,
            ipc=ipc,
            pipe_utilization=dict(stats.pipe_utilization),
            memory_bound=dram_seconds > compute_seconds,
            label=launch.label,
            extra=dict(launch.extra),
        )

    # -- public API ------------------------------------------------------------

    def time_gemm(
        self,
        shape: GemmShape,
        strategy: Strategy,
        *,
        tensor_cuda_ratio: float | None = None,
    ) -> KernelTiming:
        """Simulated time of one GEMM under ``strategy``.

        When ``tensor_cuda_ratio`` is omitted, strategies that fuse
        Tensor and CUDA cores get the paper's measured-time rule
        (Sec. 3.2): probe the GEMM on Tensor cores alone and on the
        strategy's CUDA configuration alone, and split columns by the
        time ratio.  For VitBit on ViT-Base shapes this resolves to the
        paper's m = 4.
        """
        if tensor_cuda_ratio is not None:
            m = tensor_cuda_ratio
        elif strategy.uses_tensor and strategy.uses_cuda:
            m = self.determine_tensor_cuda_ratio(shape, strategy)
        else:
            m = PAPER_TENSOR_CUDA_RATIO  # ignored; split_plan pins one side
        key = ("gemm", shape, strategy.name, m)
        if key not in self._cache:
            launch = gemm_launch(
                shape, strategy, self.machine, self.policy, self.params, m
            )
            self._cache[key] = self._simulate(launch)
        return self._cache[key]

    def time_elementwise(
        self,
        kernel: str | ElementwiseDesc,
        n_elements: int,
        strategy: Strategy,
    ) -> KernelTiming:
        """Simulated time of one CUDA-core kernel under ``strategy``."""
        desc = (
            ELEMENTWISE_KERNELS[kernel] if isinstance(kernel, str) else kernel
        )
        key = ("elem", desc.name, n_elements, strategy.name)
        if key not in self._cache:
            launch = elementwise_launch(
                desc, n_elements, strategy, self.machine, self.policy, self.params
            )
            self._cache[key] = self._simulate(launch)
        return self._cache[key]

    def determine_tensor_cuda_ratio(
        self,
        shape: GemmShape,
        cuda_strategy: Strategy,
        *,
        round_to_int: bool = True,
        clamp: bool | None = None,
    ) -> float:
        """The paper's m rule: time the GEMM on Tensor cores alone and on
        the CUDA cores alone (under ``cuda_strategy``'s pipe/packing
        configuration) and return their ratio.

        ``clamp`` (default: the model's :attr:`clamp_ratio`) degrades an
        inapplicable rule (CUDA faster than Tensor) to m = 1 and bumps
        :attr:`ratio_clamps` instead of raising ScheduleError.
        """
        do_clamp = self.clamp_ratio if clamp is None else clamp
        rkey = ("ratio", shape, cuda_strategy.uses_int, cuda_strategy.uses_fp,
                cuda_strategy.packing, round_to_int, do_clamp)
        if rkey in self._ratio_cache:
            return self._ratio_cache[rkey]
        t_tc = self.time_gemm(shape, TC).useful_seconds
        cuda_only = Strategy(
            name=f"{cuda_strategy.name}-cuda-only",
            uses_tensor=False,
            uses_int=cuda_strategy.uses_int,
            uses_fp=cuda_strategy.uses_fp,
            packing=cuda_strategy.packing,
            kernel_scope="C",
            description="CUDA-core-only probe for the m rule",
        )
        if not cuda_only.uses_cuda:
            cuda_only = IC
        launch = gemm_launch(
            shape, cuda_only, self.machine, self.policy, self.params, 0.0
        )
        t_cuda = self._simulate(launch).useful_seconds
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", RatioClampWarning)
            m = tensor_cuda_ratio_from_times(
                t_tc, t_cuda, round_to_int=round_to_int, clamp=do_clamp
            )
        if any(isinstance(w.message, RatioClampWarning) for w in caught):
            self.ratio_clamps += 1
        self._ratio_cache[rkey] = m
        return m

    def instruction_totals(
        self,
        shape: GemmShape,
        strategy: Strategy,
        *,
        tensor_cuda_ratio: float | None = None,
    ) -> dict[OpClass, float]:
        """Analytic grid-wide instruction counts (Fig. 9's metric)."""
        from repro.perfmodel.warpsets import gemm_instruction_totals

        m = (
            tensor_cuda_ratio
            if tensor_cuda_ratio is not None
            else PAPER_TENSOR_CUDA_RATIO
        )
        plan = strategy.split_plan(shape.n, self.policy, m)
        return gemm_instruction_totals(
            shape, plan, self.policy, self.params, sm=self.machine.sm
        )

    def clear_cache(self) -> None:
        """Drop memoized kernel timings (after mutating params).

        Only the in-process memos are dropped; the persistent
        :class:`TimingCache` is content-addressed, so mutated params
        simply hash to different keys (use ``timing_cache.clear()`` to
        reclaim disk).
        """
        self._cache.clear()
        self._ratio_cache.clear()
