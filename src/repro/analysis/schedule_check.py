"""Static diagnostics over warp programs, warp sets, and kernel launches.

GPU modelling work validates simulated instruction streams *before*
timing them; this module gives the VitBit stack the same discipline.
Checks run on plain :class:`~repro.sim.program.WarpProgram` objects, on
the warp set lowered for one SM, and on a full
:class:`~repro.perfmodel.warpsets.KernelLaunch`, and every finding is a
structured :class:`~repro.analysis.diagnostics.Diagnostic` rather than
a late ``ScheduleError`` deep inside the simulator.

Diagnostic codes
----------------
* ``VB201`` — degenerate (zero-instruction) program occupying a slot,
* ``VB202`` — program issues on a pipe the timing model does not know,
* ``VB203`` — warp set empty or oversubscribing the SM's warp slots,
* ``VB204`` — residency not a multiple of the SM's sub-partitions,
* ``VB205`` — split plan inconsistent with Algorithm 1 / Eq. 1's
  ``n : 1`` INT:FP rule,
* ``VB206`` — pipe starvation: grid work for a compute pipe but no
  resident warp ever issues on it,
* ``VB207`` — under-occupancy: fewer warps than warp schedulers,
* ``VB208`` — warp-set pipe mix diverges from the launch's grid-level
  instruction accounting,
* ``VB209`` — co-schedule share leaves one kernel without slots/work.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.arch.specs import MachineSpec, SMSpec
from repro.packing.policy import PackingPolicy
from repro.perfmodel.warpsets import KernelLaunch
from repro.preprocess.split import SplitPlan, plan_split
from repro.sim.instruction import OpClass, PipeTiming, default_timings
from repro.sim.program import WarpProgram

__all__ = [
    "check_program",
    "check_warp_set",
    "check_split_plan",
    "check_launch",
    "check_coschedule_shares",
]

#: Pipes whose starvation/consistency is checked.  LSU/MISC/SFU demand
#: below the lowering's body granularity is dropped by design, so only
#: the compute pipes participate in VB206/VB208.
_COMPUTE_PIPES = (OpClass.INT, OpClass.FP, OpClass.TENSOR)

#: Acceptable per-pipe drift between the warp-set accounting and the
#: grid-level totals (the lowering rounds iteration counts per role).
_MIX_TOLERANCE = 8.0


def check_program(
    prog: WarpProgram,
    *,
    timings: dict[OpClass, PipeTiming] | None = None,
    location: str = "program",
) -> list[Diagnostic]:
    """Diagnostics for one warp program.

    ``timings`` (when given) defines the pipes the machine model knows;
    a body segment on any other pipe is a hard error — the simulator
    would fault mid-run.
    """
    diags: list[Diagnostic] = []
    if prog.is_empty:
        diags.append(
            Diagnostic(
                code="VB201",
                severity=Severity.WARNING,
                message=(
                    "degenerate program (zero instructions) occupies a "
                    "warp slot"
                ),
                location=location,
                hint="drop it from the warp set or use WarpProgram.empty() "
                "only for explicit padding",
            )
        )
    if timings is not None:
        for op, _count in prog.body:
            if op not in timings:
                diags.append(
                    Diagnostic(
                        code="VB202",
                        severity=Severity.ERROR,
                        message=(
                            f"program issues on pipe {op.name} which has "
                            "no timing entry in the machine model"
                        ),
                        location=location,
                    )
                )
    return diags


def _mix_of(warps: list[WarpProgram]) -> dict[OpClass, int]:
    totals: dict[OpClass, int] = {}
    for w in warps:
        for op, count in w.mix().items():
            totals[op] = totals.get(op, 0) + count
    return totals


def check_warp_set(
    warps: list[WarpProgram],
    sm: SMSpec,
    *,
    timings: dict[OpClass, PipeTiming] | None = None,
    label: str = "warpset",
) -> list[Diagnostic]:
    """Structural diagnostics for the warp set resident on one SM."""
    diags: list[Diagnostic] = []
    n = len(warps)
    if n == 0:
        diags.append(
            Diagnostic(
                code="VB203",
                severity=Severity.ERROR,
                message="warp set is empty; the SM would idle forever",
                location=label,
            )
        )
        return diags
    if n > sm.max_warps_per_sm:
        diags.append(
            Diagnostic(
                code="VB203",
                severity=Severity.ERROR,
                message=(
                    f"{n} resident warps oversubscribe the SM's "
                    f"{sm.max_warps_per_sm} warp slots"
                ),
                location=label,
                hint="scale per-warp iterations instead of adding warps",
            )
        )
    if n % sm.partitions:
        diags.append(
            Diagnostic(
                code="VB204",
                severity=Severity.WARNING,
                message=(
                    f"{n} warps do not divide evenly over "
                    f"{sm.partitions} sub-partitions; the SM finishes at "
                    "the slowest scheduler"
                ),
                location=label,
                hint="round role populations to a multiple of the "
                "partition count",
            )
        )
    if n < sm.partitions:
        diags.append(
            Diagnostic(
                code="VB207",
                severity=Severity.WARNING,
                message=(
                    f"only {n} warps for {sm.partitions} warp schedulers; "
                    "some sub-partitions never issue"
                ),
                location=label,
            )
        )
    for i, w in enumerate(warps):
        diags.extend(
            check_program(w, timings=timings, location=f"{label}.warp[{i}]")
        )
    return diags


def check_split_plan(
    plan: SplitPlan,
    policy: PackingPolicy,
    *,
    location: str = "plan",
) -> list[Diagnostic]:
    """Check a column-split plan against Algorithm 1 and Eq. 1.

    The Eq. 1 rule: when the INT slice is packed ``lanes``-wide and the
    FP pipe participates, the INT pipe must receive ``lanes`` columns
    per FP column so the two equal-width pipes retire the same
    instruction count.
    """
    diags: list[Diagnostic] = []
    if plan.lanes != policy.lanes:
        diags.append(
            Diagnostic(
                code="VB205",
                severity=Severity.ERROR,
                message=(
                    f"plan was computed for {plan.lanes} lanes but the "
                    f"policy packs {policy.lanes}"
                ),
                location=location,
            )
        )
        return diags
    if plan.lanes > 1 and plan.n1 % plan.lanes:
        diags.append(
            Diagnostic(
                code="VB205",
                severity=Severity.ERROR,
                message=(
                    f"INT slice of {plan.n1} columns is not a multiple of "
                    f"{plan.lanes} packing lanes; a register would straddle "
                    "the B1/B2 boundary"
                ),
                location=location,
            )
        )
    if plan.lanes > 1 and plan.n1 and plan.n2 and plan.int_fp_ratio != plan.lanes:
        diags.append(
            Diagnostic(
                code="VB205",
                severity=Severity.WARNING,
                message=(
                    f"INT:FP ratio {plan.int_fp_ratio}:1 is inconsistent "
                    f"with Eq. 1's n:1 rule for a {plan.lanes}-lane packing "
                    "(the pipes will retire unequal instruction counts)"
                ),
                location=location,
                hint="use Strategy.split_plan or eq1_int_fp_ratio",
            )
        )
    ideal = plan_split(
        plan.n_total,
        plan.tensor_cuda_ratio,
        policy,
        int_fp_ratio=plan.int_fp_ratio,
    )
    if (ideal.n1, ideal.n2, ideal.n3) != (plan.n1, plan.n2, plan.n3):
        diags.append(
            Diagnostic(
                code="VB205",
                severity=Severity.WARNING,
                message=(
                    f"slice widths ({plan.n1}, {plan.n2}, {plan.n3}) deviate "
                    f"from Algorithm 1's split ({ideal.n1}, {ideal.n2}, "
                    f"{ideal.n3}) for m={plan.tensor_cuda_ratio}, "
                    f"n={plan.int_fp_ratio}"
                ),
                location=location,
            )
        )
    return diags


def check_launch(
    launch: KernelLaunch,
    machine: MachineSpec,
    *,
    policy: PackingPolicy | None = None,
) -> list[Diagnostic]:
    """Full static validation of one lowered kernel launch.

    Combines the warp-set checks with plan validation (when the launch
    carries a plan and ``policy`` is given) and cross-checks the warp
    set's pipe mix against the launch's grid-level instruction totals.
    """
    label = launch.label or "launch"
    timings = default_timings(machine.sm)
    diags = check_warp_set(
        launch.warps, machine.sm, timings=timings, label=label
    )
    if launch.plan is not None and policy is not None:
        diags.extend(
            check_split_plan(launch.plan, policy, location=f"{label}.plan")
        )

    warp_mix = _mix_of(launch.warps)
    for op in _COMPUTE_PIPES:
        grid = launch.instruction_totals.get(op, 0.0)
        local = warp_mix.get(op, 0) * machine.sm_count
        if grid > 0 and local == 0:
            diags.append(
                Diagnostic(
                    code="VB206",
                    severity=Severity.WARNING,
                    message=(
                        f"{op.name} pipe has {grid:.0f} instructions of "
                        "grid work but no resident warp ever issues on it "
                        "(starved pipe)"
                    ),
                    location=label,
                )
            )
        elif grid > 0 and local > 0:
            drift = max(local / grid, grid / local)
            if drift > _MIX_TOLERANCE:
                diags.append(
                    Diagnostic(
                        code="VB208",
                        severity=Severity.WARNING,
                        message=(
                            f"warp-set {op.name} work ({local:.0f} "
                            "instructions across SMs) diverges from the "
                            f"grid total ({grid:.0f}) by more than "
                            f"{_MIX_TOLERANCE:.0f}x"
                        ),
                        location=label,
                    )
                )
        elif grid == 0 and local > 0:
            diags.append(
                Diagnostic(
                    code="VB208",
                    severity=Severity.WARNING,
                    message=(
                        f"warps issue {local} {op.name} instructions but "
                        "the launch accounts zero grid work on that pipe"
                    ),
                    location=label,
                )
            )
    return diags


def check_coschedule_shares(
    machine: MachineSpec,
    a: KernelLaunch,
    b: KernelLaunch,
    *,
    share_a: float = 0.5,
) -> list[Diagnostic]:
    """Validate a Tacker-style co-schedule before fusing two launches.

    Mirrors the slot arithmetic of
    :func:`repro.fusion.coschedule.co_schedule` and reports ``VB209``
    when the share leaves either kernel without a warp slot or either
    side has no work to scale into its slots.
    """
    diags: list[Diagnostic] = []
    if not 0.0 < share_a < 1.0:
        diags.append(
            Diagnostic(
                code="VB209",
                severity=Severity.ERROR,
                message=f"share_a must lie strictly in (0, 1), got {share_a}",
                location="coschedule",
            )
        )
        return diags
    slots = machine.sm.max_warps_per_sm
    slots_a = max(1, min(slots - 1, round(slots * share_a)))
    slots_b = slots - slots_a
    for name, launch, side_slots in (
        ("a", a, slots_a),
        ("b", b, slots_b),
    ):
        active = [w for w in launch.warps if w.total_instructions > 0]
        if side_slots < 1:
            diags.append(
                Diagnostic(
                    code="VB209",
                    severity=Severity.ERROR,
                    message=f"kernel {name} receives no warp slots",
                    location=f"coschedule.{launch.label or name}",
                )
            )
        if not active:
            diags.append(
                Diagnostic(
                    code="VB209",
                    severity=Severity.ERROR,
                    message=f"kernel {name} has no work to co-schedule",
                    location=f"coschedule.{launch.label or name}",
                )
            )
    return diags
