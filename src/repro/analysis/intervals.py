"""Integer interval arithmetic — the prover's abstract domain.

The lane-overflow prover (:mod:`repro.analysis.overflow`) tracks each
lane of a packed register as a closed integer interval ``[lo, hi]`` and
pushes it through the operations a packed IMAD chain performs: multiply
by a bounded scalar, add another lane interval, accumulate ``k`` times.
Intervals are *sound*: the concrete lane value always lies inside the
abstract interval, so "the interval's ``hi`` fits the field" is a proof
and "``hi`` exceeds the field" pinpoints the worst-case witness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PackingError

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise PackingError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        """The singleton interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def from_bits(bits: int) -> "Interval":
        """The unsigned range of a ``bits``-bit magnitude: ``[0, 2**bits - 1]``."""
        if bits < 0:
            raise PackingError(f"bitwidth must be >= 0, got {bits}")
        return Interval(0, (1 << bits) - 1) if bits else Interval(0, 0)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        """Sound sum: ``[lo+lo, hi+hi]``."""
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __mul__(self, other: "Interval") -> "Interval":
        """Sound product (general sign handling via corner enumeration)."""
        corners = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))

    def scale(self, k: int) -> "Interval":
        """``k`` accumulations of this interval (``k >= 0``)."""
        if k < 0:
            raise PackingError(f"accumulation count must be >= 0, got {k}")
        return Interval(self.lo * k, self.hi * k)

    def join(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (the lattice join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # -- queries -------------------------------------------------------------

    def contains(self, value: int) -> bool:
        """True when ``lo <= value <= hi``."""
        return self.lo <= value <= self.hi

    @property
    def nonnegative(self) -> bool:
        """True when every member is >= 0."""
        return self.lo >= 0

    def fits(self, limit: int) -> bool:
        """True when the whole interval lies in ``[0, limit]``.

        This is the lane-safety predicate: a lane whose abstract value
        fits ``[0, field_mask]`` can never wrap into its neighbour.
        """
        return self.lo >= 0 and self.hi <= limit

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"
