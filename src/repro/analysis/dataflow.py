"""Abstract interpretation over lane-IR programs.

This is the general verifier the closed-form prover in
:mod:`repro.analysis.overflow` could not be: it executes any
:class:`~repro.analysis.laneir.LaneProgram` over a product domain of
**per-lane intervals x layout facts**, so every check works for
arbitrary (asymmetric, gap-ridden, zero-point-offset) lane layouts, not
just the uniform Fig. 3 chain.

Per program it proves or refutes:

* **lane-field overflow** (``VB110``) — a lane's abstract value exceeds
  its field capacity, with a concrete :class:`LaneWitness`;
* **guard-bit exhaustion** (``VB111`` warning) — a lane ends a chain
  with zero guard margin: the next accumulation would overflow;
* **cross-lane carry contamination** (``VB112``) — an overflowing lane
  has a neighbour field inside its carry range, or two packed operands
  with different layouts are combined;
* **32-bit register wrap** (``VB113``) — the packed value exceeds the
  register, corrupting the top lane;
* **use-before-def** (``VB114``);
* plus ``VB115`` (dependence summary, info), ``VB116`` (proved safe,
  info) and ``VB118`` (loop not summarizable, warning).

Loops are interpreted with **linear fast-forward**: the body runs
concretely twice; when every written register's abstract state advances
by a constant per-trip delta the interpreter jumps the remaining trips
arithmetically — including computing the *exact first failing trip* for
witnesses — so a K=4096 (or K=2^30) chain verifies in microseconds.

The module also derives the per-instruction **dependence graph**
(RAW/WAW/WAR edges from read/write sets — the input ROADMAP item 2's
compiled scheduler replays) and emits the **proven-safe-depth table**
over (a_bits, b_bits, layout) that the packer and serve preflights
consume (``benchmarks/out/summary.json``, key ``safe_depths``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.intervals import Interval
from repro.analysis.laneir import LaneLayout, LaneOp, LaneProgram, gemm_chain_program
from repro.errors import AnalysisError, PackingError

__all__ = [
    "LaneWitness",
    "PackedVal",
    "WideVal",
    "DependenceGraph",
    "DataflowResult",
    "verify_program",
    "prove_chain",
    "first_failing_depth",
    "proven_chunk_depth",
    "safe_depth_table",
    "write_safe_depth_table",
    "load_safe_depth_table",
    "use_safe_depth_table",
    "UNBOUNDED_DEPTH",
]

#: Depth reported for chains that can never overflow; shared meaning
#: with :data:`repro.analysis.overflow.UNBOUNDED_DEPTH`.
UNBOUNDED_DEPTH = 1 << 30

#: Loop bodies whose state does not advance linearly are unrolled up to
#: this many trips before the interpreter gives up with ``VB118``.
UNROLL_CAP = 4096


@dataclass(frozen=True)
class LaneWitness:
    """A concrete refutation: which lane of which op overflows, and how.

    ``value_hi`` is the worst-case abstract value that exceeds
    ``capacity``.  For accumulation chains the optional ``scalar``,
    ``lane_value`` and ``depth`` fields give the reproduction recipe of
    :class:`repro.analysis.overflow.OverflowWitness`: feed ``scalar`` x
    ``lane_value`` products ``depth`` times under ``strict=True`` SWAR
    and the execution raises at exactly that step.
    """

    op_index: int
    op: str
    lane: int
    value_hi: int
    capacity: int
    scalar: int | None = None
    lane_value: int | None = None
    depth: int | None = None

    def describe(self) -> str:
        """One-line reproduction recipe."""
        base = (
            f"lane {self.lane} of op#{self.op_index} ({self.op}) reaches "
            f"{self.value_hi} > capacity {self.capacity}"
        )
        if self.depth is not None and self.scalar is not None:
            base += (
                f" [scalar={self.scalar} x lane_value={self.lane_value} "
                f"at depth {self.depth}]"
            )
        return base

    def to_dict(self) -> dict:
        """JSON-ready form for ``--format json`` output."""
        out = {
            "op_index": self.op_index,
            "op": self.op,
            "lane": self.lane,
            "value_hi": self.value_hi,
            "capacity": self.capacity,
        }
        if self.depth is not None:
            out.update(
                scalar=self.scalar, lane_value=self.lane_value, depth=self.depth
            )
        return out


@dataclass(frozen=True)
class PackedVal:
    """Abstract value of a packed register: one interval per lane field.

    ``depth`` counts worst-case products accumulated into the register
    (0 for a fresh pack) — it is what a refutation reports as the
    failing accumulation step.
    """

    layout: LaneLayout
    lanes: tuple[Interval, ...]
    depth: int = 0

    def __post_init__(self) -> None:
        if len(self.lanes) != self.layout.lanes:
            raise AnalysisError(
                f"{len(self.lanes)} lane intervals for a "
                f"{self.layout.lanes}-lane layout"
            )

    @classmethod
    def zeros(cls, layout: LaneLayout) -> "PackedVal":
        """The all-zero packed register."""
        return cls(layout, tuple(Interval.point(0) for _ in layout.fields))

    def register_interval(self) -> Interval:
        """Abstract value of the whole register (lanes shifted + summed)."""
        lo = sum(iv.lo << f.offset for iv, f in zip(self.lanes, self.layout.fields))
        hi = sum(iv.hi << f.offset for iv, f in zip(self.lanes, self.layout.fields))
        return Interval(lo, hi)


@dataclass(frozen=True)
class WideVal:
    """Abstract value of a wide (per-lane int64) accumulator."""

    lanes: tuple[Interval, ...]


@dataclass
class DependenceGraph:
    """RAW/WAW/WAR edges over a program's top-level instructions.

    Nodes are op indices (loops are compound nodes whose read/write sets
    union their bodies); ``weight`` prices a node at its trip count so
    the critical path measures the serial chain length a scheduler
    cannot hide.
    """

    nodes: list[dict] = field(default_factory=list)
    edges: list[dict] = field(default_factory=list)
    critical_path: list[int] = field(default_factory=list)
    critical_length: int = 0

    @classmethod
    def from_program(cls, program: LaneProgram) -> "DependenceGraph":
        """Derive the graph from per-instruction read/write sets."""
        graph = cls()
        last_writer: dict[str, int] = {}
        readers_since: dict[str, set[int]] = {}
        for i, op in enumerate(program.ops):
            weight = op.attrs.get("trips", 1) if op.op == "loop" else 1
            graph.nodes.append(
                {
                    "index": i,
                    "op": op.op,
                    "dest": op.dest,
                    "weight": int(weight),
                    "text": op.render(),
                }
            )
            seen: set[tuple[int, int, str]] = set()

            def edge(src: int, kind: str, reg: str) -> None:
                key = (src, i, kind)
                if src != i and key not in seen:
                    seen.add(key)
                    graph.edges.append(
                        {"src": src, "dst": i, "kind": kind, "reg": reg}
                    )

            reads, writes = op.reads(), op.writes()
            for r in sorted(reads):
                if r in last_writer:
                    edge(last_writer[r], "RAW", r)
            for w in sorted(writes):
                if w in last_writer:
                    edge(last_writer[w], "WAW", w)
                for reader in sorted(readers_since.get(w, ())):
                    edge(reader, "WAR", w)
            for r in reads:
                readers_since.setdefault(r, set()).add(i)
            for w in writes:
                last_writer[w] = i
                readers_since[w] = set()
        graph._critical()
        return graph

    def _critical(self) -> None:
        """Longest weighted path (ops are already topologically ordered)."""
        n = len(self.nodes)
        if not n:
            return
        dist = [node["weight"] for node in self.nodes]
        prev = [-1] * n
        for e in self.edges:
            s, d = e["src"], e["dst"]
            cand = dist[s] + self.nodes[d]["weight"]
            if cand > dist[d]:
                dist[d] = cand
                prev[d] = s
        end = max(range(n), key=dist.__getitem__)
        path = []
        while end != -1:
            path.append(end)
            end = prev[end]
        self.critical_path = path[::-1]
        self.critical_length = max(dist)

    def to_dict(self) -> dict:
        """JSON-ready export (the scheduler input of ROADMAP item 2)."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "critical_path": self.critical_path,
            "critical_length": self.critical_length,
        }


@dataclass
class DataflowResult:
    """Verdict of :func:`verify_program` for one lane program.

    ``safe`` is a *proof* (no reachable state violates any check);
    ``proven`` distinguishes "proved safe" from "gave up" (``VB118``):
    a program can be un-refuted yet unproven.  ``max_safe_depth`` is
    populated by the chain entry points.
    """

    program: LaneProgram
    safe: bool
    proven: bool
    diagnostics: list[Diagnostic]
    witness: LaneWitness | None
    dependence: DependenceGraph
    max_safe_depth: int | None = None

    def report(self) -> DiagnosticReport:
        """The diagnostics as a renderable report."""
        rep = DiagnosticReport()
        rep.extend(self.diagnostics)
        return rep

    def describe(self) -> str:
        """One-line verdict summary."""
        if self.safe:
            extra = (
                f", max safe depth {self.max_safe_depth}"
                if self.max_safe_depth is not None
                else ""
            )
            return f"SAFE {self.program.name}{extra}"
        if self.witness is not None:
            return f"REFUTED {self.program.name}: {self.witness.describe()}"
        return f"UNPROVEN {self.program.name}"


class _Refuted(Exception):
    """Internal: interpretation stopped at a refuting state."""

    def __init__(self, diags: list[Diagnostic], witness: LaneWitness | None):
        super().__init__(witness.describe() if witness else "refuted")
        self.diags = diags
        self.witness = witness


def _loc(program: LaneProgram, index: int, op: LaneOp) -> str:
    return f"{program.name}:op#{index}({op.op})"


class _Interp:
    """The abstract interpreter: per-lane intervals x layout facts."""

    def __init__(self, program: LaneProgram):
        self.program = program
        self.state: dict[str, object] = dict(program.inputs)
        self.diags: list[Diagnostic] = []
        self.gave_up = False
        # The packed_mul feeding each register, for witness recipes.
        self._mul_src: dict[str, tuple[Interval, tuple[Interval, ...]]] = {}
        # Opcode that last wrote each register (VB111 cares only about
        # accumulators, i.e. packed_add results left un-spilled).
        self.last_write_op: dict[str, str] = {}

    # -- checks ---------------------------------------------------------------

    def _check_packed(self, val: PackedVal, index: int, op: LaneOp) -> None:
        """Field, contamination, and register-wrap checks on one value."""
        layout = val.layout
        for lane, (iv, f) in enumerate(zip(val.lanes, layout.fields)):
            if iv.lo < 0:
                raise _Refuted(
                    [
                        Diagnostic(
                            code="VB110",
                            severity=Severity.ERROR,
                            message=(
                                f"lane {lane} may go negative ({iv}); "
                                "zero-padded SWAR holds non-negative "
                                "payloads only"
                            ),
                            location=_loc(self.program, index, op),
                            hint="offset operands by their zero point first",
                        )
                    ],
                    LaneWitness(index, op.op, lane, iv.lo, f.capacity),
                )
            if iv.hi > f.capacity:
                self._refute_overflow(val, lane, iv, f, index, op)
        reg = val.register_interval()
        reg_max = (1 << layout.register_bits) - 1
        if reg.hi > reg_max:  # pragma: no cover - implied by field checks
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB113",
                        severity=Severity.ERROR,
                        message=(
                            f"packed value may reach {reg.hi}, beyond the "
                            f"{layout.register_bits}-bit register; the "
                            "hardware op would wrap and corrupt the top lane"
                        ),
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            )

    def _refute_overflow(
        self,
        val: PackedVal,
        lane: int,
        iv: Interval,
        f,
        index: int,
        op: LaneOp,
    ) -> None:
        """Build the VB110 (+VB112/VB113) refutation for one lane."""
        loc = _loc(self.program, index, op)
        witness = self._witness_for(val, lane, iv, f, index, op)
        diags = [
            Diagnostic(
                code="VB110",
                severity=Severity.ERROR,
                message=(
                    f"lane {lane} (field {f.offset}:{f.width}) overflows: "
                    + witness.describe()
                ),
                location=loc,
                hint="spill to wide accumulators sooner, or widen the field",
                data={"witness": witness.to_dict()},
            )
        ]
        # Carry contamination: does another field sit inside the bits the
        # overflowing value spills into?
        spill_end = f.offset + max(iv.hi.bit_length(), f.width)
        victims = [
            g
            for g in val.layout.fields
            if g.offset >= f.offset + f.width and g.offset < spill_end
        ]
        if victims:
            v = victims[0]
            diags.append(
                Diagnostic(
                    code="VB112",
                    severity=Severity.ERROR,
                    message=(
                        f"the carry out of lane {lane} lands inside the "
                        f"field at bit {v.offset} — cross-lane "
                        "contamination: the neighbour's payload is "
                        "silently corrupted"
                    ),
                    location=loc,
                )
            )
        reg_max = (1 << val.layout.register_bits) - 1
        if val.register_interval().hi > reg_max:
            diags.append(
                Diagnostic(
                    code="VB113",
                    severity=Severity.ERROR,
                    message=(
                        f"worst-case packed value exceeds the "
                        f"{val.layout.register_bits}-bit register; the "
                        "hardware op would wrap"
                    ),
                    location=loc,
                )
            )
        raise _Refuted(diags, witness)

    def _witness_for(
        self, val: PackedVal, lane: int, iv: Interval, f, index: int, op: LaneOp
    ) -> LaneWitness:
        """Attach the chain reproduction recipe when one is derivable."""
        recipe = self._mul_src.get(op.dest or "", None)
        if recipe is None and op.op == "packed_add":
            for src in op.srcs:
                if src in self._mul_src:
                    recipe = self._mul_src[src]
                    break
        scalar = lane_value = depth = None
        if recipe is not None:
            scalar_iv, b_lanes = recipe
            if lane < len(b_lanes):
                scalar, lane_value = scalar_iv.hi, b_lanes[lane].hi
                depth = max(val.depth, 1)
        return LaneWitness(
            op_index=index,
            op=op.op,
            lane=lane,
            value_hi=iv.hi,
            capacity=f.capacity,
            scalar=scalar,
            lane_value=lane_value,
            depth=depth,
        )

    def _read(self, reg: str, index: int, op: LaneOp):
        if reg not in self.state:
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB114",
                        severity=Severity.ERROR,
                        message=f"register {reg!r} is read before any definition",
                        location=_loc(self.program, index, op),
                        hint="declare it in program.inputs or emit a pack first",
                    )
                ],
                None,
            )
        return self.state[reg]

    def _read_packed(self, reg: str, index: int, op: LaneOp) -> PackedVal:
        val = self._read(reg, index, op)
        if not isinstance(val, PackedVal):
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB112",
                        severity=Severity.ERROR,
                        message=(
                            f"register {reg!r} is not a packed value here "
                            f"({type(val).__name__}); mixing packed and "
                            "unpacked operands corrupts lanes"
                        ),
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            )
        return val

    # -- op semantics ---------------------------------------------------------

    def run_op(self, index: int, op: LaneOp) -> None:
        """Dispatch one instruction to its transfer function."""
        getattr(self, f"_op_{op.op}")(index, op)
        if op.dest is not None:
            self.last_write_op[op.dest] = op.op

    def _op_pack(self, index: int, op: LaneOp) -> None:
        layout = op.layout
        assert layout is not None
        ranges = op.attrs.get("ranges")
        if ranges is None:
            ranges = tuple(f.value_range for f in layout.fields)
        stored = tuple(
            Interval(iv.lo + f.zero_point, iv.hi + f.zero_point)
            for iv, f in zip(ranges, layout.fields)
        )
        val = PackedVal(layout, stored)
        self._check_packed(val, index, op)
        self.state[op.dest] = val

    def _op_const(self, index: int, op: LaneOp) -> None:
        iv = op.attrs.get("range")
        if iv is None:
            iv = Interval.point(int(op.attrs.get("value", 0)))
        self.state[op.dest] = iv

    def _op_packed_mul(self, index: int, op: LaneOp) -> None:
        scalar_reg, packed_reg = op.srcs
        scalar = self._read(scalar_reg, index, op)
        if isinstance(scalar, PackedVal):
            scalar = scalar.register_interval()  # degenerate but sound
        packed = self._read_packed(packed_reg, index, op)
        if scalar.lo < 0:
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB110",
                        severity=Severity.ERROR,
                        message=(
                            f"packed_mul scalar {scalar} may be negative; "
                            "sign-split signed multipliers first"
                        ),
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            )
        lanes = tuple(iv * scalar for iv in packed.lanes)
        val = PackedVal(packed.layout, lanes, depth=max(packed.depth, 1))
        self._mul_src[op.dest] = (scalar, packed.lanes)
        self._check_packed(val, index, op)
        self.state[op.dest] = val

    def _op_packed_add(self, index: int, op: LaneOp) -> None:
        x = self._read_packed(op.srcs[0], index, op)
        y = self._read_packed(op.srcs[1], index, op)
        if x.layout != y.layout:
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB112",
                        severity=Severity.ERROR,
                        message=(
                            "packed_add operands carry different layouts "
                            f"({x.layout.describe()} vs {y.layout.describe()}); "
                            "lane fields would alias across boundaries"
                        ),
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            )
        lanes = tuple(a + b for a, b in zip(x.lanes, y.lanes))
        val = PackedVal(x.layout, lanes, depth=x.depth + y.depth)
        self._check_packed(val, index, op)
        self.state[op.dest] = val

    def _op_shift(self, index: int, op: LaneOp) -> None:
        src = self._read_packed(op.srcs[0], index, op)
        by = int(op.attrs["by"])
        try:
            layout = src.layout.shifted(by)
        except Exception as exc:
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB112",
                        severity=Severity.ERROR,
                        message=f"shift by {by} splits a lane field: {exc}",
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            ) from exc
        keep = {f.offset - by for f in layout.fields}
        lanes = tuple(
            iv
            for iv, f in zip(src.lanes, src.layout.fields)
            if f.offset in keep
        )
        self.state[op.dest] = PackedVal(layout, lanes, depth=src.depth)

    def _op_mask(self, index: int, op: LaneOp) -> None:
        src = self._read_packed(op.srcs[0], index, op)
        mask = int(op.attrs["mask"])
        fields, lanes = [], []
        for iv, f in zip(src.lanes, src.layout.fields):
            field_mask = ((1 << f.width) - 1) << f.offset
            covered = mask & field_mask
            if covered == 0:
                continue
            fields.append(f)
            # Full coverage keeps the interval; partial coverage is
            # over-approximated (masking never increases the value).
            lanes.append(iv if covered == field_mask else Interval(0, iv.hi))
        if not fields:
            raise _Refuted(
                [
                    Diagnostic(
                        code="VB112",
                        severity=Severity.ERROR,
                        message=f"mask {mask:#x} clears every lane field",
                        location=_loc(self.program, index, op),
                    )
                ],
                None,
            )
        layout = LaneLayout(tuple(fields), src.layout.register_bits)
        self.state[op.dest] = PackedVal(layout, tuple(lanes), depth=src.depth)

    def _op_unpack(self, index: int, op: LaneOp) -> None:
        src = self._read_packed(op.srcs[0], index, op)
        lanes = tuple(
            Interval(iv.lo - f.zero_point, iv.hi - f.zero_point)
            for iv, f in zip(src.lanes, src.layout.fields)
        )
        self.state[op.dest] = WideVal(lanes)

    def _op_spill(self, index: int, op: LaneOp) -> None:
        src_reg = op.srcs[0]
        src = self._read_packed(src_reg, index, op)
        lanes = tuple(
            Interval(iv.lo - f.zero_point, iv.hi - f.zero_point)
            for iv, f in zip(src.lanes, src.layout.fields)
        )
        prior = self.state.get(op.dest)
        if isinstance(prior, WideVal):
            lanes = tuple(a + b for a, b in zip(prior.lanes, lanes))
        self.state[op.dest] = WideVal(lanes)
        self.state[src_reg] = PackedVal.zeros(src.layout)

    def _op_reduce(self, index: int, op: LaneOp) -> None:
        src = self._read(op.srcs[0], index, op)
        self.state[op.dest] = src

    # -- loops: linear fast-forward -------------------------------------------

    def _op_loop(self, index: int, op: LaneOp) -> None:
        trips = int(op.attrs["trips"])
        body: tuple[LaneOp, ...] = tuple(op.attrs["body"])
        if trips <= 0:
            return
        written = sorted(op.writes())

        def run_body() -> None:
            for sub in body:
                self.run_op(index, sub)

        def snapshot() -> dict:
            return {r: self.state.get(r) for r in written}

        # Three concrete trips give two consecutive deltas; only when
        # they agree is per-trip growth certifiably constant, and only
        # then does the arithmetic jump below preserve soundness.
        run_body()
        if trips == 1:
            return
        s1 = snapshot()
        run_body()
        if trips == 2:
            return
        s2 = snapshot()
        run_body()
        if trips == 3:
            return
        s3 = snapshot()
        d12 = _linear_deltas(s1, s2)
        d23 = _linear_deltas(s2, s3)
        if d12 is None or d23 is None or d12 != d23:
            self._unroll_rest(index, op, run_body, trips - 3)
            return
        remaining = trips - 3
        fail_trip = self._first_failing_trip(s3, d23, remaining, base_trip=3)
        if fail_trip is None:
            for reg, d in d23.items():
                self.state[reg] = _advance(s3[reg], d, remaining)
            return
        # Jump to the state after trip ``fail_trip - 1`` and run the
        # failing trip concretely: the body's own checks then raise with
        # the true op context, recipe, and first-failure depth.
        for reg, d in d23.items():
            self.state[reg] = _advance(s3[reg], d, fail_trip - 1 - 3)
        run_body()

    def _unroll_rest(self, index: int, op: LaneOp, run_body, remaining: int) -> None:
        """Fallback when the body is not linear: bounded concrete unroll."""
        if remaining > UNROLL_CAP:
            self.gave_up = True
            self.diags.append(
                Diagnostic(
                    code="VB118",
                    severity=Severity.WARNING,
                    message=(
                        f"loop of {remaining + 3} trips is not linearly "
                        f"summarizable and exceeds the {UNROLL_CAP}-trip "
                        "unroll cap; the program is UNPROVEN beyond trip "
                        f"{UNROLL_CAP + 2}"
                    ),
                    location=_loc(self.program, index, op),
                    hint="restructure the loop body so per-trip growth is "
                    "constant",
                )
            )
            remaining = UNROLL_CAP
        for _ in range(remaining):
            run_body()

    def _first_failing_trip(
        self, base: dict, deltas: dict, remaining: int, *, base_trip: int
    ) -> int | None:
        """Earliest trip in ``(base_trip, base_trip+remaining]`` that
        violates a lane capacity bound.

        State at trip ``t`` is ``base + (t - base_trip) * delta``
        (certified linear), so each per-lane bound solves in closed
        form.  Field safety implies register safety (the layout
        validator keeps all fields inside the register), so lane
        capacity is the only bound that needs solving.
        """
        best: int | None = None
        for reg, val in base.items():
            if not isinstance(val, PackedVal):
                continue
            d = deltas[reg]
            for lane, (iv, f) in enumerate(zip(val.lanes, val.layout.fields)):
                dhi = d.lanes[lane].hi
                if dhi <= 0:
                    continue
                headroom = f.capacity - iv.hi
                steps = headroom // dhi + 1  # first step where hi > capacity
                trip = base_trip + steps
                if trip <= base_trip + remaining and (best is None or trip < best):
                    best = trip
        return best


@dataclass(frozen=True)
class _PackedDelta:
    lanes: tuple[Interval, ...]
    depth: int


def _linear_deltas(s1: dict, s2: dict) -> dict | None:
    """Per-register per-trip deltas, or ``None`` when growth is not linear.

    Registers must keep their type and layout between trips; intervals
    advance by ``(dlo, dhi)`` per trip, scalar intervals must be fixed.
    """
    deltas: dict = {}
    for reg, v1 in s1.items():
        v2 = s2[reg]
        if type(v1) is not type(v2):
            return None
        if isinstance(v1, PackedVal):
            if v1.layout != v2.layout:
                return None
            deltas[reg] = _PackedDelta(
                lanes=tuple(
                    Interval(b.lo - a.lo, b.hi - a.hi)
                    if b.lo - a.lo <= b.hi - a.hi
                    else None
                    for a, b in zip(v1.lanes, v2.lanes)
                ),
                depth=v2.depth - v1.depth,
            )
            if any(d is None for d in deltas[reg].lanes):
                return None
        elif isinstance(v1, WideVal):
            if len(v1.lanes) != len(v2.lanes):
                return None
            lane_deltas = []
            for a, b in zip(v1.lanes, v2.lanes):
                dlo, dhi = b.lo - a.lo, b.hi - a.hi
                if dlo > dhi:
                    return None
                lane_deltas.append(Interval(dlo, dhi))
            deltas[reg] = _PackedDelta(lanes=tuple(lane_deltas), depth=0)
        elif isinstance(v1, Interval):
            if v1 != v2:
                return None
            deltas[reg] = _PackedDelta(lanes=(), depth=0)
        elif v1 is None or v1 == v2:
            deltas[reg] = _PackedDelta(lanes=(), depth=0)
        else:
            return None
    return deltas


def _advance(val, delta: _PackedDelta, trips: int):
    """State after ``trips`` further linear trips."""
    if trips == 0 or not isinstance(val, (PackedVal, WideVal)):
        return val
    lanes = tuple(
        Interval(iv.lo + d.lo * trips, iv.hi + d.hi * trips)
        for iv, d in zip(val.lanes, delta.lanes)
    )
    if isinstance(val, PackedVal):
        return replace(val, lanes=lanes, depth=val.depth + delta.depth * trips)
    return WideVal(lanes)


def _guard_exhaustion(program: LaneProgram, interp: _Interp) -> list[Diagnostic]:
    """``VB111``: packed accumulators left live with no guard margin.

    A register that ends the program un-spilled after ``depth``
    accumulation steps grows by roughly ``hi / depth`` per step; when its
    remaining headroom is below that, the *next* accumulation would
    overflow — legal as written, but a chain with zero guard margin is
    one refactor away from a VB110.
    """
    diags: list[Diagnostic] = []
    for reg, val in sorted(interp.state.items()):
        if not isinstance(val, PackedVal) or val.depth < 1:
            continue
        if interp.last_write_op.get(reg) != "packed_add":
            continue
        for lane, (iv, f) in enumerate(zip(val.lanes, val.layout.fields)):
            if iv.hi > 0 and (f.capacity - iv.hi) * val.depth < iv.hi:
                diags.append(
                    Diagnostic(
                        code="VB111",
                        severity=Severity.WARNING,
                        message=(
                            f"guard bits exhausted: lane {lane} of {reg!r} "
                            f"ends at {iv.hi} with {f.capacity - iv.hi} "
                            f"headroom after {val.depth} steps — the next "
                            "accumulation would overflow"
                        ),
                        location=program.name,
                        hint="spill the register before extending the chain",
                    )
                )
    return diags


def verify_program(program: LaneProgram) -> DataflowResult:
    """Abstractly interpret ``program`` and return the full verdict.

    Stops at the first refutation (its diagnostics carry the witness);
    the dependence graph is derived regardless, since it depends only on
    read/write sets, never on values.
    """
    dependence = DependenceGraph.from_program(program)
    interp = _Interp(program)
    witness: LaneWitness | None = None
    refuted = False
    try:
        for i, op in enumerate(program.ops):
            interp.run_op(i, op)
    except _Refuted as r:
        interp.diags.extend(r.diags)
        witness = r.witness
        refuted = True
    proven = not refuted and not interp.gave_up
    safe = proven and not any(
        d.severity is Severity.ERROR for d in interp.diags
    )
    diags = list(interp.diags)
    if not refuted:
        diags.extend(_guard_exhaustion(program, interp))
    if safe:
        diags.append(
            Diagnostic(
                code="VB116",
                severity=Severity.INFO,
                message=(
                    f"proved safe: {program.flat_size()} ops, no lane can "
                    "overflow its field for any in-range inputs"
                ),
                location=program.name,
            )
        )
    diags.append(
        Diagnostic(
            code="VB115",
            severity=Severity.INFO,
            message=(
                f"dependence graph: {len(dependence.nodes)} nodes, "
                f"{len(dependence.edges)} edges "
                f"({sum(1 for e in dependence.edges if e['kind'] == 'RAW')} RAW), "
                f"critical path {dependence.critical_length}"
            ),
            location=program.name,
            data={"dependence": dependence.to_dict()},
        )
    )
    return DataflowResult(
        program=program,
        safe=safe,
        proven=proven,
        diagnostics=diags,
        witness=witness,
        dependence=dependence,
    )


# -- chain entry points --------------------------------------------------------


def _layout_of(policy_or_layout) -> LaneLayout:
    if isinstance(policy_or_layout, LaneLayout):
        return policy_or_layout
    return LaneLayout.from_policy(policy_or_layout)


def prove_chain(
    policy_or_layout,
    *,
    k: int,
    a_bits: int | None = None,
    a_range: Interval | None = None,
    b_range: Interval | None = None,
    chunk_depth: int | None = None,
    name: str = "gemm_chain",
) -> DataflowResult:
    """Verify the canonical chunked packed-GEMM chain for one plan.

    The dataflow twin of
    :func:`repro.analysis.overflow.prove_packed_accumulation`, but over
    any layout — asymmetric layouts pass a :class:`LaneLayout` directly.
    """
    layout = _layout_of(policy_or_layout)
    if a_range is None:
        if a_bits is None:
            a_bits = getattr(policy_or_layout, "effective_multiplier_bits", None)
            if a_bits is None:
                raise PackingError("prove_chain needs a_bits or a_range")
        a_range = Interval.from_bits(a_bits)
    program = gemm_chain_program(
        layout,
        a_range=a_range,
        b_range=b_range,
        k=k,
        chunk_depth=chunk_depth,
        name=name,
    )
    result = verify_program(program)
    result.max_safe_depth = first_failing_depth(
        layout, a_range=a_range, b_range=b_range
    )
    return result


def first_failing_depth(
    layout_or_policy,
    *,
    a_range: Interval,
    b_range: Interval | None = None,
) -> int:
    """Largest accumulation depth the layout provably supports unspilled.

    Runs the unchunked chain at ``K = 2**30``; linear fast-forward makes
    this O(1), and the refutation witness pinpoints the exact first
    failing trip, so the proven budget is ``witness.depth - 1``.
    """
    layout = _layout_of(layout_or_policy)
    program = gemm_chain_program(
        layout,
        a_range=a_range,
        b_range=b_range,
        k=UNBOUNDED_DEPTH,
        chunk_depth=None,
        name="depth_probe",
    )
    result = verify_program(program)
    if result.safe:
        return UNBOUNDED_DEPTH
    if result.witness is None or result.witness.depth is None:
        return 0  # pragma: no cover - chain witnesses always carry depth
    return result.witness.depth - 1


# -- the proven-safe-depth table ----------------------------------------------

#: (a_bits, b_bits) pairs the default table covers: the Fig. 3
#: symmetric points plus the Gope et al. asymmetric pairs.
DEFAULT_PAIRS: tuple[tuple[int, int], ...] = (
    (8, 8),
    (4, 4),
    (6, 6),
    (8, 4),
    (4, 8),
    (8, 2),
    (2, 8),
)

#: Table entries installed via :func:`use_safe_depth_table`, consulted
#: (and cross-checked) by :func:`proven_chunk_depth`.
_DEPTH_REGISTRY: dict[str, dict] = {}


def _pair_key(a_bits: int, b_bits: int, lanes: int) -> str:
    return f"a{a_bits}b{b_bits}x{lanes}"


def safe_depth_table(
    pairs: tuple[tuple[int, int], ...] = DEFAULT_PAIRS,
) -> dict[str, dict]:
    """Proven-safe-depth entries over (a_bits, b_bits, layout).

    Each entry records the dataflow-proven depth alongside the legacy
    closed-form budget; the two must agree (``VB402`` otherwise — raised
    as :class:`~repro.errors.AnalysisError` because a disagreement means
    one prover is unsound).
    """
    from repro.packing.accumulate import safe_accumulation_depth
    from repro.packing.mixed import policy_for_operands

    table: dict[str, dict] = {}
    for a_bits, b_bits in pairs:
        policy = policy_for_operands(a_bits, b_bits)
        layout = LaneLayout.from_policy(policy)
        proven = first_failing_depth(
            layout,
            a_range=Interval.from_bits(a_bits),
            b_range=Interval.from_bits(b_bits),
        )
        try:
            closed_form = safe_accumulation_depth(policy, a_bits, b_bits)
        except PackingError:
            closed_form = 0
        if proven != closed_form:
            raise AnalysisError(
                f"VB402: dataflow-proven depth {proven} for "
                f"{a_bits}x{b_bits} disagrees with the closed-form budget "
                f"{closed_form} [{layout.describe()}]"
            )
        table[_pair_key(a_bits, b_bits, policy.lanes)] = {
            "a_bits": a_bits,
            "b_bits": b_bits,
            "lanes": policy.lanes,
            "field_bits": policy.field_bits,
            "layout": layout.describe(),
            "safe_depth": proven,
            "source": "dataflow",
            "cross_checked": True,
        }
    return table


def write_safe_depth_table(
    path: str = "benchmarks/out/summary.json",
    pairs: tuple[tuple[int, int], ...] = DEFAULT_PAIRS,
) -> dict[str, dict]:
    """Emit the table under ``summary.json``'s ``safe_depths`` key.

    Uses the atomic merge writer so concurrent benchmark/serve runs
    cannot corrupt the file; also installs the table in-process so
    :func:`proven_chunk_depth` consumes it immediately.
    """
    from repro.obs.export import merge_summary

    table = safe_depth_table(pairs)
    merge_summary(path, {"safe_depths": table})
    use_safe_depth_table(table)
    return table


def load_safe_depth_table(path: str = "benchmarks/out/summary.json") -> dict:
    """Read a previously emitted table (empty dict when absent)."""
    import json
    import os

    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    table = data.get("safe_depths", {})
    if table:
        use_safe_depth_table(table)
    return table


def use_safe_depth_table(table: dict) -> None:
    """Install table entries for :func:`proven_chunk_depth` to consume."""
    _DEPTH_REGISTRY.update(table)
    proven_chunk_depth.cache_clear()


@functools.lru_cache(maxsize=4096)
def proven_chunk_depth(policy, a_bits: int, b_bits: int | None = None) -> int:
    """The proven-safe spill depth the packer preflight executes at.

    Resolution order: an installed safe-depth-table entry (from
    :func:`write_safe_depth_table` / :func:`load_safe_depth_table`),
    else a fresh dataflow proof.  Either way the result is cross-checked
    against the legacy closed-form budget; a mismatch is a ``VB402``
    :class:`~repro.errors.AnalysisError` (one of the provers is wrong —
    never silently trust either).

    Raises :class:`~repro.errors.PackingError` (via the closed form)
    when no depth is safe at all, matching the legacy contract.
    """
    from repro.packing.accumulate import safe_accumulation_depth

    if b_bits is None:
        b_bits = policy.value_bits
    closed_form = safe_accumulation_depth(policy, a_bits, b_bits)
    entry = _DEPTH_REGISTRY.get(_pair_key(a_bits, b_bits, policy.lanes))
    if entry is not None and entry.get("field_bits") == policy.field_bits:
        proven = int(entry["safe_depth"])
    else:
        proven = first_failing_depth(
            LaneLayout.from_policy(policy),
            a_range=Interval.from_bits(a_bits),
            b_range=Interval.from_bits(b_bits),
        )
    if proven != closed_form:
        raise AnalysisError(
            f"VB402: dataflow-proven depth {proven} disagrees with the "
            f"closed-form budget {closed_form} for {a_bits}x{b_bits} under "
            f"policy(lanes={policy.lanes}, field={policy.field_bits})"
        )
    return proven
