"""Repo lint: a small AST pass enforcing VitBit-specific invariants.

Generic style is ruff's job (see ``[tool.ruff]`` in ``pyproject.toml``);
this pass checks the rules a generic linter cannot know:

* ``VB301`` — every public module, class, function, and method in
  ``src/`` carries a docstring (the API index is generated from them);
* ``VB302`` — no raw narrowing cast (``.astype(np.int32)`` /
  ``np.uint32`` / ``int(...)``) applied to packed-register data outside
  ``repro/packing`` — packed ``uint32`` words are bit containers, and
  reinterpreting them as integers outside the packing layer is how lane
  corruption sneaks in;
* ``VB303`` — no magic field/register mask literals (``0xFFFF``,
  ``0xFFFFFFFF``) outside the packing/format/bit-twiddling layers;
  consult :class:`~repro.packing.policy.PackingPolicy` instead;
* ``VB304`` — SWAR call sites (``packed_add`` / ``packed_scalar_mul``)
  in ``src/`` must pass ``strict=`` explicitly: whether a call is
  hardware-faithful-but-checked or wrapping is a load-bearing decision;
* ``VB305`` — no unused module-level imports (names re-exported via
  ``__all__`` count as used);
* ``VB306`` — no wall-clock reads (``time.time`` / ``time.monotonic`` /
  ``time.perf_counter`` / ``datetime.now`` …) inside the determinism
  envelope (``repro/{sim,serve,chaos,packing}``): the cluster's
  byte-identical-rerun guarantee requires all time to come from the
  simulated clock;
* ``VB307`` — no unseeded randomness (zero-argument ``random.Random()``
  / ``np.random.default_rng()``, the module-level ``random.*`` /
  ``np.random.*`` global-state functions) in the same envelope: every
  RNG must be constructed from an explicit seed;
* ``VB308`` — no reference to the Orin machine global
  (``arch.specs.jetson_orin_agx``) inside ``repro/perfmodel``: the
  performance model is backend-generic and must take its machine
  description from the caller (see the backend registry,
  :mod:`repro.arch.registry`), never bake one machine in.

A finding on a line containing ``# vblint: skip`` (or ``# vblint:
VB30x`` naming its code) is suppressed.  ``run_repo_lint`` applies all
rules to ``src/`` and the import rule to ``tests/``, ``benchmarks/``,
``tools/``, and ``examples/``, and is kept clean — ``make lint`` runs
it over the repo.
"""

from __future__ import annotations

import ast
import pathlib

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity

__all__ = ["ALL_RULES", "lint_file", "lint_paths", "run_repo_lint"]

#: Every rule code this pass implements.
ALL_RULES: frozenset[str] = frozenset(
    {"VB301", "VB302", "VB303", "VB304", "VB305", "VB306", "VB307", "VB308"}
)

#: Sub-paths under the byte-identical-rerun guarantee: wall clocks and
#: unseeded RNGs are banned here (VB306/VB307); elsewhere they are fine
#: (benchmarks time things, the CLI seeds from argv).
_DETERMINISM_SCOPED = (
    "repro/sim/",
    "repro/serve/",
    "repro/chaos/",
    "repro/packing/",
)

#: Sub-paths that must stay backend-generic: referencing the Orin
#: global here re-bakes one machine into code every backend shares
#: (VB308).
_BACKEND_GENERIC_SCOPED = ("repro/perfmodel/",)

#: The machine-spec global VB308 bans inside the scoped paths.
_ORIN_GLOBAL = "jetson_orin_agx"

#: Wall-clock attribute reads on the ``time`` module (VB306).
_WALL_CLOCK_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
}

#: Wall-clock constructors on ``datetime`` / ``date`` classes (VB306).
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}

#: ``random``-module functions that consume the hidden global RNG (VB307).
_GLOBAL_RANDOM_FNS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "seed",
    "getrandbits",
}

#: Rules applied outside ``src/`` (tests may legitimately omit
#: docstrings, exercise non-strict SWAR, and poke at raw registers).
_IMPORT_ONLY: frozenset[str] = frozenset({"VB305"})

#: Mask literals that should come from ``PackingPolicy`` instead.
_MASK_LITERALS = {0xFFFF, 0xFFFF_FFFF}  # vblint: VB303

#: Sub-paths (relative, POSIX) exempt from the packed-cast rule: the
#: packing layer itself is where raw register manipulation belongs.
_CAST_EXEMPT = ("repro/packing/",)

#: Sub-paths exempt from the magic-mask rule: bit-twiddling is their job.
_MASK_EXEMPT = ("repro/packing/", "repro/formats/", "repro/utils/")

_SWAR_CALLS = {"packed_add", "packed_scalar_mul"}

_NARROWING_DTYPES = {"int32", "uint32", "int16", "int8"}


def _names_in(node: ast.AST) -> set[str]:
    """All identifier fragments mentioned in an expression."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _mentions_packed(node: ast.AST) -> bool:
    return any("packed" in name.lower() for name in _names_in(node))


def _dtype_token(node: ast.AST) -> str | None:
    """The dtype a cast argument denotes, if recognizable."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute):  # np.int32
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _Linter(ast.NodeVisitor):
    """Single-file rule engine; collects diagnostics as it walks."""

    def __init__(self, rel: str, source: str, rules: frozenset[str]):
        self.rel = rel
        self.lines = source.splitlines()
        self.rules = rules
        self.diags: list[Diagnostic] = []
        self._class_depth = 0
        self._func_depth = 0
        self._imports: dict[str, int] = {}
        self._used: set[str] = set()
        self._exported: set[str] = set()
        # Bound name -> source module, for from-imports of clock/RNG
        # functions (``from time import monotonic``).
        self._from_modules: dict[str, str] = {}

    # -- helpers -------------------------------------------------------------

    def _suppressed(self, lineno: int, code: str) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        line = self.lines[lineno - 1]
        if "# vblint:" not in line:
            return False
        tag = line.split("# vblint:", 1)[1].strip()
        return tag == "skip" or code in tag

    def _report(
        self, code: str, lineno: int, message: str, hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        if code not in self.rules or self._suppressed(lineno, code):
            return
        self.diags.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                location=f"{self.rel}:{lineno}",
                hint=hint,
            )
        )

    # -- VB301: docstrings ---------------------------------------------------

    def _check_docstring(self, node: ast.AST, kind: str, name: str) -> None:
        if name.startswith("_"):
            return
        if not ast.get_docstring(node):
            self._report(
                "VB301",
                getattr(node, "lineno", 1),
                f"public {kind} `{name}` has no docstring",
                hint="the API index (docs/API.md) is generated from "
                "docstrings",
            )

    # -- visitors ------------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        """Execute all selected rules over a parsed module."""
        if "VB301" in self.rules and not ast.get_docstring(tree):
            self._report("VB301", 1, "module has no docstring")
        self.visit(tree)
        self._finish_imports()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """VB301 on public classes; tracks nesting for method labelling."""
        if self._func_depth == 0:
            self._check_docstring(node, "class", node.name)
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Docstrings are required at module and class scope only; local
        # helper closures document themselves by their enclosing scope.
        if self._func_depth == 0:
            kind = "method" if self._class_depth else "function"
            self._check_docstring(node, kind, node.name)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """VB301 on public functions and methods."""
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """VB301 on public async functions and methods."""
        self._visit_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        """VB302 (raw casts on packed data) and VB304 (implicit strict=)."""
        # VB302: narrowing casts on packed data outside the packing layer.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and node.args
            and (_dtype_token(node.args[0]) or "") in _NARROWING_DTYPES
            and _mentions_packed(func.value)
        ):
            self._report(
                "VB302",
                node.lineno,
                "raw narrowing cast on packed register data outside "
                "repro/packing",
                hint="unpack through Packer.unpack / lane_extract instead",
            )
        if (
            isinstance(func, ast.Name)
            and func.id == "int"
            and len(node.args) == 1
            and _mentions_packed(node.args[0])
        ):
            self._report(
                "VB302",
                node.lineno,
                "int() applied to packed register data outside repro/packing",
                hint="unpack through Packer.unpack / lane_extract instead",
            )
        # VB304: SWAR calls must choose strict= explicitly.
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if callee in _SWAR_CALLS:
            if not any(kw.arg == "strict" for kw in node.keywords):
                self._report(
                    "VB304",
                    node.lineno,
                    f"{callee}() without an explicit strict= argument",
                    hint="strict=True checks lane overflow; strict=False "
                    "models the wrapping hardware — say which you mean",
                )
        self._check_determinism(node, func)
        self.generic_visit(node)

    # -- VB306/VB307: the determinism envelope -------------------------------

    def _check_determinism(self, node: ast.Call, func: ast.AST) -> None:
        """Wall clocks (VB306) and unseeded RNGs (VB307)."""

        def qualified(expr: ast.AST) -> str | None:
            """``module.attr`` when the call target is recognizable."""
            if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name
            ):
                return f"{expr.value.id}.{expr.attr}"
            if isinstance(expr, ast.Name):
                return self._from_modules.get(expr.id)
            return None

        name = qualified(func)

        # VB306: wall-clock reads.
        if name is not None:
            mod, _, attr = name.partition(".")
            if mod == "time" and attr in _WALL_CLOCK_TIME_FNS:
                self._report(
                    "VB306",
                    node.lineno,
                    f"wall-clock read {name}() inside the determinism "
                    "envelope breaks byte-identical reruns",
                    hint="take time from the simulated clock "
                    "(repro.serve.clock) or inject it from the caller",
                )
            elif mod in ("datetime", "date") and attr in _WALL_CLOCK_DATETIME_FNS:
                self._report(
                    "VB306",
                    node.lineno,
                    f"wall-clock read {name}() inside the determinism "
                    "envelope breaks byte-identical reruns",
                    hint="pass timestamps in explicitly",
                )

        # VB307: hidden-global or unseeded RNGs.
        if name is not None:
            mod, _, attr = name.partition(".")
            if mod == "random" and attr in _GLOBAL_RANDOM_FNS:
                self._report(
                    "VB307",
                    node.lineno,
                    f"{name}() consumes the hidden process-global RNG; "
                    "reruns are not reproducible",
                    hint="construct random.Random(seed) and thread it through",
                )
            elif mod == "random" and attr == "Random" and not node.args:
                self._report(
                    "VB307",
                    node.lineno,
                    "random.Random() without a seed draws entropy from the OS",
                    hint="pass an explicit seed: random.Random(seed)",
                )
        # np.random.*: the global legacy RNG, or an unseeded Generator.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.value.attr == "random"
        ):
            if func.attr == "default_rng":
                if not node.args:
                    self._report(
                        "VB307",
                        node.lineno,
                        "np.random.default_rng() without a seed draws "
                        "entropy from the OS",
                        hint="pass an explicit seed: default_rng(seed)",
                    )
            else:
                self._report(
                    "VB307",
                    node.lineno,
                    f"np.random.{func.attr}() uses NumPy's hidden global "
                    "RNG; reruns are not reproducible",
                    hint="use np.random.default_rng(seed) and thread the "
                    "generator through",
                )

    def visit_Constant(self, node: ast.Constant) -> None:
        """VB303 on magic field/register mask literals."""
        if (
            isinstance(node.value, int)
            and not isinstance(node.value, bool)
            and node.value in _MASK_LITERALS
        ):
            self._report(
                "VB303",
                node.lineno,
                f"magic mask literal {node.value:#x}; consult PackingPolicy "
                "(field_mask / register_bits) instead",
                severity=Severity.WARNING,
            )

    # -- VB305: unused imports ----------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        """Record `import x` bindings for VB305."""
        for alias in node.names:
            bound = (alias.asname or alias.name).split(".")[0]
            self._imports.setdefault(bound, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record `from m import x` bindings for VB305; VB308 on the
        Orin global."""
        if node.module == "__future__":
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self._imports.setdefault(bound, node.lineno)
            if node.module in ("time", "datetime", "random"):
                self._from_modules[bound] = f"{node.module}.{alias.name}"
            if alias.name == _ORIN_GLOBAL:
                self._orin_reference(node.lineno, f"import of {alias.name}")

    def _orin_reference(self, lineno: int, what: str) -> None:
        """VB308: report one reference to the Orin machine global."""
        self._report(
            "VB308",
            lineno,
            f"{what}: repro/perfmodel is backend-generic and must not "
            f"reference arch.specs.{_ORIN_GLOBAL} directly",
            hint="take the MachineSpec/SMSpec from the caller — backends "
            "come from repro.arch.registry.resolve_backend",
        )

    def visit_Name(self, node: ast.Name) -> None:
        """Record name loads as uses for VB305; VB308 on the Orin
        global."""
        if isinstance(node.ctx, ast.Load):
            self._used.add(node.id)
        if node.id == _ORIN_GLOBAL:
            self._orin_reference(node.lineno, f"reference to {node.id}")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        """VB308 on attribute access of the Orin global
        (``specs.jetson_orin_agx``)."""
        if node.attr == _ORIN_GLOBAL:
            self._orin_reference(node.lineno, f"reference to .{node.attr}")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        """Record `__all__` entries — re-exports count as uses (VB305)."""
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    for elt in node.value.elts:
                        if isinstance(elt, ast.Constant):
                            self._exported.add(str(elt.value))
        self.generic_visit(node)

    def _finish_imports(self) -> None:
        for name, lineno in self._imports.items():
            if name in self._used or name in self._exported:
                continue
            if "noqa" in self.lines[lineno - 1]:
                continue
            self._report(
                "VB305",
                lineno,
                f"`{name}` imported but unused",
                hint="delete the import or add it to __all__",
                severity=Severity.WARNING,
            )


def lint_file(
    path: str | pathlib.Path,
    *,
    rules: frozenset[str] | None = None,
    rel: str | None = None,
) -> list[Diagnostic]:
    """Lint one Python file; returns its diagnostics.

    ``rules`` selects the codes to run (default: all).  ``rel``
    overrides the path shown in diagnostic locations (the repo-relative
    form reads better than an absolute path).
    """
    if rules is None:
        rules = ALL_RULES
    p = pathlib.Path(path)
    shown = rel if rel is not None else str(p)
    source = p.read_text()
    try:
        tree = ast.parse(source, filename=shown)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code="VB300",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                location=f"{shown}:{exc.lineno or 1}",
            )
        ]
    effective = set(rules)
    posix = pathlib.PurePosixPath(shown).as_posix()
    if any(part in posix for part in _CAST_EXEMPT):
        effective.discard("VB302")
        effective.discard("VB304")
    if any(part in posix for part in _MASK_EXEMPT):
        effective.discard("VB303")
    if not any(part in posix for part in _DETERMINISM_SCOPED):
        effective.discard("VB306")
        effective.discard("VB307")
    if not any(part in posix for part in _BACKEND_GENERIC_SCOPED):
        effective.discard("VB308")
    linter = _Linter(shown, source, frozenset(effective))
    linter.run(tree)
    return linter.diags


def lint_paths(
    paths: list[str | pathlib.Path],
    *,
    rules: frozenset[str] | None = None,
    root: str | pathlib.Path | None = None,
) -> list[Diagnostic]:
    """Lint files and directories (recursively); returns all diagnostics."""
    if rules is None:
        rules = ALL_RULES
    base = pathlib.Path(root) if root is not None else None
    files: list[pathlib.Path] = []
    for entry in paths:
        p = pathlib.Path(entry)
        if p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts and "egg-info" not in str(f)
            )
        else:
            files.append(p)
    diags: list[Diagnostic] = []
    for f in files:
        rel = None
        if base is not None:
            try:
                rel = str(f.resolve().relative_to(base.resolve()))
            except ValueError:
                rel = str(f)
        diags.extend(lint_file(f, rules=rules, rel=rel))
    return diags


def find_repo_root() -> pathlib.Path | None:
    """The source checkout's root, if we are running from one."""
    here = pathlib.Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return None


def run_repo_lint(
    root: str | pathlib.Path | None = None,
) -> DiagnosticReport:
    """Lint the whole repository with the per-directory rule sets.

    ``src/`` gets every rule; ``tests/``, ``benchmarks/``, ``tools/``,
    and ``examples/`` get the unused-import rule only.  Returns an empty
    report when no source checkout can be located (installed package).
    """
    base = pathlib.Path(root) if root is not None else find_repo_root()
    report = DiagnosticReport()
    if base is None:
        return report
    src = base / "src"
    if src.is_dir():
        report.extend(lint_paths([src], rules=ALL_RULES, root=base))
    for name in ("tests", "benchmarks", "tools", "examples"):
        d = base / name
        if d.is_dir():
            report.extend(lint_paths([d], rules=_IMPORT_ONLY, root=base))
    return report
