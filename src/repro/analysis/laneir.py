"""The lane IR: a typed instruction stream over packed registers.

The PR-1 overflow prover reasons about one hard-wired shape — the
symmetric IMAD chain the Fig. 3 policy emits — as a closed-form
interval computation.  This module gives the analysis layer an actual
*program* representation instead: a small typed IR whose instructions
(``pack``, ``packed_mul``, ``packed_add``, ``shift``, ``mask``,
``unpack``, ``spill``, ``reduce``) operate on named registers, each
carrying a :class:`LaneLayout` of per-lane field widths, guard bits,
and zero-point offsets.  Asymmetric layouts (Gope et al.'s 8x4 / 8x2
operand pairs) are first-class: every field declares its own width and
payload range, so nothing in the IR assumes lanes are uniform.

The IR is consumed by :mod:`repro.analysis.dataflow`, the abstract
interpreter that proves or refutes lane-overflow, carry-contamination,
register-wrap, and def-use properties per program and derives the
dependence graph from per-instruction read/write sets.

Two ways programs come into existence:

* **builders** — :func:`gemm_chain_program` constructs the canonical
  chunked packed-GEMM chain (the program ``repro.packing.gemm``
  executes), with loops represented as first-class ``loop`` ops so a
  K=4096 reduction stays O(1) instructions;
* **capture** — :func:`capture` installs lightweight emission sinks in
  :mod:`repro.packing.swar`, :mod:`repro.packing.packer`, and
  :mod:`repro.packing.gemm`, so real executions (packed GEMMs, SWAR
  call sites, the fused kernel) record the lane program they perform
  alongside the numbers they compute.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace

from repro.analysis.intervals import Interval
from repro.errors import FormatError, PackingError

__all__ = [
    "LaneField",
    "LaneLayout",
    "LaneOp",
    "LaneProgram",
    "OPS",
    "capture",
    "capturing",
    "active_program",
    "note",
    "gemm_chain_program",
]

#: Every instruction kind the IR defines.  ``loop`` is the structured
#: repetition node (body executed ``trips`` times); the rest are
#: straight-line register ops.
OPS: frozenset[str] = frozenset(
    {
        "pack",
        "const",
        "packed_mul",
        "packed_add",
        "shift",
        "mask",
        "unpack",
        "spill",
        "reduce",
        "loop",
    }
)


@dataclass(frozen=True)
class LaneField:
    """One lane's field within a packed register.

    Attributes
    ----------
    offset:
        Bit position of the field's least-significant bit.
    width:
        Field width in bits (the distance to the next lane's origin is
        *not* implied — asymmetric layouts interleave widths freely).
    value_bits:
        Magnitude bitwidth of the payload stored in this field
        (``<= width``; the difference is the field's guard bits).
    zero_point:
        Offset added to the true value before storing (stored payloads
        are ``true + zero_point``, always non-negative).
    """

    offset: int
    width: int
    value_bits: int
    zero_point: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0 or self.width < 1:
            raise FormatError(
                f"field offset/width must be >= 0/1, got "
                f"({self.offset}, {self.width})"
            )
        if not 1 <= self.value_bits <= self.width:
            raise FormatError(
                f"value_bits {self.value_bits} must be in 1..{self.width} "
                f"(field width)"
            )
        if self.zero_point < 0:
            raise FormatError(f"zero_point must be >= 0, got {self.zero_point}")

    @property
    def capacity(self) -> int:
        """Largest bit pattern the field holds without carrying out."""
        return (1 << self.width) - 1

    @property
    def guard_bits(self) -> int:
        """Spare bits beyond the declared payload width."""
        return self.width - self.value_bits

    @property
    def value_range(self) -> Interval:
        """Abstract range of stored payloads: ``[0, 2**value_bits - 1]``."""
        return Interval.from_bits(self.value_bits)


@dataclass(frozen=True)
class LaneLayout:
    """Where every lane lives inside one packed register.

    Fields must be disjoint and lie inside ``register_bits``; they are
    kept sorted by offset (lane 0 least significant).  Nothing requires
    uniform widths — an 8x4 asymmetric layout mixes 12-bit product
    fields with whatever guard split the packer chose.
    """

    fields: tuple[LaneField, ...]
    register_bits: int = 32

    def __post_init__(self) -> None:
        if not self.fields:
            raise FormatError("a LaneLayout needs at least one field")
        ordered = tuple(sorted(self.fields, key=lambda f: f.offset))
        object.__setattr__(self, "fields", ordered)
        prev_end = 0
        for f in ordered:
            if f.offset < prev_end:
                raise FormatError(
                    f"lane fields overlap at bit {f.offset} "
                    f"(previous field ends at {prev_end})"
                )
            prev_end = f.offset + f.width
        if prev_end > self.register_bits:
            raise FormatError(
                f"lane fields end at bit {prev_end}, beyond the "
                f"{self.register_bits}-bit register"
            )

    @classmethod
    def from_policy(cls, policy) -> "LaneLayout":
        """The uniform layout of a :class:`~repro.packing.policy.PackingPolicy`.

        Duck-typed on (``lanes``, ``field_bits``, ``value_bits``,
        ``register_bits``) so the packing layer never needs to import
        this module at module level.
        """
        fields = tuple(
            LaneField(
                offset=i * policy.field_bits,
                width=policy.field_bits,
                value_bits=policy.value_bits,
            )
            for i in range(policy.lanes)
        )
        return cls(fields=fields, register_bits=policy.register_bits)

    @property
    def lanes(self) -> int:
        """Number of fields in the layout."""
        return len(self.fields)

    @property
    def is_uniform(self) -> bool:
        """True when every field shares one width and value_bits."""
        first = self.fields[0]
        return all(
            f.width == first.width and f.value_bits == first.value_bits
            for f in self.fields
        )

    def with_zero_point(self, zero_point: int) -> "LaneLayout":
        """The same geometry with every lane offset by ``zero_point``."""
        return LaneLayout(
            fields=tuple(replace(f, zero_point=zero_point) for f in self.fields),
            register_bits=self.register_bits,
        )

    def shifted(self, by: int) -> "LaneLayout":
        """Layout after a left shift of ``by`` bits (negative = right).

        Fields pushed wholly outside the register are dropped; a field
        crossing the register edge is a :class:`~repro.errors.FormatError`
        (the IR models whole-field shifts only — partial-field shifts
        are exactly the carry contamination the verifier exists to
        catch, so they may not be *constructed*, only detected).
        """
        kept = []
        for f in self.fields:
            off = f.offset + by
            if off + f.width <= 0 or off >= self.register_bits:
                continue
            if off < 0 or off + f.width > self.register_bits:
                raise FormatError(
                    f"shift by {by} splits the field at bit {f.offset} "
                    "across the register edge"
                )
            kept.append(replace(f, offset=off))
        if not kept:
            raise FormatError(f"shift by {by} leaves no lane in the register")
        return LaneLayout(fields=tuple(kept), register_bits=self.register_bits)

    def describe(self) -> str:
        """Compact grammar form, e.g. ``u32{0:16/8, 16:16/8}``."""
        parts = ", ".join(
            f"{f.offset}:{f.width}/{f.value_bits}"
            + (f"+zp{f.zero_point}" if f.zero_point else "")
            for f in self.fields
        )
        return f"u{self.register_bits}{{{parts}}}"


@dataclass(frozen=True)
class LaneOp:
    """One IR instruction: an opcode, a destination, source registers.

    ``layout`` carries the packed layout the op produces (or consumes,
    for ``unpack``/``spill``); ``attrs`` holds per-op scalars — operand
    ranges (:class:`~repro.analysis.intervals.Interval`), shift
    amounts, mask literals, loop bodies and trip counts.
    """

    op: str
    dest: str | None = None
    srcs: tuple[str, ...] = ()
    layout: LaneLayout | None = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise PackingError(f"unknown lane-IR op {self.op!r}")

    def reads(self) -> frozenset[str]:
        """Registers this instruction reads.

        ``packed_add`` into an accumulator reads both sources; ``spill``
        reads the packed register *and* the wide accumulator it folds
        into; a ``loop`` reads the union of its body minus registers the
        body itself defines first.
        """
        if self.op == "loop":
            defined: set[str] = set()
            read: set[str] = set()
            for sub in self.attrs["body"]:
                read |= set(sub.reads()) - defined
                defined |= set(sub.writes())
            return frozenset(read)
        extra = (self.dest,) if self.op == "spill" and self.dest else ()
        return frozenset(self.srcs + extra)

    def writes(self) -> frozenset[str]:
        """Registers this instruction writes.

        ``spill`` writes its wide destination and resets the packed
        source to zero (mirroring
        :meth:`repro.packing.accumulate.ChunkedAccumulator.spill`).
        """
        if self.op == "loop":
            out: set[str] = set()
            for sub in self.attrs["body"]:
                out |= set(sub.writes())
            return frozenset(out)
        regs = set()
        if self.dest:
            regs.add(self.dest)
        if self.op == "spill":
            regs.update(self.srcs)
        return frozenset(regs)

    def render(self) -> str:
        """One-line assembly-style form."""
        if self.op == "loop":
            body = "; ".join(sub.render() for sub in self.attrs["body"])
            return f"loop x{self.attrs['trips']} {{ {body} }}"
        bits = [self.op]
        if self.dest:
            bits.append(self.dest)
        bits.extend(self.srcs)
        text = " ".join(bits)
        if self.layout is not None:
            text += f"  {self.layout.describe()}"
        scalars = {
            k: v
            for k, v in self.attrs.items()
            if k not in ("body", "ranges") and not isinstance(v, Interval)
        }
        if scalars:
            text += "  " + ", ".join(f"{k}={v}" for k, v in sorted(scalars.items()))
        return text


@dataclass
class LaneProgram:
    """An ordered lane-IR instruction stream plus its input ranges.

    ``inputs`` maps register names to the abstract
    :class:`~repro.analysis.intervals.Interval` of values the
    environment may supply (the unpacked multiplier stream, for a GEMM).
    ``notes`` carries free-form provenance (which kernel emitted this).
    """

    name: str = "program"
    ops: list[LaneOp] = field(default_factory=list)
    inputs: dict[str, Interval] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    _counter: int = 0

    def fresh(self, stem: str) -> str:
        """A new unique register name with the given stem."""
        self._counter += 1
        return f"{stem}{self._counter}"

    def emit(self, op: LaneOp) -> LaneOp:
        """Append one instruction and return it."""
        self.ops.append(op)
        return op

    def flat_size(self) -> int:
        """Instruction count with loop bodies counted once (not unrolled)."""

        def count(ops) -> int:
            n = 0
            for op in ops:
                n += 1
                if op.op == "loop":
                    n += count(op.attrs["body"])
            return n

        return count(self.ops)

    def render(self) -> str:
        """The whole program, one instruction per line."""
        lines = [f"; {self.name}"]
        lines += [f"; {n}" for n in self.notes]
        lines += [
            f"in {reg} = {iv}" for reg, iv in sorted(self.inputs.items())
        ]
        lines += [op.render() for op in self.ops]
        return "\n".join(lines)


# -- capture: packing code emits IR alongside execution ------------------------

#: Stack of programs being captured; the top receives emitted ops.
_CAPTURE: list[LaneProgram] = []


def capturing() -> bool:
    """True when a :func:`capture` context is active."""
    return bool(_CAPTURE)


def active_program() -> LaneProgram | None:
    """The program currently receiving emitted ops, if any."""
    return _CAPTURE[-1] if _CAPTURE else None


def note(text: str) -> None:
    """Attach a provenance note to the active capture (no-op outside one)."""
    if _CAPTURE:
        _CAPTURE[-1].notes.append(text)


class _SinkAdapter:
    """Translates packing-layer emission events into typed IR ops.

    The packing modules never import this module at module level (the
    analysis package transitively imports packing, so the reverse edge
    must stay lazy); instead each keeps a module-global ``_IR_SINK``
    that :func:`capture` points at an instance of this adapter.  Array
    operands are named by object identity — sound for the duration of
    one capture, which is the adapter's whole lifetime.
    """

    def __init__(self, program: LaneProgram):
        self.program = program
        self._names: dict[int, str] = {}

    def name_for(self, obj, stem: str) -> str:
        """The stable register name of one array object."""
        key = id(obj)
        if key not in self._names:
            self._names[key] = self.program.fresh(stem)
        return self._names[key]

    def alias(self, new_obj, old_obj) -> None:
        """Make ``new_obj`` share ``old_obj``'s register name (e.g. after
        a dtype cast produced a distinct array for the same register)."""
        key = id(old_obj)
        if key in self._names:
            self._names[id(new_obj)] = self._names[key]

    def event(self, kind: str, **info) -> None:
        """One emission event from the packing layer.

        Scalar payloads cross the boundary as plain ``(lo, hi)`` tuples
        so the packing modules never import the analysis package.
        """
        prog = self.program
        if kind == "pack":
            layout = LaneLayout.from_policy(info["policy"])
            if info.get("zero_point"):
                layout = layout.with_zero_point(info["zero_point"])
            lo, hi = info["range"]
            dest = self.name_for(info["out"], "b")
            prog.emit(
                LaneOp(
                    op="pack",
                    dest=dest,
                    layout=layout,
                    attrs={
                        "ranges": tuple(Interval(lo, hi) for _ in layout.fields)
                    },
                )
            )
        elif kind in ("packed_add", "packed_mul"):
            layout = LaneLayout.from_policy(info["policy"])
            srcs = list(
                self.name_for(s, "r") if not isinstance(s, str) else s
                for s in info["srcs"]
            )
            dest = self.name_for(info["out"], "r")
            if "scalar_range" in info:
                # The scalar operand is an *input* to the program, not a
                # register another op defines.
                lo, hi = info["scalar_range"]
                scalar_reg = self.name_for(info["srcs"][0], "s")
                prog.inputs[scalar_reg] = Interval(lo, hi).join(
                    prog.inputs.get(scalar_reg, Interval(lo, hi))
                )
                srcs[0] = scalar_reg
            prog.emit(
                LaneOp(op=kind, dest=dest, srcs=tuple(srcs), layout=layout)
            )
        elif kind == "gemm_chain":
            layout = LaneLayout.from_policy(info["policy"])
            lo, hi = info["a_range"]
            gemm_chain_program(
                layout,
                a_range=Interval(lo, hi),
                k=info["k"],
                chunk_depth=info.get("chunk_depth"),
                packed_reg=self._names.get(id(info["b"])),
                program=prog,
            )


@contextlib.contextmanager
def capture(name: str = "capture"):
    """Record the lane program executed inside this context.

    Installs emission sinks in ``repro.packing.swar``,
    ``repro.packing.packer``, and ``repro.packing.gemm`` (restoring the
    previous sinks on exit, so captures nest).  Yields the
    :class:`LaneProgram` being built; verify it afterwards with
    :func:`repro.analysis.dataflow.verify_program`.
    """
    from repro.packing import gemm as _gemm
    from repro.packing import packer as _packer
    from repro.packing import swar as _swar

    program = LaneProgram(name=name)
    adapter = _SinkAdapter(program)
    saved = (_swar._IR_SINK, _packer._IR_SINK, _gemm._IR_SINK)
    _swar._IR_SINK = _packer._IR_SINK = _gemm._IR_SINK = adapter
    _CAPTURE.append(program)
    try:
        yield program
    finally:
        _CAPTURE.pop()
        _swar._IR_SINK, _packer._IR_SINK, _gemm._IR_SINK = saved


# -- canonical chain builder ----------------------------------------------------


def gemm_chain_program(
    layout: LaneLayout,
    *,
    a_range: Interval,
    b_range: Interval | None = None,
    k: int,
    chunk_depth: int | None = None,
    name: str = "gemm_chain",
    packed_reg: str | None = None,
    program: LaneProgram | None = None,
) -> LaneProgram:
    """The per-output-register program of a chunked packed GEMM.

    One packed register of B lanes is multiplied by ``k`` scalars from
    the A stream and accumulated, spilling to wide accumulators every
    ``chunk_depth`` products (``None`` = never — the whole chain runs
    packed, which is what the verifier must refute for deep K).  Loops
    are structured ``loop`` ops, so the program is O(1) in ``k`` and
    the interpreter's linear fast-forward recovers exact first-failure
    depths.

    ``b_range`` defaults to each field's declared payload range (per
    field, so asymmetric layouts get per-lane ranges).  When ``program``
    is given the chain is appended to it — ``packed_reg`` then names an
    already-packed register to reuse instead of emitting a fresh
    ``pack``.
    """
    if k < 0:
        raise PackingError(f"accumulation depth k must be >= 0, got {k}")
    if chunk_depth is not None and chunk_depth < 1:
        raise PackingError(f"chunk_depth must be >= 1, got {chunk_depth}")
    prog = program if program is not None else LaneProgram(name=name)
    # Appended chains (sign-split runs two passes over one packed B)
    # each get their own scalar input register.
    scalar = "a" if program is None else prog.fresh("a")
    prog.inputs.setdefault(scalar, a_range)

    if packed_reg is None:
        packed_reg = prog.fresh("b")
        ranges = (
            tuple(b_range for _ in layout.fields)
            if b_range is not None
            else tuple(f.value_range for f in layout.fields)
        )
        prog.emit(
            LaneOp(op="pack", dest=packed_reg, layout=layout, attrs={"ranges": ranges})
        )
    acc = prog.fresh("acc")
    prog.emit(
        LaneOp(
            op="pack",
            dest=acc,
            layout=layout,
            attrs={"ranges": tuple(Interval.point(0) for _ in layout.fields)},
        )
    )
    t = prog.fresh("t")
    step = (
        LaneOp(op="packed_mul", dest=t, srcs=(scalar, packed_reg), layout=layout),
        LaneOp(op="packed_add", dest=acc, srcs=(acc, t), layout=layout),
    )
    if k == 0:
        # An empty reduction: nothing accumulates, the zeroed packed
        # accumulator unpacks to zeros (matching reference_gemm).
        prog.emit(LaneOp(op="unpack", dest=prog.fresh("c"), srcs=(acc,), layout=layout))
        return prog

    wide = prog.fresh("w")
    if chunk_depth is None or chunk_depth >= k:
        prog.emit(LaneOp(op="loop", attrs={"trips": k, "body": step}))
        prog.emit(LaneOp(op="spill", dest=wide, srcs=(acc,), layout=layout))
    else:
        chunks, tail = divmod(k, chunk_depth)
        inner = LaneOp(op="loop", attrs={"trips": chunk_depth, "body": step})
        spill = LaneOp(op="spill", dest=wide, srcs=(acc,), layout=layout)
        prog.emit(LaneOp(op="loop", attrs={"trips": chunks, "body": (inner, spill)}))
        if tail:
            prog.emit(LaneOp(op="loop", attrs={"trips": tail, "body": step}))
            prog.emit(LaneOp(op="spill", dest=wide, srcs=(acc,), layout=layout))
    prog.emit(LaneOp(op="reduce", dest=prog.fresh("c"), srcs=(wide,)))
    return prog
