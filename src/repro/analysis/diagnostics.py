"""Structured diagnostics shared by every static-analysis pass.

A :class:`Diagnostic` is one finding — a stable code (``VB101``), a
severity, a human message, a location, and an optional fix hint.  A
:class:`DiagnosticReport` aggregates findings across passes and renders
them compiler-style, one per line, so the CLI can print them and exit
non-zero exactly when an error-severity finding exists.

The code space (documented in ``docs/ANALYSIS.md``):

* ``VB1xx`` — packing / lane-overflow proofs (``VB11x``: the lane
  dataflow verifier),
* ``VB2xx`` — schedule and warp-program checks,
* ``VB3xx`` — repo lint (AST pass),
* ``VB4xx`` — differential cross-checks between analysis passes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = ["Severity", "Diagnostic", "DiagnosticReport"]


class Severity(enum.IntEnum):
    """How bad a finding is; only :attr:`ERROR` fails a run."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes
    ----------
    code:
        Stable identifier like ``"VB101"``; the leading digit groups the
        pass (1 packing, 2 schedule, 3 lint).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description of what is wrong.
    location:
        Where — a ``file.py:line`` pair for lint findings, a structured
        label (``"policy(bits=8, lanes=2)"``, ``"warp[3]"``) otherwise.
    hint:
        Optional suggestion for fixing the finding.
    data:
        Optional machine-readable payload (a witness, the offending
        widths, a dependence graph) for ``--format json`` consumers;
        never rendered in the text form.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""
    data: dict | None = None

    def render(self) -> str:
        """Compiler-style one-line rendering."""
        loc = f"{self.location}: " if self.location else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{loc}{self.severity}[{self.code}]: {self.message}{hint}"

    def to_dict(self) -> dict:
        """JSON-ready form (stable keys; ``data`` only when present)."""
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }
        if self.data is not None:
            out["data"] = self.data
        return out


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with severity accounting."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        """Append many findings."""
        self.diagnostics.extend(diags)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All findings at exactly ``severity``."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity findings."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-severity findings."""
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        """True when at least one error-severity finding exists."""
        return bool(self.errors)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 when errors exist, else 0."""
        return 1 if self.has_errors else 0

    def filter(self, code_prefix: str) -> list[Diagnostic]:
        """Findings whose code starts with ``code_prefix`` (e.g. ``"VB1"``)."""
        return [d for d in self.diagnostics if d.code.startswith(code_prefix)]

    def to_json(self, *, min_severity: Severity = Severity.INFO) -> str:
        """Machine-readable report for CI annotation (``--format json``).

        A stable envelope: ``diagnostics`` (insertion order, filtered by
        ``min_severity``), per-severity ``counts`` over the *full*
        report, and the process ``exit_code``.
        """
        shown = [d for d in self.diagnostics if d.severity >= min_severity]
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in shown],
                "counts": {
                    "error": len(self.errors),
                    "warning": len(self.warnings),
                    "info": len(self.by_severity(Severity.INFO)),
                },
                "exit_code": self.exit_code,
            },
            indent=2,
            sort_keys=False,
        )

    def render(self, *, min_severity: Severity = Severity.INFO) -> str:
        """All findings at or above ``min_severity``, one per line.

        Errors sort first, then warnings, then infos; ties keep
        insertion order.  An empty report renders a clean-bill line.
        """
        shown = [d for d in self.diagnostics if d.severity >= min_severity]
        if not shown:
            return "no findings"
        ordered = sorted(
            shown, key=lambda d: -int(d.severity)
        )  # stable: insertion order within a severity
        lines = [d.render() for d in ordered]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} info(s)"
        )
        return "\n".join(lines)
