"""Static verification of packing plans, schedules, and repo invariants.

VitBit's correctness rests on invariants the rest of the library checks
only at run time: packed lanes must never carry into their neighbours
(the Fig. 3 guard-bit policy), and the fused kernel's warp-to-pipe
assignment must respect the m/n ratios of Eq. 1.  This package checks
them *statically*:

* :mod:`repro.analysis.overflow` — a closed-form interval prover that
  proves (or refutes, with a concrete witness) that no lane of a
  packed IMAD accumulation chain can overflow its field or the 32-bit
  register, replacing "run with ``strict=True`` and hope" with an
  upfront guarantee;
* :mod:`repro.analysis.laneir` — a typed lane IR (``pack`` /
  ``packed_mul`` / ``packed_add`` / ``spill`` / ``reduce`` / ``loop``
  over :class:`~repro.analysis.laneir.LaneLayout` layouts, asymmetric
  widths first-class) that the packing layer emits alongside execution
  via :func:`~repro.analysis.laneir.capture`;
* :mod:`repro.analysis.dataflow` — a general abstract interpreter over
  lane programs (product domain: per-lane intervals x layout facts)
  that proves or refutes lane overflow, guard-bit exhaustion,
  cross-lane contamination, register wrap, and use-before-def, derives
  the RAW/WAW/WAR dependence graph, and emits the proven-safe-depth
  table consumed by the packer and serve preflight.  The closed-form
  prover is kept as a differential cross-check (``VB4xx`` on
  disagreement);
* :mod:`repro.analysis.schedule_check` — structural diagnostics over
  :class:`~repro.sim.program.WarpProgram` sets and
  :class:`~repro.perfmodel.warpsets.KernelLaunch` lowerings (degenerate
  programs, oversubscription, Eq. 1 ratio violations, starvation);
* :mod:`repro.analysis.lint` — a small AST lint pass enforcing repo
  invariants (no raw casts on packed arrays outside ``packing/``,
  explicit ``strict=`` at SWAR call sites, docstring coverage);
* :mod:`repro.analysis.selfcheck` — runs all passes over the seed
  configurations (``python -m repro analyze --self-check``).

Diagnostics share one code space (see ``docs/ANALYSIS.md``): ``VB1xx``
packing/overflow/dataflow, ``VB2xx`` schedule, ``VB3xx`` lint, ``VB4xx``
cross-prover disagreement (always an error — one prover is unsound).
"""

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.intervals import Interval
from repro.analysis.overflow import (
    OverflowProof,
    OverflowWitness,
    preflight_gemm,
    prove_packed_accumulation,
)
from repro.analysis.laneir import (
    LaneField,
    LaneLayout,
    LaneOp,
    LaneProgram,
    capture,
    gemm_chain_program,
)
from repro.analysis.dataflow import (
    DataflowResult,
    DependenceGraph,
    LaneWitness,
    first_failing_depth,
    load_safe_depth_table,
    prove_chain,
    proven_chunk_depth,
    safe_depth_table,
    verify_program,
    write_safe_depth_table,
)
from repro.analysis.schedule_check import (
    check_coschedule_shares,
    check_launch,
    check_program,
    check_split_plan,
    check_warp_set,
)
from repro.analysis.lint import lint_paths, run_repo_lint
from repro.analysis.selfcheck import self_check

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "Interval",
    "OverflowWitness",
    "OverflowProof",
    "prove_packed_accumulation",
    "preflight_gemm",
    "LaneField",
    "LaneLayout",
    "LaneOp",
    "LaneProgram",
    "capture",
    "gemm_chain_program",
    "DataflowResult",
    "DependenceGraph",
    "LaneWitness",
    "verify_program",
    "prove_chain",
    "first_failing_depth",
    "proven_chunk_depth",
    "safe_depth_table",
    "load_safe_depth_table",
    "write_safe_depth_table",
    "check_program",
    "check_warp_set",
    "check_split_plan",
    "check_launch",
    "check_coschedule_shares",
    "lint_paths",
    "run_repo_lint",
    "self_check",
]
