"""Static verification of packing plans, schedules, and repo invariants.

VitBit's correctness rests on invariants the rest of the library checks
only at run time: packed lanes must never carry into their neighbours
(the Fig. 3 guard-bit policy), and the fused kernel's warp-to-pipe
assignment must respect the m/n ratios of Eq. 1.  This package checks
them *statically*:

* :mod:`repro.analysis.overflow` — an interval abstract interpreter
  that proves (or refutes, with a concrete witness) that no lane of a
  packed IMAD accumulation chain can overflow its field or the 32-bit
  register, replacing "run with ``strict=True`` and hope" with an
  upfront guarantee;
* :mod:`repro.analysis.schedule_check` — structural diagnostics over
  :class:`~repro.sim.program.WarpProgram` sets and
  :class:`~repro.perfmodel.warpsets.KernelLaunch` lowerings (degenerate
  programs, oversubscription, Eq. 1 ratio violations, starvation);
* :mod:`repro.analysis.lint` — a small AST lint pass enforcing repo
  invariants (no raw casts on packed arrays outside ``packing/``,
  explicit ``strict=`` at SWAR call sites, docstring coverage);
* :mod:`repro.analysis.selfcheck` — runs all passes over the seed
  configurations (``python -m repro analyze --self-check``).

Diagnostics share one code space (see ``docs/ANALYSIS.md``): ``VB1xx``
packing/overflow, ``VB2xx`` schedule, ``VB3xx`` lint.
"""

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.intervals import Interval
from repro.analysis.overflow import (
    OverflowProof,
    OverflowWitness,
    preflight_gemm,
    prove_packed_accumulation,
)
from repro.analysis.schedule_check import (
    check_coschedule_shares,
    check_launch,
    check_program,
    check_split_plan,
    check_warp_set,
)
from repro.analysis.lint import lint_paths, run_repo_lint
from repro.analysis.selfcheck import self_check

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticReport",
    "Interval",
    "OverflowWitness",
    "OverflowProof",
    "prove_packed_accumulation",
    "preflight_gemm",
    "check_program",
    "check_warp_set",
    "check_split_plan",
    "check_launch",
    "check_coschedule_shares",
    "lint_paths",
    "run_repo_lint",
    "self_check",
]
