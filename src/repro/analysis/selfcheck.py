"""The ``repro analyze --self-check`` sweep: verify the repo's own plans.

Runs every analysis pass over the configurations the seed benchmarks
actually use — Fig. 3 policies across bitwidths, the mixed-width W*A*
policies (each also run through the lane dataflow verifier as a live
differential check against the closed-form prover, VB401 on
disagreement), every Table 3 strategy lowered over representative
ViT-Base GEMM and elementwise shapes on the Jetson Orin AGX model, plus
the repo lint — and aggregates the findings into one
:class:`~repro.analysis.diagnostics.DiagnosticReport`.  A clean tree
exits 0; CI runs this as the analysis suite's own regression test.
"""

from __future__ import annotations

from repro.analysis.dataflow import prove_chain
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.lint import run_repo_lint
from repro.analysis.overflow import prove_packed_accumulation
from repro.analysis.schedule_check import check_launch
from repro.arch.specs import jetson_orin_agx
from repro.packing.accumulate import safe_accumulation_depth
from repro.packing.mixed import policy_for_operands
from repro.packing.policy import PackingPolicy, policy_for_bitwidth
from repro.perfmodel.descriptors import ELEMENTWISE_KERNELS, CostParams, GemmShape
from repro.perfmodel.warpsets import elementwise_launch, gemm_launch
from repro.fusion.strategies import STRATEGIES

__all__ = ["self_check"]

#: Reduction depths exercised per policy (ViT-Base K values).
_DEPTHS = (768, 3072)

#: Mixed (multiplier, packed) width pairs checked by the prover.
_MIXED_PAIRS = ((4, 8), (8, 4), (2, 8), (8, 2), (4, 4), (6, 6))

#: Representative ViT-Base GEMMs (proj and fc1 of one block, batch 1).
_GEMM_SHAPES = (
    GemmShape(768, 197, 768, name="proj"),
    GemmShape(3072, 197, 768, name="fc1"),
)

#: Representative CUDA-core kernels and element counts.
_ELEMENTWISE = (("softmax", 197 * 197 * 12), ("gelu", 3072 * 197))


def _check_policy(policy: PackingPolicy, report: DiagnosticReport) -> None:
    """Prove the chunked execution of ``policy`` safe at the ViT depths."""
    a_bits = policy.effective_multiplier_bits
    for k in _DEPTHS:
        chunk = min(k, safe_accumulation_depth(policy, a_bits, policy.value_bits))
        proof = prove_packed_accumulation(
            policy, k=k, a_bits=a_bits, chunk_depth=chunk
        )
        report.extend(proof.diagnostics)
        if proof.max_safe_depth != safe_accumulation_depth(
            policy, a_bits, policy.value_bits
        ):
            report.add(
                Diagnostic(
                    code="VB101",
                    severity=Severity.ERROR,
                    message=(
                        "prover depth budget "
                        f"{proof.max_safe_depth} disagrees with "
                        "packing.accumulate.safe_accumulation_depth "
                        f"({safe_accumulation_depth(policy, a_bits, policy.value_bits)})"
                    ),
                    location=f"policy(bits={policy.value_bits}, lanes={policy.lanes})",
                )
            )
        # The dataflow verifier must reach the same verdict and budget
        # on the same chain (a live VB4xx differential check).
        flow = prove_chain(policy, k=k, a_bits=a_bits, chunk_depth=chunk)
        if flow.safe != proof.safe or flow.max_safe_depth != proof.max_safe_depth:
            report.add(
                Diagnostic(
                    code="VB401",
                    severity=Severity.ERROR,
                    message=(
                        f"dataflow verdict (safe={flow.safe}, depth "
                        f"{flow.max_safe_depth}) disagrees with the "
                        f"closed-form prover (safe={proof.safe}, depth "
                        f"{proof.max_safe_depth})"
                    ),
                    location=f"policy(bits={policy.value_bits}, lanes={policy.lanes})",
                )
            )


def self_check(*, lint: bool = True) -> DiagnosticReport:
    """Run every analysis pass over the repo's own configurations.

    Covers the Fig. 3 policies for bitwidths 2..12, the mixed-width
    pairs, every Table 3 strategy lowered over ViT-Base shapes on the
    Jetson Orin AGX machine model, and (when a source checkout is
    found and ``lint`` is true) the repo lint.
    """
    report = DiagnosticReport()

    for bits in range(2, 13):
        _check_policy(policy_for_bitwidth(bits), report)
    for a_bits, b_bits in _MIXED_PAIRS:
        _check_policy(policy_for_operands(a_bits, b_bits), report)

    machine = jetson_orin_agx()
    params = CostParams()
    policy = policy_for_bitwidth(8)
    for strategy in STRATEGIES:
        for shape in _GEMM_SHAPES:
            launch = gemm_launch(shape, strategy, machine, policy, params, 4.0)
            # Validate the plan against the policy it was computed for
            # (non-packing strategies plan with a single-lane variant).
            plan_policy = (
                policy.with_lanes(launch.plan.lanes)
                if launch.plan is not None
                else policy
            )
            report.extend(check_launch(launch, machine, policy=plan_policy))
        if strategy.uses_cuda:
            for kernel, n_elements in _ELEMENTWISE:
                launch = elementwise_launch(
                    ELEMENTWISE_KERNELS[kernel],
                    n_elements,
                    strategy,
                    machine,
                    policy,
                    params,
                )
                report.extend(check_launch(launch, machine))

    if lint:
        report.extend(run_repo_lint().diagnostics)
    return report
