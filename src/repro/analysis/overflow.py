"""The lane-overflow prover: upfront safety proofs for packing plans.

A packed dot product issues, per K step, one ``packed_scalar_mul``
(scalar from A times a packed register of B lanes) and one
``packed_add`` into a packed accumulator.  The chain is *exact* iff
every lane's running sum fits its field — the invariant the Fig. 3
guard-bit policy is designed around, which the rest of the library only
verifies at run time (``strict=True``).

This module decides the question statically.  Given a
:class:`~repro.packing.policy.PackingPolicy`, operand ranges (or
bitwidths), a GEMM K depth, and an optional spill chunk depth, the
interval abstract interpreter either

* **proves** no lane of the IMAD chain can overflow its field or the
  32-bit register — for *any* inputs in range — or
* **refutes** the plan with a concrete :class:`OverflowWitness` triple
  ``(scalar, lane value, depth)`` that reproduces the overflow under
  ``strict=True`` execution.

Because lanes occupy ``lanes * field_bits <= 32`` bits, per-lane field
safety implies the packed register cannot wrap either; the prover still
reports the register-level margin separately (``VB102``) because a
wrapped register corrupts *neighbouring* lanes, which is a strictly
worse failure than one saturated field.

Diagnostic codes: ``VB101`` lane-field overflow, ``VB102`` register
overflow, ``VB103`` a single product cannot fit its field, ``VB104``
operands out of packable range, ``VB105`` scalar wider than the
policy's multiplier width (the Fig. 3 sizing guarantee is void),
``VB106`` informational safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.intervals import Interval
from repro.errors import OverflowBudgetError, PackingError
from repro.packing.policy import PackingPolicy

__all__ = [
    "OverflowWitness",
    "OverflowProof",
    "prove_packed_accumulation",
    "preflight_gemm",
]

#: Depth reported for plans that can never overflow (0/1-valued operands).
UNBOUNDED_DEPTH = 1 << 30


@dataclass(frozen=True)
class OverflowWitness:
    """A concrete input triple that overflows a lane field.

    Feeding ``scalar`` against a register whose lanes all hold
    ``lane_value``, ``depth`` accumulated products reach ``lane_total``
    in every lane, exceeding ``field_limit`` — so a strict SWAR
    execution raises :class:`~repro.errors.OverflowBudgetError` at
    exactly step ``depth``.
    """

    scalar: int
    lane_value: int
    depth: int
    lane_total: int
    field_limit: int

    def describe(self) -> str:
        """One-line reproduction recipe."""
        return (
            f"scalar={self.scalar} x lane_value={self.lane_value} "
            f"accumulated {self.depth}x reaches {self.lane_total} "
            f"> field limit {self.field_limit}"
        )


@dataclass
class OverflowProof:
    """Outcome of the lane-overflow prover for one packing plan.

    ``safe`` is a *proof*: no inputs within the declared ranges can
    overflow within ``depth_checked`` accumulations.  When ``safe`` is
    False, ``witness`` is a concrete refutation.  ``max_safe_depth`` is
    the largest accumulation depth the plan supports without spilling
    (the per-(bitwidth, packing-factor) budget of the paper's Sec. 3.2
    guard-bit discussion).
    """

    policy: PackingPolicy
    a_range: Interval
    b_range: Interval
    k: int
    depth_checked: int
    max_safe_depth: int
    safe: bool
    witness: OverflowWitness | None
    diagnostics: list[Diagnostic]

    @property
    def guard_bits_free(self) -> int:
        """Field bits spare beyond one worst-case product (>= 0 when safe)."""
        prod = (self.a_range * self.b_range).hi
        return self.policy.field_bits - max(1, prod).bit_length()

    def describe(self) -> str:
        """One-line verdict summary."""
        plan = (
            f"{self.policy.value_bits}-bit x {self.policy.lanes}-pack "
            f"(field {self.policy.field_bits}, K={self.k}, "
            f"chunk {self.depth_checked})"
        )
        if self.safe:
            return f"SAFE {plan}: max safe depth {self.max_safe_depth}"
        assert self.witness is not None
        return f"OVERFLOW {plan}: {self.witness.describe()}"


def _location(policy: PackingPolicy) -> str:
    return (
        f"policy(bits={policy.value_bits}, lanes={policy.lanes}, "
        f"field={policy.field_bits})"
    )


def prove_packed_accumulation(
    policy: PackingPolicy,
    *,
    k: int,
    a_bits: int | None = None,
    a_range: Interval | None = None,
    b_bits: int | None = None,
    b_range: Interval | None = None,
    chunk_depth: int | None = None,
) -> OverflowProof:
    """Prove or refute lane safety of a packed IMAD accumulation chain.

    Parameters
    ----------
    policy:
        The packing plan under test.
    k:
        GEMM reduction depth — how many products each lane accumulates.
        ``k = 0`` (an empty reduction) is trivially safe: no product is
        ever formed, so every lane stays at zero.
    a_bits / a_range:
        Range of the unpacked multiplier stream, as a magnitude bitwidth
        or an explicit :class:`~repro.analysis.intervals.Interval`
        (default: the policy's ``effective_multiplier_bits``).  Must be
        non-negative — signed multipliers are sign-split upstream.
    b_bits / b_range:
        Range of the packed lane payloads (default: the policy's
        ``value_bits``).
    chunk_depth:
        Accumulation length between spills to wide accumulators.  The
        default (``None``) models *no* spilling — the whole K chain runs
        packed, which is the "run strict and hope" configuration this
        prover replaces.  Pass the planned chunk depth (e.g. from
        :func:`repro.packing.accumulate.safe_accumulation_depth`) to
        verify a chunked execution.

    Returns
    -------
    OverflowProof
        ``safe=True`` with the per-plan depth budget, or ``safe=False``
        with a concrete :class:`OverflowWitness` and ``VB1xx``
        diagnostics.
    """
    if k < 0:
        raise PackingError(f"accumulation depth k must be >= 0, got {k}")
    if chunk_depth is not None and chunk_depth < 1:
        raise PackingError(f"chunk_depth must be >= 1, got {chunk_depth}")
    if a_range is None:
        a_range = Interval.from_bits(
            policy.effective_multiplier_bits if a_bits is None else a_bits
        )
    if b_range is None:
        b_range = Interval.from_bits(
            policy.value_bits if b_bits is None else b_bits
        )
    if not a_range.nonnegative:
        raise PackingError(
            "packed multiplication requires non-negative scalars; "
            "sign-split signed multipliers first (see repro.packing.gemm)"
        )
    loc = _location(policy)
    diags: list[Diagnostic] = []

    # Range sanity: lanes must be packable at all.
    if not b_range.fits(policy.max_value):
        diags.append(
            Diagnostic(
                code="VB104",
                severity=Severity.ERROR,
                message=(
                    f"lane payload range {b_range} exceeds the packable "
                    f"range [0, {policy.max_value}] of "
                    f"{policy.value_bits}-bit lanes"
                ),
                location=loc,
                hint="widen value_bits or offset operands by their zero point",
            )
        )
    if (
        policy.lanes > 1
        and a_range.hi > (1 << policy.effective_multiplier_bits) - 1
    ):
        diags.append(
            Diagnostic(
                code="VB105",
                severity=Severity.WARNING,
                message=(
                    f"scalar range {a_range} exceeds the policy's "
                    f"{policy.effective_multiplier_bits}-bit multiplier "
                    "width; the Fig. 3 field sizing no longer guarantees "
                    "single-product fit"
                ),
                location=loc,
                hint="use repro.packing.mixed.policy_for_operands for "
                "asymmetric widths",
            )
        )

    # Abstract interpretation of the chain.  Every lane starts at 0 and
    # accumulates one product interval per step; all lanes share the
    # same abstract state (the packer may place any in-range payload in
    # any lane), so one interval models all of them.
    product = a_range * b_range
    depth_checked = min(k, chunk_depth) if chunk_depth is not None else k
    field_limit = policy.field_mask

    if product.hi <= 0:
        max_safe_depth = UNBOUNDED_DEPTH
    else:
        max_safe_depth = field_limit // product.hi

    lane_after = product.scale(depth_checked)
    safe = lane_after.fits(field_limit) and not any(
        d.severity is Severity.ERROR for d in diags
    )

    witness: OverflowWitness | None = None
    if not lane_after.fits(field_limit):
        # Smallest depth at which the worst-case inputs overflow; by
        # construction <= depth_checked, so the witness is realizable
        # within the plan being checked.
        fail_depth = max_safe_depth + 1
        witness = OverflowWitness(
            scalar=a_range.hi,
            lane_value=b_range.hi,
            depth=fail_depth,
            lane_total=product.hi * fail_depth,
            field_limit=field_limit,
        )
        if max_safe_depth == 0:
            diags.append(
                Diagnostic(
                    code="VB103",
                    severity=Severity.ERROR,
                    message=(
                        f"a single worst-case product ({a_range.hi} x "
                        f"{b_range.hi} = {product.hi}) does not fit the "
                        f"{policy.field_bits}-bit field"
                    ),
                    location=loc,
                    hint="reduce operand bitwidths or pack fewer lanes "
                    "(wider fields)",
                )
            )
        else:
            diags.append(
                Diagnostic(
                    code="VB101",
                    severity=Severity.ERROR,
                    message=(
                        f"lane overflow at accumulation depth "
                        f"{witness.depth} of {depth_checked}: "
                        f"{witness.describe()}"
                    ),
                    location=loc,
                    hint=(
                        f"spill to wide accumulators every "
                        f"{max_safe_depth} products "
                        "(repro.packing.accumulate.ChunkedAccumulator)"
                    ),
                )
            )
        # Register-level wrap: strictly worse — the carry corrupts the
        # neighbouring lane's payload rather than saturating one field.
        top_shift = (policy.lanes - 1) * policy.field_bits
        reg_limit = (1 << policy.register_bits) - 1
        total_hi = sum(
            witness.lane_total << s for s in policy.shift_amounts
        )
        if total_hi > reg_limit or (witness.lane_total << top_shift) > reg_limit:
            diags.append(
                Diagnostic(
                    code="VB102",
                    severity=Severity.ERROR,
                    message=(
                        f"worst-case packed value {total_hi} exceeds the "
                        f"{policy.register_bits}-bit register; the hardware "
                        "IMAD would wrap and corrupt neighbouring lanes"
                    ),
                    location=loc,
                )
            )
    else:
        margin = (
            "unbounded"
            if max_safe_depth >= UNBOUNDED_DEPTH
            else f"{max_safe_depth - depth_checked} further products"
        )
        diags.append(
            Diagnostic(
                code="VB106",
                severity=Severity.INFO,
                message=(
                    f"proved safe for depth {depth_checked} (budget "
                    f"{max_safe_depth}; margin {margin})"
                ),
                location=loc,
            )
        )

    return OverflowProof(
        policy=policy,
        a_range=a_range,
        b_range=b_range,
        k=k,
        depth_checked=depth_checked,
        max_safe_depth=int(max_safe_depth),
        safe=safe,
        witness=witness,
        diagnostics=diags,
    )


def preflight_gemm(
    policy: PackingPolicy, a_bits: int, k: int
) -> OverflowProof:
    """Cheap pre-flight proof for a chunked packed GEMM.

    Called by :func:`repro.packing.gemm.packed_gemm_unsigned` (and
    transitively by :func:`repro.kernels.fused_gemm.fused_gemm`) before
    any data is packed: proves that the planned chunked execution —
    spilling every ``max_safe_depth`` products — cannot overflow for
    operands within their declared bitwidths, and raises
    :class:`~repro.errors.OverflowBudgetError` carrying the witness when
    no safe chunk depth exists at all.

    Pure integer arithmetic on five scalars; costs nanoseconds against
    a GEMM's O(MNK) work.
    """
    probe = prove_packed_accumulation(policy, k=k, a_bits=a_bits)
    if k == 0:
        # An empty reduction accumulates nothing: trivially safe even
        # when no depth-1 chunk would be (probe.safe is True above).
        return probe
    if probe.max_safe_depth < 1:
        assert probe.witness is not None
        raise OverflowBudgetError(
            "packing plan refuted before execution: "
            + probe.witness.describe()
            + f" [{_location(policy)}]"
        )
    chunk = min(probe.max_safe_depth, k)
    proof = prove_packed_accumulation(
        policy, k=k, a_bits=a_bits, chunk_depth=chunk
    )
    if not proof.safe:  # pragma: no cover - unreachable once chunked
        assert proof.witness is not None
        raise OverflowBudgetError(
            "packing plan refuted before execution: "
            + proof.witness.describe()
        )
    return proof
